"""Quickstart: optimize and run a query with an expensive predicate.

Builds the synthetic Hong-Stonebraker-style database, compiles the paper's
Query 1 from SQL, optimizes it under classic selection pushdown and under
Predicate Migration, and shows why pushdown is the wrong heuristic when a
selection costs 100 random I/Os per call.

Run:  python examples/quickstart.py
"""

from repro import Executor, build_database, compile_query, optimize, plan_tree

def main() -> None:
    # tN has N x scale tuples; attribute names encode repetition ('u20':
    # each value ~20 times) and indexing ('u' prefix = unindexed).
    db = build_database(scale=100, seed=42)
    print(f"database: {db.description}, {db.size_megabytes():.1f} MB\n")

    # costly100 costs 100 random I/Os per invocation (registered by
    # build_database along with costly1/10/1000, all selectivity 0.5).
    query = compile_query(
        db,
        """
        SELECT * FROM t3, t10
        WHERE t3.a1 = t10.ua1 AND costly100(t10.u20)
        """,
        name="quickstart",
    )

    for strategy in ("pushdown", "migration"):
        optimized = optimize(db, query, strategy=strategy)
        result = Executor(db).execute(optimized.plan)
        print(f"--- {strategy} ---")
        print(plan_tree(optimized.plan))
        print(
            f"rows={result.row_count}  "
            f"charged={result.charged:,.0f} units  "
            f"(of which {result.metrics['function_charged']:,.0f} "
            f"from {result.metrics['function_calls']:.0f} UDF calls)\n"
        )

    push = Executor(db).execute(optimize(db, query, "pushdown").plan).charged
    migr = Executor(db).execute(optimize(db, query, "migration").plan).charged
    print(
        f"Predicate Migration beats selection pushdown by "
        f"{push / migr:.2f}x on this query: the join filters t10 down to "
        f"a third before the 100-I/O predicate ever runs."
    )

if __name__ == "__main__":
    main()
