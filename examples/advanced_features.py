"""Advanced features tour: bushy trees, IK-KBZ, cache modes, stress gate.

Walks through the extensions the paper points at but Montage did not ship:

1. bushy LDL reaching the Figure 1 optimal plan (Section 3.1's fix);
2. the [KZ88] polynomial LDL/IK-KBZ pipeline vs the exponential DP;
3. predicate- vs function-level caching and the cache-bypass heuristic;
4. the Section 5 debugging methodology as a one-call stress gate;
5. per-node estimate accuracy (Section 5.2).

Run:  python examples/advanced_features.py
"""

from repro import Executor, build_database, compile_query, optimize, plan_tree
from repro.bench import (
    build_workload,
    format_accuracy,
    measure_accuracy,
    stress_optimizer,
)


def main() -> None:
    db = build_database(scale=100, seed=42)

    print("=== 1. bushy trees fix LDL (Figures 1-2) ===")
    workload = build_workload(db, "ldl_example")
    left_deep = optimize(db, workload.query, strategy="ldl")
    bushy = optimize(db, workload.query, strategy="ldl", bushy=True)
    print(f"left-deep LDL estimate: {left_deep.estimated_cost:>10,.0f}")
    print(f"bushy LDL estimate:     {bushy.estimated_cost:>10,.0f}")
    print(plan_tree(bushy.plan))
    print()

    print("=== 2. LDL over IK-KBZ ([KZ88]): polynomial planning ===")
    fiveway = build_workload(db, "fiveway")
    dp = optimize(db, fiveway.query, strategy="ldl")
    poly = optimize(db, fiveway.query, strategy="ldl-ikkbz")
    print(
        f"ldl (System R DP): {dp.planning_seconds * 1000:7.1f} ms, "
        f"estimate {dp.estimated_cost:,.0f}"
    )
    print(
        f"ldl-ikkbz:         {poly.planning_seconds * 1000:7.1f} ms, "
        f"estimate {poly.estimated_cost:,.0f}"
    )
    print()

    print("=== 3. caching levels and the bypass heuristic ===")
    query = compile_query(
        db,
        "SELECT * FROM t3 WHERE costly10(t3.u20) AND costly100(t3.u100)",
    )
    plan = optimize(db, query, strategy="migration", caching=True).plan
    for label, kwargs in (
        ("uncached", dict(caching=False)),
        ("predicate-level", dict(caching=True)),
        ("function-level", dict(caching=True, cache_mode="function")),
        ("with bypass", dict(caching=True, cache_bypass=True)),
    ):
        result = Executor(db, **kwargs).execute(plan)
        print(
            f"  {label:<16} charged {result.charged:>9,.0f}   "
            f"{result.metrics['function_calls']:>5.0f} UDF calls   "
            f"{result.cache_entries:>4} cache entries"
        )
    print()

    print("=== 4. the Section 5 stress gate ===")
    report = stress_optimizer(db, queries=25, seed=11)
    print(" ", report.summary())
    print()

    print("=== 5. estimate accuracy (Section 5.2) ===")
    q4 = build_workload(db, "q4")
    plan = optimize(db, q4.query, strategy="migration").plan
    print(format_accuracy(
        "per-node estimated vs actual rows, Query 4",
        measure_accuracy(db, plan),
    ))


if __name__ == "__main__":
    main()
