"""The paper's Section 5.1 scenario: expensive UDFs and subqueries over a
custom schema, with predicate caching.

Builds an ``emp``/``professor``/``student`` style database from scratch
(showing the library's catalog and storage primitives directly, rather
than the built-in tN generator), registers a ``beard_color`` UDF, and runs:

1. the paper's beard query —
   ``SELECT * FROM emp WHERE beard_color(emp.picture) = 'red'`` —
   demonstrating that Montage-style predicate caching memoises the whole
   *predicate* keyed on the picture handle;
2. the paper's correlated IN-subquery —
   students whose mother is a professor in their department — showing the
   subquery desugared into an expensive predicate cached on the
   ``(mother, dept)`` pair, exactly as Section 5.1 describes.

Run:  python examples/beard_colors.py
"""

import random

from repro import Database, Executor, compile_query, optimize, plan_tree
from repro.catalog import Attribute, RelationSchema, TableEntry
from repro.catalog.statistics import measured_stats
from repro.storage import BTree, HeapFile


def add_table(db: Database, name: str, columns: list[tuple[str, bool]],
              rows: list[tuple]) -> TableEntry:
    """Register a custom relation: columns are (name, indexed) pairs."""
    schema = RelationSchema(
        name, [Attribute(col, indexed) for col, indexed in columns]
    )
    heap = HeapFile(name, schema.tuple_width, db.pool,
                    page_size=db.params.page_size)
    rids = [heap.insert(row) for row in rows]
    entry = TableEntry(
        schema=schema,
        stats=measured_stats(schema, rows, db.params.page_size),
        heap=heap,
    )
    for position, (col, indexed) in enumerate(columns):
        if indexed:
            index = BTree(f"{name}_{col}", db.pool,
                          page_size=db.params.page_size)
            index.bulk_load([(r[position], rid) for r, rid in zip(rows, rids)])
            entry.indexes[col] = index
    db.catalog.register_table(entry)
    return entry


def main() -> None:
    rng = random.Random(7)
    db = Database.empty(pool_pages=256)

    departments = ["cs", "ee", "math", "bio", "chem"]
    names = [f"person{i}" for i in range(400)]

    # emp(eid, picture, salary): many employees share stock photos, so the
    # picture handle repeats — exactly when predicate caching pays off.
    emp_rows = [
        (i, rng.randrange(60), 30_000 + rng.randrange(70_000))
        for i in range(1_000)
    ]
    add_table(db, "emp", [("eid", True), ("picture", False),
                          ("salary", True)], emp_rows)

    professor_rows = [
        (rng.choice(names), rng.choice(departments)) for _ in range(120)
    ]
    add_table(db, "professor", [("name", False), ("dept", False)],
              professor_rows)

    student_rows = [
        (f"student{i}", rng.choice(names), rng.choice(departments),
         rng.randrange(40))
        for i in range(500)
    ]
    add_table(db, "student",
              [("name", False), ("mother", False), ("dept", False),
               ("gpa", True)], student_rows)

    # beard_color: an image-analysis UDF costing 50 random I/Os per call.
    colors = ["red", "brown", "black", None]
    db.catalog.functions.register(
        "beard_color",
        lambda picture: colors[hash(("beard", picture)) % len(colors)],
        cost_per_call=50.0,
        selectivity=0.25,
    )

    print("=== 1. beard_color(emp.picture) = 'red', with predicate caching ===")
    beard = compile_query(
        db, "SELECT eid FROM emp WHERE beard_color(picture) = 'red'"
    )
    plan = optimize(db, beard, strategy="migration", caching=True).plan
    print(plan_tree(plan))
    for caching in (False, True):
        result = Executor(db, caching=caching).execute(plan)
        label = "cached" if caching else "uncached"
        print(
            f"  {label:>8}: {result.row_count} red beards, "
            f"{result.metrics['function_calls']:.0f} UDF calls, "
            f"charged {result.charged:,.0f} units"
        )
    print("  (the cache is keyed on the 4-byte picture handle: 60 distinct"
          " pictures -> 60 calls)\n")

    print("=== 2. correlated IN subquery as an expensive cached predicate ===")
    motherly = compile_query(
        db,
        """
        SELECT name, gpa FROM student
        WHERE student.mother IN
          (SELECT name FROM professor WHERE professor.dept = student.dept)
        """,
    )
    in_predicate = next(p for p in motherly.predicates if p.is_expensive)
    print(f"  desugared predicate: {in_predicate}")
    print(f"  per-call cost: {in_predicate.cost_per_tuple:.1f} units "
          "(one professor scan)")
    plan = optimize(db, motherly, strategy="migration", caching=True).plan
    result = Executor(db, caching=True).execute(plan, project=motherly.select)
    print(
        f"  {result.row_count} students found; cache "
        f"{result.cache_stats.hits} hits / {result.cache_stats.misses} misses"
        f" on (mother, dept) bindings; charged {result.charged:,.0f} units"
    )


if __name__ == "__main__":
    main()
