"""Expensive primary join predicates and the cost budget (Query 5 story).

When the only predicate connecting a relation is itself expensive — here a
10-I/O similarity match between t7 and t3 — the join's cost has a
c_p * {R} * {S} term that breaks the linear cost model. The paper's Section
5.2 heuristics still place the surrounding selections well; PullUp does
not, and its plan evaluates the expensive join on an unfiltered
cross-product. In Montage that plan "used up all available swap space and
never completed"; here the executor's cost budget turns it into a clean
DNF.

Run:  python examples/expensive_joins.py
"""

from repro import Executor, build_database, optimize, plan_tree
from repro.bench import build_workload, format_outcomes, run_strategies


def main() -> None:
    db = build_database(scale=100, seed=42)
    workload = build_workload(db, "q5")
    print(f"SQL:\n{workload.sql}\n")
    print(f"execution budget: {workload.budget:,.0f} charged units "
          "(the 'swap space' of this reproduction)\n")

    migration = optimize(db, workload.query, strategy="migration")
    print("Predicate Migration's plan — the expensive join runs last, on a")
    print("stream already filtered by the 100-I/O selection:\n")
    print(plan_tree(migration.plan))
    result = Executor(db, budget=workload.budget).execute(migration.plan)
    print(f"\nrows={result.row_count}  charged={result.charged:,.0f}  "
          f"UDF calls={result.metrics['function_calls']:.0f}\n")

    pullup = optimize(db, workload.query, strategy="pullup")
    print("PullUp's plan — the selection is above the expensive join:\n")
    print(plan_tree(pullup.plan))
    result = Executor(db, budget=workload.budget).execute(pullup.plan)
    if result.completed:
        print(f"\ncompleted at {result.charged:,.0f} units")
    else:
        print(f"\nDNF: aborted after charging {result.charged:,.0f} units "
              f"(> budget {workload.budget:,.0f})")
    print()

    outcomes = run_strategies(db, workload.query, budget=workload.budget)
    print(format_outcomes("Query 5 (Figure 9)", outcomes))


if __name__ == "__main__":
    main()
