"""Run the paper's whole workload suite across all six algorithms.

Prints one bar table per benchmark query (the paper's Figures 3, 4, 5, 8,
9), the Table 1 applicability matrix, and the Figure 10 pullup-eagerness
spectrum — a miniature of the full benchmark harness in ``benchmarks/``.

Run:  python examples/optimizer_comparison.py
"""

from repro import build_database
from repro.bench import (
    applicability_matrix,
    build_workload,
    eagerness_score,
    format_matrix,
    format_outcomes,
    run_strategies,
)


def main() -> None:
    db = build_database(scale=100, seed=42)

    plans_by_strategy: dict[str, list] = {}
    for key in ("q1", "q2", "q3", "q4", "q5"):
        workload = build_workload(db, key)
        outcomes = run_strategies(db, workload.query, budget=workload.budget)
        print(format_outcomes(
            f"{workload.title} ({workload.figure})",
            outcomes,
            note=workload.diagnostic,
        ))
        print()
        for outcome in outcomes:
            if outcome.plan is not None:
                plans_by_strategy.setdefault(outcome.strategy, []).append(
                    outcome.plan
                )

    print(format_matrix(applicability_matrix(db)))
    print()

    print("Figure 10 — spectrum of pullup eagerness (measured)")
    print("===================================================")
    scores = []
    for strategy, plans in plans_by_strategy.items():
        values = [s for s in map(eagerness_score, plans) if s is not None]
        if values:
            scores.append((sum(values) / len(values), strategy))
    for score, strategy in sorted(scores):
        bar = "#" * round(score * 40)
        print(f"  {strategy:<12} {score:5.2f}  {bar}")
    print("  (0 = pure pushdown, 1 = everything at the top of the plan)")


if __name__ == "__main__":
    main()
