"""Tests for the span-based tracer (repro.obs.tracer)."""

import json

from repro.obs.tracer import NULL_SPAN, NULL_TRACER, NullSpan, Tracer


class TestNullTracer:
    def test_disabled(self):
        assert NULL_TRACER.enabled is False

    def test_span_is_shared_singleton(self):
        assert NULL_TRACER.span("anything", key="value") is NULL_SPAN

    def test_null_span_is_a_noop_context_manager(self):
        with NULL_TRACER.span("x") as span:
            span.event("e", detail=1)
            span.set(result=2)
        assert isinstance(span, NullSpan)

    def test_event_outside_span_is_noop(self):
        NULL_TRACER.event("orphan", x=1)

    def test_export_returns_zero_without_touching_fs(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        assert NULL_TRACER.export_jsonl(str(path)) == 0
        assert not path.exists()

    def test_to_records_empty(self):
        assert NULL_TRACER.to_records() == []


class TestTracer:
    def test_nested_spans_record_parents(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert outer.parent_id is None
        assert inner.parent_id == outer.span_id
        assert [s.name for s in tracer.spans] == ["outer", "inner"]

    def test_sibling_spans_share_parent(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("a") as a:
                pass
            with tracer.span("b") as b:
                pass
        assert a.parent_id == root.span_id
        assert b.parent_id == root.span_id
        assert [s.name for s in tracer.children_of(root)] == ["a", "b"]

    def test_current_tracks_innermost_open_span(self):
        tracer = Tracer()
        assert tracer.current is None
        with tracer.span("outer") as outer:
            assert tracer.current is outer
            with tracer.span("inner") as inner:
                assert tracer.current is inner
            assert tracer.current is outer
        assert tracer.current is None

    def test_tracer_event_attaches_to_innermost_span(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner") as inner:
                tracer.event("decision", verdict="pull")
        assert inner.events[0]["name"] == "decision"
        assert inner.events[0]["verdict"] == "pull"
        assert "at_ms" in inner.events[0]

    def test_event_with_no_open_span_is_dropped(self):
        tracer = Tracer()
        tracer.event("orphan")
        assert tracer.spans == []

    def test_set_merges_attributes(self):
        tracer = Tracer()
        with tracer.span("s", before=1) as span:
            span.set(after=2)
        assert span.attrs == {"before": 1, "after": 2}

    def test_find_by_name(self):
        tracer = Tracer()
        with tracer.span("phase"):
            pass
        with tracer.span("phase"):
            pass
        assert len(tracer.find("phase")) == 2
        assert tracer.find("missing") == []

    def test_out_of_order_exit_tolerated(self):
        tracer = Tracer()
        outer = tracer.span("outer")
        outer.__enter__()
        inner = tracer.span("inner")
        inner.__enter__()
        outer.__exit__(None, None, None)  # outer closed before inner
        inner.__exit__(None, None, None)
        assert tracer.current is None

    def test_to_records_schema(self):
        tracer = Tracer()
        with tracer.span("work", phase="test") as span:
            span.event("tick")
        (record,) = tracer.to_records()
        assert set(record) == {
            "span", "id", "parent", "start_ms", "duration_ms",
            "attrs", "events",
        }
        assert record["span"] == "work"
        assert record["parent"] is None
        assert record["start_ms"] >= 0.0
        assert record["duration_ms"] >= 0.0
        assert record["attrs"] == {"phase": "test"}
        assert len(record["events"]) == 1

    def test_export_jsonl_round_trips(self, tmp_path):
        tracer = Tracer()
        with tracer.span("outer", n=1):
            with tracer.span("inner"):
                tracer.event("e", value=3)
        path = tmp_path / "trace.jsonl"
        count = tracer.export_jsonl(str(path))
        assert count == 2
        lines = path.read_text(encoding="utf-8").splitlines()
        records = [json.loads(line) for line in lines]
        assert [r["span"] for r in records] == ["outer", "inner"]
        assert records[1]["parent"] == records[0]["id"]
        assert records[1]["events"][0]["value"] == 3


class TestCanonicalValue:
    def test_scalars_pass_through(self):
        from repro.obs.tracer import canonical_value

        for value in (None, True, 3, 2.5, "s"):
            assert canonical_value(value) is value

    def test_sets_become_sorted_lists(self):
        from repro.obs.tracer import canonical_value

        assert canonical_value({"t2", "t10", "t1"}) == ["t1", "t10", "t2"]
        assert canonical_value(frozenset({3, 1, 2})) == [1, 2, 3]

    def test_mixed_type_sets_sort_deterministically(self):
        from repro.obs.tracer import canonical_value

        # Heterogeneous members would make plain sorted() raise; the
        # canonical order is (type name, repr) and must not depend on
        # insertion or hash order.
        assert canonical_value({1, "a"}) == canonical_value({"a", 1})

    def test_tuples_and_nesting(self):
        from repro.obs.tracer import canonical_value

        assert canonical_value((1, {"b", "a"})) == [1, ["a", "b"]]
        assert canonical_value({1: {"y", "x"}}) == {"1": ["x", "y"]}

    def test_fallback_is_str(self):
        from repro.obs.tracer import canonical_value

        class Opaque:
            def __str__(self):
                return "opaque"

        assert canonical_value(Opaque()) == "opaque"

    def test_span_attrs_canonicalised_at_record_time(self):
        tracer = Tracer()
        with tracer.span("work", tables={"t2", "t1"}) as span:
            span.event("decide", order=("b", "a"))
            span.set(pulled=frozenset({"p"}))
        (record,) = tracer.to_records()
        assert record["attrs"]["tables"] == ["t1", "t2"]
        assert record["attrs"]["pulled"] == ["p"]
        assert record["events"][0]["order"] == ["b", "a"]
        # The export is therefore deterministic JSON, not repr()-of-set.
        json.dumps(record)
