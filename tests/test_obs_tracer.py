"""Tests for the span-based tracer (repro.obs.tracer)."""

import json

from repro.obs.tracer import NULL_SPAN, NULL_TRACER, NullSpan, Tracer


class TestNullTracer:
    def test_disabled(self):
        assert NULL_TRACER.enabled is False

    def test_span_is_shared_singleton(self):
        assert NULL_TRACER.span("anything", key="value") is NULL_SPAN

    def test_null_span_is_a_noop_context_manager(self):
        with NULL_TRACER.span("x") as span:
            span.event("e", detail=1)
            span.set(result=2)
        assert isinstance(span, NullSpan)

    def test_event_outside_span_is_noop(self):
        NULL_TRACER.event("orphan", x=1)

    def test_export_returns_zero_without_touching_fs(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        assert NULL_TRACER.export_jsonl(str(path)) == 0
        assert not path.exists()

    def test_to_records_empty(self):
        assert NULL_TRACER.to_records() == []


class TestTracer:
    def test_nested_spans_record_parents(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert outer.parent_id is None
        assert inner.parent_id == outer.span_id
        assert [s.name for s in tracer.spans] == ["outer", "inner"]

    def test_sibling_spans_share_parent(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("a") as a:
                pass
            with tracer.span("b") as b:
                pass
        assert a.parent_id == root.span_id
        assert b.parent_id == root.span_id
        assert [s.name for s in tracer.children_of(root)] == ["a", "b"]

    def test_current_tracks_innermost_open_span(self):
        tracer = Tracer()
        assert tracer.current is None
        with tracer.span("outer") as outer:
            assert tracer.current is outer
            with tracer.span("inner") as inner:
                assert tracer.current is inner
            assert tracer.current is outer
        assert tracer.current is None

    def test_tracer_event_attaches_to_innermost_span(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner") as inner:
                tracer.event("decision", verdict="pull")
        assert inner.events[0]["name"] == "decision"
        assert inner.events[0]["verdict"] == "pull"
        assert "at_ms" in inner.events[0]

    def test_event_with_no_open_span_is_dropped(self):
        tracer = Tracer()
        tracer.event("orphan")
        assert tracer.spans == []

    def test_set_merges_attributes(self):
        tracer = Tracer()
        with tracer.span("s", before=1) as span:
            span.set(after=2)
        assert span.attrs == {"before": 1, "after": 2}

    def test_find_by_name(self):
        tracer = Tracer()
        with tracer.span("phase"):
            pass
        with tracer.span("phase"):
            pass
        assert len(tracer.find("phase")) == 2
        assert tracer.find("missing") == []

    def test_out_of_order_exit_tolerated(self):
        tracer = Tracer()
        outer = tracer.span("outer")
        outer.__enter__()
        inner = tracer.span("inner")
        inner.__enter__()
        outer.__exit__(None, None, None)  # outer closed before inner
        inner.__exit__(None, None, None)
        assert tracer.current is None

    def test_to_records_schema(self):
        tracer = Tracer()
        with tracer.span("work", phase="test") as span:
            span.event("tick")
        (record,) = tracer.to_records()
        assert set(record) == {
            "span", "id", "parent", "start_ms", "duration_ms",
            "attrs", "events",
        }
        assert record["span"] == "work"
        assert record["parent"] is None
        assert record["start_ms"] >= 0.0
        assert record["duration_ms"] >= 0.0
        assert record["attrs"] == {"phase": "test"}
        assert len(record["events"]) == 1

    def test_export_jsonl_round_trips(self, tmp_path):
        tracer = Tracer()
        with tracer.span("outer", n=1):
            with tracer.span("inner"):
                tracer.event("e", value=3)
        path = tmp_path / "trace.jsonl"
        count = tracer.export_jsonl(str(path))
        assert count == 2
        lines = path.read_text(encoding="utf-8").splitlines()
        records = [json.loads(line) for line in lines]
        assert [r["span"] for r in records] == ["outer", "inner"]
        assert records[1]["parent"] == records[0]["id"]
        assert records[1]["events"][0]["value"] == 3
