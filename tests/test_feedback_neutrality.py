"""Feedback collection must never change a plan.

The tentpole guarantee of the statistics observatory: observing
execution is free of planning side effects. With collection enabled but
injection (``Catalog.apply_feedback``) never called, every baseline
workload must produce byte-identical plans under every strategy — same
canonical plan form, same fingerprint, same estimated cost. Only the
explicit injection path may move a plan, and when it does, the change
must flow through re-derived ranks, not through collection itself.
"""

import pytest

from repro import build_database
from repro.bench.harness import run_strategies
from repro.bench.workloads import build_workload
from repro.obs.artifacts import canonical_plan_form, plan_fingerprint

BASELINE_WORKLOADS = ("q1", "q2", "q3", "q4", "q5")

STRATEGIES = (
    "pushdown",
    "pullrank",
    "migration",
    "ldl",
    "pullup",
    "exhaustive",
)


def _plans(feedback: bool):
    """strategy/workload -> (canonical form, fingerprint, estimate)."""
    db = build_database(scale=3, seed=42)
    shapes = {}
    for key in BASELINE_WORKLOADS:
        workload = build_workload(db, key)
        outcomes = run_strategies(
            db,
            workload.query,
            strategies=STRATEGIES,
            feedback=feedback,
        )
        for outcome in outcomes:
            assert not outcome.error, (key, outcome.strategy, outcome.error)
            shapes[(key, outcome.strategy)] = (
                canonical_plan_form(outcome.plan),
                plan_fingerprint(outcome.plan),
                outcome.estimated_cost,
            )
    return shapes


@pytest.fixture(scope="module")
def without_feedback():
    return _plans(feedback=False)


@pytest.fixture(scope="module")
def with_feedback():
    return _plans(feedback=True)


def test_all_workloads_covered(without_feedback):
    assert len(without_feedback) == len(BASELINE_WORKLOADS) * len(
        STRATEGIES
    )


def test_plans_byte_identical_with_collection_on(
    without_feedback, with_feedback
):
    assert without_feedback.keys() == with_feedback.keys()
    for key in without_feedback:
        off = without_feedback[key]
        on = with_feedback[key]
        assert off == on, f"feedback collection changed the plan for {key}"


def test_quality_sections_present_only_with_feedback():
    db = build_database(scale=3, seed=42)
    query = build_workload(db, "q4").query
    plain = run_strategies(db, query, strategies=("pushdown",))
    observed = run_strategies(
        db, query, strategies=("pushdown",), feedback=True
    )
    assert "quality" not in plain[0].extras
    quality = observed[0].extras["quality"]
    assert quality["predicates_observed"] >= 1


def test_injection_is_the_only_mover():
    """apply_feedback + recompile may change estimates; collection alone
    must not (the counterpart proving the flag is load-bearing)."""
    db = build_database(scale=20, seed=42)
    query = build_workload(db, "q4").query
    before = run_strategies(
        db, query, strategies=("pushdown",), feedback=True
    )[0]

    from repro import Executor, optimize
    from repro.obs.feedback import FeedbackCollector, StatsFeedbackStore

    assert before.extras["quality"]["predicates_observed"] >= 1

    store = StatsFeedbackStore("q4")
    optimized = optimize(db, query, strategy="pushdown")
    collector = FeedbackCollector()
    Executor(db, collector=collector).execute(optimized.plan)
    store.record_epoch(
        collector.observations(), strategy="pushdown", scale=20, seed=42
    )

    changed = db.catalog.apply_feedback(store)
    assert changed >= 1
    after = run_strategies(
        db,
        build_workload(db, "q4").query,
        strategies=("pushdown",),
    )[0]
    # The declared selectivity moved, so the estimate must differ (the
    # observed pass rate of costly100sel10 is not exactly 0.1 at this
    # scale/seed).
    assert after.estimated_cost != before.estimated_cost
