"""Unit tests: the [KZ88] LDL-over-IK-KBZ strategy."""

import pytest

from repro.cost.model import CostModel
from repro.errors import OptimizerError
from repro.exec import Executor
from repro.optimizer import Query, optimize
from repro.optimizer.ldl import inner_pullup_violations
from repro.optimizer.ldl_ikkbz import ldl_ikkbz_plan
from repro.plan.nodes import validate_placement
from tests.conftest import costly_filter, equijoin


def chain_query(db):
    return Query(
        tables=["t2", "t4", "t6"],
        predicates=[
            equijoin(db, ("t2", "ua1"), ("t4", "a1")),
            equijoin(db, ("t4", "ua1"), ("t6", "a1")),
            costly_filter(db, "costly100", ("t2", "ua1")),
            costly_filter(db, "costly10", ("t6", "ua1")),
        ],
        name="chain",
    )


class TestScope:
    def test_plans_tree_queries(self, db):
        plan = optimize(db, chain_query(db), strategy="ldl-ikkbz").plan
        assert plan.root.tables() == frozenset({"t2", "t4", "t6"})
        validate_placement(plan.root, db.catalog)

    def test_all_predicates_placed(self, db):
        query = chain_query(db)
        plan = optimize(db, query, strategy="ldl-ikkbz").plan
        from repro.plan.nodes import Join

        placed = [p for node in plan.root.walk() for p in node.filters]
        primaries = [
            n.primary for n in plan.root.walk() if isinstance(n, Join)
        ]
        assert set(placed) | set(primaries) >= set(query.predicates)

    def test_rejects_expensive_join_predicates(self, db):
        from repro.expr.expressions import Column, FuncCall
        from repro.expr.predicates import analyze_conjunct

        query = Query(
            tables=["t1", "t2"],
            predicates=[
                analyze_conjunct(
                    db.catalog,
                    FuncCall(
                        "expjoin10",
                        (Column("t1", "u20"), Column("t2", "u20")),
                    ),
                )
            ],
        )
        with pytest.raises(OptimizerError):
            ldl_ikkbz_plan(
                query, db.catalog, CostModel(db.catalog, db.params)
            )

    def test_rejects_cyclic_graph(self, db):
        query = Query(
            tables=["t1", "t2", "t3"],
            predicates=[
                equijoin(db, ("t1", "ua1"), ("t2", "a1")),
                equijoin(db, ("t2", "ua1"), ("t3", "a1")),
                equijoin(db, ("t1", "ua20"), ("t3", "a20")),
            ],
        )
        with pytest.raises(OptimizerError):
            ldl_ikkbz_plan(
                query, db.catalog, CostModel(db.catalog, db.params)
            )

    def test_rejects_disconnected_graph(self, db):
        query = Query(
            tables=["t1", "t2"],
            predicates=[costly_filter(db, "costly100", ("t1", "u20"))],
        )
        with pytest.raises(OptimizerError):
            ldl_ikkbz_plan(
                query, db.catalog, CostModel(db.catalog, db.params)
            )


class TestBehaviour:
    def test_structurally_ldl(self, db):
        """Like DP-LDL, no expensive predicate may sit on an inner scan."""
        plan = optimize(db, chain_query(db), strategy="ldl-ikkbz").plan
        assert inner_pullup_violations(plan.root) == []

    def test_same_rows_as_migration(self, tiny_db):
        query = Query(
            tables=["t2", "t3"],
            predicates=[
                equijoin(tiny_db, ("t2", "ua1"), ("t3", "a1")),
                costly_filter(tiny_db, "costly100", ("t3", "ua1")),
            ],
        )
        reference = None
        for strategy in ("migration", "ldl-ikkbz"):
            plan = optimize(tiny_db, query, strategy=strategy).plan
            rows = sorted(
                tuple(sorted(row))
                for row in Executor(tiny_db).execute(plan).rows
            )
            if reference is None:
                reference = rows
            else:
                assert rows == reference

    def test_never_beats_exhaustive(self, db):
        query = chain_query(db)
        heuristic = optimize(db, query, strategy="ldl-ikkbz")
        exhaustive = optimize(db, query, strategy="exhaustive")
        assert exhaustive.estimated_cost <= heuristic.estimated_cost + 1e-6

    def test_polynomial_planner_is_fast(self, db):
        from repro.bench.workloads import build_workload

        workload = build_workload(db, "fiveway")
        optimized = optimize(db, workload.query, strategy="ldl-ikkbz")
        # Polynomial ordering: far below the DP planners.
        assert optimized.planning_seconds < 1.0
        assert optimized.plan.root.tables() == frozenset(
            {"t2", "t4", "t6", "t8", "t10"}
        )
