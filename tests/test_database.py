"""Unit tests: the Database assembly and workload SQL construction."""

import pytest

from repro.bench.workloads import WORKLOADS, build_all, build_workload
from repro.database import Database


class TestDatabase:
    def test_empty_database(self):
        db = Database.empty()
        assert db.catalog.table_names() == []
        assert db.meter.charged == 0.0
        assert db.pool.capacity_pages == 64

    def test_size_of_empty_is_zero(self):
        assert Database.empty().size_bytes() == 0

    def test_size_counts_heap_and_indexes(self, db):
        with_indexes = db.catalog.total_bytes(include_indexes=True)
        without = db.catalog.total_bytes(include_indexes=False)
        assert with_indexes > without > 0
        assert db.size_megabytes() == pytest.approx(
            with_indexes / (1024 * 1024)
        )

    def test_meter_and_pool_shared(self, fresh_db):
        from repro.storage.meter import IOKind

        fresh_db.pool.fetch(0, 1, IOKind.RANDOM)
        assert fresh_db.meter.random_ios == 1
        fresh_db.meter.reset()
        fresh_db.pool.clear()


class TestWorkloads:
    def test_all_workloads_build(self, db):
        workloads = build_all(db)
        assert set(workloads) == set(WORKLOADS)
        for workload in workloads.values():
            assert workload.query.tables
            assert workload.sql
            assert workload.diagnostic

    def test_workload_sql_parses_to_its_query(self, db):
        for key in WORKLOADS:
            workload = build_workload(db, key)
            assert set(workload.query.tables) <= set(db.catalog.table_names())

    def test_only_q5_has_budget(self, db):
        workloads = build_all(db)
        assert workloads["q5"].budget is not None
        for key, workload in workloads.items():
            if key != "q5":
                assert workload.budget is None

    def test_ensure_functions_idempotent(self, db):
        from repro.bench.workloads import ensure_workload_functions

        ensure_workload_functions(db)
        ensure_workload_functions(db)  # no DuplicateNameError

    def test_q4_threshold_scales_with_stats(self, db):
        workload = build_workload(db, "q4")
        stats = db.catalog.table("t10").stats.attribute("a20")
        threshold = stats.low + max(1, round(0.1 * stats.width))
        assert f"t10.a20 < {threshold}" in workload.sql
