"""Unit tests: plan rendering (the Figure 1/2/6/7 style trees)."""

from repro.cost.model import CostModel
from repro.plan import Plan, explain, plan_tree
from repro.plan.nodes import Join, JoinMethod, Scan
from tests.conftest import costly_filter, equijoin


def sample_plan(db):
    predicate = costly_filter(db, "costly100", ("t10", "u20"))
    join = Join(
        filters=[predicate],
        outer=Scan(filters=[], table="t3"),
        inner=Scan(filters=[], table="t10"),
        method=JoinMethod.MERGE,
        primary=equijoin(db, ("t3", "a1"), ("t10", "ua1")),
    )
    return Plan(join)


class TestPlanTree:
    def test_contains_nodes_and_filters(self, db):
        text = plan_tree(sample_plan(db))
        assert "merge-join" in text
        assert "SeqScan(t3)" in text and "SeqScan(t10)" in text
        assert "costly100(t10.u20)" in text

    def test_tree_structure_characters(self, db):
        text = plan_tree(sample_plan(db))
        assert "├─" in text and "└─" in text

    def test_outer_rendered_before_inner(self, db):
        text = plan_tree(sample_plan(db))
        assert text.index("SeqScan(t3)") < text.index("SeqScan(t10)")

    def test_accepts_bare_nodes(self, db):
        text = plan_tree(Scan(filters=[], table="t3"))
        assert text == "SeqScan(t3)"

    def test_filters_listed_execution_bottom_up(self, db):
        cheap = costly_filter(db, "costly1", ("t3", "u20"))
        pricey = costly_filter(db, "costly100", ("t3", "u100"))
        scan = Scan(filters=[cheap, pricey], table="t3")
        text = plan_tree(scan)
        # Display shows the pipeline top-down: last-executed filter first.
        assert text.index("costly100") < text.index("costly1(")


class TestExplain:
    def test_explain_with_model_appends_estimates(self, db):
        model = CostModel(db.catalog, db.params)
        text = explain(sample_plan(db), model)
        assert "estimated rows=" in text and "cost=" in text

    def test_explain_with_stored_estimates(self, db):
        plan = sample_plan(db)
        plan.estimated_cost = 123.0
        plan.estimated_rows = 45.0
        text = explain(plan)
        assert "cost=123.0" in text

    def test_explain_plain(self, db):
        text = explain(sample_plan(db))
        assert "merge-join" in text
