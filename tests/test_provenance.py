"""Tests for the placement provenance ledger (repro.obs.provenance)."""

import json

import pytest

from repro.bench.workloads import build_workload
from repro.cost.model import CostModel
from repro.obs import provenance as provenance_module
from repro.obs.provenance import (
    EVENT_KINDS,
    NULL_LEDGER,
    LedgerEvent,
    NullLedger,
    ProvenanceLedger,
    counterfactual_report,
    expensive_targets,
    plan_join_signatures,
    skeleton_signature,
    why_report,
)
from repro.optimizer import optimize
from repro.plan.display import plan_tree
from repro.plan.streams import spine_of


class TestNullLedger:
    def test_disabled(self):
        assert NULL_LEDGER.enabled is False

    def test_record_is_noop(self):
        NULL_LEDGER.record("scan.rank_order", table="t1")
        assert NULL_LEDGER.events == ()

    def test_unknown_kind_not_validated_when_off(self):
        # The null ledger never inspects its arguments.
        NULL_LEDGER.record("not.a.kind", junk=object())

    def test_empty_views(self):
        assert NULL_LEDGER.events_of("scan.rank_order") == []
        assert NULL_LEDGER.event_counts() == {}
        assert NULL_LEDGER.summary() == {"event_counts": {}, "events": []}

    def test_is_base_of_real_ledger(self):
        assert isinstance(ProvenanceLedger(), NullLedger)


class TestProvenanceLedger:
    def test_records_in_sequence(self):
        ledger = ProvenanceLedger()
        ledger.record("scan.rank_order", table="t1")
        ledger.record("pullup.hoist", predicate="p")
        assert [e.seq for e in ledger.events] == [0, 1]
        assert [e.kind for e in ledger.events] == [
            "scan.rank_order", "pullup.hoist",
        ]

    def test_rejects_unknown_kind(self):
        ledger = ProvenanceLedger()
        with pytest.raises(ValueError, match="unknown ledger event kind"):
            ledger.record("made.up", x=1)

    def test_every_kind_documented(self):
        for kind, description in EVENT_KINDS.items():
            assert "." in kind
            assert description

    def test_data_canonicalised_at_record_time(self):
        ledger = ProvenanceLedger()
        ledger.record(
            "scan.rank_order",
            tables={"t2", "t1"},
            order=("a", "b"),
            nested={1: {"z", "a"}},
        )
        data = ledger.events[0].data
        assert data["tables"] == ["t1", "t2"]
        assert data["order"] == ["a", "b"]
        assert data["nested"] == {"1": ["a", "z"]}
        # Canonical data is JSON-serialisable by construction.
        json.dumps(ledger.summary())

    def test_events_of_and_counts(self):
        ledger = ProvenanceLedger()
        ledger.record("migration.pass", candidate=0)
        ledger.record("migration.move", predicate="p")
        ledger.record("migration.pass", candidate=0)
        assert len(ledger.events_of("migration.pass")) == 2
        assert ledger.event_counts() == {
            "migration.pass": 2, "migration.move": 1,
        }

    def test_summary_shape(self):
        ledger = ProvenanceLedger()
        ledger.record("ldl.virtual_join", predicate="p", tables=["t1"])
        summary = ledger.summary()
        assert summary["event_counts"] == {"ldl.virtual_join": 1}
        assert summary["events"] == [
            {"seq": 0, "kind": "ldl.virtual_join",
             "predicate": "p", "tables": ["t1"]},
        ]


class TestSkeletonSignature:
    def test_identifies_joins_independent_of_filters(self, db):
        workload = build_workload(db, "q4")
        optimized = optimize(db, workload.query, strategy="migration")
        root = optimized.plan.root
        signatures = plan_join_signatures(root)
        assert signatures
        for signature, join in signatures.items():
            before = skeleton_signature(join)
            saved = list(join.filters)
            join.filters.clear()
            try:
                assert skeleton_signature(join) == before == signature
            finally:
                join.filters.extend(saved)

    def test_mentions_method_and_primary(self, db):
        workload = build_workload(db, "q1")
        optimized = optimize(db, workload.query, strategy="pushdown")
        for signature in plan_join_signatures(optimized.plan.root):
            assert "[" in signature and "(" in signature


class TestStrategiesRecord:
    """Every strategy emits its own event vocabulary on q4."""

    @pytest.mark.parametrize(
        "strategy, expected_kinds",
        [
            ("pushdown", {"scan.rank_order"}),
            ("pullup", {"pullup.hoist"}),
            ("pullrank", {"pullrank.compare"}),
            ("migration", {"migration.pass", "migration.select_best",
                           "systemr.unpruneable"}),
            ("exhaustive", {"exhaustive.new_best", "exhaustive.combos"}),
            ("ldl", {"ldl.virtual_join"}),
        ],
    )
    def test_event_kinds(self, db, strategy, expected_kinds):
        workload = build_workload(db, "q4")
        ledger = ProvenanceLedger()
        optimize(db, workload.query, strategy=strategy, ledger=ledger)
        assert expected_kinds <= set(ledger.event_counts())

    def test_ledger_attached_to_optimized_plan(self, db):
        workload = build_workload(db, "q4")
        ledger = ProvenanceLedger()
        optimized = optimize(
            db, workload.query, strategy="migration", ledger=ledger
        )
        assert optimized.provenance is ledger

    def test_no_ledger_means_no_provenance(self, db):
        workload = build_workload(db, "q4")
        optimized = optimize(db, workload.query, strategy="migration")
        assert optimized.provenance is None


class TestRecordingNeverChangesPlans:
    @pytest.mark.parametrize(
        "strategy",
        ["pushdown", "pullup", "pullrank", "migration", "exhaustive",
         "ldl"],
    )
    def test_plan_identical_with_and_without_ledger(self, db, strategy):
        workload = build_workload(db, "q4")
        plain = optimize(db, workload.query, strategy=strategy)
        recorded = optimize(
            db, workload.query, strategy=strategy,
            ledger=ProvenanceLedger(),
        )
        assert plan_tree(recorded.plan) == plan_tree(plain.plan)
        assert recorded.estimated_cost == plain.estimated_cost


class TestZeroOverheadWhenOff:
    def test_default_path_never_constructs_events(self, db, monkeypatch):
        def explode(*args, **kwargs):
            raise AssertionError(
                "LedgerEvent constructed on the default (no-ledger) path"
            )

        monkeypatch.setattr(provenance_module, "LedgerEvent", explode)
        workload = build_workload(db, "q4")
        for strategy in ("pushdown", "migration", "exhaustive", "ldl"):
            optimize(db, workload.query, strategy=strategy)


class TestCounterfactual:
    def _expensive_filter(self, root):
        for predicate, role in expensive_targets(root):
            if role == "filter":
                return predicate
        pytest.fail("no movable expensive predicate in plan")

    def test_alt_cost_matches_independent_estimate(self, db):
        workload = build_workload(db, "q4")
        optimized = optimize(db, workload.query, strategy="migration")
        model = CostModel(db.catalog, db.params)
        predicate = self._expensive_filter(optimized.plan.root)
        report = counterfactual_report(optimized.plan, predicate, model)
        assert report.note == ""
        assert report.moves, "expected at least one legal one-slot move"
        base = model.estimate_plan(optimized.plan.root.clone()).cost
        assert report.base_cost == pytest.approx(base, rel=1e-9)
        for move in report.moves:
            clone = optimized.plan.root.clone()
            spine_of(clone).apply_placement({predicate: move.to_slot})
            independent = model.estimate_plan(clone).cost
            assert move.alt_cost == pytest.approx(independent, rel=1e-9)
            assert move.delta == pytest.approx(
                independent - base, rel=1e-9
            )

    def test_input_plan_left_untouched(self, db):
        workload = build_workload(db, "q4")
        optimized = optimize(db, workload.query, strategy="migration")
        model = CostModel(db.catalog, db.params)
        before = plan_tree(optimized.plan)
        predicate = self._expensive_filter(optimized.plan.root)
        counterfactual_report(optimized.plan, predicate, model)
        assert plan_tree(optimized.plan) == before

    def test_join_primary_gets_note(self, db):
        workload = build_workload(db, "q4")
        optimized = optimize(db, workload.query, strategy="migration")
        model = CostModel(db.catalog, db.params)
        primary = optimized.plan.root.primary
        report = counterfactual_report(optimized.plan, primary, model)
        assert "join primary" in report.note


class TestWhyReport:
    def test_names_predicate_with_numbers(self, db):
        workload = build_workload(db, "q4")
        ledger = ProvenanceLedger()
        optimized = optimize(
            db, workload.query, strategy="migration", ledger=ledger
        )
        model = CostModel(db.catalog, db.params)
        report = why_report(optimized, model)
        assert "costly100sel10(t3.u20)" in report
        assert "rank comparison" in report
        assert "selectivity" in report
        assert "counterfactual" in report
        assert "re-costs to" in report

    def test_predicate_filter_narrows_subjects(self, db):
        workload = build_workload(db, "q4")
        ledger = ProvenanceLedger()
        optimized = optimize(
            db, workload.query, strategy="migration", ledger=ledger
        )
        model = CostModel(db.catalog, db.params)
        report = why_report(optimized, model, predicate="nonexistent")
        assert "no expensive predicate matching" in report

    def test_without_ledger_still_renders(self, db):
        workload = build_workload(db, "q4")
        optimized = optimize(db, workload.query, strategy="pushdown")
        model = CostModel(db.catalog, db.params)
        report = why_report(optimized, model)
        assert "no provenance ledger was recorded" in report
