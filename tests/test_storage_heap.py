"""Unit tests: heap files."""

from repro.storage.buffer import BufferPool
from repro.storage.heap import HeapFile
from repro.storage.meter import CostMeter


def make_heap(rows=200, tuple_width=100, page_size=1000, pool_pages=100):
    meter = CostMeter()
    pool = BufferPool(pool_pages, meter)
    heap = HeapFile("t", tuple_width, pool, page_size=page_size)
    rids = [heap.insert((i, i * 2)) for i in range(rows)]
    return heap, rids, meter, pool


class TestHeapFile:
    def test_round_trip(self):
        heap, _, _, _ = make_heap(rows=50)
        assert heap.all_rows() == [(i, i * 2) for i in range(50)]

    def test_page_count(self):
        heap, _, _, _ = make_heap(rows=25, page_size=1000, tuple_width=100)
        assert heap.pages == 3  # 10 tuples per page

    def test_cardinality(self):
        heap, _, _, _ = make_heap(rows=25)
        assert heap.cardinality == 25

    def test_population_charges_nothing(self):
        _, _, meter, _ = make_heap()
        assert meter.charged == 0.0

    def test_scan_charges_sequential_per_page(self):
        heap, _, meter, _ = make_heap(rows=25, page_size=1000)
        rows = list(heap.scan())
        assert len(rows) == 25
        assert meter.seq_ios == 3
        assert meter.random_ios == 0

    def test_scan_order_matches_insert_order(self):
        heap, _, _, _ = make_heap(rows=30)
        assert list(heap.scan()) == heap.all_rows()

    def test_fetch_rid_is_random_io(self):
        heap, rids, meter, _ = make_heap(rows=25, page_size=1000)
        assert heap.fetch_rid(rids[17]) == (17, 34)
        assert meter.random_ios == 1

    def test_repeated_rid_fetch_hits_pool(self):
        heap, rids, meter, _ = make_heap(rows=25, page_size=1000)
        heap.fetch_rid(rids[3])
        heap.fetch_rid(rids[4])  # same page (10 per page)
        assert meter.random_ios == 1

    def test_rescan_within_pool_is_free(self):
        heap, _, meter, _ = make_heap(rows=25, page_size=1000, pool_pages=10)
        list(heap.scan())
        first = meter.seq_ios
        list(heap.scan())
        assert meter.seq_ios == first  # all pages cached

    def test_rescan_beyond_pool_pays_again(self):
        heap, _, meter, _ = make_heap(rows=50, page_size=1000, pool_pages=2)
        list(heap.scan())
        list(heap.scan())
        assert meter.seq_ios == 10  # 5 pages, LRU thrashes on each pass

    def test_bulk_load(self):
        meter = CostMeter()
        pool = BufferPool(10, meter)
        heap = HeapFile("t", 100, pool)
        heap.bulk_load(iter([(i,) for i in range(5)]))
        assert heap.cardinality == 5
