"""StreamingHistogram: log-bucket placement and quantile edge semantics.

The edges mirror :func:`repro.obs.quality.qerror`'s pinned treatment of
zero/nan/inf — every case here is a contract the metrics export and the
``repro top`` tables rely on.
"""

import math

import pytest

from repro.obs.histograms import StreamingHistogram, _bucket_label


def _filled(values):
    histogram = StreamingHistogram()
    for value in values:
        histogram.observe(value)
    return histogram


# -- empty and single-sample edges -------------------------------------------


def test_empty_histogram_all_nan():
    histogram = StreamingHistogram()
    assert histogram.count == 0
    assert math.isnan(histogram.mean)
    for fraction in (0.0, 0.5, 0.99, 1.0):
        assert math.isnan(histogram.quantile(fraction))
    document = histogram.as_dict()
    assert document["count"] == 0
    assert document["p50"] == "nan"
    assert document["min"] == "nan"
    assert document["buckets"] == {}


def test_single_sample_quantiles_exact():
    histogram = _filled([3.7])
    for fraction in (0.01, 0.5, 0.9, 0.99, 1.0):
        assert histogram.quantile(fraction) == 3.7
    assert histogram.mean == 3.7
    assert histogram.as_dict()["p99"] == 3.7


def test_quantile_fraction_domain_enforced():
    histogram = _filled([1.0])
    with pytest.raises(ValueError):
        histogram.quantile(-0.1)
    with pytest.raises(ValueError):
        histogram.quantile(1.1)


# -- non-finite and degenerate observations ----------------------------------


def test_nan_and_negative_dropped_not_bucketed():
    histogram = _filled([math.nan, -1.0, 2.0])
    assert histogram.dropped == 2
    assert histogram.count == 1
    assert histogram.quantile(0.5) == 2.0


def test_zero_gets_its_own_bucket():
    histogram = _filled([0.0, 0.0, 0.0, 8.0])
    assert histogram.zeros == 3
    # Ranks 1-3 of 4 are zeros; p50 and p must answer 0 exactly.
    assert histogram.quantile(0.5) == 0.0
    assert histogram.quantile(0.75) == 0.0
    assert histogram.quantile(1.0) == 8.0
    assert histogram.as_dict()["buckets"]["0"] == 3


def test_infinite_surfaces_only_at_its_rank():
    histogram = _filled([1.0] * 9 + [math.inf])
    assert histogram.infinite == 1
    assert histogram.quantile(0.5) == 1.0
    assert histogram.quantile(0.9) == 1.0
    assert math.isinf(histogram.quantile(1.0))


def test_all_zeros_cumulative_bucket():
    histogram = _filled([0.0, 0.0])
    assert histogram.cumulative_buckets() == [(1.0, 2)]
    assert histogram.quantile(1.0) == 0.0


# -- bucketing and quantile estimation ---------------------------------------


def test_bucket_placement_powers_of_two():
    histogram = _filled([1.0, 1.5, 2.0, 4.0, 1000.0])
    assert histogram.counts == {0: 2, 1: 1, 2: 1, 9: 1}
    labels = list(histogram.as_dict()["buckets"])
    assert labels == ["[1,2)", "[2,4)", "[4,8)", "[512,1024)"]


def test_bucket_label_negative_powers():
    assert _bucket_label(-2) == "[0.25,0.5)"


def test_quantiles_monotone_in_fraction():
    histogram = _filled([0.0, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 100.0])
    previous = -math.inf
    for tenth in range(0, 11):
        value = histogram.quantile(tenth / 10)
        assert value >= previous
        previous = value


def test_quantile_within_sqrt2_of_true_value():
    values = [float(v) for v in range(1, 101)]
    histogram = _filled(values)
    estimate = histogram.quantile(0.5)
    assert 50.0 / math.sqrt(2.0) <= estimate <= 50.0 * math.sqrt(2.0)


def test_quantile_clamped_into_observed_range():
    # Both land in [4, 8); the geometric midpoint 5.66 would undershoot
    # max and overshoot min without clamping.
    histogram = _filled([7.9, 7.95])
    assert histogram.quantile(0.5) <= 7.95
    assert histogram.quantile(0.5) >= 7.9


# -- merge and serialisation -------------------------------------------------


def test_merge_equals_union():
    left = _filled([0.0, 1.0, math.inf])
    right = _filled([2.0, math.nan, 64.0])
    union = _filled([0.0, 1.0, math.inf, 2.0, math.nan, 64.0])
    left.merge(right)
    assert left.as_dict() == union.as_dict()


def test_cumulative_buckets_prometheus_shape():
    histogram = _filled([0.0, 1.0, 1.5, 4.0])
    pairs = histogram.cumulative_buckets()
    assert pairs == [(2.0, 3), (8.0, 4)]
    # Cumulative counts never decrease and end at finite_count.
    assert pairs[-1][1] == histogram.finite_count


def test_as_dict_deterministic_and_json_safe():
    import json

    histogram = _filled([0.0, 3.0, math.inf, math.nan])
    document = histogram.as_dict()
    assert document["count"] == 3
    assert document["dropped"] == 1
    assert json.dumps(document, sort_keys=True)  # no unserialisable values
