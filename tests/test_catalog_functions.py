"""Unit tests: UDF registry, synthetic booleans, invocation accounting."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.catalog.functions import (
    FunctionRegistry,
    synthetic_boolean,
)
from repro.errors import DuplicateNameError, UnknownFunctionError


class TestSyntheticBoolean:
    def test_deterministic(self):
        fn = synthetic_boolean(0.5, seed=3)
        assert [fn(i) for i in range(50)] == [fn(i) for i in range(50)]

    def test_extremes(self):
        always = synthetic_boolean(1.0)
        never = synthetic_boolean(0.0)
        assert all(always(i) for i in range(100))
        assert not any(never(i) for i in range(100))

    def test_out_of_range_selectivity_rejected(self):
        with pytest.raises(ValueError):
            synthetic_boolean(1.5)

    def test_seed_changes_outcomes(self):
        a = synthetic_boolean(0.5, seed=1)
        b = synthetic_boolean(0.5, seed=2)
        assert [a(i) for i in range(200)] != [b(i) for i in range(200)]

    @given(st.floats(0.05, 0.95), st.integers(0, 10))
    @settings(max_examples=20)
    def test_measured_selectivity_converges(self, selectivity, seed):
        fn = synthetic_boolean(selectivity, seed=seed)
        passes = sum(fn(i) for i in range(4000))
        assert abs(passes / 4000 - selectivity) < 0.05

    def test_multi_argument(self):
        fn = synthetic_boolean(0.5, seed=9)
        assert isinstance(fn(1, "x", None), bool)


class TestFunctionRegistry:
    def test_register_and_call_counts(self):
        registry = FunctionRegistry()
        f = registry.register("f", cost_per_call=10.0, selectivity=0.4)
        f(1)
        f(2)
        assert f.calls == 2
        assert f.charged == 20.0

    def test_costly_shorthand(self):
        registry = FunctionRegistry()
        registry.register_costly(100)
        f = registry.get("costly100")
        assert f.cost_per_call == 100.0

    def test_duplicate_rejected(self):
        registry = FunctionRegistry()
        registry.register("f", cost_per_call=1.0)
        with pytest.raises(DuplicateNameError):
            registry.register("f", cost_per_call=1.0)

    def test_unknown_raises(self):
        with pytest.raises(UnknownFunctionError):
            FunctionRegistry().get("nope")

    def test_contains_and_names(self):
        registry = FunctionRegistry()
        registry.register("b", cost_per_call=1.0)
        registry.register("a", cost_per_call=1.0)
        assert "a" in registry and "nope" not in registry
        assert registry.names() == ["a", "b"]

    def test_reset_counters(self):
        registry = FunctionRegistry()
        f = registry.register("f", cost_per_call=5.0)
        f(1)
        registry.reset_counters()
        assert f.calls == 0
        assert registry.total_charged() == 0.0

    def test_totals(self):
        registry = FunctionRegistry()
        f = registry.register("f", cost_per_call=5.0)
        g = registry.register("g", cost_per_call=2.0)
        f(1), g(1), g(2)
        assert registry.total_calls() == 3
        assert registry.total_charged() == 9.0

    def test_custom_python_function(self):
        registry = FunctionRegistry()
        registry.register("double", lambda x: 2 * x, cost_per_call=1.0)
        assert registry.get("double")(21) == 42
