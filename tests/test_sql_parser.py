"""Unit tests: the SQL parser."""

import pytest

from repro.errors import SQLParseError
from repro.sql.ast import (
    SqlBinary,
    SqlColumnRef,
    SqlFuncCall,
    SqlIn,
    SqlLiteral,
    SqlLogical,
    SqlNot,
)
from repro.sql.parser import parse


class TestSelectClause:
    def test_star(self):
        stmt = parse("SELECT * FROM t1")
        assert stmt.select is None
        assert stmt.tables == ("t1",)

    def test_column_list(self):
        stmt = parse("SELECT a, t1.b FROM t1")
        assert stmt.select == (
            SqlColumnRef(None, "a"),
            SqlColumnRef("t1", "b"),
        )

    def test_multiple_tables(self):
        stmt = parse("SELECT * FROM t1, t2, t3")
        assert stmt.tables == ("t1", "t2", "t3")

    def test_no_where(self):
        assert parse("SELECT * FROM t1").where is None

    def test_trailing_semicolon(self):
        assert parse("SELECT * FROM t1;").tables == ("t1",)

    def test_garbage_after_statement_rejected(self):
        with pytest.raises(SQLParseError):
            parse("SELECT * FROM t1 garbage")


class TestWhereClause:
    def test_comparison(self):
        stmt = parse("SELECT * FROM t1 WHERE a = 3")
        assert stmt.where == SqlBinary(
            "=", SqlColumnRef(None, "a"), SqlLiteral(3)
        )

    def test_not_equal_normalised(self):
        stmt = parse("SELECT * FROM t1 WHERE a != 3")
        assert stmt.where.op == "<>"

    def test_and_or_precedence(self):
        stmt = parse("SELECT * FROM t1 WHERE a = 1 OR b = 2 AND c = 3")
        assert isinstance(stmt.where, SqlLogical) and stmt.where.op == "OR"
        right = stmt.where.operands[1]
        assert isinstance(right, SqlLogical) and right.op == "AND"

    def test_parentheses_override(self):
        stmt = parse("SELECT * FROM t1 WHERE (a = 1 OR b = 2) AND c = 3")
        assert stmt.where.op == "AND"
        assert stmt.where.operands[0].op == "OR"

    def test_not(self):
        stmt = parse("SELECT * FROM t1 WHERE NOT a = 1")
        assert isinstance(stmt.where, SqlNot)

    def test_function_call(self):
        stmt = parse("SELECT * FROM t1 WHERE costly100(t1.u20)")
        assert stmt.where == SqlFuncCall(
            "costly100", (SqlColumnRef("t1", "u20"),)
        )

    def test_function_multiple_args(self):
        stmt = parse("SELECT * FROM t1 WHERE f(a, b, 3)")
        assert len(stmt.where.args) == 3

    def test_function_no_args(self):
        stmt = parse("SELECT * FROM t1 WHERE f()")
        assert stmt.where.args == ()

    def test_arithmetic_precedence(self):
        stmt = parse("SELECT * FROM t1 WHERE a + b * 2 = 7")
        plus = stmt.where.left
        assert plus.op == "+"
        assert plus.right.op == "*"

    def test_function_compared_to_string(self):
        stmt = parse("SELECT * FROM emp WHERE beard_color(picture) = 'red'")
        assert stmt.where.op == "="
        assert stmt.where.right == SqlLiteral("red")

    def test_literals(self):
        stmt = parse("SELECT * FROM t1 WHERE a = TRUE AND b = NULL")
        literals = [o.right.value for o in stmt.where.operands]
        assert literals == [True, None]

    def test_float_literal(self):
        stmt = parse("SELECT * FROM t1 WHERE a < 2.5")
        assert stmt.where.right == SqlLiteral(2.5)


class TestSubquery:
    def test_in_subquery(self):
        stmt = parse(
            "SELECT * FROM s WHERE s.m IN (SELECT name FROM p WHERE p.d = s.d)"
        )
        assert isinstance(stmt.where, SqlIn)
        assert stmt.where.subquery.tables == ("p",)
        assert stmt.where.subquery.select == (SqlColumnRef(None, "name"),)

    def test_in_inside_conjunction(self):
        stmt = parse(
            "SELECT * FROM s, t WHERE s.a = t.a AND s.m IN (SELECT x FROM p)"
        )
        assert stmt.where.op == "AND"
        assert isinstance(stmt.where.operands[1], SqlIn)

    def test_missing_paren_rejected(self):
        with pytest.raises(SQLParseError):
            parse("SELECT * FROM s WHERE s.m IN SELECT x FROM p")


class TestErrors:
    def test_missing_from(self):
        with pytest.raises(SQLParseError):
            parse("SELECT *")

    def test_dangling_comparison(self):
        with pytest.raises(SQLParseError):
            parse("SELECT * FROM t WHERE a =")

    def test_error_carries_position(self):
        with pytest.raises(SQLParseError) as info:
            parse("SELECT * FROM t WHERE a = =")
        assert info.value.position > 0

    def test_empty_input(self):
        with pytest.raises(SQLParseError):
            parse("")
