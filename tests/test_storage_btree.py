"""Unit and property tests: the page-based B-tree."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.storage.btree import BTree
from repro.storage.buffer import BufferPool
from repro.storage.meter import CostMeter


def make_tree(fanout=4, pool_pages=10_000):
    meter = CostMeter()
    pool = BufferPool(pool_pages, meter)
    return BTree("idx", pool, fanout=fanout), meter


class TestBulkLoad:
    def test_search_unique_keys(self):
        tree, _ = make_tree()
        tree.bulk_load([(i, (i, 0)) for i in range(100)])
        assert tree.search(42) == [(42, 0)]
        assert tree.search(-1) == []
        assert tree.search(100) == []

    def test_duplicate_keys_all_returned(self):
        tree, _ = make_tree()
        tree.bulk_load([(i % 10, (i, 0)) for i in range(100)])
        assert len(tree.search(3)) == 10

    def test_unsorted_input_accepted(self):
        tree, _ = make_tree()
        pairs = [(i, (i, 0)) for i in range(50)]
        random.Random(0).shuffle(pairs)
        tree.bulk_load(pairs)
        tree.check_invariants()
        assert tree.search(17) == [(17, 0)]

    def test_empty_tree(self):
        tree, _ = make_tree()
        tree.bulk_load([])
        assert tree.search(1) == []
        assert tree.entries == 0

    def test_range_search(self):
        tree, _ = make_tree()
        tree.bulk_load([(i, (i, 0)) for i in range(100)])
        rids = tree.range_search(10, 19)
        assert rids == [(i, 0) for i in range(10, 20)]

    def test_range_search_empty_range(self):
        tree, _ = make_tree()
        tree.bulk_load([(i, (i, 0)) for i in range(10)])
        assert tree.range_search(7, 3) == []

    def test_invariants_after_bulk_load(self):
        tree, _ = make_tree(fanout=4)
        tree.bulk_load([(i, (i, 0)) for i in range(333)])
        tree.check_invariants()

    def test_height_grows_logarithmically(self):
        tree, _ = make_tree(fanout=4)
        tree.bulk_load([(i, (i, 0)) for i in range(4)])
        assert tree.height == 1
        tree.bulk_load([(i, (i, 0)) for i in range(5)])
        assert tree.height == 2
        tree.bulk_load([(i, (i, 0)) for i in range(100)])
        assert tree.height == 4  # ceil(log4(100)) + leaf level packing


class TestProbeCost:
    def test_probe_charges_random_io_per_level(self):
        tree, meter = make_tree(fanout=4)
        tree.bulk_load([(i, (i, 0)) for i in range(64)])
        tree.pool.clear()
        meter.reset()
        tree.search(17)
        assert meter.random_ios == tree.height

    def test_probe_cost_small_like_paper(self):
        # "typically 3 I/Os or less": a realistic fanout over 100k entries.
        meter = CostMeter()
        pool = BufferPool(100_000, meter)
        tree = BTree("idx", pool, fanout=512)
        tree.bulk_load([(i, (i, 0)) for i in range(100_000)])
        assert tree.height <= 3


class TestInsert:
    def test_insert_then_search(self):
        tree, _ = make_tree(fanout=4)
        for i in range(50):
            tree.insert(i, (i, 0))
        tree.check_invariants()
        assert tree.search(31) == [(31, 0)]

    def test_insert_reverse_order(self):
        tree, _ = make_tree(fanout=4)
        for i in reversed(range(50)):
            tree.insert(i, (i, 0))
        tree.check_invariants()
        assert tree.range_search(0, 49) == [(i, 0) for i in range(50)]

    def test_insert_duplicates(self):
        tree, _ = make_tree(fanout=4)
        for i in range(30):
            tree.insert(7, (i, 0))
        tree.check_invariants()
        assert len(tree.search(7)) == 30

    def test_insert_into_bulk_loaded(self):
        tree, _ = make_tree(fanout=4)
        tree.bulk_load([(i * 2, (i, 0)) for i in range(40)])
        tree.insert(33, (99, 0))
        tree.check_invariants()
        assert (99, 0) in tree.search(33)


class TestPropertyBased:
    @given(
        st.lists(st.integers(-1000, 1000), min_size=0, max_size=300),
        st.integers(4, 32),
    )
    @settings(max_examples=40, deadline=None)
    def test_matches_reference_after_bulk_load(self, keys, fanout):
        tree, _ = make_tree(fanout=fanout)
        pairs = [(key, (position, 0)) for position, key in enumerate(keys)]
        tree.bulk_load(pairs)
        tree.check_invariants()
        for probe in set(keys) | {0, 1234}:
            expected = sorted(rid for key, rid in pairs if key == probe)
            assert sorted(tree.search(probe)) == expected

    @given(st.lists(st.integers(-50, 50), min_size=1, max_size=120))
    @settings(max_examples=40, deadline=None)
    def test_matches_reference_after_inserts(self, keys):
        tree, _ = make_tree(fanout=4)
        for position, key in enumerate(keys):
            tree.insert(key, (position, 0))
        tree.check_invariants()
        assert tree.entries == len(keys)
        low, high = min(keys), max(keys)
        expected = sorted(
            (key, (position, 0)) for position, key in enumerate(keys)
        )
        got = [
            (key, rid) for key, rid in tree.range_entries(low, high)
        ]
        assert sorted(got) == expected

    @given(
        st.lists(st.integers(0, 200), min_size=1, max_size=150),
        st.integers(0, 200),
        st.integers(0, 200),
    )
    @settings(max_examples=40, deadline=None)
    def test_range_search_matches_filter(self, keys, bound_a, bound_b):
        low, high = min(bound_a, bound_b), max(bound_a, bound_b)
        tree, _ = make_tree(fanout=5)
        tree.bulk_load([(key, (position, 0)) for position, key in enumerate(keys)])
        got = tree.range_search(low, high)
        expected = [
            rid
            for key, rid in sorted(
                ((key, (position, 0)) for position, key in enumerate(keys))
            )
            if low <= key <= high
        ]
        assert got == expected


class TestMetadata:
    def test_pages_positive(self):
        tree, _ = make_tree()
        tree.bulk_load([(i, (i, 0)) for i in range(100)])
        assert tree.pages > 0

    def test_default_fanout_from_page_size(self):
        meter = CostMeter()
        pool = BufferPool(10, meter)
        tree = BTree("idx", pool, page_size=8192)
        assert tree.fanout == 8192 // 16
