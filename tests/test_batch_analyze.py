"""Batch-granular EXPLAIN ANALYZE and the row/vector actuals parity
contract.

The vector engine's batch instrumentation must *add* information
(batches, per-batch row histograms, selection-vector density, kernel
self-time, cache hit rates) without perturbing the row-path actuals:
per-operator row counts, I/O cost, function cost, and cache hits are
bit-identical between ``executor="row"`` and ``executor="vector"``
across every workload × strategy × seed. Join CPU is the one documented
exception — the vector engine charges it in bulk per batch
(``units × n``) where the row engine adds per tuple, so per-node
``cpu_charged`` (and through it ``charged``) can differ in the last
float bit; the suite pins that difference to ≤ a few ULPs instead of
letting it drift.
"""

import math
import re

import pytest

from repro import Executor, build_database, optimize
from repro.bench.harness import DEFAULT_STRATEGIES
from repro.bench.workloads import build_workload, ensure_workload_functions
from repro.plan.display import explain_analyze

QUERY_WORKLOADS = ("q1", "q2", "q3", "q4", "q5")
SEEDS = (7, 11, 13)
SCALE = 12

#: Relative bound for the CPU bulk-charging rounding exception — ~50×
#: the worst observed drift (2.2e-15), still ~1e3× tighter than any
#: real regression.
CPU_REL_TOL = 1e-13


def _databases():
    databases = {}
    for seed in SEEDS:
        db = build_database(scale=SCALE, seed=seed)
        ensure_workload_functions(db)
        databases[seed] = db
    return databases


_DATABASES = _databases()


def _instrumented(db, plan, budget, executor):
    return Executor(db, budget=budget, executor=executor).execute(
        plan, instrument=True
    )


def _close(a: float, b: float) -> bool:
    return math.isclose(a, b, rel_tol=CPU_REL_TOL, abs_tol=1e-9)


class TestExplainAnalyzeParity:
    """Per-operator actuals, row engine vs vector engine."""

    @pytest.mark.parametrize("workload_key", QUERY_WORKLOADS)
    @pytest.mark.parametrize("strategy", DEFAULT_STRATEGIES)
    def test_per_operator_actuals_match(self, workload_key, strategy):
        for seed in SEEDS:
            db = _DATABASES[seed]
            workload = build_workload(db, workload_key)
            plan = optimize(db, workload.query, strategy=strategy).plan
            row = _instrumented(db, plan, workload.budget, "row")
            vector = _instrumented(db, plan, workload.budget, "vector")
            label = f"{workload_key}/{strategy}/seed={seed}"
            assert vector.completed == row.completed, label
            if not row.completed:
                continue
            assert set(vector.node_stats) == set(row.node_stats), label
            for key, expected in row.node_stats.items():
                actual = vector.node_stats[key]
                # Bit-identical by construction: counts and every cost
                # component whose charges are granularity-independent.
                assert actual.rows_out == expected.rows_out, label
                assert actual.io_charged == expected.io_charged, label
                assert (
                    actual.function_charged == expected.function_charged
                ), label
                assert actual.cache_hits == expected.cache_hits, label
                # The CPU bulk-charging exception, pinned to ULP noise.
                assert _close(
                    actual.cpu_charged, expected.cpu_charged
                ), f"{label}: cpu {actual.cpu_charged!r} vs {expected.cpu_charged!r}"
                assert _close(
                    actual.charged, expected.charged
                ), f"{label}: charged {actual.charged!r} vs {expected.charged!r}"

    @pytest.mark.parametrize("workload_key", QUERY_WORKLOADS)
    def test_whole_query_totals_bit_identical(self, workload_key):
        """The dump-visible roll-ups never differ at all: the per-batch
        bulk charges land on the same meter in the same order."""
        for seed in SEEDS:
            db = _DATABASES[seed]
            workload = build_workload(db, workload_key)
            plan = optimize(db, workload.query, strategy="pushdown").plan
            row = _instrumented(db, plan, workload.budget, "row")
            vector = _instrumented(db, plan, workload.budget, "vector")
            if not row.completed:
                continue
            label = f"{workload_key}/seed={seed}"
            assert vector.charged == row.charged, label
            for metric in (
                "io_charged", "function_charged", "function_calls",
            ):
                assert (
                    vector.metrics[metric] == row.metrics[metric]
                ), f"{label}:{metric}"

    def test_node_charged_is_self_consistent(self):
        """``charged`` is derived, so total == breakdown exactly."""
        db = _DATABASES[7]
        workload = build_workload(db, "q4")
        plan = optimize(db, workload.query, strategy="migration").plan
        for executor in ("row", "vector"):
            result = _instrumented(db, plan, workload.budget, executor)
            for stats in result.node_stats.values():
                assert stats.charged == (
                    stats.io_charged
                    + stats.cpu_charged
                    + stats.function_charged
                )


class TestBatchStats:
    """The vector-only batch-granular companion data."""

    def test_row_path_never_carries_batch_stats(self):
        db = _DATABASES[7]
        workload = build_workload(db, "q4")
        plan = optimize(db, workload.query, strategy="pushdown").plan
        result = _instrumented(db, plan, workload.budget, "row")
        assert result.batch_stats is None

    def test_uninstrumented_vector_run_skips_batch_stats(self):
        db = _DATABASES[7]
        workload = build_workload(db, "q4")
        plan = optimize(db, workload.query, strategy="pushdown").plan
        result = Executor(
            db, budget=workload.budget, executor="vector"
        ).execute(plan)
        assert result.batch_stats is None
        assert result.node_stats is None

    def test_vector_batch_stats_shape(self):
        db = _DATABASES[7]
        workload = build_workload(db, "q4")
        plan = optimize(db, workload.query, strategy="pushdown").plan
        result = _instrumented(db, plan, workload.budget, "vector")
        assert result.batch_stats
        for key, stats in result.batch_stats.items():
            node_stats = result.node_stats[key]
            # Emitted batches carry exactly the node's output rows.
            assert int(stats.rows_out.finite_sum) == node_stats.rows_out
            assert stats.batches == stats.rows_out.count
            if stats.rows_out.count:
                assert stats.rows_out.minimum >= 1.0

    def test_single_predicate_density(self):
        """Every placed predicate sees the full chain: rows_in equals
        the rows that entered its node's filter chain."""
        db = _DATABASES[7]
        workload = build_workload(db, "q4")
        plan = optimize(db, workload.query, strategy="pushdown").plan
        result = _instrumented(db, plan, workload.budget, "vector")
        observed = [
            stats for stats in result.batch_stats.values()
            if stats.predicates
        ]
        assert observed, "q4/pushdown must place predicates"
        for stats in observed:
            for pstats in stats.predicates:
                assert pstats.rows_in == stats.chain_rows
                assert pstats.rows_out <= pstats.rows_in

    def test_filter_chain_density_decays(self):
        """Chain order on a two-predicate node: the second predicate's
        rows_in is the first one's rows_out (selection-vector decay).

        The planners place one predicate per node on the bench
        workloads, so the chain is built by hoisting q4's cheap
        predicate up next to the pulled-up expensive one — every table
        is in the top join's scope, so the plan stays valid."""
        db = _DATABASES[7]
        workload = build_workload(db, "q4")
        plan = optimize(db, workload.query, strategy="pullup").plan
        root = plan.root if hasattr(plan, "root") else plan
        donors = [
            node for node in root.walk()
            if node is not root and node.filters
        ]
        assert donors, "pullup q4 must keep a cheap predicate below"
        cheap = donors[0].filters.pop()
        assert root.filters, "pullup q4 must hoist the expensive one"
        root.filters.append(cheap)
        result = _instrumented(db, plan, workload.budget, "vector")
        stats = result.batch_stats[id(root)]
        assert len(stats.predicates) == 2
        first, second = stats.predicates
        assert first.rows_in == stats.chain_rows
        assert second.rows_in == first.rows_out
        assert second.rows_out <= second.rows_in
        assert second.rows_out == result.node_stats[id(root)].rows_out

    def test_predicate_cache_hit_rates(self):
        db = _DATABASES[7]
        workload = build_workload(db, "q4")
        plan = optimize(
            db, workload.query, strategy="migration", caching=True
        ).plan
        result = Executor(
            db, budget=workload.budget, executor="vector", caching=True
        ).execute(plan, instrument=True)
        observed = [
            pstats
            for stats in result.batch_stats.values()
            for pstats in stats.predicates
            if pstats.cache_hits or pstats.cache_misses
        ]
        assert observed, "a cached q4 run must see cache traffic"
        for pstats in observed:
            assert 0.0 <= pstats.cache_hit_rate <= 1.0

    def test_as_dict_is_strict_json(self):
        import json

        db = _DATABASES[7]
        workload = build_workload(db, "q1")
        plan = optimize(db, workload.query, strategy="pushdown").plan
        result = _instrumented(db, plan, workload.budget, "vector")
        for stats in result.batch_stats.values():
            json.dumps(stats.as_dict(), allow_nan=False)


class TestExplainAnalyzeRendering:
    def _outputs(self, workload_key="q4", strategy="pushdown"):
        db = _DATABASES[7]
        workload = build_workload(db, workload_key)
        plan = optimize(db, workload.query, strategy=strategy).plan
        row = _instrumented(db, plan, workload.budget, "row")
        vector = _instrumented(db, plan, workload.budget, "vector")
        row_text = explain_analyze(plan, row.node_stats)
        vector_text = explain_analyze(
            plan, vector.node_stats, batch_stats=vector.batch_stats
        )
        return row_text, vector_text

    def test_vector_gains_batch_lines(self):
        row_text, vector_text = self._outputs()
        assert "· batches=" not in row_text
        assert "· batches=" in vector_text
        assert "rows/batch in=" in vector_text
        assert re.search(r"density \d\.\d{3}→\d\.\d{3}", vector_text)
        assert "kernel=" in vector_text
        assert re.search(r"sel=\d\.\d{3}", vector_text)

    def test_row_actuals_render_identically(self):
        """The row-path figures — the parity-gated part of the output —
        are the same characters in both engines' reports."""
        row_text, vector_text = self._outputs()
        pattern = re.compile(r"act rows=\d+ charged=[\d.]+")
        assert pattern.findall(row_text) == pattern.findall(vector_text)

    def test_cache_hit_rate_annotation(self):
        db = _DATABASES[7]
        workload = build_workload(db, "q4")
        plan = optimize(
            db, workload.query, strategy="migration", caching=True
        ).plan
        result = Executor(
            db, budget=workload.budget, executor="vector", caching=True
        ).execute(plan, instrument=True)
        text = explain_analyze(
            plan, result.node_stats, batch_stats=result.batch_stats
        )
        assert re.search(r"cache_hit=\d+\.\d%", text)


class TestMonitorDensityRefinement:
    """Satellite: vector batch densities feed ``repro top`` progress."""

    def test_filter_density_collected(self):
        from repro.obs.runtime_telemetry import RuntimeMonitor

        db = _DATABASES[7]
        workload = build_workload(db, "q4")
        plan = optimize(db, workload.query, strategy="pushdown").plan
        monitor = RuntimeMonitor()
        result = Executor(
            db, budget=workload.budget, executor="vector",
            monitor=monitor,
        ).execute(plan)
        assert result.completed
        assert monitor.state == "completed"
        assert monitor.progress() == 1.0
        assert monitor.filter_density, (
            "vector filter chains must report per-batch densities"
        )
        for rows_in, rows_out in monitor.filter_density.values():
            assert 0 <= rows_out <= rows_in

    def test_density_refines_estimates(self):
        """A mis-declared chain selectivity is corrected from joint
        observed density, batch by batch — not only at per-predicate
        power-of-two milestones."""
        from repro.cost.model import CostModel
        from repro.obs.runtime_telemetry import (
            REFINE_MIN_EVALS,
            RuntimeMonitor,
            WORK_FLOOR,
        )

        monitor = RuntimeMonitor()
        db = _DATABASES[7]
        workload = build_workload(db, "q4")
        plan = optimize(db, workload.query, strategy="pushdown").plan
        monitor.attach(
            plan.root if hasattr(plan, "root") else plan,
            CostModel(db.catalog, db.params),
        )
        # Pick the operator with the most declared work — refinement has
        # room to shrink its estimate without hitting WORK_FLOOR.
        node_key, operator = max(
            monitor.operators.items(),
            key=lambda item: item[1].declared_rows,
        )
        declared = operator.estimated_rows
        assert declared > WORK_FLOOR
        # Observed density 10% of declared selectivity 0.5: the joint
        # ratio shrinks the node's estimate (within the clamp band).
        total = max(REFINE_MIN_EVALS, 64)
        monitor.on_filter_batch(node_key, total, total // 20, 0.5)
        assert operator.estimated_rows < declared
        assert operator.estimated_rows >= WORK_FLOOR

    def test_refinement_ignores_bogus_declarations(self):
        from repro.cost.model import CostModel
        from repro.obs.runtime_telemetry import (
            REFINE_MIN_EVALS,
            RuntimeMonitor,
        )

        monitor = RuntimeMonitor()
        db = _DATABASES[7]
        workload = build_workload(db, "q1")
        plan = optimize(db, workload.query, strategy="pushdown").plan
        monitor.attach(
            plan.root if hasattr(plan, "root") else plan,
            CostModel(db.catalog, db.params),
        )
        node_key, operator = max(
            monitor.operators.items(),
            key=lambda item: item[1].declared_rows,
        )
        before = operator.estimated_rows
        total = max(REFINE_MIN_EVALS, 64)
        monitor.on_filter_batch(node_key, total, total // 2, float("nan"))
        monitor.on_filter_batch(node_key, 0, 0, 0.5)
        assert operator.estimated_rows == before
