"""Unit tests: the System R enumerator and placement policies."""

import pytest

from repro.cost.model import CostModel
from repro.errors import OptimizerError
from repro.optimizer.policies import (
    MigrationPhaseOnePolicy,
    PullRankPolicy,
    PullUpPolicy,
    PushDownPolicy,
    rank_sorted,
)
from repro.optimizer.query import Query
from repro.optimizer.systemr import SystemRPlanner
from repro.plan.nodes import Join, Scan
from tests.conftest import costly_filter, equijoin


def make_planner(db, policy=None):
    return SystemRPlanner(db.catalog, CostModel(db.catalog, db.params), policy)


class TestRankSorted:
    def test_ascending_rank(self, db):
        cheap = costly_filter(db, "costly1", ("t3", "u20"))
        pricey = costly_filter(db, "costly100", ("t3", "u100"))
        selective = costly_filter(db, "costly100sel10", ("t3", "ua1"))
        assert rank_sorted([pricey, cheap, selective]) == [
            cheap, selective, pricey,
        ]


class TestSingleTable:
    def test_selections_ordered_by_rank(self, db):
        cheap = costly_filter(db, "costly1", ("t3", "u20"))
        pricey = costly_filter(db, "costly100", ("t3", "u100"))
        query = Query(tables=["t3"], predicates=[pricey, cheap])
        plan = make_planner(db).plan(query)
        assert isinstance(plan.root, Scan)
        assert plan.root.filters == [cheap, pricey]

    def test_free_predicates_first(self, db):
        from repro.expr.expressions import Column, Comparison, Const
        from repro.expr.predicates import analyze_conjunct

        free = analyze_conjunct(
            db.catalog, Comparison("<", Column("t3", "a20"), Const(3))
        )
        pricey = costly_filter(db, "costly100", ("t3", "u100"))
        query = Query(tables=["t3"], predicates=[pricey, free])
        plan = make_planner(db).plan(query)
        assert plan.root.filters[0] is free


class TestTwoTable:
    def make_query(self, db):
        return Query(
            tables=["t3", "t10"],
            predicates=[
                equijoin(db, ("t3", "a1"), ("t10", "ua1")),
                costly_filter(db, "costly100", ("t10", "u20")),
            ],
        )

    def test_plan_covers_all_tables(self, db):
        plan = make_planner(db).plan(self.make_query(db))
        assert plan.root.tables() == frozenset({"t3", "t10"})

    def test_all_predicates_placed_exactly_once(self, db):
        query = self.make_query(db)
        plan = make_planner(db).plan(query)
        placed = [
            p for node in plan.root.walk() for p in node.filters
        ]
        if isinstance(plan.root, Join):
            primaries = [
                node.primary for node in plan.root.walk()
                if isinstance(node, Join)
            ]
        expected = set(query.predicates)
        assert set(placed) | set(primaries) == expected

    def test_pushdown_policy_keeps_selection_on_scan(self, db):
        plan = make_planner(db, PushDownPolicy()).plan(self.make_query(db))
        scan = next(
            s for s in plan.root.base_scans() if s.table == "t10"
        )
        assert any(p.is_expensive for p in scan.filters)

    def test_pullup_policy_lifts_selection(self, db):
        plan = make_planner(db, PullUpPolicy()).plan(self.make_query(db))
        assert any(p.is_expensive for p in plan.root.filters)
        for scan in plan.root.base_scans():
            assert not any(p.is_expensive for p in scan.filters)

    def test_estimates_attached(self, db):
        plan = make_planner(db).plan(self.make_query(db))
        assert plan.estimated_cost is not None and plan.estimated_cost > 0
        assert plan.estimated_rows is not None


class TestUnpruneable:
    def test_migration_policy_retains_unpruneable(self, db):
        """With an expensive predicate left below a join, the subplan must
        be retained even when dominated."""
        query = Query(
            tables=["t3", "t6", "t10"],
            predicates=[
                equijoin(db, ("t3", "ua1"), ("t6", "a1")),
                equijoin(db, ("t6", "ua1"), ("t10", "a1")),
                costly_filter(db, "costly100sel10", ("t3", "u20")),
            ],
        )
        planner = make_planner(db, MigrationPhaseOnePolicy())
        candidates = planner.final_candidates(query)
        assert any(c.unpruneable for c in candidates)
        assert planner.stats.unpruneable_kept > 0

    def test_plain_pullrank_keeps_fewer(self, db):
        query = Query(
            tables=["t3", "t6", "t10"],
            predicates=[
                equijoin(db, ("t3", "ua1"), ("t6", "a1")),
                equijoin(db, ("t6", "ua1"), ("t10", "a1")),
                costly_filter(db, "costly100sel10", ("t3", "u20")),
            ],
        )
        plain = make_planner(db, PullRankPolicy())
        marked = make_planner(db, MigrationPhaseOnePolicy())
        plain_candidates = plain.final_candidates(query)
        marked_candidates = marked.final_candidates(query)
        assert len(marked_candidates) >= len(plain_candidates)


class TestConnectivity:
    def test_cross_product_only_when_necessary(self, db):
        query = Query(
            tables=["t1", "t2"],
            predicates=[],  # no join predicate at all
        )
        plan = make_planner(db).plan(query)
        assert isinstance(plan.root, Join)
        assert plan.root.primary.selectivity == 1.0

    def test_disconnected_three_way(self, db):
        query = Query(
            tables=["t1", "t2", "t3"],
            predicates=[equijoin(db, ("t1", "ua1"), ("t2", "a1"))],
        )
        plan = make_planner(db).plan(query)
        assert plan.root.tables() == frozenset({"t1", "t2", "t3"})

    def test_empty_tables_rejected(self):
        with pytest.raises(OptimizerError):
            Query(tables=[], predicates=[])

    def test_foreign_predicate_rejected(self, db):
        with pytest.raises(OptimizerError):
            Query(
                tables=["t1"],
                predicates=[costly_filter(db, "costly100", ("t9", "u20"))],
            )


class TestMethodChoice:
    def test_expensive_only_connector_becomes_nl_primary(self, db):
        from repro.expr.expressions import Column, FuncCall
        from repro.expr.predicates import analyze_conjunct

        expensive_join = analyze_conjunct(
            db.catalog,
            FuncCall("expjoin10", (Column("t1", "u20"), Column("t2", "u20"))),
        )
        query = Query(tables=["t1", "t2"], predicates=[expensive_join])
        plan = make_planner(db).plan(query)
        assert plan.root.primary is expensive_join
        from repro.plan.nodes import JoinMethod

        assert plan.root.method is JoinMethod.NESTED_LOOP

    def test_secondary_join_predicate_placed_above_primary(self, db):
        primary_candidate = equijoin(db, ("t3", "a1"), ("t10", "ua1"))
        secondary = equijoin(db, ("t3", "u20"), ("t10", "u20"))
        query = Query(
            tables=["t3", "t10"],
            predicates=[primary_candidate, secondary],
        )
        plan = make_planner(db).plan(query)
        join = plan.root
        assert isinstance(join, Join)
        placed = {join.primary} | set(join.filters)
        assert {primary_candidate, secondary} <= placed
