"""Unit tests: LRU buffer pool."""

import pytest

from repro.storage.buffer import BufferPool
from repro.storage.meter import CostMeter, IOKind


def make_pool(capacity=4):
    meter = CostMeter()
    return BufferPool(capacity, meter), meter


class TestBufferPool:
    def test_miss_charges_hit_does_not(self):
        pool, meter = make_pool()
        pool.fetch(0, 1, IOKind.RANDOM)
        assert meter.random_ios == 1
        pool.fetch(0, 1, IOKind.RANDOM)
        assert meter.random_ios == 1
        assert pool.stats.hits == 1 and pool.stats.misses == 1

    def test_lru_eviction_order(self):
        pool, meter = make_pool(capacity=2)
        pool.fetch(0, 1, IOKind.RANDOM)
        pool.fetch(0, 2, IOKind.RANDOM)
        pool.fetch(0, 1, IOKind.RANDOM)  # touch 1: now 2 is LRU
        pool.fetch(0, 3, IOKind.RANDOM)  # evicts 2
        pool.fetch(0, 1, IOKind.RANDOM)  # still cached
        assert meter.random_ios == 3
        pool.fetch(0, 2, IOKind.RANDOM)  # was evicted: miss
        assert meter.random_ios == 4

    def test_capacity_respected(self):
        pool, _ = make_pool(capacity=3)
        for page in range(10):
            pool.fetch(0, page, IOKind.SEQUENTIAL)
        assert pool.cached_pages == 3

    def test_files_are_distinct(self):
        pool, meter = make_pool()
        a = pool.register_file()
        b = pool.register_file()
        pool.fetch(a, 1, IOKind.RANDOM)
        pool.fetch(b, 1, IOKind.RANDOM)
        assert meter.random_ios == 2

    def test_invalidate_file(self):
        pool, meter = make_pool()
        pool.fetch(0, 1, IOKind.RANDOM)
        pool.fetch(1, 1, IOKind.RANDOM)
        pool.invalidate_file(0)
        pool.fetch(0, 1, IOKind.RANDOM)  # miss again
        pool.fetch(1, 1, IOKind.RANDOM)  # still cached
        assert meter.random_ios == 3

    def test_clear(self):
        pool, meter = make_pool()
        pool.fetch(0, 1, IOKind.RANDOM)
        pool.clear()
        pool.fetch(0, 1, IOKind.RANDOM)
        assert meter.random_ios == 2

    def test_sequential_kind_charges_weighted(self):
        pool, meter = make_pool()
        pool.fetch(0, 1, IOKind.SEQUENTIAL)
        assert meter.seq_ios == 1 and meter.random_ios == 0

    def test_hit_rate(self):
        pool, _ = make_pool()
        pool.fetch(0, 1, IOKind.RANDOM)
        pool.fetch(0, 1, IOKind.RANDOM)
        assert pool.stats.hit_rate == pytest.approx(0.5)

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            BufferPool(0, CostMeter())

    def test_reset_stats_keeps_cache(self):
        pool, meter = make_pool()
        pool.fetch(0, 1, IOKind.RANDOM)
        pool.reset_stats()
        pool.fetch(0, 1, IOKind.RANDOM)  # still a cache hit
        assert pool.stats.hits == 1 and pool.stats.misses == 0
        assert meter.random_ios == 1
