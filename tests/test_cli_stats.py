"""The ``repro stats`` and ``repro drift`` subcommands.

Covers the happy paths (record, display, epoch-over-epoch compare, the
opt-in --apply-feedback injection), the PR 5 CLI-hardening convention
(unknown workload/strategy/epoch exits 2 listing valid choices, never a
traceback), and the chaos-integration assertion that corrupted-stats
fault profiles are flagged by the drift detector.
"""

import json

import pytest

from repro.__main__ import main
from repro.obs.feedback import STATS_SCHEMA_VERSION


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


@pytest.fixture()
def store_dir(tmp_path):
    return str(tmp_path / "artifacts")


def record(capsys, store_dir, *extra):
    return run_cli(
        capsys,
        "stats", "q4", "--scale", "20", "--dir", store_dir, *extra,
    )


class TestStats:
    def test_records_and_prints_table(self, capsys, store_dir, tmp_path):
        code, out, err = record(capsys, store_dir)
        assert code == 0
        assert "stats: q4 epoch 1" in out
        assert "decl.sel" in out and "obs.sel" in out
        assert "q-err" in out and "drift" in out
        assert "costly" in out  # the expensive predicate row
        assert "STATS_q4.json" in err
        document = json.loads(
            (tmp_path / "artifacts" / "STATS_q4.json").read_text()
        )
        assert document["schema_version"] == STATS_SCHEMA_VERSION
        assert document["kind"] == "stats-feedback"
        assert len(document["epochs"]) == 1
        epoch = document["epochs"][0]
        assert epoch["strategy"] == "pushdown"
        assert epoch["observations"]
        assert "operators" in epoch

    def test_epochs_accumulate(self, capsys, store_dir):
        assert record(capsys, store_dir)[0] == 0
        code, out, _ = record(
            capsys, store_dir, "--strategy", "migration"
        )
        assert code == 0
        assert "epoch 2" in out
        assert "strategy migration" in out

    def test_display_only_epoch(self, capsys, store_dir):
        record(capsys, store_dir)
        code, out, _ = record(capsys, store_dir, "--epoch", "1")
        assert code == 0
        assert "stats: q4 epoch 1" in out

    def test_unknown_workload_exits_2_with_choices(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["stats", "nope"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "q4" in err and "invalid choice" in err

    def test_unknown_strategy_exits_2_with_choices(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["stats", "q4", "--strategy", "nope"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "pushdown" in err and "invalid choice" in err

    def test_unknown_epoch_exits_2_listing_valid(self, capsys, store_dir):
        record(capsys, store_dir)
        code, _, err = record(capsys, store_dir, "--epoch", "9")
        assert code == 2
        assert "no epoch 9" in err
        assert "[1]" in err

    def test_missing_store_exits_2(self, capsys, store_dir):
        code, _, err = record(capsys, store_dir, "--epoch", "1")
        assert code == 2
        assert "error:" in err
        assert "Traceback" not in err

    def test_apply_feedback_reports_injection(self, capsys, store_dir):
        code, out, _ = record(capsys, store_dir, "--apply-feedback")
        assert code == 0
        assert "feedback applied" in out
        assert "plan fingerprint" in out
        assert "estimated cost" in out


class TestDrift:
    def test_compares_two_latest_by_default(self, capsys, store_dir):
        record(capsys, store_dir)
        record(capsys, store_dir, "--strategy", "migration")
        code, out, _ = run_cli(
            capsys, "drift", "q4", "--dir", store_dir
        )
        assert code == 0
        assert "drift: q4 epoch 1" in out
        assert "epoch 2" in out
        assert "sel.A" in out and "sel.B" in out

    def test_explicit_epoch_pair(self, capsys, store_dir):
        for _ in range(3):
            record(capsys, store_dir)
        code, out, _ = run_cli(
            capsys, "drift", "q4", "1", "3", "--dir", store_dir
        )
        assert code == 0
        assert "epoch 1" in out and "epoch 3" in out

    def test_one_epoch_compares_against_latest(self, capsys, store_dir):
        record(capsys, store_dir)
        record(capsys, store_dir)
        code, out, _ = run_cli(
            capsys, "drift", "q4", "1", "--dir", store_dir
        )
        assert code == 0
        assert "epoch 1" in out and "epoch 2" in out

    def test_missing_store_exits_2_with_hint(self, capsys, store_dir):
        code, _, err = run_cli(capsys, "drift", "q4", "--dir", store_dir)
        assert code == 2
        assert "record epochs first" in err
        assert "repro stats q4" in err

    def test_single_epoch_exits_2(self, capsys, store_dir):
        record(capsys, store_dir)
        code, _, err = run_cli(capsys, "drift", "q4", "--dir", store_dir)
        assert code == 2
        assert "need two recorded epochs" in err

    def test_unknown_epoch_exits_2_listing_valid(self, capsys, store_dir):
        record(capsys, store_dir)
        record(capsys, store_dir)
        code, _, err = run_cli(
            capsys, "drift", "q4", "1", "9", "--dir", store_dir
        )
        assert code == 2
        assert "no epoch 9" in err and "[1, 2]" in err

    def test_unknown_workload_exits_2_with_choices(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["drift", "nope"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "invalid choice" in err

    def test_three_epochs_is_usage_error(self, capsys, store_dir):
        code, _, err = run_cli(
            capsys, "drift", "q4", "1", "2", "3", "--dir", store_dir
        )
        assert code == 2
        assert "at most two" in err


class TestChaosDriftIntegration:
    def test_corrupt_stats_profile_is_flagged(self, capsys):
        # Chaos with the stats-only profile: every generated fault
        # corrupts declared statistics, and the drift audit must flag
        # each corrupted field — otherwise the run itself fails.
        code, out, _ = run_cli(
            capsys,
            "chaos", "q4", "--profile", "stats", "--seeds", "7,11",
            "--scale", "5",
        )
        assert code == 0
        assert "corrupted stats" in out
        assert "all flagged" in out
        assert "outside its domain" in out
        assert "MISSED" not in out

    def test_drift_audit_lands_in_report_artifact(
        self, capsys, tmp_path
    ):
        report_dir = str(tmp_path)
        code, _, _ = run_cli(
            capsys,
            "chaos", "q4", "--profile", "stats", "--seeds", "7",
            "--scale", "5", "--report", report_dir,
        )
        assert code == 0
        document = json.loads(
            (tmp_path / "CHAOS_q4.json").read_text()
        )
        audit = document["drift"]["7"]
        assert audit["corrupted"]
        assert audit["missed"] == []
        assert audit["findings"]
        assert all(
            finding["reason"] == "invalid-declared"
            for finding in audit["findings"]
        )
