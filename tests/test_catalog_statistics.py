"""Unit tests: declared and measured statistics."""

from hypothesis import given, strategies as st

from repro.catalog.schema import RelationSchema
from repro.catalog.statistics import (
    declared_stats,
    measured_stats,
    pages_for,
)


class TestPagesFor:
    def test_exact_fit(self):
        # 8192 // 100 = 81 tuples per page.
        assert pages_for(81, 100, 8192) == 1

    def test_one_over(self):
        assert pages_for(82, 100, 8192) == 2

    def test_zero_rows(self):
        assert pages_for(0, 100, 8192) == 0

    def test_wide_tuple_still_fits_one_per_page(self):
        assert pages_for(10, 10_000, 8192) == 10

    @given(st.integers(1, 100_000), st.integers(1, 1000), st.integers(512, 65536))
    def test_capacity_respected(self, rows, width, page_size):
        pages = pages_for(rows, width, page_size)
        per_page = max(1, page_size // width)
        assert (pages - 1) * per_page < rows <= pages * per_page


class TestDeclaredStats:
    def test_unique_column(self):
        schema = RelationSchema.from_names("t", ["a1"])
        stats = declared_stats(schema, 500, 8192)
        assert stats.ndistinct("a1") == 500
        assert stats.attribute("a1").low == 0
        assert stats.attribute("a1").high == 499

    def test_repeated_column(self):
        schema = RelationSchema.from_names("t", ["u20"])
        stats = declared_stats(schema, 1000, 8192)
        assert stats.ndistinct("u20") == 50

    def test_repetition_larger_than_table(self):
        schema = RelationSchema.from_names("t", ["u100"])
        stats = declared_stats(schema, 10, 8192)
        assert stats.ndistinct("u100") == 1

    def test_cardinality_and_pages(self):
        schema = RelationSchema.from_names("t", ["a1"])
        stats = declared_stats(schema, 1000, 8192)
        assert stats.cardinality == 1000
        assert stats.pages == pages_for(1000, 100, 8192)


class TestMeasuredStats:
    def test_matches_rows(self):
        schema = RelationSchema.from_names("t", ["a1", "u20"])
        rows = [(i, i % 5) for i in range(100)]
        stats = measured_stats(schema, rows, 8192)
        assert stats.cardinality == 100
        assert stats.ndistinct("a1") == 100
        assert stats.ndistinct("u20") == 5
        assert stats.attribute("u20").low == 0
        assert stats.attribute("u20").high == 4

    def test_empty_rows(self):
        schema = RelationSchema.from_names("t", ["a1"])
        stats = measured_stats(schema, [], 8192)
        assert stats.cardinality == 0
        assert stats.ndistinct("a1") == 0

    def test_width_property(self):
        schema = RelationSchema.from_names("t", ["a1"])
        stats = measured_stats(schema, [(3,), (7,)], 8192)
        assert stats.attribute("a1").width == 5


class TestGeneratedDataMatchesDeclaredStats:
    """The synthetic generator's core honesty guarantee."""

    def test_declared_equals_measured(self, db):
        for entry in db.catalog:
            rows = entry.heap.all_rows()
            measured = measured_stats(entry.schema, rows, db.params.page_size)
            assert measured.cardinality == entry.stats.cardinality
            for attribute in entry.schema.attributes:
                assert (
                    measured.ndistinct(attribute.name)
                    == entry.stats.ndistinct(attribute.name)
                ), f"{entry.name}.{attribute.name}"
