"""Vendored pre-overhaul planners, kept as behavioural references.

These are the seed implementations of the System R enumerator (frozenset
DP keys, deep-cloned subplans, no cost memoisation) and the exhaustive
placement search (full ``itertools.product`` over placements, no
branch-and-bound). The production planners in ``repro.optimizer`` were
rewritten for speed with the explicit contract that *chosen plans must
not change*; ``test_planner_equivalence.py`` checks the production
planners against these references on randomized queries by comparing
plan fingerprints.

Do not "fix" or optimise this module: its value is bit-for-bit fidelity
to the original algorithms.
"""

from __future__ import annotations

import itertools

from repro.catalog.catalog import Catalog
from repro.cost.model import CostModel
from repro.errors import OptimizerError
from repro.expr.predicates import Predicate
from repro.optimizer.joinutil import (
    choose_primary,
    eligible_methods,
    index_access,
)
from repro.optimizer.policies import (
    JoinContext,
    PlacementPolicy,
    rank_sorted,
)
from repro.optimizer.query import Query
from repro.plan.nodes import Join, JoinMethod, Plan, PlanNode, Scan
from repro.plan.streams import spine_of


def _shape(node: PlanNode):
    if isinstance(node, Scan):
        return node.table
    assert isinstance(node, Join)
    return (_shape(node.outer), _shape(node.inner))


def _skeleton_key(node: PlanNode) -> tuple:
    top_method = node.method if isinstance(node, Join) else None
    return (_shape(node), top_method)


class _Candidate:
    """One retained subplan for a table subset (reference copy)."""

    def __init__(self, node, estimate, unpruneable=False):
        self.node = node
        self.estimate = estimate
        self.unpruneable = unpruneable

    @property
    def cost(self) -> float:
        return self.estimate.cost

    def __eq__(self, other):
        return (
            isinstance(other, _Candidate)
            and self.node == other.node
            and self.estimate == other.estimate
            and self.unpruneable == other.unpruneable
        )


class ReferenceSystemRPlanner:
    """Seed left-deep DP enumerator: frozenset keys, deep clones."""

    def __init__(
        self,
        catalog: Catalog,
        model: CostModel,
        policy: PlacementPolicy | None = None,
        methods: tuple[JoinMethod, ...] = tuple(JoinMethod),
    ) -> None:
        self.catalog = catalog
        self.model = model
        self.policy = policy or PlacementPolicy()
        self.methods = methods

    def plan(self, query: Query) -> Plan:
        candidates = self.final_candidates(query)
        best = min(candidates, key=lambda candidate: candidate.cost)
        return Plan(
            root=best.node,
            estimated_cost=best.estimate.cost,
            estimated_rows=best.estimate.rows,
        )

    def final_candidates(self, query: Query) -> list[_Candidate]:
        table_list = sorted(query.tables)
        join_predicates = query.join_predicates()

        dp: dict[frozenset[str], list[_Candidate]] = {}
        for table in table_list:
            dp[frozenset({table})] = self._prune(
                self._base_candidates(query, table)
            )

        for size in range(2, len(table_list) + 1):
            for subset_tuple in itertools.combinations(table_list, size):
                subset = frozenset(subset_tuple)
                candidates = self._extend(query, dp, subset, join_predicates)
                if not candidates:
                    candidates = self._extend(
                        query, dp, subset, join_predicates, allow_cross=True
                    )
                if candidates:
                    dp[subset] = self._prune(candidates)

        final = dp.get(frozenset(table_list))
        if not final:
            raise OptimizerError(
                f"could not connect tables {table_list}; "
                "query graph may be malformed"
            )
        return final

    def _base_scan(self, query: Query, table: str) -> Scan:
        scan = Scan(filters=[], table=table)
        self.policy.place_scan(
            scan, list(query.selections_on(table)), self.model
        )
        return scan

    def _base_candidates(self, query: Query, table: str) -> list[_Candidate]:
        seq_scan = self._base_scan(query, table)
        candidates = [
            _Candidate(seq_scan, self.model.estimate_plan(seq_scan))
        ]
        entry = self.catalog.table(table)
        for predicate in seq_scan.filters:
            access = index_access(entry, predicate)
            if access is None:
                continue
            attribute, low, high = access
            index_scan = Scan(
                filters=[p for p in seq_scan.filters if p is not predicate],
                table=table,
                index_attr=attribute,
                index_range=(low, high),
            )
            candidates.append(
                _Candidate(index_scan, self.model.estimate_plan(index_scan))
            )
        return candidates

    def _extend(
        self,
        query: Query,
        dp,
        subset: frozenset[str],
        join_predicates: list[Predicate],
        allow_cross: bool = False,
    ) -> list[_Candidate]:
        candidates: list[_Candidate] = []
        for inner_table in sorted(subset):
            outer_set = subset - {inner_table}
            outer_candidates = dp.get(outer_set)
            if not outer_candidates:
                continue
            connecting = [
                predicate
                for predicate in join_predicates
                if inner_table in predicate.tables
                and predicate.tables <= subset
            ]
            if not connecting and not allow_cross:
                continue
            for outer_candidate in outer_candidates:
                candidates.extend(
                    self._build_joins(
                        query, outer_candidate, inner_table, connecting
                    )
                )
        return candidates

    def _build_joins(
        self,
        query: Query,
        outer_candidate: _Candidate,
        inner_table: str,
        connecting: list[Predicate],
    ) -> list[_Candidate]:
        primary, secondaries, cheap = choose_primary(connecting)
        built: list[_Candidate] = []
        for method in eligible_methods(
            self.catalog,
            primary,
            cheap,
            inner_table,
            self.methods,
            include_dominated=False,
        ):
            outer = outer_candidate.node.clone()
            inner = self._base_scan(query, inner_table)
            join = Join(
                filters=rank_sorted(secondaries),
                outer=outer,
                inner=inner,
                method=method,
                primary=primary,
            )
            inner_estimate = self.model.estimate_plan(inner)
            ctx = JoinContext(
                outer_rows=outer_candidate.estimate.rows,
                inner_rows=inner_estimate.rows,
                per_input=self.model.per_input(
                    join,
                    outer_candidate.estimate.rows,
                    inner_estimate.rows,
                ),
            )
            unpruneable_here = self.policy.on_join(join, self.model, ctx)
            estimate = self.model.estimate_plan(join)
            built.append(
                _Candidate(
                    node=join,
                    estimate=estimate,
                    unpruneable=(
                        unpruneable_here or outer_candidate.unpruneable
                    ),
                )
            )
        return built

    def _prune(self, candidates: list[_Candidate]) -> list[_Candidate]:
        kept: list[_Candidate] = []
        best = min(candidates, key=lambda candidate: candidate.cost)
        kept.append(best)
        by_order: dict[object, _Candidate] = {}
        for candidate in candidates:
            order = candidate.estimate.order
            if order is None:
                continue
            current = by_order.get(order)
            if current is None or candidate.cost < current.cost:
                by_order[order] = candidate
        for candidate in by_order.values():
            if candidate is not best:
                kept.append(candidate)
        by_skeleton: dict[object, _Candidate] = {}
        for candidate in candidates:
            if not candidate.unpruneable:
                continue
            key = _skeleton_key(candidate.node)
            current = by_skeleton.get(key)
            if current is None or candidate.cost < current.cost:
                by_skeleton[key] = candidate
        for candidate in by_skeleton.values():
            if candidate not in kept:
                kept.append(candidate)
        return kept


def reference_exhaustive_plan(
    query: Query,
    catalog: Catalog,
    model: CostModel,
    method_choice: str = "greedy",
    combo_limit: int = 2_000_000,
) -> Plan:
    """Seed exhaustive search: full product over placements, no pruning."""
    if method_choice not in ("greedy", "enumerate"):
        raise OptimizerError(f"unknown method_choice: {method_choice!r}")
    tables = sorted(query.tables)
    join_predicates = query.join_predicates()

    best_root = None
    best_cost = float("inf")
    combos_seen = 0
    for order in itertools.permutations(tables):
        root, movable = _ref_skeleton(query, order, join_predicates)
        if root is None:
            continue
        if isinstance(root, Scan):
            estimate = model.estimate_plan(root)
            return Plan(root, estimate.cost, estimate.rows)
        spine = spine_of(root)
        slot_ranges = [
            range(spine.entry_slot(predicate), spine.slots)
            for predicate in movable
        ]
        for slots in itertools.product(*slot_ranges):
            combos_seen += 1
            if combos_seen > combo_limit:
                raise OptimizerError(
                    f"exhaustive placement exceeded {combo_limit} "
                    "combinations; use a heuristic strategy"
                )
            spine.apply_placement(dict(zip(movable, slots)))
            for cost in _ref_method_costs(spine, catalog, model, method_choice):
                if cost < best_cost:
                    best_cost = cost
                    best_root = root.clone()
    if best_root is None:
        raise OptimizerError("no plan found (disconnected query graph?)")
    estimate = model.estimate_plan(best_root)
    return Plan(best_root, estimate.cost, estimate.rows)


def _ref_skeleton(query, order, join_predicates):
    movable: list[Predicate] = []

    def make_scan(table: str) -> Scan:
        cheap = [
            p for p in query.selections_on(table) if not p.is_expensive
        ]
        expensive = [
            p for p in query.selections_on(table) if p.is_expensive
        ]
        movable.extend(expensive)
        return Scan(filters=rank_sorted(cheap) + expensive, table=table)

    root = make_scan(order[0])
    seen = {order[0]}
    used: set[int] = set()
    for table in order[1:]:
        seen.add(table)
        connecting = [
            p
            for p in join_predicates
            if table in p.tables
            and p.tables <= seen
            and p.pred_id not in used
        ]
        primary, secondaries, cheap = choose_primary(connecting)
        used.add(primary.pred_id)
        used.update(p.pred_id for p in secondaries)
        cheap_secondaries = [p for p in secondaries if not p.is_expensive]
        expensive_secondaries = [p for p in secondaries if p.is_expensive]
        movable.extend(expensive_secondaries)
        method = JoinMethod.HASH if cheap else JoinMethod.NESTED_LOOP
        root = Join(
            filters=rank_sorted(cheap_secondaries) + expensive_secondaries,
            outer=root,
            inner=make_scan(table),
            method=method,
            primary=primary,
        )
    return root, movable


def _ref_method_costs(spine, catalog: Catalog, model: CostModel, method_choice):
    choices = []
    for spine_join in spine.joins:
        join = spine_join.join
        assert isinstance(join.inner, Scan)
        primary = join.primary
        cheap = primary.is_equijoin and not primary.is_expensive
        choices.append(
            eligible_methods(catalog, primary, cheap, join.inner.table)
        )

    if method_choice == "greedy":
        for spine_join, methods in zip(spine.joins, choices):
            join = spine_join.join
            best_method = min(
                methods,
                key=lambda method: _ref_with_method(join, method, model),
            )
            join.method = best_method
        yield model.estimate_plan(spine.top).cost
        return

    for combo in itertools.product(*choices):
        for spine_join, method in zip(spine.joins, combo):
            spine_join.join.method = method
        yield model.estimate_plan(spine.top).cost


def _ref_with_method(join: Join, method: JoinMethod, model: CostModel) -> float:
    previous = join.method
    join.method = method
    try:
        return model.estimate_plan(join).cost
    finally:
        join.method = previous
