"""Tests for optimizer statistics guardrails and the degradation ladder."""

import math

import pytest

from repro.bench.workloads import build_workload
from repro.catalog.datagen import build_database
from repro.errors import OptimizerError, PlanningTimeout
from repro.faults import FaultInjector, FaultPlan, FaultSpec
from repro.obs import ProvenanceLedger
from repro.obs.artifacts import plan_fingerprint
from repro.optimizer import (
    DEGRADATION_LADDER,
    STRATEGIES,
    optimize,
    optimize_degraded,
    sanitize_predicate,
    sanitize_query,
)


def q1(db):
    return build_workload(db, "q1")


class TestSanitize:
    def _costly(self, db):
        workload = q1(db)
        (predicate,) = [
            p for p in workload.query.predicates if p.is_expensive
        ]
        return workload.query, predicate

    def test_honest_stats_untouched(self, tiny_db):
        query, predicate = self._costly(tiny_db)
        before = (predicate.selectivity, predicate.cost_per_tuple)
        assert sanitize_query(query) == 0
        assert (predicate.selectivity, predicate.cost_per_tuple) == before

    @pytest.mark.parametrize(
        "selectivity, expected",
        [
            (float("nan"), 0.5),
            (-0.25, 0.0),
            (3.0, 1.0),
            (float("inf"), 1.0),
        ],
    )
    def test_selectivity_clamps(self, tiny_db, selectivity, expected):
        _, predicate = self._costly(tiny_db)
        predicate.selectivity = selectivity
        assert sanitize_predicate(predicate) == 1
        assert predicate.selectivity == expected

    @pytest.mark.parametrize(
        "cost, expected",
        [
            (float("nan"), 0.0),
            (-50.0, 0.0),
            (float("-inf"), 0.0),
            (float("inf"), 1e12),
        ],
    )
    def test_cost_clamps(self, tiny_db, cost, expected):
        _, predicate = self._costly(tiny_db)
        predicate.cost_per_tuple = cost
        assert sanitize_predicate(predicate) == 1
        assert predicate.cost_per_tuple == expected

    def test_sanitize_is_idempotent(self, tiny_db):
        query, predicate = self._costly(tiny_db)
        predicate.selectivity = float("nan")
        predicate.cost_per_tuple = float("inf")
        assert sanitize_query(query) == 2
        assert sanitize_query(query) == 0

    def test_clamps_recorded_in_ledger(self, tiny_db):
        _, predicate = self._costly(tiny_db)
        predicate.selectivity = float("nan")
        ledger = ProvenanceLedger()
        sanitize_predicate(predicate, ledger=ledger)
        events = [
            e for e in ledger.events if e.kind == "stats.clamp"
        ]
        assert len(events) == 1
        assert events[0].data["field"] == "selectivity"
        assert events[0].data["old"] == "nan"
        assert events[0].data["new"] == "0.5"


class TestOptimizeWithHostileStats:
    def test_every_strategy_plans_through_corrupted_stats(self):
        db = build_database(scale=5, seed=42)
        fault_plan = FaultPlan(
            seed=0,
            specs=(
                FaultSpec(
                    "costly100",
                    "corrupt-stats",
                    selectivity=float("nan"),
                    cost_per_call=float("-inf"),
                ),
            ),
        )
        with FaultInjector(fault_plan).install(db.catalog):
            query = build_workload(db, "q1").query
            for strategy in STRATEGIES:
                optimized = optimize(db, query, strategy=strategy)
                assert math.isfinite(optimized.estimated_cost)
        # The first optimize() repaired the query in place; the clamp
        # count lands in its notes.
        assert all(
            math.isfinite(p.selectivity)
            and math.isfinite(p.cost_per_tuple)
            for p in query.predicates
        )

    def test_fingerprint_neutral_on_honest_stats(self, tiny_db):
        query = q1(tiny_db).query
        first = optimize(tiny_db, query, strategy="migration")
        second = optimize(tiny_db, query, strategy="migration")
        assert "stats_clamped" not in first.notes
        assert plan_fingerprint(first.plan) == plan_fingerprint(
            second.plan
        )

    def test_clamp_count_reported_in_notes(self):
        db = build_database(scale=5, seed=42)
        query = build_workload(db, "q1").query
        (predicate,) = [p for p in query.predicates if p.is_expensive]
        predicate.selectivity = float("nan")
        optimized = optimize(db, query, strategy="pushdown")
        assert optimized.notes["stats_clamped"] == 1


class TestDegradationLadder:
    def setup_method(self):
        self.db = build_database(scale=5, seed=42)
        self.query = build_workload(self.db, "q1").query

    def test_no_faults_returns_requested_strategy(self):
        optimized = optimize_degraded(
            self.db, self.query, strategy="exhaustive"
        )
        assert optimized.strategy == "exhaustive"
        assert "degraded" not in optimized.notes

    def test_faulted_rungs_degrade_in_ladder_order(self):
        fault_plan = FaultPlan(
            seed=0,
            planner_faults={
                "exhaustive": "boom",
                "migration": "also boom",
            },
        )
        ledger = ProvenanceLedger()
        optimized = optimize_degraded(
            self.db,
            self.query,
            strategy="exhaustive",
            fault_plan=fault_plan,
            ledger=ledger,
        )
        assert optimized.strategy == "pullrank"
        assert optimized.notes["requested_strategy"] == "exhaustive"
        assert len(optimized.notes["degraded"]) == 2
        events = [
            e for e in ledger.events if e.kind == "planner.degraded"
        ]
        assert [e.data["strategy"] for e in events] == [
            "exhaustive", "migration",
        ]
        assert events[0].data["next_rung"] == "migration"

    def test_never_climbs_the_ladder(self):
        # Requesting pullrank must not fall back *up* to exhaustive.
        fault_plan = FaultPlan(seed=0, planner_faults={"pullrank": "boom"})
        optimized = optimize_degraded(
            self.db, self.query, strategy="pullrank",
            fault_plan=fault_plan,
        )
        assert optimized.strategy == "pushdown"

    def test_off_ladder_strategy_gets_full_ladder(self):
        fault_plan = FaultPlan(seed=0, planner_faults={"ldl": "boom"})
        optimized = optimize_degraded(
            self.db, self.query, strategy="ldl", fault_plan=fault_plan
        )
        assert optimized.strategy == "exhaustive"
        assert optimized.notes["requested_strategy"] == "ldl"

    def test_all_rungs_failing_raises_structured_error(self):
        fault_plan = FaultPlan(
            seed=0,
            planner_faults={
                rung: "boom" for rung in DEGRADATION_LADDER
            },
        )
        with pytest.raises(OptimizerError) as exc_info:
            optimize_degraded(
                self.db,
                self.query,
                strategy="exhaustive",
                fault_plan=fault_plan,
            )
        message = str(exc_info.value)
        assert "every ladder rung failed" in message
        for rung in DEGRADATION_LADDER:
            assert rung in message

    def test_unknown_strategy_rejected(self):
        with pytest.raises(OptimizerError):
            optimize_degraded(self.db, self.query, strategy="bogus")

    def test_planning_budget_degrades(self):
        # An impossible budget fails every rung but the last, which is
        # exempt (a plan beats no plan).
        optimized = optimize_degraded(
            self.db,
            self.query,
            strategy="exhaustive",
            planning_budget=0.0,
        )
        assert optimized.strategy == "pushdown"
        degraded = optimized.notes["degraded"]
        assert any("PlanningTimeout" in note for note in degraded)

    def test_planning_timeout_carries_context(self):
        error = PlanningTimeout("exhaustive", 1.5, 0.5)
        assert error.strategy == "exhaustive"
        assert error.elapsed == 1.5
        assert error.budget == 0.5
