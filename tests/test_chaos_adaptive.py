"""Chaos with the adaptive controller armed: equivalence under fire.

Every chaos (seed, strategy) cell gains a second execution on a freshly
planned copy with mid-query re-optimization enabled. The hard invariant:
whenever neither run saw an error fault fire, the adaptive twin's row
multiset equals the static run's — adaptivity may move predicates, never
rows. Under the ``stats`` profile faults only corrupt catalog entries at
install time (no runtime errors), so *every* cell is held to strict
equivalence there; the mixed profile additionally exercises the twin
under all four containment exhaustion policies.
"""

import pytest

from repro.faults.chaos import run_chaos

SEEDS = (7, 11, 13)


def assert_clean(report):
    assert report.passed, "\n".join(report.violations)


@pytest.fixture(scope="module")
def stats_report():
    return run_chaos(
        "q1",
        seeds=SEEDS,
        policy="abort",
        profile="stats",
        scale=5,
        adaptive=True,
    )


class TestStatsProfile:
    def test_invariants_hold(self, stats_report):
        assert_clean(stats_report)
        assert stats_report.adaptive

    def test_every_twin_strictly_equivalent(self, stats_report):
        # Corrupt-stats faults fire at install time only, so both runs
        # always complete and the strict row-multiset gate applies to
        # every cell — "n/a" would mean the twin never ran.
        for outcome in stats_report.outcomes:
            assert outcome.adaptive_completed is True, outcome.as_dict()
            assert outcome.adaptive_errors_fired == 0
            assert outcome.adaptive_vs_static == "equal", outcome.as_dict()
            assert outcome.adaptive_row_count == outcome.row_count

    def test_report_carries_the_policy(self, stats_report):
        document = stats_report.as_dict()
        assert document["adaptive"] is True
        assert "adaptive_vs_static" in document["outcomes"][0]


class TestMixedProfileAllPolicies:
    @pytest.mark.parametrize(
        "policy", ["abort", "skip-row", "assume-pass", "assume-fail"]
    )
    def test_invariants_hold_under_policy(self, policy):
        report = run_chaos(
            "q1",
            seeds=SEEDS,
            policy=policy,
            profile="mixed",
            scale=5,
            adaptive=True,
        )
        assert_clean(report)
        # Strict equivalence is audited inside run_chaos whenever no
        # error fault fired in either run; here we additionally require
        # that the audit actually had teeth somewhere.
        strict = [
            outcome for outcome in report.outcomes
            if outcome.adaptive_vs_static == "equal"
        ]
        assert strict, "no cell ever qualified for the strict audit"

    def test_policy_knobs_reach_the_twin(self):
        report = run_chaos(
            "q1",
            seeds=(7,),
            policy="abort",
            profile="stats",
            scale=5,
            adaptive=True,
            drift_threshold=1.5,
            max_replans=1,
        )
        assert_clean(report)
        assert report.drift_threshold == 1.5
        assert report.max_replans == 1
