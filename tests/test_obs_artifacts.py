"""Tests for run artifacts: recording, loading, fingerprints, diffing."""

from __future__ import annotations

import copy
import json
import subprocess
import sys

import pytest

from repro.bench import run_strategies
from repro.bench.workloads import build_workload
from repro.errors import ArtifactError
from repro.obs import (
    ARTIFACT_PREFIX,
    SCHEMA_VERSION,
    ArtifactRecorder,
    PhaseProfiler,
    artifact_path,
    build_run_artifact,
    collect_artifacts,
    diff_artifacts,
    has_regressions,
    load_run_artifact,
    plan_fingerprint,
    record_run_artifact,
)


@pytest.fixture(scope="module")
def outcomes(tiny_db):
    workload = build_workload(tiny_db, "q1")
    return run_strategies(
        tiny_db,
        workload.query,
        strategies=("pushdown", "migration"),
        instrument=True,
    )


class TestRoundTrip:
    def test_record_and_load(self, outcomes, tmp_path):
        target = record_run_artifact(
            tmp_path, "q1", outcomes, scale=20, seed=11
        )
        assert target == artifact_path(tmp_path, "q1")
        assert target.name == f"{ARTIFACT_PREFIX}q1.json"
        document = load_run_artifact(target)
        assert document["schema_version"] == SCHEMA_VERSION
        assert document["workload"] == "q1"
        assert document["environment"]["scale"] == 20
        assert document["environment"]["seed"] == 11
        assert set(document["strategies"]) == {"pushdown", "migration"}
        record = document["strategies"]["migration"]
        assert record["fingerprint"] == plan_fingerprint(
            next(o for o in outcomes if o.strategy == "migration").plan
        )
        assert record["charged"] > 0
        assert record["completed"] is True
        # Instrumented run: per-operator actuals land in the artifact.
        assert record["operators"]

    def test_strict_json_no_nan_tokens(self, outcomes, tmp_path):
        target = record_run_artifact(
            tmp_path, "q1", outcomes, scale=20, seed=11
        )
        text = target.read_text(encoding="utf-8")
        assert "NaN" not in text
        assert "Infinity" not in text
        json.loads(text)  # parses under the strict default

    def test_profiler_sections_included(self, tiny_db, tmp_path):
        workload = build_workload(tiny_db, "q1")
        profiler = PhaseProfiler()
        run = run_strategies(
            tiny_db,
            workload.query,
            strategies=("migration",),
            profiler=profiler,
        )
        target = record_run_artifact(
            tmp_path, "q1", run, scale=20, seed=11, profiler=profiler
        )
        document = load_run_artifact(target)
        assert "systemr.level_1" in document["profile"]
        assert document["hotspots"]

    def test_explicit_json_path(self, outcomes, tmp_path):
        target = record_run_artifact(
            tmp_path / "custom.json", "q1", outcomes, scale=20, seed=11
        )
        assert target.name == "custom.json"
        assert load_run_artifact(target)["workload"] == "q1"


class TestLoadErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(ArtifactError, match="cannot read"):
            load_run_artifact(tmp_path / "BENCH_none.json")

    def test_invalid_json(self, tmp_path):
        bad = tmp_path / "BENCH_bad.json"
        bad.write_text("{truncated", encoding="utf-8")
        with pytest.raises(ArtifactError, match="not valid JSON"):
            load_run_artifact(bad)

    def test_wrong_schema_version(self, tmp_path):
        future = tmp_path / "BENCH_future.json"
        future.write_text(
            json.dumps({"schema_version": SCHEMA_VERSION + 1}),
            encoding="utf-8",
        )
        with pytest.raises(ArtifactError, match="schema_version"):
            load_run_artifact(future)

    def test_non_object_document(self, tmp_path):
        flat = tmp_path / "BENCH_flat.json"
        flat.write_text("[1, 2]", encoding="utf-8")
        with pytest.raises(ArtifactError, match="not a JSON object"):
            load_run_artifact(flat)


class TestCollectAndRecorder:
    def test_collect_directory(self, outcomes, tmp_path):
        record_run_artifact(tmp_path, "q1", outcomes, scale=20, seed=11)
        record_run_artifact(tmp_path, "q2", outcomes, scale=20, seed=11)
        (tmp_path / "unrelated.json").write_text("{}", encoding="utf-8")
        found = collect_artifacts(tmp_path)
        assert sorted(found) == ["q1", "q2"]

    def test_collect_single_file(self, outcomes, tmp_path):
        target = record_run_artifact(
            tmp_path, "q1", outcomes, scale=20, seed=11
        )
        assert collect_artifacts(target) == {"q1": target}

    def test_disabled_recorder_is_a_no_op(self, outcomes, tmp_path):
        recorder = ArtifactRecorder(None, scale=20, seed=11)
        assert not recorder.enabled
        assert recorder.record("q1", outcomes) is None
        assert list(tmp_path.iterdir()) == []

    def test_enabled_recorder_writes(self, outcomes, tmp_path):
        recorder = ArtifactRecorder(tmp_path / "runs", scale=20, seed=11)
        assert recorder.enabled
        target = recorder.record("q1", outcomes)
        assert target is not None and target.exists()


class TestFingerprint:
    def test_stable_across_process_restarts(self, tmp_path):
        """The fingerprint must not depend on PYTHONHASHSEED — it is
        compared across CI runs and committed baselines."""
        script = (
            "from repro.catalog.datagen import build_database\n"
            "from repro.bench.workloads import build_workload\n"
            "from repro.optimizer import optimize\n"
            "from repro.obs import plan_fingerprint\n"
            "db = build_database(scale=10, seed=42)\n"
            "w = build_workload(db, 'q1')\n"
            "for s in ('pushdown', 'migration', 'pullup'):\n"
            "    opt = optimize(db, w.query, strategy=s)\n"
            "    print(s, plan_fingerprint(opt.plan))\n"
        )
        import os
        from pathlib import Path

        root = Path(__file__).resolve().parents[1]
        runs = []
        for hashseed in ("1", "2"):
            env = dict(os.environ)
            env["PYTHONPATH"] = str(root / "src")
            env["PYTHONHASHSEED"] = hashseed
            proc = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                env=env,
                cwd=root,
                timeout=120,
            )
            assert proc.returncode == 0, proc.stderr
            runs.append(proc.stdout)
        assert runs[0] == runs[1]

    def test_different_plans_different_fingerprints(self, tiny_db):
        workload = build_workload(tiny_db, "q1")
        from repro.optimizer import optimize

        pushdown = optimize(tiny_db, workload.query, strategy="pushdown")
        migration = optimize(tiny_db, workload.query, strategy="migration")
        assert plan_fingerprint(pushdown.plan) != plan_fingerprint(
            migration.plan
        )


class TestDiff:
    @pytest.fixture()
    def artifact(self, outcomes):
        return build_run_artifact("q1", outcomes, scale=20, seed=11)

    def test_identical_runs_no_regressions(self, artifact):
        findings = diff_artifacts(artifact, copy.deepcopy(artifact))
        assert not has_regressions(findings)

    def test_charged_regression_gates(self, artifact):
        worse = copy.deepcopy(artifact)
        worse["strategies"]["migration"]["charged"] *= 1.25
        findings = diff_artifacts(artifact, worse)
        assert has_regressions(findings)
        assert any(f.kind == "charged" for f in findings)

    def test_charged_within_threshold_passes(self, artifact):
        near = copy.deepcopy(artifact)
        near["strategies"]["migration"]["charged"] *= 1.05
        assert not has_regressions(diff_artifacts(artifact, near))

    def test_charged_improvement_is_a_note(self, artifact):
        better = copy.deepcopy(artifact)
        better["strategies"]["migration"]["charged"] *= 0.5
        findings = diff_artifacts(artifact, better)
        assert not has_regressions(findings)
        assert any(
            f.kind == "charged" and f.severity == "note" for f in findings
        )

    def test_fingerprint_change_gates(self, artifact):
        changed = copy.deepcopy(artifact)
        changed["strategies"]["migration"]["fingerprint"] = "deadbeef" * 2
        findings = diff_artifacts(artifact, changed)
        assert any(
            f.kind == "fingerprint" and f.severity == "regression"
            for f in findings
        )

    def test_dnf_flip_gates(self, artifact):
        flipped = copy.deepcopy(artifact)
        flipped["strategies"]["migration"]["completed"] = False
        findings = diff_artifacts(artifact, flipped)
        assert any(f.kind == "dnf" for f in findings)
        assert has_regressions(findings)

    def test_missing_strategy_gates_added_notes(self, artifact):
        fewer = copy.deepcopy(artifact)
        del fewer["strategies"]["migration"]
        findings = diff_artifacts(artifact, fewer)
        assert any(
            f.kind == "missing" and f.severity == "regression"
            for f in findings
        )
        # The reverse direction is only a note.
        reverse = diff_artifacts(fewer, artifact)
        assert not has_regressions(reverse)
        assert any(f.kind == "added" for f in reverse)

    def test_new_error_gates(self, artifact):
        broken = copy.deepcopy(artifact)
        broken["strategies"]["migration"]["error"] = "boom"
        findings = diff_artifacts(artifact, broken)
        assert any(f.kind == "error" for f in findings)
        assert has_regressions(findings)

    def test_error_widening_gates(self, artifact):
        wider = copy.deepcopy(artifact)
        wider["strategies"]["migration"]["estimation_error"] = 5.0
        findings = diff_artifacts(artifact, wider)
        assert any(
            f.kind == "estimation_error" and f.severity == "regression"
            for f in findings
        )

    def test_planning_time_not_gated_by_default(self, artifact):
        slower = copy.deepcopy(artifact)
        slower["strategies"]["migration"]["planning_seconds"] = (
            artifact["strategies"]["migration"]["planning_seconds"] * 100
            + 1.0
        )
        findings = diff_artifacts(artifact, slower)
        assert not has_regressions(findings)
        assert any(f.kind == "planning_time" for f in findings)
        gated = diff_artifacts(artifact, slower, max_time_regress=0.5)
        assert has_regressions(gated)

    def test_scale_mismatch_noted(self, artifact):
        other = copy.deepcopy(artifact)
        other["environment"]["scale"] = 1000
        findings = diff_artifacts(artifact, other)
        assert any(f.kind == "environment" for f in findings)

    def test_nan_round_trip_never_gates(self, artifact):
        # nan fields serialise as null; null vs null must not produce
        # spurious findings (e.g. a DNF'd plan has nan estimation error).
        nulled = copy.deepcopy(artifact)
        for record in nulled["strategies"].values():
            record["estimation_error"] = None
            record["planning_seconds"] = None
        assert not has_regressions(diff_artifacts(nulled, nulled))


class TestLedgerInArtifacts:
    @pytest.fixture(scope="class")
    def provenance_outcomes(self, tiny_db):
        workload = build_workload(tiny_db, "q4")
        return run_strategies(
            tiny_db,
            workload.query,
            strategies=("pushdown", "migration"),
            execute=False,
            provenance=True,
        )

    def test_ledger_serialised_per_strategy(
        self, provenance_outcomes, tmp_path
    ):
        target = record_run_artifact(
            tmp_path, "q4", provenance_outcomes, scale=20, seed=11
        )
        document = load_run_artifact(target)
        for strategy in ("pushdown", "migration"):
            ledger = document["strategies"][strategy]["ledger"]
            assert ledger["event_counts"]
            assert ledger["events"]
            assert ledger["events"][0]["seq"] == 0
        counts = document["strategies"]["migration"]["ledger"][
            "event_counts"
        ]
        assert "migration.select_best" in counts

    def test_without_provenance_no_ledger_key(self, outcomes, tmp_path):
        target = record_run_artifact(
            tmp_path, "q1", outcomes, scale=20, seed=11
        )
        document = load_run_artifact(target)
        for record in document["strategies"].values():
            assert "ledger" not in record

    def test_event_count_drift_is_a_note_not_a_gate(
        self, provenance_outcomes
    ):
        artifact = build_run_artifact(
            "q4", provenance_outcomes, scale=20, seed=11
        )
        drifted = copy.deepcopy(artifact)
        counts = drifted["strategies"]["migration"]["ledger"][
            "event_counts"
        ]
        counts["migration.move"] = counts.get("migration.move", 0) + 3
        counts["systemr.unpruneable"] = 0
        findings = diff_artifacts(artifact, drifted)
        ledger_findings = [f for f in findings if f.kind == "ledger"]
        assert len(ledger_findings) == 2
        assert all(f.severity == "note" for f in ledger_findings)
        assert not has_regressions(findings)
        assert any(
            "migration.move" in f.message for f in ledger_findings
        )

    def test_identical_ledgers_no_findings(self, provenance_outcomes):
        artifact = build_run_artifact(
            "q4", provenance_outcomes, scale=20, seed=11
        )
        findings = diff_artifacts(artifact, copy.deepcopy(artifact))
        assert not any(f.kind == "ledger" for f in findings)


class TestDiffGracefulDegradation:
    """Artifacts from older builds lack newer optional sections; the
    diff must keep comparing the shared fields instead of crashing."""

    @pytest.fixture()
    def with_ledger(self, tiny_db):
        workload = build_workload(tiny_db, "q4")
        outcomes = run_strategies(
            tiny_db,
            workload.query,
            strategies=("pushdown",),
            execute=False,
            provenance=True,
        )
        return build_run_artifact("q4", outcomes, scale=20, seed=11)

    def test_ledgerless_baseline_notes_but_never_gates(self, with_ledger):
        # A pre-provenance baseline: same measurements, no ledger.
        old = copy.deepcopy(with_ledger)
        for record in old["strategies"].values():
            record.pop("ledger", None)
        findings = diff_artifacts(old, with_ledger)
        assert not has_regressions(findings)
        ledger_findings = [f for f in findings if f.kind == "ledger"]
        assert len(ledger_findings) == 1
        assert ledger_findings[0].severity == "note"
        assert "candidate" in ledger_findings[0].message

    def test_ledgerless_candidate_notes_the_other_side(self, with_ledger):
        old = copy.deepcopy(with_ledger)
        for record in old["strategies"].values():
            record.pop("ledger", None)
        findings = diff_artifacts(with_ledger, old)
        ledger_findings = [f for f in findings if f.kind == "ledger"]
        assert len(ledger_findings) == 1
        assert "baseline" in ledger_findings[0].message

    def test_both_sides_ledgerless_stays_silent(self, with_ledger):
        old = copy.deepcopy(with_ledger)
        for record in old["strategies"].values():
            record.pop("ledger", None)
        findings = diff_artifacts(old, copy.deepcopy(old))
        assert not any(f.kind == "ledger" for f in findings)
        assert not has_regressions(findings)

    def test_malformed_ledger_treated_as_absent(self, with_ledger):
        broken = copy.deepcopy(with_ledger)
        broken["strategies"]["pushdown"]["ledger"] = "oops"
        findings = diff_artifacts(broken, with_ledger)
        assert not has_regressions(findings)

    def test_malformed_strategy_record_noted_not_fatal(self, with_ledger):
        broken = copy.deepcopy(with_ledger)
        broken["strategies"]["pushdown"] = ["not", "a", "record"]
        findings = diff_artifacts(broken, with_ledger)
        assert not has_regressions(findings)
        assert any(f.kind == "malformed" for f in findings)
        # And swapped: a malformed candidate record.
        findings = diff_artifacts(with_ledger, broken)
        assert not has_regressions(findings)
        assert any(f.kind == "malformed" for f in findings)

    def test_missing_environment_section_tolerated(self, with_ledger):
        bare = copy.deepcopy(with_ledger)
        bare.pop("environment")
        findings = diff_artifacts(bare, with_ledger)
        assert isinstance(findings, list)

    def test_missing_strategies_section_tolerated(self, with_ledger):
        bare = copy.deepcopy(with_ledger)
        bare.pop("strategies")
        findings = diff_artifacts(bare, with_ledger)
        # Every candidate strategy shows up as newly added, no crash.
        assert all(f.severity == "note" for f in findings if f.kind == "added")
