"""Tests for the Chrome trace_event export (repro.obs.chrome)."""

import json

from repro.obs.chrome import (
    PHASE_TID,
    PID,
    SPAN_TID,
    build_chrome_trace,
    export_chrome_trace,
)
from repro.obs.profile import NULL_PROFILER, PhaseProfiler
from repro.obs.tracer import NULL_TRACER, Tracer

REQUIRED_KEYS = ("ph", "ts", "pid", "tid", "name")


def _sample_tracer() -> Tracer:
    tracer = Tracer()
    with tracer.span("optimize", strategy="migration"):
        with tracer.span("enumerate") as inner:
            inner.event("prune", tables={"t2", "t1"})
        with tracer.span("migrate"):
            pass
    return tracer


def _sample_profiler() -> PhaseProfiler:
    profiler = PhaseProfiler()
    with profiler.phase("optimizer.total"):
        with profiler.phase("optimizer.enumerate"):
            pass
    return profiler


class TestEventShape:
    def test_every_event_has_required_keys(self):
        document = build_chrome_trace(_sample_tracer(), _sample_profiler())
        assert document["traceEvents"]
        for event in document["traceEvents"]:
            for key in REQUIRED_KEYS:
                assert key in event, f"{key} missing from {event}"
            assert event["pid"] == PID

    def test_metadata_names_process_and_threads(self):
        events = build_chrome_trace()["traceEvents"]
        metadata = [e for e in events if e["ph"] == "M"]
        assert {e["name"] for e in metadata} == {
            "process_name", "thread_name",
        }
        thread_names = {
            e["tid"]: e["args"]["name"]
            for e in metadata if e["name"] == "thread_name"
        }
        assert thread_names == {
            SPAN_TID: "tracer spans", PHASE_TID: "profiler phases",
        }

    def test_null_sources_emit_only_metadata(self):
        events = build_chrome_trace(NULL_TRACER, NULL_PROFILER)[
            "traceEvents"
        ]
        assert all(e["ph"] == "M" for e in events)

    def test_span_events_become_instants(self):
        events = build_chrome_trace(tracer=_sample_tracer())["traceEvents"]
        instants = [e for e in events if e["ph"] == "i"]
        assert len(instants) == 1
        assert instants[0]["name"] == "prune"
        assert instants[0]["s"] == "t"
        # Attributes were canonicalised at record time: sets are sorted
        # lists by the time they reach the export.
        assert instants[0]["args"]["tables"] == ["t1", "t2"]


class TestNesting:
    def test_x_event_containment_matches_span_parentage(self):
        tracer = _sample_tracer()
        events = build_chrome_trace(tracer=tracer)["traceEvents"]
        by_name = {
            e["name"]: e
            for e in events
            if e["ph"] == "X" and e["tid"] == SPAN_TID
        }
        assert set(by_name) == {"optimize", "enumerate", "migrate"}
        spans = {r["id"]: r for r in tracer.to_records()}
        for event in by_name.values():
            parent_id = event["args"]["parent"]
            if parent_id is None:
                continue
            parent_span = spans[parent_id]
            parent_event = by_name[parent_span["span"]]
            # Chrome infers nesting from ts/dur containment on a thread;
            # the child interval must sit inside its parent's.
            assert parent_event["ts"] <= event["ts"]
            assert (
                event["ts"] + event["dur"]
                <= parent_event["ts"] + parent_event["dur"] + 1e-6
            )

    def test_siblings_do_not_overlap(self):
        events = build_chrome_trace(tracer=_sample_tracer())["traceEvents"]
        by_name = {
            e["name"]: e
            for e in events
            if e["ph"] == "X" and e["tid"] == SPAN_TID
        }
        first, second = by_name["enumerate"], by_name["migrate"]
        assert first["ts"] + first["dur"] <= second["ts"] + 1e-6


class TestProfilerTrack:
    def test_phases_laid_end_to_end(self):
        events = build_chrome_trace(profiler=_sample_profiler())[
            "traceEvents"
        ]
        phases = [
            e for e in events
            if e["ph"] == "X" and e["tid"] == PHASE_TID
        ]
        assert len(phases) == 2
        cursor = 0.0
        for event in phases:
            assert event["ts"] == cursor
            assert event["args"]["aggregate"] is True
            assert event["args"]["count"] >= 1
            cursor += event["dur"]


class TestExport:
    def test_writes_valid_json_and_returns_count(self, tmp_path):
        path = tmp_path / "trace.json"
        count = export_chrome_trace(
            str(path), _sample_tracer(), _sample_profiler()
        )
        document = json.loads(path.read_text())
        assert document["displayTimeUnit"] == "ms"
        assert len(document["traceEvents"]) == count
        assert count > 3  # more than just metadata
