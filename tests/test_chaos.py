"""The property-style chaos suite plus the ``repro chaos`` CLI.

Each test runs seeded fault schedules through every ladder strategy and
asserts the robustness invariants (no escapes, recoverable ⇒ oracle
rows, unrecoverable ⇒ structured DNF or honest quarantine). The seeds
are fixed so failures replay exactly.
"""

import json

import pytest

from repro.__main__ import main
from repro.errors import ReproError
from repro.faults.chaos import (
    DEFAULT_CHAOS_STRATEGIES,
    format_chaos_report,
    run_chaos,
)

#: Three distinct chaos seeds, per the acceptance criteria.
SEEDS = (7, 11, 13)


def assert_clean(report):
    assert report.passed, "\n".join(report.violations)
    assert len(report.outcomes) == len(report.seeds) * len(
        report.strategies
    )


class TestChaosInvariants:
    @pytest.mark.parametrize("policy", ["abort", "skip-row"])
    def test_q1_mixed_faults_hold_invariants(self, policy):
        report = run_chaos(
            "q1", seeds=SEEDS, policy=policy, scale=5
        )
        assert_clean(report)

    def test_transient_profile_always_recovers_oracle_rows(self):
        # Transient-profile schedules draw failure windows of at most 3;
        # retries=3 makes every schedule recoverable, so every strategy
        # must reproduce the fault-free rows exactly.
        report = run_chaos(
            "q1",
            seeds=SEEDS,
            policy="abort",
            retries=3,
            profile="transient",
            scale=5,
        )
        assert_clean(report)
        for outcome in report.outcomes:
            assert outcome.completed
            assert outcome.rows_vs_oracle == "equal"
            assert outcome.quarantined == 0

    def test_permanent_profile_surfaces_structured_dnf(self):
        report = run_chaos(
            "q1",
            seeds=SEEDS,
            policy="abort",
            profile="permanent",
            scale=5,
        )
        assert_clean(report)
        fired = [o for o in report.outcomes if o.errors_fired]
        assert fired, "no permanent fault ever fired"
        for outcome in fired:
            assert not outcome.completed
            assert outcome.error.startswith("udf:")

    def test_permanent_profile_skip_row_quarantines_subset(self):
        report = run_chaos(
            "q1",
            seeds=SEEDS,
            policy="skip-row",
            profile="permanent",
            scale=5,
        )
        assert_clean(report)
        for outcome in report.outcomes:
            assert outcome.completed
            if outcome.quarantined:
                assert outcome.rows_vs_oracle in ("equal", "subset")

    def test_stats_profile_never_changes_rows(self):
        report = run_chaos(
            "q1", seeds=SEEDS, policy="abort", profile="stats", scale=5
        )
        assert_clean(report)
        for outcome in report.outcomes:
            assert outcome.completed
            assert outcome.rows_vs_oracle == "equal"

    def test_multi_join_workload_with_planner_faults(self):
        report = run_chaos(
            "q4",
            seeds=SEEDS,
            policy="assume-fail",
            scale=5,
            planner_fault_rate=0.5,
        )
        assert_clean(report)

    def test_report_round_trips_as_json(self):
        report = run_chaos("q1", seeds=(7,), scale=5)
        document = json.loads(json.dumps(report.as_dict()))
        assert document["passed"] is True
        assert document["workload"] == "q1"
        assert set(document["fault_plans"]) == {"7"}
        assert len(document["outcomes"]) == len(
            DEFAULT_CHAOS_STRATEGIES
        )

    def test_format_report_is_readable(self):
        report = run_chaos("q1", seeds=(7,), scale=5)
        text = format_chaos_report(report)
        assert "oracle:" in text
        assert "result: PASS" in text
        for strategy in DEFAULT_CHAOS_STRATEGIES:
            assert strategy in text

    def test_unknown_workload_rejected(self):
        with pytest.raises(ReproError) as exc_info:
            run_chaos("q99", seeds=(7,))
        assert "q1" in str(exc_info.value)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ReproError) as exc_info:
            run_chaos("q1", seeds=(7,), policy="explode")
        assert "abort" in str(exc_info.value)

    def test_unknown_profile_rejected(self):
        with pytest.raises(ReproError):
            run_chaos("q1", seeds=(7,), profile="bogus")


class TestChaosCli:
    def run(self, capsys, *argv):
        code = main(["chaos", *argv])
        captured = capsys.readouterr()
        return code, captured.out, captured.err

    def test_single_seed_run_passes(self, capsys):
        code, out, _ = self.run(capsys, "q1", "--seed", "7")
        assert code == 0
        assert "result: PASS" in out
        assert "oracle:" in out

    def test_multiple_seeds_via_seeds_flag(self, capsys):
        code, out, _ = self.run(
            capsys, "q1", "--seeds", "7,11", "--policy", "skip-row"
        )
        assert code == 0
        assert "seed 7:" in out
        assert "seed 11:" in out

    def test_report_artifact_written(self, capsys, tmp_path):
        code, _, err = self.run(
            capsys, "q1", "--seed", "7", "--report", str(tmp_path)
        )
        assert code == 0
        target = tmp_path / "CHAOS_q1.json"
        assert "chaos artifact" in err
        document = json.loads(target.read_text())
        assert document["passed"] is True

    def test_unknown_workload_exits_two(self, capsys):
        with pytest.raises(SystemExit) as exc_info:
            self.run(capsys, "q99", "--seed", "7")
        assert exc_info.value.code == 2
        err = capsys.readouterr().err
        assert "q1" in err

    def test_unknown_policy_exits_two(self, capsys):
        with pytest.raises(SystemExit) as exc_info:
            self.run(capsys, "q1", "--policy", "explode")
        assert exc_info.value.code == 2
        err = capsys.readouterr().err
        assert "abort" in err

    def test_unknown_strategy_spec_exits_two(self, capsys):
        code, _, err = self.run(
            capsys, "q1", "--strategies", "bogus", "--seed", "7"
        )
        assert code == 2
        assert "unknown strategies" in err
        assert "pushdown" in err

    def test_bad_seeds_exit_two(self, capsys):
        code, _, err = self.run(capsys, "q1", "--seeds", "seven")
        assert code == 2
        assert "error:" in err

    def test_empty_seeds_exit_two(self, capsys):
        code, _, err = self.run(capsys, "q1", "--seeds", ",")
        assert code == 2
        assert "no chaos seeds" in err
