"""Tests for the ASCII report formatting edge cases."""

from __future__ import annotations

import math

from repro.bench.harness import StrategyOutcome
from repro.bench.report import format_outcomes, format_planning_times


def completed_outcome(
    strategy="migration",
    estimated_cost=100.0,
    charged=100.0,
    relative=1.0,
    planning_seconds=0.0123,
):
    return StrategyOutcome(
        strategy=strategy,
        plan=None,
        estimated_cost=estimated_cost,
        planning_seconds=planning_seconds,
        charged=charged,
        completed=True,
        executed=True,
        relative=relative,
    )


class TestFormatOutcomes:
    def test_error_row(self):
        failed = StrategyOutcome(
            strategy="ldl-ikkbz",
            plan=None,
            estimated_cost=float("nan"),
            planning_seconds=float("nan"),
            error="cyclic join graph",
        )
        text = format_outcomes("T", [failed])
        assert "ldl-ikkbz" in text
        assert "ERROR: cyclic join graph" in text

    def test_dnf_row(self):
        dnf = StrategyOutcome(
            strategy="pullup",
            plan=None,
            estimated_cost=500.0,
            planning_seconds=0.002,
            charged=15000.0,
            completed=False,
            executed=True,
        )
        text = format_outcomes("T", [dnf])
        assert "DNF" in text
        assert "never completed" in text
        assert "2.0" in text  # planning time still reported for DNF rows

    def test_not_run_row(self):
        unexecuted = StrategyOutcome(
            strategy="pushdown",
            plan=None,
            estimated_cost=42.0,
            planning_seconds=0.001,
        )
        text = format_outcomes("T", [unexecuted])
        assert "(not run)" in text

    def test_all_rows_nan_relative_no_crash(self):
        # With no completed plans max_relative falls back to 1.0 and no
        # bar division blows up.
        rows = [
            StrategyOutcome(
                strategy="pushdown",
                plan=None,
                estimated_cost=1.0,
                planning_seconds=0.001,
            ),
            StrategyOutcome(
                strategy="pullup",
                plan=None,
                estimated_cost=float("nan"),
                planning_seconds=float("nan"),
                error="boom",
            ),
        ]
        text = format_outcomes("T", rows)
        assert "pushdown" in text and "pullup" in text

    def test_plan_ms_column(self):
        text = format_outcomes("T", [completed_outcome()])
        assert "plan.ms" in text
        assert "12.3" in text  # 0.0123 s -> 12.3 ms

    def test_nan_planning_time_renders_dash(self):
        outcome = completed_outcome(planning_seconds=float("nan"))
        text = format_outcomes("T", [outcome])
        assert "—" in text

    def test_zero_charge_estimation_error(self):
        # A free plan with a zero estimate is a perfect estimate (+0%),
        # not an undefined one (satellite: harness.estimation_error).
        free = completed_outcome(estimated_cost=0.0, charged=0.0)
        assert free.estimation_error == 0.0
        text = format_outcomes("T", [free])
        assert "+0%" in text

    def test_zero_charge_nonzero_estimate_is_nan(self):
        odd = completed_outcome(estimated_cost=10.0, charged=0.0)
        assert math.isnan(odd.estimation_error)
        assert "—" in format_outcomes("T", [odd])

    def test_note_line_included(self):
        text = format_outcomes("T", [completed_outcome()], note="SELECT 1")
        assert "SELECT 1" in text


class TestFormatPlanningTimes:
    def test_normal_row(self):
        text = format_planning_times("T", [completed_outcome()])
        assert "12.3 ms" in text

    def test_nan_renders_dash_not_nan(self):
        outcome = completed_outcome(planning_seconds=float("nan"))
        text = format_planning_times("T", [outcome])
        assert "—" in text
        assert "nan" not in text

    def test_error_row(self):
        failed = StrategyOutcome(
            strategy="ldl-ikkbz",
            plan=None,
            estimated_cost=float("nan"),
            planning_seconds=float("nan"),
            error="no linear join tree",
        )
        text = format_planning_times("T", [failed])
        assert "ERROR: no linear join tree" in text
