"""The ``repro top`` monitor, ``bench-history``, and ``--metrics-export``."""

import json

import pytest

from repro.__main__ import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


# -- repro top ---------------------------------------------------------------


def test_top_once_completed(capsys):
    code, out, _ = run_cli(
        capsys, "top", "q1", "--once", "--scale", "5"
    )
    assert code == 0
    assert "top: q1 / migration" in out
    assert "state=completed" in out
    assert "progress 100.0%" in out
    assert "resources:" in out
    assert "cache:" in out
    # One deterministic snapshot: no intermediate redraws.
    assert out.count("state=") == 1


def test_top_strategy_flag(capsys):
    code, out, _ = run_cli(
        capsys, "top", "q4", "--once", "--strategy", "pushdown",
        "--scale", "5",
    )
    assert code == 0
    assert "top: q4 / pushdown" in out


def test_top_live_mode_redraws(capsys):
    code, out, _ = run_cli(
        capsys, "top", "q1", "--scale", "5", "--refresh-every", "50"
    )
    assert code == 0
    # Live mode prints intermediate snapshots before the final one.
    assert out.count("top: q1 / migration") > 1
    assert "progress 100.0%" in out


def test_top_dnf_exits_one_with_frozen_progress(capsys):
    code, out, _ = run_cli(
        capsys, "top", "q1", "--once", "--scale", "5",
        "--budget", "50",
    )
    assert code == 1
    assert "state=aborted" in out
    assert "reason: budget:" in out
    assert "progress 100.0%" not in out


def test_top_metrics_export(capsys, tmp_path):
    target = tmp_path / "top.prom"
    code, _, err = run_cli(
        capsys, "top", "q1", "--once", "--scale", "5",
        "--metrics-export", str(target),
    )
    assert code == 0
    assert str(target) in err
    text = target.read_text()
    assert "repro_query_progress 1" in text
    assert "repro_operator_rows_out" in text


def test_top_usage_error_exits_two(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["top", "nonesuch", "--once"])
    assert excinfo.value.code == 2


# -- --metrics-export on the main verbs --------------------------------------


def test_compare_metrics_export_labels_strategies(capsys, tmp_path):
    target = tmp_path / "compare.json"
    code, _, err = run_cli(
        capsys, "--workload", "q1", "--compare", "--scale", "5",
        "--metrics-export", str(target),
    )
    assert code == 0
    assert str(target) in err
    document = json.loads(target.read_text())
    progress = document["families"]["repro_query_progress"]["series"]
    strategies = {series["labels"]["strategy"] for series in progress}
    assert "pushdown" in strategies
    assert "migration" in strategies


def test_single_strategy_metrics_export(capsys, tmp_path):
    target = tmp_path / "single.prom"
    code, _, _ = run_cli(
        capsys, "--workload", "q1", "--scale", "5",
        "--metrics-export", str(target),
    )
    assert code == 0
    assert "repro_query_progress 1" in target.read_text()


# -- bench-history -----------------------------------------------------------


def _record(capsys, directory, scale):
    code, _, _ = run_cli(
        capsys, "--workload", "q1", "--compare",
        "--scale", str(scale), "--record", str(directory),
    )
    assert code == 0


def test_bench_history_trend_table(capsys, tmp_path):
    first = tmp_path / "run1"
    second = tmp_path / "run2"
    _record(capsys, first, scale=5)
    _record(capsys, second, scale=5)
    code, out, _ = run_cli(
        capsys, "bench-history", str(first), str(second)
    )
    assert code == 0
    assert "== q1 (2 runs)" in out
    assert "pushdown" in out
    assert "migration" in out
    # Identical runs: no fingerprint-change markers anywhere.
    assert "*" not in out


def test_bench_history_marks_fingerprint_changes(capsys, tmp_path):
    first = tmp_path / "run1"
    second = tmp_path / "run2"
    _record(capsys, first, scale=5)
    _record(capsys, second, scale=5)
    # Forge a fingerprint change in the second run.
    artifact = second / "BENCH_q1.json"
    document = json.loads(artifact.read_text())
    document["strategies"]["migration"]["fingerprint"] = "0" * 16
    artifact.write_text(json.dumps(document))
    code, out, _ = run_cli(
        capsys, "bench-history", str(first), str(second)
    )
    assert code == 0
    assert "*" in out
    assert "fingerprint changed" in out


def test_bench_history_empty_dir_exits_two(capsys, tmp_path):
    empty = tmp_path / "empty"
    empty.mkdir()
    code, _, err = run_cli(capsys, "bench-history", str(empty))
    assert code == 2
    assert "no BENCH_" in err


def test_bench_history_unknown_workload_exits_two(capsys, tmp_path):
    run = tmp_path / "run"
    _record(capsys, run, scale=5)
    code, _, err = run_cli(
        capsys, "bench-history", str(run), "--workload", "q9"
    )
    assert code == 2
    assert "q9" in err


# -- chaos --telemetry -------------------------------------------------------


def test_chaos_telemetry_flag(capsys):
    code, out, _ = run_cli(
        capsys, "chaos", "q1", "--seed", "7", "--telemetry",
        "--scale", "5",
    )
    assert code == 0
    assert "[100%]" in out
    assert "result: PASS" in out
