"""The epoch-versioned statistics feedback store.

Round trips, epoch bookkeeping, collector accuracy under caching and
containment, the opt-in ``Catalog.apply_feedback`` injection path, and
byte-stability of the persisted ``STATS_*.json`` across fresh
interpreters with differing ``PYTHONHASHSEED`` (the same subprocess
pattern as ``test_provenance_determinism.py``).
"""

import json
import math
import os
import subprocess
import sys

import pytest

from repro import Executor, build_database, optimize
from repro.bench.workloads import build_workload
from repro.errors import ArtifactError
from repro.obs.feedback import (
    STATS_SCHEMA_VERSION,
    FeedbackCollector,
    PredicateObservation,
    StatsFeedbackStore,
    format_drift_report,
    format_stats_epoch,
    predicate_fingerprint,
    stats_path,
)

SRC = os.path.join(os.path.dirname(__file__), os.pardir, "src")


@pytest.fixture(scope="module")
def db():
    return build_database(scale=20, seed=42)


def _collect(db, workload_key="q4", strategy="pushdown", caching=False):
    workload = build_workload(db, workload_key)
    optimized = optimize(
        db, workload.query, strategy=strategy, caching=caching
    )
    collector = FeedbackCollector()
    executor = Executor(db, caching=caching, collector=collector)
    result = executor.execute(optimized.plan)
    return collector, result


# -- collector ---------------------------------------------------------------


def test_collector_counts_match_execution(db):
    collector, result = _collect(db)
    observations = collector.observations()
    assert observations, "q4 must produce predicate observations"
    expensive = [obs for obs in observations if obs.is_expensive]
    assert len(expensive) == 1
    obs = expensive[0]
    # Every charged call charged the declared per-call cost exactly, so
    # the observed per-call cost reproduces the declaration.
    assert obs.charged_calls == obs.evaluated
    assert obs.observed_cost_per_call == pytest.approx(
        obs.declared_cost_per_call
    )
    assert 0.0 <= obs.observed_selectivity <= 1.0


def test_collector_sees_cache_hits_as_free(db):
    uncached, _ = _collect(db, caching=False)
    cached, _ = _collect(db, caching=True)
    hot = [o for o in uncached.observations() if o.is_expensive][0]
    cold = [o for o in cached.observations() if o.is_expensive][0]
    # Same evaluations either way, but cache hits charge nothing, so the
    # cached run observes fewer charged calls — never more.
    assert cold.evaluated == hot.evaluated
    assert cold.charged_calls <= hot.charged_calls
    assert cold.charged_cost <= hot.charged_cost


def test_fingerprint_is_content_based(db):
    workload = build_workload(db, "q4")
    again = build_workload(db, "q4")
    first = {
        predicate_fingerprint(p) for p in workload.query.predicates
    }
    second = {predicate_fingerprint(p) for p in again.query.predicates}
    # Recompiling mints fresh pred_ids, but fingerprints are content
    # hashes: structurally identical predicates collide on purpose.
    assert first == second


# -- store round trip --------------------------------------------------------


def test_store_round_trip(tmp_path, db):
    collector, _ = _collect(db)
    store = StatsFeedbackStore("q4")
    number = store.record_epoch(
        collector.observations(), strategy="pushdown", scale=20, seed=42
    )
    assert number == 1
    target = store.save(tmp_path)
    assert target == stats_path(tmp_path, "q4")
    loaded = StatsFeedbackStore.load(target)
    assert loaded.workload == "q4"
    assert loaded.epoch_numbers() == [1]
    original = store.observations_for(1)
    reloaded = loaded.observations_for(1)
    assert [o.as_dict() for o in reloaded] == [
        o.as_dict() for o in original
    ]


def test_store_epochs_are_append_only(tmp_path, db):
    collector, _ = _collect(db)
    store = StatsFeedbackStore("q4")
    store.record_epoch(
        collector.observations(), strategy="pushdown", scale=20, seed=42
    )
    target = store.save(tmp_path)
    # Load, append, save again — the first epoch survives untouched.
    second = StatsFeedbackStore.load(target)
    assert (
        second.record_epoch(
            collector.observations(),
            strategy="migration",
            scale=20,
            seed=42,
        )
        == 2
    )
    second.save(target)
    final = StatsFeedbackStore.load(target)
    assert final.epoch_numbers() == [1, 2]
    assert final.epoch(1)["strategy"] == "pushdown"
    assert final.epoch(2)["strategy"] == "migration"


def test_store_rejects_wrong_schema_version(tmp_path):
    target = tmp_path / "STATS_q4.json"
    target.write_text(
        json.dumps(
            {
                "schema_version": STATS_SCHEMA_VERSION + 1,
                "workload": "q4",
                "epochs": [],
            }
        )
    )
    with pytest.raises(ArtifactError, match="schema_version"):
        StatsFeedbackStore.load(target)


def test_store_missing_file_and_epoch_errors(tmp_path):
    with pytest.raises(ArtifactError, match="cannot read"):
        StatsFeedbackStore.load(tmp_path / "STATS_q4.json")
    store = StatsFeedbackStore("q4")
    with pytest.raises(ArtifactError, match="no epoch 3"):
        store.epoch(3)
    with pytest.raises(ArtifactError, match="no epochs recorded"):
        store.latest_epoch()


def test_store_survives_non_finite_statistics(tmp_path):
    # Corrupted declarations (the chaos corrupt-stats case) must survive
    # the strict-JSON round trip: allow_nan=False forbids bare NaN.
    obs = PredicateObservation(
        fingerprint="aa" * 8,
        predicate="f(t1.a1)",
        tables=("t1",),
        functions=("f",),
        declared_selectivity=float("nan"),
        declared_cost_per_call=float("-inf"),
        evaluated=4,
        passed=2,
    )
    store = StatsFeedbackStore("q1")
    store.record_epoch([obs], strategy="pushdown", scale=5, seed=1)
    target = store.save(tmp_path)
    back = StatsFeedbackStore.load(target).observations_for(1)[0]
    assert math.isnan(back.declared_selectivity)
    assert back.declared_cost_per_call == float("-inf")
    assert back.observed_selectivity == 0.5


# -- renderers ----------------------------------------------------------------


def test_format_stats_epoch_lists_expensive_predicates(db):
    collector, _ = _collect(db)
    store = StatsFeedbackStore("q4")
    store.record_epoch(
        collector.observations(), strategy="pushdown", scale=20, seed=42
    )
    text = format_stats_epoch("q4", store.epoch(1))
    assert "decl.sel" in text and "obs.sel" in text
    assert "costly" in text
    assert "drift:" in text


def test_format_drift_report_compares_epochs(db):
    collector, _ = _collect(db)
    store = StatsFeedbackStore("q4")
    store.record_epoch(
        collector.observations(), strategy="pushdown", scale=20, seed=42
    )
    store.record_epoch(
        collector.observations(), strategy="pushdown", scale=20, seed=42
    )
    text = format_drift_report("q4", store.epoch(1), store.epoch(2))
    assert "epoch 1" in text and "epoch 2" in text
    # Identical observations: nothing moved.
    assert "0 predicate(s) moved" in text


# -- apply_feedback -----------------------------------------------------------


def test_apply_feedback_updates_declared_stats():
    db = build_database(scale=20, seed=42)
    collector, _ = _collect(db)
    store = StatsFeedbackStore("q4")
    store.record_epoch(
        collector.observations(), strategy="pushdown", scale=20, seed=42
    )
    observed = [
        o for o in store.observations_for(1) if o.is_expensive
    ][0]
    name = observed.functions[0]
    before = db.catalog.functions.get(name).selectivity
    changed = db.catalog.apply_feedback(store)
    function = db.catalog.functions.get(name)
    assert changed >= 1
    assert function.selectivity == pytest.approx(
        observed.observed_selectivity
    )
    assert function.selectivity != before
    # Recompiled predicates pick up the injected statistics.
    recompiled = build_workload(db, "q4").query
    expensive = [p for p in recompiled.predicates if p.is_expensive][0]
    assert expensive.selectivity == pytest.approx(function.selectivity)


def test_apply_feedback_skips_invalid_and_multi_function():
    db = build_database(scale=5, seed=42)
    observations = [
        # Invalid observed selectivity (no evaluations) — skipped.
        PredicateObservation(
            fingerprint="01" * 8, predicate="a", tables=(),
            functions=("costly100",), declared_selectivity=0.5,
            declared_cost_per_call=100.0, evaluated=0,
        ),
        # Multi-function conjunct — unattributable, skipped.
        PredicateObservation(
            fingerprint="02" * 8, predicate="b", tables=(),
            functions=("costly100", "cheap5"),
            declared_selectivity=0.5, declared_cost_per_call=105.0,
            evaluated=10, passed=5,
        ),
        # Unknown function — skipped.
        PredicateObservation(
            fingerprint="03" * 8, predicate="c", tables=(),
            functions=("nosuchfunction",), declared_selectivity=0.5,
            declared_cost_per_call=1.0, evaluated=10, passed=5,
        ),
    ]
    store = StatsFeedbackStore("q1")
    store.record_epoch(observations, strategy="pushdown", scale=5, seed=1)
    before = {
        name: (
            db.catalog.functions.get(name).selectivity,
            db.catalog.functions.get(name).cost_per_call,
        )
        for name in db.catalog.functions.names()
    }
    assert db.catalog.apply_feedback(store) == 0
    after = {
        name: (
            db.catalog.functions.get(name).selectivity,
            db.catalog.functions.get(name).cost_per_call,
        )
        for name in db.catalog.functions.names()
    }
    assert before == after


# -- determinism across interpreters -----------------------------------------

#: Records one epoch per workload into a store and prints the exact file
#: bytes — any hash-order dependence in the store shows up here.
SCRIPT = """
import sys
from repro import Executor, build_database, optimize
from repro.bench.workloads import build_workload
from repro.obs.feedback import FeedbackCollector, StatsFeedbackStore

db = build_database(scale=5, seed=42)
for name in ("q1", "q4"):
    workload = build_workload(db, name)
    optimized = optimize(db, workload.query, strategy="pushdown")
    collector = FeedbackCollector()
    executor = Executor(db, collector=collector)
    result = executor.execute(optimized.plan, instrument=True)
    store = StatsFeedbackStore(name)
    store.record_epoch(
        collector.observations(),
        strategy="pushdown",
        scale=5,
        seed=42,
        operators=[s.as_dict() for s in result.node_stats.values()],
    )
    target = store.save(sys.argv[1])
    sys.stdout.write(open(target).read())
"""


def _run(hashseed: str, tmpdir: str) -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hashseed
    env["PYTHONPATH"] = SRC
    result = subprocess.run(
        [sys.executable, "-c", SCRIPT, tmpdir],
        capture_output=True,
        text=True,
        env=env,
        check=False,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


@pytest.fixture(scope="module")
def runs(tmp_path_factory):
    return [
        _run(seed, str(tmp_path_factory.mktemp(f"stats{i}")))
        for i, seed in enumerate(("0", "0", "1"))
    ]


def test_store_bytes_nonempty(runs):
    assert '"stats-feedback"' in runs[0]
    assert '"epochs"' in runs[0]


def test_store_bytes_stable_across_identical_runs(runs):
    assert runs[0] == runs[1]


def test_store_bytes_stable_across_hash_seeds(runs):
    assert runs[0] == runs[2]
