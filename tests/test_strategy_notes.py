"""Every strategy must report its decision counts in OptimizedPlan.notes."""

import pytest

from repro import STRATEGIES, compile_query, optimize
from repro.obs import Tracer

SQL3 = (
    "SELECT * FROM t3, t6, t10 "
    "WHERE t3.ua1 = t6.a1 AND t6.ua1 = t10.a1 "
    "AND costly100sel10(t3.u20)"
)


@pytest.fixture(scope="module")
def query(db):
    return compile_query(db, SQL3, name="notes-test")


@pytest.mark.parametrize("strategy", sorted(STRATEGIES))
class TestNotesContract:
    def test_notes_nonempty_with_required_keys(self, db, query, strategy):
        notes = optimize(db, query, strategy=strategy).notes
        assert notes, f"{strategy} produced empty notes"
        assert notes["subplans_enumerated"] >= 1
        assert notes["subplans_pruned"] >= 0
        assert all(
            isinstance(value, (int, float, str, list))
            for value in notes.values()
        )

    def test_optimize_and_enumerate_spans_recorded(
        self, db, query, strategy
    ):
        tracer = Tracer()
        optimize(db, query, strategy=strategy, tracer=tracer)
        (optimize_span,) = tracer.find("optimize")
        assert optimize_span.attrs["strategy"] == strategy
        assert "estimated_cost" in optimize_span.attrs
        phase_names = {
            span.name for span in tracer.children_of(optimize_span)
        }
        assert phase_names, f"{strategy} recorded no phase spans"


class TestStrategySpecificNotes:
    def test_systemr_policies_report_prune_counts(self, db, query):
        notes = optimize(db, query, strategy="pushdown").notes
        assert notes["candidates_kept"] >= 1
        assert (
            notes["subplans_enumerated"]
            >= notes["subplans_pruned"] + notes["candidates_kept"]
        )

    def test_pullrank_reports_verdicts(self, db, query):
        notes = optimize(db, query, strategy="pullrank").notes
        verdicts = notes.get("pullups", 0) + notes.get(
            "pullups_declined", 0
        )
        assert verdicts >= 1

    def test_migration_reports_fixpoint_counts(self, db, query):
        notes = optimize(db, query, strategy="migration").notes
        assert notes["plans_migrated"] >= 1
        assert notes["fixpoint_iterations"] >= notes["plans_migrated"]
        assert notes["predicate_moves"] >= 0

    def test_ldl_reports_dp_shape(self, db, query):
        notes = optimize(db, query, strategy="ldl").notes
        assert notes["dp_states"] >= 1
        assert notes["virtual_predicates"] >= 1

    def test_ldl_ikkbz_reports_linearized_order(self, db, query):
        notes = optimize(db, query, strategy="ldl-ikkbz").notes
        assert set(notes["order"]) == {"t3", "t6", "t10"}

    def test_exhaustive_reports_interleavings(self, db, query):
        notes = optimize(db, query, strategy="exhaustive").notes
        assert notes["orders_enumerated"] >= 1
        assert notes["interleavings_counted"] >= 1

    def test_migration_records_migrate_span_and_events(self, db, query):
        tracer = Tracer()
        optimize(db, query, strategy="migration", tracer=tracer)
        (migrate_span,) = tracer.find("migrate")
        assert migrate_span.attrs["candidates"] >= 1
        assert "best_cost" in migrate_span.attrs
        event_names = {
            event["name"]
            for span in tracer.spans
            for event in span.events
        }
        assert "migration.fixpoint" in event_names
