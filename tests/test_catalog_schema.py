"""Unit tests: schema descriptors and the attribute naming convention."""

import pytest

from repro.catalog.schema import (
    Attribute,
    RelationSchema,
    parse_attribute_name,
)
from repro.errors import DuplicateNameError, UnknownAttributeError


class TestNamingConvention:
    def test_indexed_attribute(self):
        assert parse_attribute_name("a20") == (True, 20)

    def test_unindexed_prefix(self):
        assert parse_attribute_name("ua1") == (False, 1)

    def test_bare_u_number_is_unindexed(self):
        # The paper's "a column named u20" example.
        assert parse_attribute_name("u20") == (False, 20)

    def test_unique_attribute(self):
        assert parse_attribute_name("a1") == (True, 1)

    def test_large_repetition(self):
        assert parse_attribute_name("ua100") == (False, 100)

    def test_nonconforming_name_defaults(self):
        assert parse_attribute_name("picture") == (False, 1)

    def test_zero_repetition_clamped(self):
        indexed, repetition = parse_attribute_name("a0")
        assert repetition == 1

    def test_attribute_from_name(self):
        attribute = Attribute.from_name("a20")
        assert attribute.indexed and attribute.repetition == 20


class TestRelationSchema:
    def make(self):
        return RelationSchema.from_names("t1", ["a1", "ua20", "u100"])

    def test_positions_in_order(self):
        schema = self.make()
        assert [schema.position(n) for n in ("a1", "ua20", "u100")] == [0, 1, 2]

    def test_attribute_lookup(self):
        schema = self.make()
        assert schema.attribute("ua20").repetition == 20
        assert not schema.attribute("ua20").indexed

    def test_unknown_attribute_raises(self):
        with pytest.raises(UnknownAttributeError):
            self.make().position("nope")

    def test_has_attribute(self):
        schema = self.make()
        assert schema.has_attribute("a1")
        assert not schema.has_attribute("b2")

    def test_duplicate_attribute_rejected(self):
        with pytest.raises(DuplicateNameError):
            RelationSchema.from_names("t1", ["a1", "a1"])

    def test_indexed_attribute_list(self):
        assert self.make().indexed_attributes == ["a1"]

    def test_default_tuple_width_is_100_bytes(self):
        # "All tuples are 100 bytes wide" (Section 2).
        assert self.make().tuple_width == 100

    def test_len(self):
        assert len(self.make()) == 3
