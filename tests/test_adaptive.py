"""Mid-query adaptive re-optimization: the tentpole invariants.

Three families of guarantees, each load-bearing for trusting
``--adaptive`` in production:

* **Equivalence** — the adaptive run's row multiset always equals the
  static run's, and a run that never re-plans charges *exactly* what
  the static run charges (the controller's taps are free).
* **Profit** — on the seeded misestimation workload the re-plan must
  actually fire (≥1 applied), must beat the static plan's charged
  cost, and must leave a ``plan.replan`` trail in both the provenance
  ledger and the flight recorder.
* **Guardrails** — the re-plan budget refuses further moves when
  exhausted, the hysteresis gate refuses placements already realised
  (A→B→A), sub-threshold drift stays inert, and a plan with nothing to
  move disables adaptivity up front instead of pretending to watch.
"""

import pytest

from repro import build_database
from repro.adaptive.bench import (
    MIN_ADAPT_SCALE,
    format_adapt_report,
    run_adapt_bench,
    write_adapt_artifact,
)
from repro.adaptive.controller import AdaptiveController, AdaptivePolicy
from repro.adaptive.workloads import ADAPT_WORKLOADS, build_adapt_workload
from repro.errors import ArtifactError
from repro.exec import Executor
from repro.obs.flightrec import FlightRecorder
from repro.obs.provenance import ProvenanceLedger
from repro.optimizer import optimize
from repro.sql import compile_query

SCALE = 100
SEED = 42


def _optimized(db, key, strategy="migration"):
    return optimize(
        db, build_adapt_workload(db, key).query, strategy=strategy
    ).plan


def _run(key, *, adaptive, policy=None, flight=None, ledger=None):
    """Fresh database + plan + execution; returns the QueryResult."""
    db = build_database(scale=SCALE, seed=SEED)
    plan = _optimized(db, key)
    executor = Executor(
        db,
        adaptive=(policy or AdaptivePolicy()) if adaptive else None,
        ledger=ledger,
        flight=flight,
    )
    return executor.execute(plan)


def _rows(result):
    return sorted(tuple(row) for row in result.rows)


@pytest.fixture(scope="module")
def bench():
    document, violations = run_adapt_bench(scale=SCALE, seed=SEED)
    return document, violations


class TestBenchGates:
    def test_no_gate_violations(self, bench):
        document, violations = bench
        assert violations == [], "\n".join(violations)
        assert document["violations"] == []

    def test_all_scenarios_ran(self, bench):
        document, _ = bench
        assert set(document["scenarios"]) == set(ADAPT_WORKLOADS)

    def test_rows_identical_everywhere(self, bench):
        document, _ = bench
        for key, record in document["scenarios"].items():
            assert record["rows_equal"], key
            assert record["static"]["rows"] == record["adaptive"]["rows"]

    def test_misestimation_scenario_improves(self, bench):
        document, _ = bench
        record = document["scenarios"]["adapt_drift"]
        report = record["adaptive"]["report"]
        assert report["replans"] >= 1
        assert record["adaptive"]["ledger_replan_events"] >= 1
        assert record["charged_delta"] < 0
        applied = [
            event for event in report["events"]
            if event["action"] == "applied"
        ]
        assert applied, report["events"]
        assert applied[0]["moves"], "an applied re-plan must move something"

    def test_honest_scenarios_inert(self, bench):
        document, _ = bench
        for key in ("adapt_honest", "adapt_mild"):
            record = document["scenarios"][key]
            report = record["adaptive"]["report"]
            assert report["replans"] == 0, key
            assert record["charged_delta"] == 0.0, key

    def test_artifact_roundtrip(self, bench, tmp_path):
        document, _ = bench
        target = write_adapt_artifact(tmp_path, document)
        assert target.name == "BENCH_adapt.json"
        text = format_adapt_report(document)
        assert "all gates hold" in text
        assert "adapt_drift" in text

    def test_scale_floor_refused(self):
        with pytest.raises(ArtifactError, match="scale >= "):
            run_adapt_bench(scale=MIN_ADAPT_SCALE - 1, seed=SEED)


class TestEquivalence:
    def test_zero_replan_run_charges_exactly_static(self):
        static = _run("adapt_honest", adaptive=False)
        adaptive = _run("adapt_honest", adaptive=True)
        assert adaptive.adaptive is not None
        assert adaptive.adaptive.replans == 0
        assert adaptive.charged == static.charged
        assert _rows(adaptive) == _rows(static)

    def test_replanned_run_same_rows_lower_charge(self):
        static = _run("adapt_drift", adaptive=False)
        adaptive = _run("adapt_drift", adaptive=True)
        assert adaptive.adaptive.replans >= 1
        assert adaptive.charged < static.charged
        assert _rows(adaptive) == _rows(static)

    def test_replan_trail_in_ledger_and_flight(self):
        ledger = ProvenanceLedger()
        flight = FlightRecorder()
        result = _run(
            "adapt_drift", adaptive=True, ledger=ledger, flight=flight
        )
        assert result.adaptive.replans >= 1
        replans = ledger.events_of("plan.replan")
        assert len(replans) >= 1
        assert any(e.data["action"] == "applied" for e in replans)
        assert ledger.events_of("stats.drift"), (
            "the drift finding itself must be on the record"
        )
        flight_replans = [
            e for e in flight.events() if e["kind"] == "replan"
        ]
        assert any(e["action"] == "applied" for e in flight_replans)

    def test_drift_event_reports_qerror_and_slots(self):
        result = _run("adapt_drift", adaptive=True)
        applied = [
            event for event in result.adaptive.events
            if event["action"] == "applied"
        ]
        assert applied
        event = applied[0]
        assert event["rung"] in ("migration", "pushdown")
        assert event["estimated_gain"] > 0
        move = event["moves"][0]
        assert move["from_slot"] != move["to_slot"]
        assert any("q-error" in line for line in event["drift"])


class TestGuardrails:
    def test_budget_zero_refuses_and_stays_static(self):
        static = _run("adapt_drift", adaptive=False)
        policy = AdaptivePolicy(max_replans=0)
        result = _run("adapt_drift", adaptive=True, policy=policy)
        report = result.adaptive
        assert report.replans == 0
        assert report.refusals >= 1
        refusal = [
            e for e in report.events if e["action"] == "refused"
        ][0]
        assert "budget exhausted" in refusal["reason"]
        # A refused re-plan must leave the execution untouched.
        assert result.charged == static.charged
        assert _rows(result) == _rows(static)

    def test_budget_one_caps_applied_replans(self):
        policy = AdaptivePolicy(max_replans=1)
        result = _run("adapt_drift", adaptive=True, policy=policy)
        assert result.adaptive.replans == 1

    def test_threshold_above_qerror_stays_inert(self):
        # The drift scenario's realized q-error is ~2.47; a threshold
        # above it must never trigger.
        policy = AdaptivePolicy(drift_threshold=3.0)
        static = _run("adapt_drift", adaptive=False)
        result = _run("adapt_drift", adaptive=True, policy=policy)
        assert result.adaptive.triggers == 0
        assert result.adaptive.replans == 0
        assert result.charged == static.charged

    def test_oscillation_damped(self, monkeypatch):
        """A proposal whose placement signature was already realised this
        query is refused — white-box through the trigger path, because
        a genuine A→B→A needs observations that drift back toward the
        declaration, which un-flags drift before it can flap."""
        db = build_database(scale=SCALE, seed=SEED)
        plan = _optimized(db, "adapt_drift")
        controller = AdaptiveController(
            plan.root,
            catalog=db.catalog,
            params=db.params,
            meter=db.meter,
        )
        assert controller.active
        liar = next(
            predicate for predicate in controller._movable
            if "adaptliar100" in str(predicate)
        )
        home = controller._entries[liar.pred_id]

        class Finding:
            subject = "adaptliar100"
            field = "selectivity"
            reason = "test"

            def describe(self):
                return "stub drift (q-error 9.99)"

            def as_dict(self):
                return {"subject": self.subject}

        proposals = iter([({liar: home}, "migration"),
                          ({liar: 1}, "migration")])
        monkeypatch.setattr(
            controller, "_propose", lambda observations: next(proposals)
        )
        monkeypatch.setattr(
            controller, "_estimated_gain", lambda safe, observations: 1.0
        )
        controller._trigger([Finding()], [])
        assert controller.report.replans == 1
        # Second proposal moves the predicate back to slot 1 — the
        # placement the plan started with (already in the seen set).
        controller._trigger([Finding()], [])
        report = controller.report
        assert report.replans == 1
        assert report.refusals == 1
        refusal = report.events[-1]
        assert refusal["action"] == "refused"
        assert "oscillation damped" in refusal["reason"]

    def test_plan_without_movable_predicates_disables(self):
        db = build_database(scale=5, seed=SEED)
        query = compile_query(
            db, "SELECT * FROM t1, t2 WHERE t1.a1 = t2.a1"
        )
        plan = optimize(db, query, strategy="migration").plan
        result = Executor(db, adaptive=AdaptivePolicy()).execute(plan)
        report = result.adaptive
        assert report is not None
        assert not report.active
        assert report.disabled_reason == "no movable predicates"
        assert report.replans == 0

    def test_second_trigger_converges_not_flaps(self):
        """After the drift re-plan lands, later boundaries re-confirm
        the drift but propose the already-realised placement — recorded
        as convergence, never as a second move."""
        result = _run("adapt_drift", adaptive=True)
        report = result.adaptive
        assert report.replans == 1
        assert report.converged >= 1
        assert report.refusals == 0
