"""Tests for the metrics registry (repro.obs.metrics)."""

import math

import pytest

from repro import Executor, compile_query, optimize
from repro.obs import MetricsRegistry, record_run

SQL = (
    "SELECT * FROM t3, t10 "
    "WHERE t3.a1 = t10.ua1 AND costly100(t10.u20)"
)


class TestRegistry:
    def test_counter_increments_and_is_shared_by_name(self):
        registry = MetricsRegistry()
        registry.counter("hits").incr()
        registry.counter("hits").incr(2.0)
        assert registry.snapshot()["hits"] == 3.0

    def test_timer_context_manager_accumulates(self):
        registry = MetricsRegistry()
        timer = registry.timer("work")
        with timer:
            pass
        timer.record(0.5)
        snapshot = registry.snapshot()
        assert snapshot["work.count"] == 2
        assert snapshot["work.seconds"] >= 0.5

    def test_gauge_last_write_wins(self):
        registry = MetricsRegistry()
        registry.gauge("level", 1.0)
        registry.gauge("level", 7.0)
        assert registry.snapshot()["level"] == 7.0

    def test_histogram_statistics(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat")
        for value in (1.0, 2.0, 3.0, 4.0):
            histogram.observe(value)
        assert histogram.count == 4
        assert histogram.mean == 2.5
        assert histogram.percentile(0.5) == 2.0
        assert histogram.percentile(1.0) == 4.0
        snapshot = registry.snapshot()
        assert snapshot["lat.count"] == 4
        assert snapshot["lat.max"] == 4.0

    def test_empty_histogram_is_nan(self):
        histogram = MetricsRegistry().histogram("empty")
        assert math.isnan(histogram.mean)
        assert math.isnan(histogram.percentile(0.5))

    def test_histogram_rejects_bad_fraction(self):
        histogram = MetricsRegistry().histogram("h")
        histogram.observe(1.0)
        with pytest.raises(ValueError):
            histogram.percentile(1.5)

    def test_snapshot_is_flat_and_complete(self):
        registry = MetricsRegistry()
        registry.counter("c").incr()
        registry.gauge("g", 2.0)
        registry.timer("t").record(0.1)
        names = set(registry.snapshot())
        assert {"c", "g", "t.seconds", "t.count"} <= names


class TestRecordRun:
    def test_uniform_names_mirror_run_attributes(self, db):
        query = compile_query(db, SQL, name="metrics-test")
        optimized = optimize(db, query, strategy="pushdown")
        result = Executor(db).execute(optimized.plan)

        snapshot = record_run(
            MetricsRegistry(), optimized, result
        ).snapshot()

        assert snapshot["plan.wall_seconds"] == optimized.planning_seconds
        assert snapshot["exec.wall_seconds"] == result.wall_seconds
        assert snapshot["exec.rows"] == result.row_count
        assert snapshot["exec.completed"] == 1.0
        assert snapshot["exec.charged"] == result.charged
        # every optimizer note lands under plan.*
        assert snapshot["plan.subplans_enumerated"] >= 1
        assert "plan.subplans_pruned" in snapshot
        # the original attributes are untouched
        assert optimized.planning_seconds == snapshot["plan.wall_seconds"]

    def test_cache_stats_recorded_when_caching(self, db):
        query = compile_query(db, SQL, name="metrics-cache")
        optimized = optimize(db, query, strategy="pushdown", caching=True)
        result = Executor(db, caching=True).execute(optimized.plan)

        snapshot = record_run(
            MetricsRegistry(), optimized, result
        ).snapshot()
        assert "exec.cache_hits" in snapshot
        assert "exec.cache_misses" in snapshot

    def test_partial_record_plan_only(self, db):
        query = compile_query(db, SQL, name="metrics-partial")
        optimized = optimize(db, query, strategy="pushdown")
        snapshot = record_run(MetricsRegistry(), optimized).snapshot()
        assert "plan.wall_seconds" in snapshot
        assert not any(name.startswith("exec.") for name in snapshot)
