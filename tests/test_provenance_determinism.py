"""Provenance ledgers and plan-diff output are byte-stable across runs.

Ledger data is canonicalised at record time
(:func:`repro.obs.tracer.canonical_value`), which sorts sets and
stringifies dict keys — so nothing in a ledger depends on Python's
per-process hash randomisation. These tests run the whole pipeline in
fresh interpreters under differing ``PYTHONHASHSEED`` values and require
identical bytes out.
"""

import os
import subprocess
import sys

import pytest

SRC = os.path.join(os.path.dirname(__file__), os.pardir, "src")

#: Emits one sorted-JSON ledger summary line per workload × strategy,
#: then the full plan-diff text for q4.
SCRIPT = """
import json
from repro import build_database, optimize
from repro.bench.workloads import build_workload
from repro.obs import ProvenanceLedger
from repro.__main__ import plan_diff

db = build_database(scale=3, seed=42)
for name in ("q1", "q2", "q3", "q4", "q5"):
    workload = build_workload(db, name)
    for strategy in ("pushdown", "migration"):
        ledger = ProvenanceLedger()
        optimize(db, workload.query, strategy=strategy, ledger=ledger)
        print(name, strategy, json.dumps(ledger.summary(), sort_keys=True))
plan_diff(["q4", "pushdown", "migration", "--scale", "3"])
"""


def _run(hashseed: str) -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hashseed
    env["PYTHONPATH"] = SRC
    result = subprocess.run(
        [sys.executable, "-c", SCRIPT],
        capture_output=True,
        text=True,
        env=env,
        check=False,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


@pytest.fixture(scope="module")
def runs():
    return [_run(seed) for seed in ("0", "0", "1")]


def test_output_nonempty(runs):
    assert "q4 migration" in runs[0]
    assert "ledger event counts:" in runs[0]


def test_stable_across_identical_runs(runs):
    assert runs[0] == runs[1]


def test_stable_across_hash_seeds(runs):
    assert runs[0] == runs[2]
