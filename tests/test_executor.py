"""Unit, integration, and property tests for the executor.

The key invariants: (1) every join method returns the same multiset of
rows; (2) measured charges follow the cost-model formulas; (3) plans give
the same answers regardless of predicate placement.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ExecutionError
from repro.exec import Executor
from repro.exec.operators import RuntimeContext, build_operator
from repro.plan.nodes import Join, JoinMethod, Plan, Scan
from tests.conftest import costly_filter, equijoin


def reference_join(db, outer, inner, outer_col, inner_col):
    """Naive nested-loop ground truth over raw heap rows."""
    outer_entry = db.catalog.table(outer)
    inner_entry = db.catalog.table(inner)
    outer_slot = outer_entry.schema.position(outer_col)
    inner_slot = inner_entry.schema.position(inner_col)
    rows = []
    for o in outer_entry.heap.all_rows():
        for i in inner_entry.heap.all_rows():
            if o[outer_slot] == i[inner_slot]:
                rows.append(o + i)
    return sorted(rows)


def join_plan(db, method, outer="t2", inner="t3",
              outer_col="ua1", inner_col="a1",
              filters=None, inner_filters=None, outer_filters=None):
    return Plan(Join(
        filters=filters or [],
        outer=Scan(filters=outer_filters or [], table=outer),
        inner=Scan(filters=inner_filters or [], table=inner),
        method=method,
        primary=equijoin(db, (outer, outer_col), (inner, inner_col)),
    ))


class TestJoinMethodEquivalence:
    @pytest.mark.parametrize("method", list(JoinMethod))
    def test_matches_reference(self, tiny_db, method):
        plan = join_plan(tiny_db, method)
        result = Executor(tiny_db).execute(plan)
        assert result.completed
        assert sorted(result.rows) == reference_join(
            tiny_db, "t2", "t3", "ua1", "a1"
        )

    @pytest.mark.parametrize("method", list(JoinMethod))
    def test_duplicate_join_keys(self, tiny_db, method):
        # t3.ua20 repeats each value ~20 times: real duplicate handling.
        plan = join_plan(
            tiny_db, method, outer="t2", inner="t3",
            outer_col="ua1", inner_col="a20",
        )
        result = Executor(tiny_db).execute(plan)
        assert sorted(result.rows) == reference_join(
            tiny_db, "t2", "t3", "ua1", "a20"
        )

    @pytest.mark.parametrize("method", list(JoinMethod))
    def test_filters_anywhere_same_answer(self, tiny_db, method):
        predicate = costly_filter(tiny_db, "costly100", ("t3", "u20"))
        below = join_plan(tiny_db, method, inner_filters=[predicate])
        above = join_plan(tiny_db, method, filters=[predicate])
        rows_below = Executor(tiny_db).execute(below).rows
        rows_above = Executor(tiny_db).execute(above).rows
        assert sorted(rows_below) == sorted(rows_above)


class TestChargingConsistency:
    """Measured charge should match the cost model when cardinality
    estimates are exact (single join of base tables)."""

    @pytest.mark.parametrize(
        "method", [JoinMethod.HASH, JoinMethod.MERGE, JoinMethod.NESTED_LOOP]
    )
    def test_join_io_matches_estimate(self, tiny_db, method):
        from repro.cost.model import CostModel

        plan = join_plan(tiny_db, method)
        estimate = CostModel(tiny_db.catalog, tiny_db.params).estimate_plan(
            plan.root
        )
        result = Executor(tiny_db).execute(plan)
        assert result.charged == pytest.approx(estimate.cost, rel=0.15)

    def test_function_charge_is_calls_times_cost(self, tiny_db):
        predicate = costly_filter(tiny_db, "costly100", ("t3", "u20"))
        plan = Plan(Scan(filters=[predicate], table="t3"))
        result = Executor(tiny_db).execute(plan)
        calls = result.metrics["function_calls"]
        assert calls == tiny_db.catalog.table("t3").cardinality
        assert result.metrics["function_charged"] == pytest.approx(
            100.0 * calls
        )

    def test_filter_order_respected(self, tiny_db):
        # Unique columns so the synthetic pass rates are realised even at
        # tiny scale.
        selective = costly_filter(tiny_db, "costly100sel10", ("t3", "ua1"))
        pricey = costly_filter(tiny_db, "costly100", ("t3", "a1"))
        cheap_first = Plan(Scan(filters=[selective, pricey], table="t3"))
        pricey_first = Plan(Scan(filters=[pricey, selective], table="t3"))
        a = Executor(tiny_db).execute(cheap_first)
        b = Executor(tiny_db).execute(pricey_first)
        assert sorted(a.rows) == sorted(b.rows)
        assert a.charged < b.charged


class TestBudget:
    def test_budget_aborts_and_reports_dnf(self, tiny_db):
        predicate = costly_filter(tiny_db, "costly100", ("t3", "u20"))
        plan = Plan(Scan(filters=[predicate], table="t3"))
        result = Executor(tiny_db, budget=500.0).execute(plan)
        assert not result.completed
        assert result.charged > 500.0  # the charge that tripped it

    def test_budget_raises_when_asked(self, tiny_db):
        from repro.errors import BudgetExceededError

        predicate = costly_filter(tiny_db, "costly100", ("t3", "u20"))
        plan = Plan(Scan(filters=[predicate], table="t3"))
        with pytest.raises(BudgetExceededError):
            Executor(tiny_db, budget=500.0).execute(
                plan, raise_on_budget=True
            )

    def test_budget_cleared_after_run(self, tiny_db):
        predicate = costly_filter(tiny_db, "costly100", ("t3", "u20"))
        plan = Plan(Scan(filters=[predicate], table="t3"))
        Executor(tiny_db, budget=500.0).execute(plan)
        assert tiny_db.meter.budget is None

    def test_preexisting_budget_restored_after_run(self, tiny_db):
        """Regression: execute() used to clear the shared meter's budget to
        None instead of restoring whatever the caller had set."""
        predicate = costly_filter(tiny_db, "costly100", ("t3", "u20"))
        plan = Plan(Scan(filters=[predicate], table="t3"))
        tiny_db.meter.budget = 123456.0
        try:
            Executor(tiny_db, budget=500.0).execute(plan)
            assert tiny_db.meter.budget == 123456.0
            Executor(tiny_db).execute(plan)
            assert tiny_db.meter.budget == 123456.0
        finally:
            tiny_db.meter.budget = None


class TestProjectionAndResult:
    def test_projection(self, tiny_db):
        plan = Plan(Scan(filters=[], table="t3"))
        result = Executor(tiny_db).execute(plan, project=[("t3", "a1")])
        assert result.scope.columns == [("t3", "a1")]
        assert sorted(r[0] for r in result.rows) == list(
            range(tiny_db.catalog.table("t3").cardinality)
        )

    def test_column_accessor(self, tiny_db):
        plan = Plan(Scan(filters=[], table="t1"))
        result = Executor(tiny_db).execute(plan)
        values = result.column("t1", "a1")
        assert sorted(values) == list(
            range(tiny_db.catalog.table("t1").cardinality)
        )

    def test_fresh_metrics_each_run(self, tiny_db):
        plan = Plan(Scan(filters=[], table="t3"))
        first = Executor(tiny_db).execute(plan)
        second = Executor(tiny_db).execute(plan)
        assert first.charged == pytest.approx(second.charged)


class TestIndexScan:
    def test_index_scan_rows(self, tiny_db):
        plan = Plan(Scan(
            filters=[], table="t3", index_attr="a1", index_range=(5, 9)
        ))
        result = Executor(tiny_db).execute(plan)
        assert sorted(result.column("t3", "a1")) == [5, 6, 7, 8, 9]

    def test_index_scan_missing_index_fails(self, tiny_db):
        plan = Plan(Scan(
            filters=[], table="t3", index_attr="ua1", index_range=(0, 5)
        ))
        with pytest.raises(ExecutionError):
            Executor(tiny_db).execute(plan)


class TestNestedLoopCharging:
    def test_rescan_charged_per_outer_tuple(self, tiny_db):
        plan = join_plan(tiny_db, JoinMethod.NESTED_LOOP)
        result = Executor(tiny_db).execute(plan)
        outer_rows = tiny_db.catalog.table("t2").cardinality
        inner_pages = tiny_db.catalog.table("t3").pages
        assert result.metrics["seq_ios"] >= outer_rows * inner_pages

    def test_inner_filter_does_not_shrink_rescan(self, tiny_db):
        """The paper's constant-|S| claim, measured."""
        predicate = costly_filter(tiny_db, "costly100sel10", ("t3", "u20"))
        base = Executor(tiny_db).execute(
            join_plan(tiny_db, JoinMethod.NESTED_LOOP)
        )
        filtered = Executor(tiny_db).execute(
            join_plan(
                tiny_db, JoinMethod.NESTED_LOOP, inner_filters=[predicate]
            )
        )
        assert filtered.metrics["seq_ios"] >= base.metrics["seq_ios"]


class TestPropertyEquivalence:
    @given(
        method=st.sampled_from(list(JoinMethod)),
        outer=st.sampled_from(["t1", "t2"]),
        inner=st.sampled_from(["t2", "t3"]),
        inner_col=st.sampled_from(["a1", "a20"]),
    )
    @settings(max_examples=20, deadline=None)
    def test_random_joins_match_reference(
        self, tiny_db, method, outer, inner, inner_col
    ):
        if outer == inner:
            return
        plan = join_plan(
            tiny_db, method, outer=outer, inner=inner,
            outer_col="ua1", inner_col=inner_col,
        )
        result = Executor(tiny_db).execute(plan)
        assert sorted(result.rows) == reference_join(
            tiny_db, outer, inner, "ua1", inner_col
        )
