"""Unit and property tests: the per-input linear cost model (Section 3.2)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cost.model import CostModel
from repro.cost.params import CostParams
from repro.plan.nodes import Join, JoinMethod, Scan
from tests.conftest import costly_filter, equijoin


@pytest.fixture()
def model(db):
    return CostModel(db.catalog, db.params)


def two_table_join(db, method, filters=None, inner_filters=None):
    return Join(
        filters=filters or [],
        outer=Scan(filters=[], table="t3"),
        inner=Scan(filters=inner_filters or [], table="t10"),
        method=method,
        primary=equijoin(db, ("t3", "a1"), ("t10", "ua1")),
    )


class TestScanEstimates:
    def test_seq_scan_cost_and_rows(self, db, model):
        estimate = model.estimate_scan(Scan(filters=[], table="t3"))
        entry = db.catalog.table("t3")
        assert estimate.rows == entry.cardinality
        assert estimate.cost == pytest.approx(
            entry.pages * db.params.seq_weight
        )

    def test_filters_reduce_rows_and_add_cost(self, db, model):
        predicate = costly_filter(db, "costly100", ("t3", "u20"))
        estimate = model.estimate_scan(
            Scan(filters=[predicate], table="t3")
        )
        entry = db.catalog.table("t3")
        assert estimate.rows == pytest.approx(entry.cardinality * 0.5)
        assert estimate.cost == pytest.approx(
            entry.pages * db.params.seq_weight + 100.0 * entry.cardinality
        )

    def test_filter_order_matters_for_cost(self, db, model):
        cheap_selective = costly_filter(db, "costly100sel10", ("t3", "u20"))
        expensive = costly_filter(db, "costly100", ("t3", "u100"))
        good = model.estimate_scan(
            Scan(filters=[cheap_selective, expensive], table="t3")
        )
        bad = model.estimate_scan(
            Scan(filters=[expensive, cheap_selective], table="t3")
        )
        assert good.cost < bad.cost
        assert good.rows == pytest.approx(bad.rows)


class TestJoinEstimates:
    def test_output_cardinality_formula(self, db, model):
        join = two_table_join(db, JoinMethod.HASH)
        estimate = model.estimate_join(join)
        t3 = db.catalog.table("t3").cardinality
        t10 = db.catalog.table("t10").cardinality
        selectivity = model.join_selectivity(join.primary)
        assert estimate.rows == pytest.approx(selectivity * t3 * t10)

    def test_methods_agree_on_cardinality(self, db, model):
        rows = {
            method: model.estimate_join(two_table_join(db, method)).rows
            for method in JoinMethod
        }
        values = list(rows.values())
        assert all(v == pytest.approx(values[0]) for v in values)

    def test_merge_join_charges_sorts(self, db, model):
        hash_est = model.estimate_join(two_table_join(db, JoinMethod.HASH))
        merge_est = model.estimate_join(two_table_join(db, JoinMethod.MERGE))
        assert merge_est.cost > hash_est.cost
        assert merge_est.order == ("t3", "a1")

    def test_nested_loop_rescans_full_base_pages(self, db, model):
        """The paper's key point: inner selections do not shrink the
        rescan volume of a nested loop."""
        predicate = costly_filter(db, "costly100sel10", ("t10", "u20"))
        unfiltered = model.estimate_join(
            two_table_join(db, JoinMethod.NESTED_LOOP)
        )
        filtered = model.estimate_join(
            two_table_join(
                db, JoinMethod.NESTED_LOOP, inner_filters=[predicate]
            )
        )
        pages = db.catalog.table("t10").pages
        outer_rows = db.catalog.table("t3").cardinality
        rescan = outer_rows * pages * db.params.seq_weight
        # Both estimates contain the same full-base rescan term.
        assert unfiltered.cost > rescan
        assert filtered.cost > rescan

    def test_index_nl_charges_probes_and_fetches(self, db, model):
        join = Join(
            filters=[],
            outer=Scan(filters=[], table="t3"),
            inner=Scan(filters=[], table="t10"),
            method=JoinMethod.INDEX_NESTED_LOOP,
            primary=equijoin(db, ("t3", "ua1"), ("t10", "a1")),
        )
        estimate = model.estimate_join(join)
        outer_rows = db.catalog.table("t3").cardinality
        inner_card = db.catalog.table("t10").cardinality
        height = db.params.index_height(inner_card)
        matches = model.join_selectivity(join.primary) * outer_rows * inner_card
        expected_io = outer_rows * height + matches
        assert estimate.cost >= expected_io

    def test_hash_spill_charged_when_inner_large(self, db):
        params = CostParams(hash_memory_pages=1)
        model = CostModel(db.catalog, params)
        spilled = model.estimate_join(two_table_join(db, JoinMethod.HASH))
        roomy = CostModel(db.catalog, CostParams(hash_memory_pages=10_000))
        in_memory = roomy.estimate_join(two_table_join(db, JoinMethod.HASH))
        assert spilled.cost > in_memory.cost

    def test_expensive_primary_join_quadratic_term(self, db, model):
        from repro.expr.expressions import Column, FuncCall
        from repro.expr.predicates import analyze_conjunct

        primary = analyze_conjunct(
            db.catalog,
            FuncCall("expjoin10", (Column("t3", "u20"), Column("t10", "u20"))),
        )
        join = Join(
            filters=[],
            outer=Scan(filters=[], table="t3"),
            inner=Scan(filters=[], table="t10"),
            method=JoinMethod.NESTED_LOOP,
            primary=primary,
        )
        estimate = model.estimate_join(join)
        pairs = (
            db.catalog.table("t3").cardinality
            * db.catalog.table("t10").cardinality
        )
        assert estimate.cost >= 10.0 * pairs


class TestLinearity:
    """Join cost must fit k{R} + l{S} + m (Section 3.2) for every method
    with a cheap primary: we check that cost is affine in the outer input
    by varying the outer's filter selectivity through a synthetic filter."""

    @given(st.sampled_from(list(JoinMethod)))
    @settings(max_examples=8, deadline=None)
    def test_cost_affine_in_outer_rows(self, db, method):
        model = CostModel(db.catalog, db.params)
        if method is JoinMethod.INDEX_NESTED_LOOP:
            primary = equijoin(db, ("t3", "ua1"), ("t10", "a1"))
        else:
            primary = equijoin(db, ("t3", "a1"), ("t10", "ua1"))

        def cost_with_outer_rows(selectivity: float) -> float:
            from repro.expr.expressions import Const, Comparison, Column
            from repro.expr.predicates import Predicate

            filler = Predicate(
                expr=Comparison("<", Column("t3", "a1"), Const(1)),
                tables=frozenset({"t3"}),
                selectivity=selectivity,
                cost_per_tuple=0.0,
            )
            join = Join(
                filters=[],
                outer=Scan(filters=[filler], table="t3"),
                inner=Scan(filters=[], table="t10"),
                method=method,
                primary=primary,
            )
            return model.estimate_join(join).cost

        c0, c1, c2 = (
            cost_with_outer_rows(0.0),
            cost_with_outer_rows(0.5),
            cost_with_outer_rows(1.0),
        )
        # Affine: midpoint cost = mean of endpoint costs (modulo page
        # rounding in sort costs).
        tolerance = 2.0  # pages x seq_weight rounding slack
        assert abs((c0 + c2) / 2 - c1) <= tolerance


class TestPerInput:
    def test_selectivities_differ_per_input(self, db, model):
        """The paper's primary-key join example: R(100) x S(1000) on keys
        passes all of R but a tenth of S."""
        join = two_table_join(db, JoinMethod.HASH)
        t3 = db.catalog.table("t3").cardinality
        t10 = db.catalog.table("t10").cardinality
        per_input = model.per_input(join, t3, t10)
        selectivity = model.join_selectivity(join.primary)
        assert per_input.outer_selectivity == pytest.approx(selectivity * t10)
        assert per_input.inner_selectivity == pytest.approx(selectivity * t3)
        assert per_input.outer_selectivity != per_input.inner_selectivity

    def test_global_model_uses_raw_selectivity(self, db):
        model = CostModel(db.catalog, db.params, global_model=True)
        join = two_table_join(db, JoinMethod.HASH)
        per_input = model.per_input(join, 300, 1000)
        selectivity = model.join_selectivity(join.primary)
        assert per_input.outer_selectivity == pytest.approx(selectivity)
        assert per_input.inner_selectivity == pytest.approx(selectivity)

    def test_caching_mode_value_based_and_bounded(self, db):
        model = CostModel(db.catalog, db.params, caching=True)
        join = two_table_join(db, JoinMethod.HASH)
        per_input = model.per_input(join, 300, 1000)
        assert per_input.outer_selectivity <= 1.0
        assert per_input.inner_selectivity <= 1.0

    def test_nested_loop_outer_cost_is_base_pages(self, db, model):
        join = two_table_join(db, JoinMethod.NESTED_LOOP)
        per_input = model.per_input(join, 300, 1000)
        pages = db.catalog.table("t10").pages
        assert per_input.outer_cost == pytest.approx(
            pages * db.params.seq_weight + db.params.cpu_per_tuple
        )

    def test_expensive_primary_adds_cross_term(self, db, model):
        from repro.expr.expressions import Column, FuncCall
        from repro.expr.predicates import analyze_conjunct

        primary = analyze_conjunct(
            db.catalog,
            FuncCall("expjoin10", (Column("t3", "u20"), Column("t10", "u20"))),
        )
        join = Join(
            filters=[],
            outer=Scan(filters=[], table="t3"),
            inner=Scan(filters=[], table="t10"),
            method=JoinMethod.NESTED_LOOP,
            primary=primary,
        )
        per_input = model.per_input(join, 300, 1000)
        assert per_input.outer_cost >= 10.0 * 1000
        assert per_input.inner_cost >= 10.0 * 300


class TestInvocationEstimates:
    def test_caching_bounds_invocations_by_values(self, db):
        model = CostModel(db.catalog, db.params, caching=True)
        predicate = costly_filter(db, "costly100", ("t3", "u20"))
        ndistinct = db.catalog.table("t3").stats.ndistinct("u20")
        assert model.invocations(predicate, 10_000) == ndistinct
        assert model.invocations(predicate, 3) == 3

    def test_no_caching_invocations_equal_rows(self, db, model):
        predicate = costly_filter(db, "costly100", ("t3", "u20"))
        assert model.invocations(predicate, 123) == 123
