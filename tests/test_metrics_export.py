"""The Prometheus-text / JSON metrics export surface.

Exposition-format conformance (name sanitisation, label escaping,
cumulative ``le`` buckets, non-finite spellings), the kind-conflict
guard, the registry and monitor assembly paths, and byte-stability of
the rendered text across fresh interpreters with differing
``PYTHONHASHSEED`` (the same subprocess pattern as the feedback store).
"""

import json
import math
import os
import subprocess
import sys

import pytest

from repro import Executor, build_database, optimize
from repro.bench.workloads import build_workload
from repro.errors import ArtifactError
from repro.obs.export import (
    PrometheusExport,
    _escape_label,
    _sanitize_name,
    build_export,
    export_metrics,
)
from repro.obs.histograms import StreamingHistogram
from repro.obs.metrics import MetricsRegistry
from repro.obs.runtime_telemetry import RuntimeMonitor

SRC = os.path.join(os.path.dirname(__file__), os.pardir, "src")


# -- exposition-format conformance -------------------------------------------


def test_name_sanitisation():
    assert _sanitize_name("query.progress") == "repro_query_progress"
    assert _sanitize_name("exec rows/sec") == "repro_exec_rows_sec"
    assert _sanitize_name("9lives") == "repro__9lives"


def test_label_escaping():
    assert _escape_label('a"b') == 'a\\"b'
    assert _escape_label("a\\b") == "a\\\\b"
    assert _escape_label("a\nb") == "a\\nb"


def test_gauge_rendering_with_labels_and_nonfinite():
    export = PrometheusExport()
    export.gauge("x.y", 1.5, help_text="help", strategy='pu"sh')
    export.gauge("x.y", math.nan, strategy="b")
    export.gauge("x.y", math.inf, strategy="c")
    text = export.render()
    assert "# HELP repro_x_y help" in text
    assert "# TYPE repro_x_y gauge" in text
    assert 'repro_x_y{strategy="pu\\"sh"} 1.5' in text
    assert 'repro_x_y{strategy="b"} NaN' in text
    assert 'repro_x_y{strategy="c"} +Inf' in text
    assert text.endswith("\n")


def test_histogram_rendering_cumulative_le():
    histogram = StreamingHistogram()
    for value in (0.0, 1.0, 1.5, 4.0, math.inf):
        histogram.observe(value)
    export = PrometheusExport()
    export.histogram("cost", histogram, op="scan")
    lines = export.render().splitlines()
    assert "# TYPE repro_cost histogram" in lines
    assert 'repro_cost_bucket{le="2",op="scan"} 3' in lines
    assert 'repro_cost_bucket{le="8",op="scan"} 4' in lines
    assert 'repro_cost_bucket{le="+Inf",op="scan"} 5' in lines
    assert 'repro_cost_sum{op="scan"} 6.5' in lines
    assert 'repro_cost_count{op="scan"} 5' in lines


def test_kind_conflict_raises():
    export = PrometheusExport()
    export.gauge("metric", 1.0)
    with pytest.raises(ArtifactError):
        export.histogram("metric", StreamingHistogram())


def test_series_sorted_by_label_set_not_insertion():
    export = PrometheusExport()
    export.gauge("g", 2.0, strategy="zeta")
    export.gauge("g", 1.0, strategy="alpha")
    text = export.render()
    assert text.index('strategy="alpha"') < text.index('strategy="zeta"')


def test_as_json_strict_safe_round_trip():
    export = PrometheusExport()
    export.gauge("g", math.nan, strategy="a")
    histogram = StreamingHistogram()
    histogram.observe(2.0)
    export.histogram("h", histogram)
    encoded = json.dumps(export.as_json(), allow_nan=False, sort_keys=True)
    document = json.loads(encoded)
    assert document["families"]["repro_g"]["series"][0]["value"] == "nan"
    assert document["families"]["repro_h"]["series"][0]["value"]["count"] == 1


# -- assembly from registry and monitors -------------------------------------


def _executed_monitor(db, workload_key="q1", strategy="pushdown"):
    workload = build_workload(db, workload_key)
    optimized = optimize(db, workload.query, strategy=strategy)
    monitor = RuntimeMonitor()
    Executor(db, monitor=monitor).execute(optimized.plan)
    return monitor


@pytest.fixture(scope="module")
def db():
    return build_database(scale=5, seed=42)


def test_build_export_registry_gauges():
    registry = MetricsRegistry()
    registry.counter("exec.rows").incr(5)
    registry.gauge("plan.cost", 12.5)
    text = build_export(registry=registry).render()
    assert "repro_exec_rows 5" in text
    assert "repro_plan_cost 12.5" in text


def test_build_export_monitor_families(db):
    monitor = _executed_monitor(db)
    export = build_export(monitors={"pushdown": monitor})
    text = export.render()
    assert 'repro_query_progress{strategy="pushdown"} 1' in text
    assert "repro_operator_rows_out" in text
    assert "repro_operator_pull_seconds_bucket" in text
    assert "repro_predicate_cost" in text
    document = export.as_json()
    assert "repro_operator_fraction_done" in document["families"]


def test_build_export_empty_label_unlabelled(db):
    monitor = _executed_monitor(db)
    text = build_export(monitors={"": monitor}).render()
    assert "repro_query_progress 1" in text


def test_export_metrics_file_formats(db, tmp_path):
    monitor = _executed_monitor(db)
    export = build_export(monitors={"": monitor})
    text_target = export_metrics(tmp_path / "m.prom", export)
    json_target = export_metrics(tmp_path / "m.json", export)
    assert text_target.read_text().startswith("# ")
    document = json.loads(json_target.read_text())
    assert document["namespace"] == "repro"


# -- byte-stability across hash seeds ----------------------------------------


_DETERMINISM_SCRIPT = """
import sys

from repro import build_database, optimize
from repro.bench.workloads import build_workload
from repro.cost.model import CostModel
from repro.obs import RuntimeMonitor, build_export

db = build_database(scale=5, seed=42)
workload = build_workload(db, "q1")
optimized = optimize(db, workload.query, strategy="pushdown")
monitor = RuntimeMonitor()
monitor.attach(optimized.plan, CostModel(db.catalog, db.params))
# Drive the monitor with fixed latencies so even the wall-clock
# histograms are reproducible.
for key in list(monitor.operators):
    monitor.activate(key)
    for _ in range(3):
        monitor.on_row(key, 0.5)
    monitor.on_done(key, 0.25)
monitor.complete()
sys.stdout.write(build_export(monitors={"q1": monitor}).render())
"""


def _render_in_subprocess(hash_seed: str) -> str:
    environment = dict(os.environ)
    environment["PYTHONHASHSEED"] = hash_seed
    environment["PYTHONPATH"] = SRC
    completed = subprocess.run(
        [sys.executable, "-c", _DETERMINISM_SCRIPT],
        capture_output=True,
        text=True,
        env=environment,
        check=True,
    )
    return completed.stdout


def test_render_byte_stable_across_hash_seeds():
    first = _render_in_subprocess("0")
    second = _render_in_subprocess("431")
    assert first == second
    assert "repro_query_progress" in first
