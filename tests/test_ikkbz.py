"""Unit and property tests: IK-KBZ join ordering."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import OptimizerError
from repro.optimizer.ikkbz import IKKBZNode, ikkbz_order, sequence_cost


def brute_force(nodes, edges, roots=None):
    """Minimum ASI cost over all precedence-respecting linear orders."""
    values = {node.name: node for node in nodes}
    adjacency = {name: set() for name in values}
    for left, right in edges:
        adjacency[left].add(right)
        adjacency[right].add(left)

    best_cost = float("inf")
    best_order = None
    for order in itertools.permutations(values):
        if roots is not None and order[0] not in roots:
            continue
        # Connectivity constraint: each node adjacent to an earlier one.
        seen = {order[0]}
        valid = True
        for name in order[1:]:
            if not adjacency[name] & seen:
                valid = False
                break
            seen.add(name)
        if not valid:
            continue
        cost = sequence_cost([values[name] for name in order])
        if cost < best_cost:
            best_cost = cost
            best_order = order
    return best_order, best_cost


class TestSequenceCost:
    def test_hand_computed(self):
        nodes = [IKKBZNode("a", 1.0, 10.0), IKKBZNode("b", 0.5, 4.0)]
        # C = 10 + T(a)*4 = 14
        assert sequence_cost(nodes) == pytest.approx(14.0)

    def test_order_matters(self):
        a = IKKBZNode("a", 0.1, 10.0)
        b = IKKBZNode("b", 1.0, 10.0)
        assert sequence_cost([a, b]) < sequence_cost([b, a])


class TestChainQueries:
    def test_simple_chain(self):
        nodes = [
            IKKBZNode("r1", 1.0, 100.0),
            IKKBZNode("r2", 0.1, 50.0),
            IKKBZNode("r3", 0.5, 200.0),
        ]
        edges = [("r1", "r2"), ("r2", "r3")]
        result = ikkbz_order(nodes, edges)
        _, expected_cost = brute_force(nodes, edges)
        assert result.cost == pytest.approx(expected_cost)

    def test_star_query(self):
        nodes = [
            IKKBZNode("hub", 1.0, 10.0),
            IKKBZNode("s1", 0.2, 100.0),
            IKKBZNode("s2", 0.8, 5.0),
            IKKBZNode("s3", 0.05, 500.0),
        ]
        edges = [("hub", "s1"), ("hub", "s2"), ("hub", "s3")]
        result = ikkbz_order(nodes, edges)
        _, expected_cost = brute_force(nodes, edges)
        assert result.cost == pytest.approx(expected_cost)

    def test_order_is_connected(self):
        nodes = [IKKBZNode(f"r{i}", 0.5, 10.0 * (i + 1)) for i in range(5)]
        edges = [(f"r{i}", f"r{i+1}") for i in range(4)]
        result = ikkbz_order(nodes, edges)
        adjacency = {node.name: set() for node in nodes}
        for left, right in edges:
            adjacency[left].add(right)
            adjacency[right].add(left)
        seen = {result.order[0]}
        for name in result.order[1:]:
            assert adjacency[name] & seen
            seen.add(name)

    def test_restricted_roots(self):
        nodes = [
            IKKBZNode("a", 0.5, 10.0),
            IKKBZNode("b", 0.5, 10.0),
        ]
        result = ikkbz_order(nodes, [("a", "b")], roots=["b"])
        assert result.order[0] == "b"
        assert result.root == "b"

    def test_per_root_costs_recorded(self):
        nodes = [
            IKKBZNode("a", 0.5, 10.0),
            IKKBZNode("b", 0.1, 100.0),
        ]
        result = ikkbz_order(nodes, [("a", "b")])
        assert set(result.per_root_costs) == {"a", "b"}


class TestValidation:
    def test_cycle_rejected(self):
        nodes = [IKKBZNode(n, 0.5, 1.0) for n in "abc"]
        with pytest.raises(OptimizerError):
            ikkbz_order(nodes, [("a", "b"), ("b", "c"), ("c", "a")])

    def test_disconnected_rejected(self):
        nodes = [IKKBZNode(n, 0.5, 1.0) for n in "abcd"]
        with pytest.raises(OptimizerError):
            ikkbz_order(nodes, [("a", "b"), ("c", "d"), ("a", "b")])

    def test_unknown_edge_node_rejected(self):
        nodes = [IKKBZNode("a", 0.5, 1.0), IKKBZNode("b", 0.5, 1.0)]
        with pytest.raises(OptimizerError):
            ikkbz_order(nodes, [("a", "z")])

    def test_duplicate_names_rejected(self):
        nodes = [IKKBZNode("a", 0.5, 1.0), IKKBZNode("a", 0.5, 1.0)]
        with pytest.raises(OptimizerError):
            ikkbz_order(nodes, [])


class TestAgainstBruteForce:
    @given(st.data())
    @settings(max_examples=40, deadline=None)
    def test_matches_brute_force_on_random_trees(self, data):
        count = data.draw(st.integers(2, 6))
        nodes = [
            IKKBZNode(
                f"r{i}",
                data.draw(
                    st.floats(0.01, 2.0, allow_nan=False, allow_infinity=False)
                ),
                data.draw(
                    st.floats(0.1, 500.0, allow_nan=False, allow_infinity=False)
                ),
            )
            for i in range(count)
        ]
        # Random tree: each node links to a random earlier node.
        edges = [
            (f"r{data.draw(st.integers(0, i - 1))}", f"r{i}")
            for i in range(1, count)
        ]
        result = ikkbz_order(nodes, edges)
        _, expected_cost = brute_force(nodes, edges)
        assert result.cost == pytest.approx(expected_cost, rel=1e-9)
