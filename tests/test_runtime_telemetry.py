"""Live telemetry: progress monotonicity, freezing, and neutrality.

The acceptance contract: whole-plan progress is monotone non-decreasing
under every workload × strategy pair, ends at exactly 100% on success,
freezes (with a structured reason) on DNF, and — with the monitor
detached — leaves every gated BENCH artifact field byte-identical.
"""

import json

import pytest

from repro import Executor, build_database, optimize
from repro.bench.harness import DEFAULT_STRATEGIES, run_strategies
from repro.bench.workloads import WORKLOADS, build_workload
from repro.faults.chaos import run_chaos
from repro.obs.artifacts import strategy_record
from repro.obs.runtime_telemetry import RuntimeMonitor, format_top


@pytest.fixture(scope="module")
def db():
    return build_database(scale=10, seed=42)


class ProbeMonitor(RuntimeMonitor):
    """Asserts progress never decreases after any operator event."""

    def __init__(self):
        super().__init__()
        self.low_water = 0.0
        self.samples = 0

    def _check(self):
        current = self.progress()
        assert 0.0 <= current <= 1.0
        assert current >= self.low_water
        self.low_water = current
        self.samples += 1

    def on_row(self, key, seconds):
        super().on_row(key, seconds)
        self._check()

    def on_done(self, key, seconds):
        super().on_done(key, seconds)
        self._check()


# -- the acceptance sweep ----------------------------------------------------


@pytest.mark.parametrize("strategy", DEFAULT_STRATEGIES)
@pytest.mark.parametrize("workload_key", sorted(WORKLOADS))
def test_progress_monotone_and_terminal(db, workload_key, strategy):
    workload = build_workload(db, workload_key)
    optimized = optimize(db, workload.query, strategy=strategy)
    monitor = ProbeMonitor()
    executor = Executor(db, budget=workload.budget, monitor=monitor)
    result = executor.execute(
        optimized.plan, project=workload.query.select
    )
    assert monitor.samples > 0
    if result.completed:
        assert monitor.state == "completed"
        assert monitor.progress() == 1.0
    else:
        # The workload budget DNFs some plans (the paper's "never
        # completed" bars): progress freezes strictly below 100% with
        # a structured reason, never a traceback.
        assert monitor.state == "aborted"
        assert monitor.reason.startswith("budget:")
        assert 0.0 <= monitor.progress() < 1.0
    assert result.resources is not None
    assert result.resources.state == monitor.state
    # format_top renders every terminal state without raising.
    assert "progress" in format_top(
        monitor, title=workload_key, resources=result.resources
    )


# -- freezing ----------------------------------------------------------------


def test_budget_freeze_pins_progress(db):
    workload = build_workload(db, "q1")
    optimized = optimize(db, workload.query, strategy="pushdown")
    monitor = RuntimeMonitor()
    executor = Executor(db, budget=50.0, monitor=monitor)
    result = executor.execute(optimized.plan)
    assert not result.completed
    assert monitor.state == "aborted"
    frozen = monitor.progress()
    assert 0.0 <= frozen < 1.0
    # Frozen means frozen: neither reads nor late events thaw it.
    monitor.on_row(next(iter(monitor.operators)), 0.0)
    monitor.complete()
    assert monitor.progress() == frozen
    assert monitor.state == "aborted"
    assert result.resources.reason.startswith("budget:")


def test_freeze_idempotent():
    monitor = RuntimeMonitor()
    monitor.freeze("budget: first")
    monitor.freeze("budget: second")
    assert monitor.reason == "budget: first"
    assert monitor.state == "aborted"


def test_fresh_monitor_reports_zero():
    monitor = RuntimeMonitor()
    assert monitor.progress() == 0.0
    assert monitor.state == "pending"


# -- resource accounting -----------------------------------------------------


def test_resource_report_matches_executor_metrics(db):
    workload = build_workload(db, "q4")
    optimized = optimize(db, workload.query, strategy="migration")
    monitor = RuntimeMonitor()
    executor = Executor(db, monitor=monitor)
    result = executor.execute(
        optimized.plan, project=workload.query.select
    )
    report = result.resources
    assert report is not None
    assert report.rows_out == result.row_count
    assert report.charged == result.charged
    assert report.udf_calls == int(result.metrics["function_calls"])
    assert report.function_charged == result.metrics["function_charged"]
    assert report.progress == 1.0
    document = report.as_dict()
    assert document["state"] == "completed"
    assert document["progress"] == 1.0
    # The roll-up is artifact-bound: deterministic and JSON-safe.
    assert json.dumps(document, sort_keys=True)


def test_caching_run_reports_cache_traffic(db):
    workload = build_workload(db, "q4")
    optimized = optimize(
        db, workload.query, strategy="pushdown", caching=True
    )
    monitor = RuntimeMonitor()
    executor = Executor(db, caching=True, monitor=monitor)
    result = executor.execute(optimized.plan)
    report = result.resources
    assert report.cache_hits + report.cache_misses > 0
    assert report.cache_entries > 0


# -- selectivity refinement --------------------------------------------------


def test_observed_selectivity_refines_estimates(db):
    workload = build_workload(db, "q1")
    optimized = optimize(db, workload.query, strategy="pushdown")
    monitor = RuntimeMonitor()
    executor = Executor(db, monitor=monitor)
    executor.execute(optimized.plan)
    observed = [
        telemetry
        for telemetry in monitor.predicates.values()
        if telemetry.evaluated > 0
    ]
    assert observed, "q1 must evaluate at least one tracked predicate"
    for telemetry in observed:
        assert 0.0 <= telemetry.observed_selectivity <= 1.0
        assert telemetry.cost.count == telemetry.evaluated


# -- neutrality: telemetry off must not move a single gated byte -------------


GATED_FIELDS = (
    "strategy",
    "fingerprint",
    "estimated_cost",
    "charged",
    "rows",
    "function_calls",
    "estimation_error",
    "relative",
    "completed",
    "executed",
    "error",
)


def _gated(outcomes):
    documents = []
    for outcome in outcomes:
        record = strategy_record(outcome)
        documents.append({key: record.get(key) for key in GATED_FIELDS})
    return json.dumps(documents, sort_keys=True)


def test_telemetry_off_is_byte_neutral(db):
    workload = build_workload(db, "q4")
    plain = run_strategies(
        db, workload.query, budget=workload.budget, telemetry=False
    )
    monitored = run_strategies(
        db, workload.query, budget=workload.budget, telemetry=True
    )
    assert _gated(plain) == _gated(monitored)
    for outcome in plain:
        assert "resources" not in outcome.extras
        assert "monitor" not in outcome.extras
    for outcome in monitored:
        assert outcome.extras["resources"]["state"] == "completed"
        assert outcome.extras["monitor"].progress() == 1.0


def test_artifact_records_embed_resources(db):
    workload = build_workload(db, "q1")
    outcomes = run_strategies(
        db,
        workload.query,
        strategies=("pushdown",),
        budget=workload.budget,
        telemetry=True,
    )
    record = strategy_record(outcomes[0])
    resources = record["resources"]
    assert resources["state"] == "completed"
    # The live monitor object itself must never leak into the record.
    assert json.dumps(record, sort_keys=True)


# -- chaos interplay ---------------------------------------------------------


def test_chaos_suite_passes_with_monitor_attached():
    report = run_chaos(
        "q1", seeds=(7,), scale=5, telemetry=True
    )
    assert report.passed, [
        violation
        for outcome in report.outcomes
        for violation in outcome.violations
    ]
    for outcome in report.outcomes:
        if outcome.error:
            continue
        assert outcome.progress is not None
        assert outcome.monitor_state in ("completed", "aborted")
