"""The shared ASCII table renderer behind every CLI view."""

import math

import pytest

from repro.obs.tables import Column, Table, auto_table, fmt_cell


# -- fmt_cell ----------------------------------------------------------------


def test_fmt_cell_finite():
    assert fmt_cell(0.123456) == "0.1235"
    assert fmt_cell(2.0, decimals=2) == "2.00"
    assert fmt_cell(0.0, decimals=1) == "0.0"


def test_fmt_cell_non_finite_pinned():
    assert fmt_cell(math.nan) == "—"
    assert fmt_cell(math.inf) == "inf"
    assert fmt_cell(-math.inf) == "-inf"


# -- Table -------------------------------------------------------------------


def _table():
    return Table(
        [
            Column("name", 6, align="left"),
            Column("value", 7),
            Column("(note)", gap=2),
        ]
    )


def test_table_alignment_and_gaps():
    table = _table()
    table.row("a", "1.0", "first")
    rendered = table.render().splitlines()
    assert rendered[0] == "name     value  (note)"
    assert rendered[1] == "-" * len(rendered[0])
    assert rendered[2] == "a          1.0  first"


def test_table_short_rows_allowed_and_rstripped():
    table = _table()
    table.row("a", "1.0")
    line = table.render().splitlines()[-1]
    assert line == "a          1.0"
    assert not line.endswith(" ")


def test_table_too_many_cells_raises():
    table = _table()
    with pytest.raises(ValueError):
        table.row("a", "b", "c", "d")


def test_table_raw_passthrough():
    table = _table()
    table.raw("anything    goes here")
    assert table.render().splitlines()[-1] == "anything    goes here"


def test_free_form_column_unpadded():
    table = Table([Column("x", 3), Column("tail")])
    table.row("1", "no padding")
    assert table.render().splitlines()[-1] == "  1 no padding"


# -- auto_table --------------------------------------------------------------


def test_auto_table_fits_widest_cell():
    rendered = auto_table(
        ["strategy", "charged"],
        [["pushdown", "10,001"], ["ldl", "3,001"]],
        aligns=["left", "right"],
    )
    lines = rendered.splitlines()
    assert lines[0] == "strategy  charged"
    assert lines[2] == "pushdown   10,001"
    assert lines[3] == "ldl         3,001"


def test_auto_table_header_wider_than_cells():
    rendered = auto_table(["long header", "x"], [["a", "b"]])
    lines = rendered.splitlines()
    assert lines[0] == "long header  x"
    assert lines[2] == "          a  b"
