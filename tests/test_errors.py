"""Unit tests: the exception hierarchy."""

import pytest

from repro import errors


class TestHierarchy:
    @pytest.mark.parametrize(
        "exception",
        [
            errors.CatalogError,
            errors.StorageError,
            errors.ExecutionError,
            errors.PlanError,
            errors.OptimizerError,
            errors.SQLError,
        ],
    )
    def test_all_derive_from_repro_error(self, exception):
        assert issubclass(exception, errors.ReproError)

    def test_specific_catalog_errors(self):
        assert issubclass(errors.UnknownRelationError, errors.CatalogError)
        assert issubclass(errors.UnknownAttributeError, errors.CatalogError)
        assert issubclass(errors.UnknownFunctionError, errors.CatalogError)
        assert issubclass(errors.DuplicateNameError, errors.CatalogError)

    def test_sql_errors(self):
        assert issubclass(errors.SQLLexError, errors.SQLError)
        assert issubclass(errors.SQLParseError, errors.SQLError)
        assert issubclass(errors.BindError, errors.SQLError)

    def test_budget_is_execution_error(self):
        assert issubclass(errors.BudgetExceededError, errors.ExecutionError)


class TestMessages:
    def test_unknown_relation_names_it(self):
        error = errors.UnknownRelationError("emp")
        assert "emp" in str(error)
        assert error.name == "emp"

    def test_unknown_attribute_names_both(self):
        error = errors.UnknownAttributeError("emp", "salary")
        assert "emp" in str(error) and "salary" in str(error)

    def test_budget_carries_numbers(self):
        error = errors.BudgetExceededError(1234.5, 1000.0)
        assert error.charged == 1234.5
        assert error.budget == 1000.0
        assert "1234.5" in str(error)

    def test_lex_error_position(self):
        error = errors.SQLLexError("bad char", 17)
        assert "17" in str(error)
        assert error.position == 17

    def test_catch_all_with_base(self):
        try:
            raise errors.UnknownFunctionError("f")
        except errors.ReproError as caught:
            assert caught.name == "f"


class TestRobustnessErrors:
    def test_udf_error_is_execution_error(self):
        assert issubclass(errors.UdfError, errors.ExecutionError)

    def test_statistics_error_is_repro_error(self):
        assert issubclass(errors.StatisticsError, errors.ReproError)

    def test_planning_timeout_is_optimizer_error(self):
        assert issubclass(errors.PlanningTimeout, errors.OptimizerError)

    def test_udf_error_carries_fault_context(self):
        error = errors.UdfError(
            "costly100", call_index=5, transient=True, reason="net blip"
        )
        assert error.function == "costly100"
        assert error.call_index == 5
        assert error.transient
        message = str(error)
        assert "costly100" in message
        assert "#5" in message
        assert "transient" in message
        assert "net blip" in message

    def test_udf_error_permanent_flavour(self):
        error = errors.UdfError("f", call_index=1, transient=False)
        assert "permanent" in str(error)

    def test_planning_timeout_message(self):
        error = errors.PlanningTimeout("exhaustive", 2.5, 1.0)
        message = str(error)
        assert "exhaustive" in message
        assert error.elapsed == 2.5
        assert error.budget == 1.0
