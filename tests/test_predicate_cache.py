"""Unit and integration tests: predicate caching (Section 5.1)."""

import pytest

from repro.exec import Executor, PredicateCache
from repro.plan.nodes import Join, JoinMethod, Plan, Scan
from tests.conftest import costly_filter, equijoin


class TestPredicateCacheUnit:
    def test_miss_then_hit(self):
        cache = PredicateCache()
        found, _ = cache.lookup(1, ("x",))
        assert not found
        cache.store(1, ("x",), True)
        found, value = cache.lookup(1, ("x",))
        assert found and value is True
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_null_results_cached(self):
        # The paper: entries are true, false, or NULL (beardless people).
        cache = PredicateCache()
        cache.store(1, ("x",), None)
        found, value = cache.lookup(1, ("x",))
        assert found and value is None

    def test_predicates_have_separate_tables(self):
        cache = PredicateCache()
        cache.store(1, ("x",), True)
        found, _ = cache.lookup(2, ("x",))
        assert not found

    def test_eviction_bound(self):
        cache = PredicateCache(max_entries_per_predicate=2)
        for key in range(5):
            cache.store(1, (key,), True)
        assert cache.entries(1) == 2
        assert cache.stats.evictions == 3

    def test_fifo_eviction_order(self):
        cache = PredicateCache(max_entries_per_predicate=2)
        cache.store(1, ("a",), True)
        cache.store(1, ("b",), True)
        cache.store(1, ("c",), True)  # evicts "a"
        assert cache.lookup(1, ("a",))[0] is False
        assert cache.lookup(1, ("c",))[0] is True

    def test_total_entries(self):
        cache = PredicateCache()
        cache.store(1, ("a",), True)
        cache.store(2, ("b",), False)
        assert cache.total_entries() == 2


class TestCachedExecution:
    def test_invocations_equal_distinct_bindings(self, tiny_db):
        """The central caching claim: one evaluation per distinct value."""
        predicate = costly_filter(tiny_db, "costly100", ("t3", "u20"))
        plan = Plan(Scan(filters=[predicate], table="t3"))
        result = Executor(tiny_db, caching=True).execute(plan)
        ndistinct = tiny_db.catalog.table("t3").stats.ndistinct("u20")
        assert result.metrics["function_calls"] == ndistinct
        assert result.cache_stats.misses == ndistinct

    def test_same_rows_with_and_without_cache(self, tiny_db):
        predicate = costly_filter(tiny_db, "costly100", ("t3", "u20"))
        plan = Plan(Scan(filters=[predicate], table="t3"))
        cached = Executor(tiny_db, caching=True).execute(plan)
        uncached = Executor(tiny_db, caching=False).execute(plan)
        assert sorted(cached.rows) == sorted(uncached.rows)
        assert cached.charged < uncached.charged

    def test_cache_rescues_fanout_pullup(self, tiny_db):
        """Section 4.2: 'join selectivities greater than 1 can be avoided
        by using function caching'. Pulling a selection above a fanout
        join multiplies invocations — unless cached."""
        predicate = costly_filter(tiny_db, "costly100", ("t3", "u20"))
        fanout_join = Plan(Join(
            filters=[predicate],
            outer=Scan(filters=[], table="t3"),
            inner=Scan(filters=[], table="t10"),
            method=JoinMethod.HASH,
            primary=equijoin(tiny_db, ("t3", "ua1"), ("t10", "ua20")),
        ))
        uncached = Executor(tiny_db, caching=False).execute(fanout_join)
        cached = Executor(tiny_db, caching=True).execute(fanout_join)
        t3 = tiny_db.catalog.table("t3").cardinality
        assert uncached.metrics["function_calls"] > t3  # fanout multiplied
        assert (
            cached.metrics["function_calls"]
            <= tiny_db.catalog.table("t3").stats.ndistinct("u20")
        )
        assert sorted(cached.rows) == sorted(uncached.rows)

    def test_join_predicate_cached_on_both_inputs(self, tiny_db):
        from repro.expr.expressions import Column, FuncCall
        from repro.expr.predicates import analyze_conjunct

        primary = analyze_conjunct(
            tiny_db.catalog,
            FuncCall(
                "expjoin10", (Column("t1", "u20"), Column("t2", "u20"))
            ),
        )
        plan = Plan(Join(
            filters=[],
            outer=Scan(filters=[], table="t1"),
            inner=Scan(filters=[], table="t2"),
            method=JoinMethod.NESTED_LOOP,
            primary=primary,
        ))
        result = Executor(tiny_db, caching=True).execute(plan)
        nd1 = tiny_db.catalog.table("t1").stats.ndistinct("u20")
        nd2 = tiny_db.catalog.table("t2").stats.ndistinct("u20")
        assert result.metrics["function_calls"] <= nd1 * nd2

    def test_cache_limit_still_correct(self, tiny_db):
        predicate = costly_filter(tiny_db, "costly100", ("t3", "u20"))
        plan = Plan(Scan(filters=[predicate], table="t3"))
        unlimited = Executor(tiny_db, caching=True).execute(plan)
        limited = Executor(tiny_db, caching=True, cache_limit=2).execute(plan)
        assert sorted(limited.rows) == sorted(unlimited.rows)
        assert limited.metrics["function_calls"] >= unlimited.metrics[
            "function_calls"
        ]


class TestGlobalCapacity:
    """The global entry bound (``max_total_entries``): one LRU budget
    shared by every predicate's table."""

    def test_global_bound_evicts_oldest_across_owners(self):
        cache = PredicateCache(max_total_entries=3)
        cache.store(1, ("a",), True)
        cache.store(2, ("b",), True)
        cache.store(1, ("c",), True)
        cache.store(3, ("d",), True)  # evicts (1, "a") — oldest anywhere
        assert cache.total_entries() == 3
        assert cache.stats.evictions == 1
        assert cache.lookup(1, ("a",))[0] is False
        assert cache.lookup(2, ("b",))[0] is True
        assert cache.lookup(3, ("d",))[0] is True

    def test_lru_hit_refreshes_global_order(self):
        cache = PredicateCache(max_total_entries=2, replacement="lru")
        cache.store(1, ("a",), True)
        cache.store(2, ("b",), True)
        cache.lookup(1, ("a",))  # refresh: (2, "b") is now the LRU
        cache.store(3, ("c",), True)
        assert cache.lookup(2, ("b",))[0] is False
        assert cache.lookup(1, ("a",))[0] is True

    def test_fifo_hits_do_not_refresh(self):
        cache = PredicateCache(max_total_entries=2, replacement="fifo")
        cache.store(1, ("a",), True)
        cache.store(2, ("b",), True)
        cache.lookup(1, ("a",))  # no refresh under fifo
        cache.store(3, ("c",), True)  # still evicts (1, "a")
        assert cache.lookup(1, ("a",))[0] is False
        assert cache.lookup(2, ("b",))[0] is True

    def test_composes_with_per_owner_bound(self):
        cache = PredicateCache(
            max_entries_per_predicate=2, max_total_entries=3
        )
        for key in range(3):  # per-owner bound evicts (1, (0,))
            cache.store(1, (key,), True)
        cache.store(2, ("x",), True)
        cache.store(2, ("y",), True)  # global bound evicts (1, (1,))
        assert cache.total_entries() == 3
        assert cache.entries(1) == 1
        assert cache.entries(2) == 2
        assert cache.stats.evictions == 2

    def test_restore_after_global_eviction(self):
        cache = PredicateCache(max_total_entries=1)
        cache.store(1, ("a",), True)
        cache.store(1, ("b",), False)
        cache.store(1, ("a",), None)  # re-admitted with the new value
        found, value = cache.lookup(1, ("a",))
        assert found and value is None
        assert cache.total_entries() == 1

    def test_invalid_capacity_rejected(self):
        from repro.errors import ExecutionError

        with pytest.raises(ExecutionError):
            PredicateCache(max_total_entries=0)

    def test_executor_capacity_still_correct(self, tiny_db):
        predicate = costly_filter(tiny_db, "costly100", ("t3", "u20"))
        plan = Plan(Scan(filters=[predicate], table="t3"))
        unlimited = Executor(tiny_db, caching=True).execute(plan)
        bounded = Executor(
            tiny_db, caching=True, cache_capacity=1
        ).execute(plan)
        assert sorted(bounded.rows) == sorted(unlimited.rows)
        assert bounded.metrics["function_calls"] >= unlimited.metrics[
            "function_calls"
        ]
        assert bounded.cache_entries <= 1

    def test_executor_capacity_vector_matches_row(self, tiny_db):
        predicate = costly_filter(tiny_db, "costly100", ("t3", "u20"))
        plan = Plan(Scan(filters=[predicate], table="t3"))
        row = Executor(
            tiny_db, caching=True, cache_capacity=2
        ).execute(plan)
        vector = Executor(
            tiny_db, caching=True, cache_capacity=2, executor="vector"
        ).execute(plan)
        assert sorted(vector.rows) == sorted(row.rows)
        # Same sequential binding stream, same bounded cache: the
        # hit/miss/eviction history is identical too.
        assert vector.cache_stats.hits == row.cache_stats.hits
        assert vector.cache_stats.evictions == row.cache_stats.evictions
