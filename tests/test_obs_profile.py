"""Tests for the phase profiler (repro.obs.profile)."""

from __future__ import annotations

import time

from repro.bench import run_strategies
from repro.bench.workloads import build_workload
from repro.obs import (
    NULL_PHASE,
    NULL_PROFILER,
    NullProfiler,
    PhaseProfiler,
)
from repro.optimizer import optimize


class TestNullProfiler:
    def test_disabled_and_inert(self):
        assert NULL_PROFILER.enabled is False
        assert NULL_PROFILER.phase("anything") is NULL_PHASE
        with NULL_PROFILER.phase("anything"):
            pass
        NULL_PROFILER.record("anything", 1.0)
        assert NULL_PROFILER.as_dict() == {}
        assert NULL_PROFILER.top_hotspots() == []

    def test_null_is_the_shared_instance(self):
        # The module-level singleton is what default arguments use; a
        # private NullProfiler behaves identically.
        assert isinstance(NULL_PROFILER, NullProfiler)
        assert NullProfiler().phase("x") is NULL_PHASE


class TestPhaseProfiler:
    def test_single_phase_accumulates(self):
        profiler = PhaseProfiler()
        for _ in range(3):
            with profiler.phase("work"):
                time.sleep(0.001)
        stat = profiler.stat("work")
        assert stat.count == 3
        assert stat.seconds >= 0.003
        # No children: self time equals inclusive time.
        assert stat.self_seconds == stat.seconds

    def test_nested_phase_splits_self_time(self):
        profiler = PhaseProfiler()
        with profiler.phase("outer"):
            time.sleep(0.001)
            with profiler.phase("inner"):
                time.sleep(0.002)
        outer = profiler.stat("outer")
        inner = profiler.stat("inner")
        assert outer.seconds >= inner.seconds  # inclusive of the child
        assert inner.self_seconds == inner.seconds
        # The child's time is subtracted from the parent's self time.
        assert outer.self_seconds <= outer.seconds - inner.seconds + 1e-6

    def test_record_folds_external_durations(self):
        profiler = PhaseProfiler()
        profiler.record("exec.op.Join", 0.5)
        profiler.record("exec.op.Join", 0.25)
        stat = profiler.stat("exec.op.Join")
        assert stat.count == 2
        assert stat.seconds == 0.75
        assert stat.self_seconds == 0.75

    def test_top_hotspots_ranked_by_self_time(self):
        profiler = PhaseProfiler()
        profiler.record("cold", 0.1)
        profiler.record("hot", 3.0)
        profiler.record("warm", 1.0)
        hotspots = profiler.top_hotspots(2)
        assert [entry["phase"] for entry in hotspots] == ["hot", "warm"]
        assert hotspots[0]["self_seconds"] == 3.0

    def test_as_dict_round_trips_stats(self):
        profiler = PhaseProfiler()
        with profiler.phase("p"):
            pass
        snapshot = profiler.as_dict()
        assert set(snapshot) == {"p"}
        assert snapshot["p"]["count"] == 1
        assert {"seconds", "self_seconds", "count"} <= set(snapshot["p"])


class TestOptimizerIntegration:
    def test_migration_phases_recorded(self, tiny_db):
        workload = build_workload(tiny_db, "q1")
        profiler = PhaseProfiler()
        optimize(
            tiny_db, workload.query, strategy="migration", profiler=profiler
        )
        phases = profiler.as_dict()
        assert "optimize.migration" in phases
        assert "systemr.level_1" in phases
        assert "systemr.level_2" in phases
        assert "migration.round" in phases
        assert phases["migration.round"]["count"] >= 1

    def test_each_strategy_contributes_its_phases(self, tiny_db):
        workload = build_workload(tiny_db, "q1")
        profiler = PhaseProfiler()
        for strategy, marker in (
            ("ldl", "ldl.step_1"),
            ("exhaustive", "exhaustive.order"),
        ):
            optimize(
                tiny_db, workload.query, strategy=strategy, profiler=profiler
            )
            assert marker in profiler.as_dict()

    def test_run_strategies_collects_executor_phases(self, tiny_db):
        workload = build_workload(tiny_db, "q1")
        profiler = PhaseProfiler()
        run_strategies(
            tiny_db,
            workload.query,
            strategies=("migration",),
            instrument=True,
            profiler=profiler,
        )
        phases = profiler.as_dict()
        assert "exec.build" in phases
        assert "exec.run" in phases
        # Instrumented runs fold per-operator actuals into the profile.
        assert any(name.startswith("exec.op.") for name in phases)

    def test_default_run_has_no_profile(self, tiny_db):
        workload = build_workload(tiny_db, "q1")
        # The default profiler is the null one: nothing accumulates and
        # nothing crashes without an explicit profiler argument.
        outcomes = run_strategies(
            tiny_db, workload.query, strategies=("migration",)
        )
        assert outcomes[0].completed
