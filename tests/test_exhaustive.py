"""Unit tests: exhaustive placement — the ground-truth optimizer."""

import pytest

from repro.cost.model import CostModel
from repro.errors import OptimizerError
from repro.optimizer.exhaustive import exhaustive_plan
from repro.optimizer.optimizer import STRATEGIES, optimize
from repro.optimizer.query import Query
from tests.conftest import costly_filter, equijoin


def model_of(db, **kwargs):
    return CostModel(db.catalog, db.params, **kwargs)


class TestExhaustiveBasics:
    def test_single_table(self, db):
        query = Query(
            tables=["t3"],
            predicates=[costly_filter(db, "costly100", ("t3", "u20"))],
        )
        plan = exhaustive_plan(query, db.catalog, model_of(db))
        assert plan.estimated_cost is not None

    def test_combo_limit_enforced(self, db):
        query = Query(
            tables=["t1", "t2", "t3"],
            predicates=[
                equijoin(db, ("t1", "ua1"), ("t2", "a1")),
                equijoin(db, ("t2", "ua1"), ("t3", "a1")),
                costly_filter(db, "costly100", ("t1", "u20")),
            ],
        )
        with pytest.raises(OptimizerError):
            exhaustive_plan(query, db.catalog, model_of(db), combo_limit=2)

    def test_enumerate_methods_not_worse_than_greedy(self, db):
        query = Query(
            tables=["t3", "t10"],
            predicates=[
                equijoin(db, ("t3", "a1"), ("t10", "ua1")),
                costly_filter(db, "costly100", ("t10", "u20")),
            ],
        )
        greedy = exhaustive_plan(
            query, db.catalog, model_of(db), method_choice="greedy"
        )
        enumerated = exhaustive_plan(
            query, db.catalog, model_of(db), method_choice="enumerate"
        )
        assert enumerated.estimated_cost <= greedy.estimated_cost + 1e-6

    def test_bad_method_choice_rejected(self, db):
        query = Query(tables=["t3"], predicates=[])
        with pytest.raises(OptimizerError):
            exhaustive_plan(query, db.catalog, model_of(db), method_choice="x")

    def test_notes_keys_uniform_across_exits(self, db):
        """Every exit path — single-table early return and the full
        multi-table search — must populate the same note keys, so
        downstream consumers (artifact records, EXPLAIN notes) never see
        partial accounting."""
        single = Query(
            tables=["t3"],
            predicates=[costly_filter(db, "costly100", ("t3", "u20"))],
        )
        multi = Query(
            tables=["t3", "t10"],
            predicates=[
                equijoin(db, ("t3", "a1"), ("t10", "ua1")),
                costly_filter(db, "costly100", ("t10", "u20")),
            ],
        )
        single_notes: dict = {}
        multi_notes: dict = {}
        exhaustive_plan(single, db.catalog, model_of(db), notes=single_notes)
        exhaustive_plan(multi, db.catalog, model_of(db), notes=multi_notes)
        assert single_notes, "single-table exit wrote no notes"
        assert set(single_notes) == set(multi_notes)
        # The single-table path does real (if trivial) accounting.
        assert single_notes["orders_enumerated"] == 1
        assert single_notes["subplans_enumerated"] == 1
        assert single_notes["interleavings_counted"] == 0
        assert single_notes["combos_pruned"] == 0


class TestExhaustiveIsLowerBound:
    """Table 1: Exhaustive works for all queries — its estimate must lower-
    bound every heuristic's on every workload query."""

    @pytest.mark.parametrize(
        "key", ["q1", "q2", "q3", "q4", "q5", "ldl_example"]
    )
    def test_lower_bounds_heuristics(self, db, key):
        from repro.bench.workloads import build_workload

        workload = build_workload(db, key)
        exhaustive = optimize(db, workload.query, strategy="exhaustive")
        for strategy in STRATEGIES:
            if strategy == "exhaustive":
                continue
            try:
                other = optimize(db, workload.query, strategy=strategy)
            except OptimizerError:
                # Some strategies have a restricted scope (ldl-ikkbz
                # rejects expensive join predicates / cyclic graphs).
                continue
            assert (
                exhaustive.estimated_cost <= other.estimated_cost + 1e-6
            ), f"{strategy} beat exhaustive on {key}"
