"""The execution flight recorder and its crash dumps.

Ring-buffer semantics, abort bookkeeping, dump document shape and
strict-JSON round trips, the ``repro postmortem`` renderer, the
executor and chaos integrations (a dead run deterministically leaves a
``FLIGHT_*.json`` on disk), and byte-stability of dumps across fresh
interpreters with differing ``PYTHONHASHSEED`` (the same subprocess
pattern as ``test_feedback_store.py``).
"""

import json
import os
import subprocess
import sys

import pytest

from repro import Executor, build_database, optimize
from repro.bench.workloads import build_workload, ensure_workload_functions
from repro.errors import ArtifactError
from repro.faults.clock import SimulatedClock
from repro.obs.flightrec import (
    DEFAULT_CAPACITY,
    FLIGHT_SCHEMA_VERSION,
    FlightRecorder,
    build_flight_dump,
    flight_path,
    format_postmortem,
    load_flight_dump,
    write_flight_dump,
)
from repro.obs.runtime_telemetry import RuntimeMonitor

SRC = os.path.join(os.path.dirname(__file__), os.pardir, "src")


@pytest.fixture(scope="module")
def db():
    database = build_database(scale=10, seed=42)
    ensure_workload_functions(database)
    return database


def _dead_run(db, workload_key="q1", executor="vector", monitor=None):
    """One budget-DNF execution with a recorder attached.

    The budget is 90% of the full run's charge and vector batches are
    kept small, so the engine records a healthy stretch of batch/row
    events before the meter trips — a dump with an identifiable dying
    operator, not just the abort."""
    workload = build_workload(db, workload_key)
    plan = optimize(db, workload.query, strategy="pushdown").plan
    kwargs = {"batch_rows": 8} if executor == "vector" else {}
    full = Executor(db, executor=executor, **kwargs).execute(plan)
    recorder = FlightRecorder()
    result = Executor(
        db, budget=full.charged * 0.9, executor=executor, monitor=monitor,
        flight=recorder, **kwargs,
    ).execute(plan)
    assert not result.completed
    return recorder, result


# -- ring buffer -------------------------------------------------------------


class TestFlightRecorder:
    def test_ring_drops_oldest(self):
        recorder = FlightRecorder(capacity=3)
        for i in range(5):
            recorder.record("batch", op="SeqScan(t3)", batch=i)
        assert recorder.recorded == 5
        events = recorder.events()
        assert len(events) == 3
        assert [e["batch"] for e in events] == [2, 3, 4]
        assert [e["seq"] for e in events] == [3, 4, 5]

    def test_capacity_floor_is_one(self):
        recorder = FlightRecorder(capacity=0)
        assert recorder.capacity == 1
        recorder.record("a")
        recorder.record("b")
        assert [e["kind"] for e in recorder.events()] == ["b"]

    def test_timestamps_come_from_simulated_clock(self):
        clock = SimulatedClock()
        recorder = FlightRecorder(clock=clock)
        recorder.record("batch")
        clock.advance(7.5)
        recorder.record("batch")
        assert [e["t"] for e in recorder.events()] == [0.0, 7.5]

    def test_note_abort_first_reason_wins(self):
        recorder = FlightRecorder()
        recorder.note_abort("budget: charged 50.0 > budget 25.0")
        recorder.note_abort("udf: later failure")
        assert recorder.tripped == "budget: charged 50.0 > budget 25.0"
        aborts = [
            e for e in recorder.events() if e["kind"] == "query.abort"
        ]
        assert len(aborts) == 1
        assert aborts[0]["reason"].startswith("budget:")

    def test_last_operator_scans_backwards(self):
        recorder = FlightRecorder()
        recorder.record("rows", op="SeqScan(t3)", rows=1)
        recorder.record("batch", op="hash-join  [t3.a1 = t10.ua1]")
        recorder.record("query.abort", reason="budget: ...")
        assert recorder.last_operator() == "hash-join  [t3.a1 = t10.ua1]"

    def test_last_operator_empty_ring(self):
        assert FlightRecorder().last_operator() == ""

    def test_flight_path_naming(self, tmp_path):
        assert flight_path(tmp_path, "q1").name == "FLIGHT_q1.json"
        assert (
            flight_path(tmp_path, "q1", suffix="seed7_pushdown").name
            == "FLIGHT_q1_seed7_pushdown.json"
        )


# -- executor integration ----------------------------------------------------


class TestExecutorIntegration:
    @pytest.mark.parametrize("executor", ["row", "vector"])
    def test_budget_abort_trips_recorder(self, db, executor):
        recorder, result = _dead_run(db, executor=executor)
        assert recorder.tripped == result.error
        assert recorder.tripped.startswith("budget:")
        assert recorder.recorded > 0
        kinds = {e["kind"] for e in recorder.events()}
        assert "query.abort" in kinds
        # Batch events on the vector path, row milestones on the row
        # path — either way the dying operator is identifiable.
        assert ("batch" in kinds) or ("rows" in kinds)
        assert recorder.last_operator() != ""

    def test_detached_run_is_recorder_free(self, db):
        workload = build_workload(db, "q1")
        plan = optimize(db, workload.query, strategy="pushdown").plan
        result = Executor(db, executor="vector").execute(plan)
        assert result.completed  # nothing to record, nothing recorded

    def test_healthy_run_never_trips(self, db):
        workload = build_workload(db, "q1")
        plan = optimize(db, workload.query, strategy="pushdown").plan
        recorder = FlightRecorder()
        result = Executor(
            db, executor="vector", flight=recorder
        ).execute(plan)
        assert result.completed
        assert recorder.tripped == ""
        assert recorder.recorded > 0  # batches were still logged


# -- dump document -----------------------------------------------------------


class TestFlightDump:
    def test_document_shape(self, db):
        monitor = RuntimeMonitor()
        recorder, result = _dead_run(db, monitor=monitor)
        document = build_flight_dump(
            recorder,
            workload="q1",
            reason=result.error,
            executor="vector",
            strategy="pushdown",
            seed=42,
            result=result,
            monitor=monitor,
        )
        assert document["schema_version"] == FLIGHT_SCHEMA_VERSION
        assert document["kind"] == "flight"
        assert document["workload"] == "q1"
        assert document["reason"].startswith("budget:")
        assert document["capacity"] == DEFAULT_CAPACITY
        assert document["events_recorded"] == recorder.recorded
        assert document["last_operator"] == recorder.last_operator()
        assert document["events"][-1]["kind"] == "query.abort"
        progress = document["progress"]
        assert progress["state"] == "aborted"
        assert 0.0 <= progress["fraction"] < 1.0
        assert progress["operators"]
        assert document["metrics"]["charged"] == result.charged
        # Strict JSON end to end: no NaN, no ids, no sets.
        json.dumps(document, allow_nan=False)

    def test_round_trip(self, db, tmp_path):
        recorder, result = _dead_run(db)
        document = build_flight_dump(
            recorder, workload="q1", reason=result.error,
            executor="vector",
        )
        target = write_flight_dump(flight_path(tmp_path, "q1"), document)
        assert target.name == "FLIGHT_q1.json"
        loaded = load_flight_dump(target)
        assert loaded == json.loads(json.dumps(document))

    def test_load_rejects_missing_file(self, tmp_path):
        with pytest.raises(ArtifactError, match="cannot read"):
            load_flight_dump(tmp_path / "nope.json")

    def test_load_rejects_invalid_json(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(ArtifactError, match="not valid JSON"):
            load_flight_dump(bad)

    def test_load_rejects_wrong_kind(self, tmp_path):
        wrong = tmp_path / "BENCH_q1.json"
        wrong.write_text(json.dumps({"kind": "bench-run"}))
        with pytest.raises(ArtifactError, match="not a flight dump"):
            load_flight_dump(wrong)

    def test_load_rejects_future_schema(self, tmp_path):
        future = tmp_path / "FLIGHT_q1.json"
        future.write_text(
            json.dumps(
                {
                    "kind": "flight",
                    "schema_version": FLIGHT_SCHEMA_VERSION + 1,
                    "events": [],
                }
            )
        )
        with pytest.raises(ArtifactError, match="schema_version"):
            load_flight_dump(future)

    def test_load_rejects_missing_events(self, tmp_path):
        hollow = tmp_path / "FLIGHT_q1.json"
        hollow.write_text(
            json.dumps(
                {"kind": "flight",
                 "schema_version": FLIGHT_SCHEMA_VERSION}
            )
        )
        with pytest.raises(ArtifactError, match="no events"):
            load_flight_dump(hollow)


# -- postmortem renderer -----------------------------------------------------


class TestPostmortem:
    def test_renders_dead_run(self, db):
        monitor = RuntimeMonitor()
        recorder, result = _dead_run(db, monitor=monitor)
        document = build_flight_dump(
            recorder, workload="q1", reason=result.error,
            executor="vector", strategy="pushdown", seed=42,
            result=result, monitor=monitor,
        )
        report = format_postmortem(document)
        assert "postmortem: q1 [pushdown] seed=42" in report
        assert "reason: budget:" in report
        assert "died in:" in report
        assert "timeline (last" in report
        assert "query.abort" in report
        assert "frozen progress:" in report
        assert "meter at death: charged=" in report

    def test_ring_overflow_is_reported(self):
        recorder = FlightRecorder(capacity=4)
        for i in range(10):
            recorder.record("batch", op="SeqScan(t3)", batch=i)
        document = build_flight_dump(
            recorder, workload="q1", reason="budget: x"
        )
        report = format_postmortem(document, last=2)
        assert "10 recorded, 4 retained (6 fell off the ring)" in report
        assert "timeline (last 2 events):" in report

    def test_renderer_is_pure(self, db):
        recorder, result = _dead_run(db)
        document = build_flight_dump(
            recorder, workload="q1", reason=result.error,
            executor="vector",
        )
        assert format_postmortem(document) == format_postmortem(document)


# -- chaos integration -------------------------------------------------------


class TestChaosFlightDumps:
    def test_permanent_profile_writes_dumps(self, tmp_path):
        from repro.faults.chaos import format_chaos_report, run_chaos

        report = run_chaos(
            "q1",
            seeds=(7,),
            strategies=("pushdown", "migration"),
            profile="permanent",
            scale=4,
            flight_dir=str(tmp_path),
        )
        dead = [o for o in report.outcomes if not o.completed]
        assert dead, "a permanent fault must kill at least one run"
        for outcome in dead:
            assert outcome.flight_dump
            document = load_flight_dump(outcome.flight_dump)
            assert document["workload"] == "q1"
            assert document["strategy"] == outcome.strategy
            assert document["seed"] == 7
            assert document["reason"] == outcome.error
            rendered = format_postmortem(document)
            assert "postmortem: q1" in rendered
        rendered_report = format_chaos_report(report)
        assert "flight dump:" in rendered_report
        completed = [o for o in report.outcomes if o.completed]
        for outcome in completed:
            assert outcome.flight_dump == ""

    def test_no_flight_dir_no_dumps(self):
        from repro.faults.chaos import run_chaos

        report = run_chaos(
            "q1", seeds=(7,), strategies=("pushdown",),
            profile="permanent", scale=4,
        )
        assert all(o.flight_dump == "" for o in report.outcomes)

    def test_dumps_are_deterministic(self, tmp_path):
        from repro.faults.chaos import run_chaos

        paths = []
        for directory in ("a", "b"):
            target = tmp_path / directory
            run_chaos(
                "q1", seeds=(7,), strategies=("pushdown",),
                profile="permanent", scale=4,
                flight_dir=str(target),
            )
            paths.append(target / "FLIGHT_q1_seed7_pushdown.json")
        assert paths[0].read_bytes() == paths[1].read_bytes()


# -- determinism across interpreters -----------------------------------------

#: Kills one q1 run per executor under a tight budget, dumps the flight
#: recording, and prints the exact file bytes — any hash-order or id
#: dependence in the dump shows up as a byte diff across hash seeds.
SCRIPT = """
import sys
from repro import Executor, build_database, optimize
from repro.bench.workloads import build_workload, ensure_workload_functions
from repro.obs.flightrec import (
    FlightRecorder, build_flight_dump, flight_path, write_flight_dump,
)
from repro.obs.runtime_telemetry import RuntimeMonitor

db = build_database(scale=10, seed=42)
ensure_workload_functions(db)
for executor in ("row", "vector"):
    workload = build_workload(db, "q1")
    plan = optimize(db, workload.query, strategy="pushdown").plan
    kwargs = {"batch_rows": 8} if executor == "vector" else {}
    full = Executor(db, executor=executor, **kwargs).execute(plan)
    recorder = FlightRecorder()
    monitor = RuntimeMonitor()
    result = Executor(
        db, budget=full.charged * 0.9, executor=executor, monitor=monitor,
        flight=recorder, **kwargs,
    ).execute(plan)
    assert not result.completed
    document = build_flight_dump(
        recorder, workload="q1", reason=result.error, executor=executor,
        strategy="pushdown", seed=42, result=result, monitor=monitor,
    )
    target = write_flight_dump(
        flight_path(sys.argv[1], "q1", suffix=executor), document
    )
    sys.stdout.write(open(target).read())
"""


def _subprocess_dump(hashseed: str, tmpdir: str) -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hashseed
    env["PYTHONPATH"] = SRC
    result = subprocess.run(
        [sys.executable, "-c", SCRIPT, tmpdir],
        capture_output=True,
        text=True,
        env=env,
        check=False,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


@pytest.fixture(scope="module")
def dump_runs(tmp_path_factory):
    return [
        _subprocess_dump(seed, str(tmp_path_factory.mktemp(f"fl{i}")))
        for i, seed in enumerate(("0", "0", "1"))
    ]


def test_dump_bytes_nonempty(dump_runs):
    assert '"kind": "flight"' in dump_runs[0]
    assert '"query.abort"' in dump_runs[0]


def test_dump_bytes_stable_same_hashseed(dump_runs):
    assert dump_runs[0] == dump_runs[1]


def test_dump_bytes_stable_across_hashseeds(dump_runs):
    assert dump_runs[0] == dump_runs[2]
