"""Tests for the Section 5.1 caching alternatives: function-level caching,
LRU replacement, and the cache-bypass heuristic."""

import pytest

from repro.exec import Executor, PredicateCache
from repro.expr.expressions import Column, FuncCall, Logical
from repro.expr.predicates import analyze_conjunct
from repro.plan.nodes import Plan, Scan
from tests.conftest import costly_filter


def two_function_predicate(db):
    """costly10(t3.u20) AND costly100(t3.u100): one predicate, two UDFs
    over different columns — where predicate- and function-level caching
    genuinely differ."""
    return analyze_conjunct(
        db.catalog,
        Logical(
            "AND",
            (
                FuncCall("costly10", (Column("t3", "u20"),)),
                FuncCall("costly100", (Column("t3", "u100"),)),
            ),
        ),
    )


class TestFunctionLevelCaching:
    def test_same_rows_as_predicate_level(self, tiny_db):
        predicate = two_function_predicate(tiny_db)
        plan = Plan(Scan(filters=[predicate], table="t3"))
        by_predicate = Executor(tiny_db, caching=True).execute(plan)
        by_function = Executor(
            tiny_db, caching=True, cache_mode="function"
        ).execute(plan)
        assert sorted(by_predicate.rows) == sorted(by_function.rows)

    def test_function_mode_fewer_calls_on_compound_predicates(self, db):
        """Predicate caching keys on (u20, u100) pairs; function caching
        keys each UDF on its own column, so it evaluates at most
        nd(u20) + nd(u100) times instead of nd(u20) x nd(u100)."""
        predicate = two_function_predicate(db)
        plan = Plan(Scan(filters=[predicate], table="t3"))
        by_predicate = Executor(db, caching=True).execute(plan)
        by_function = Executor(
            db, caching=True, cache_mode="function"
        ).execute(plan)
        stats = db.catalog.table("t3").stats
        nd_pairs = stats.ndistinct("u20") * stats.ndistinct("u100")
        nd_separate = stats.ndistinct("u20") + stats.ndistinct("u100")
        assert by_function.metrics["function_calls"] <= nd_separate
        assert by_predicate.metrics["function_calls"] >= (
            by_function.metrics["function_calls"]
        )
        assert by_predicate.cache_entries <= nd_pairs

    def test_single_function_modes_equivalent_calls(self, tiny_db):
        predicate = costly_filter(tiny_db, "costly100", ("t3", "u20"))
        plan = Plan(Scan(filters=[predicate], table="t3"))
        by_predicate = Executor(tiny_db, caching=True).execute(plan)
        by_function = Executor(
            tiny_db, caching=True, cache_mode="function"
        ).execute(plan)
        assert (
            by_predicate.metrics["function_calls"]
            == by_function.metrics["function_calls"]
        )

    def test_unknown_mode_rejected(self, tiny_db):
        from repro.errors import ExecutionError

        predicate = costly_filter(tiny_db, "costly100", ("t3", "u20"))
        plan = Plan(Scan(filters=[predicate], table="t3"))
        with pytest.raises(ExecutionError):
            Executor(tiny_db, caching=True, cache_mode="weird").execute(plan)


class TestReplacementPolicies:
    def test_lru_keeps_hot_entries(self):
        cache = PredicateCache(max_entries_per_predicate=2, replacement="lru")
        cache.store(1, ("a",), True)
        cache.store(1, ("b",), True)
        cache.lookup(1, ("a",))  # touch "a": "b" becomes LRU
        cache.store(1, ("c",), True)  # evicts "b"
        assert cache.lookup(1, ("a",))[0] is True
        assert cache.lookup(1, ("b",))[0] is False

    def test_fifo_ignores_recency(self):
        cache = PredicateCache(max_entries_per_predicate=2, replacement="fifo")
        cache.store(1, ("a",), True)
        cache.store(1, ("b",), True)
        cache.lookup(1, ("a",))
        cache.store(1, ("c",), True)  # evicts "a" despite the touch
        assert cache.lookup(1, ("a",))[0] is False

    def test_invalid_policy_rejected(self):
        from repro.errors import ExecutionError

        with pytest.raises(ExecutionError):
            PredicateCache(replacement="random")

    def test_executor_accepts_lru(self, tiny_db):
        predicate = costly_filter(tiny_db, "costly100", ("t3", "u20"))
        plan = Plan(Scan(filters=[predicate], table="t3"))
        result = Executor(
            tiny_db, caching=True, cache_limit=2, cache_replacement="lru"
        ).execute(plan)
        assert result.completed


class TestCacheBypass:
    def test_unique_binding_predicate_bypassed(self, db):
        """On a unique column every binding is distinct: caching buys
        nothing, and the bypass heuristic skips it (no cache entries)."""
        predicate = costly_filter(db, "costly100", ("t3", "ua1"))
        plan = Plan(Scan(filters=[predicate], table="t3"))
        bypassing = Executor(
            db, caching=True, cache_bypass=True
        ).execute(plan)
        caching = Executor(db, caching=True).execute(plan)
        cardinality = db.catalog.table("t3").cardinality
        assert bypassing.metrics["function_calls"] == cardinality
        assert caching.metrics["function_calls"] == cardinality
        assert bypassing.cache_entries == 0
        assert caching.cache_entries == cardinality

    def test_repetitive_predicate_still_cached(self, db):
        predicate = costly_filter(db, "costly100", ("t3", "u20"))
        plan = Plan(Scan(filters=[predicate], table="t3"))
        result = Executor(db, caching=True, cache_bypass=True).execute(plan)
        ndistinct = db.catalog.table("t3").stats.ndistinct("u20")
        assert result.metrics["function_calls"] == ndistinct
        assert result.cache_entries == ndistinct

    def test_bypass_does_not_change_rows(self, tiny_db):
        predicate = costly_filter(tiny_db, "costly100", ("t3", "ua1"))
        plan = Plan(Scan(filters=[predicate], table="t3"))
        plain = Executor(tiny_db, caching=True).execute(plan)
        bypassed = Executor(
            tiny_db, caching=True, cache_bypass=True
        ).execute(plan)
        assert sorted(plain.rows) == sorted(bypassed.rows)
