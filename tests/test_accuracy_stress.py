"""Unit tests: estimate-accuracy instrumentation and the stress harness."""

import pytest

from repro.bench.accuracy import (
    NodeAccuracy,
    format_accuracy,
    measure_accuracy,
    worst_q_error,
)
from repro.bench.stress import random_sql, stress_optimizer
from repro.optimizer import Query, optimize
from tests.conftest import costly_filter, equijoin


class TestNodeAccuracy:
    def test_q_error_symmetric(self):
        over = NodeAccuracy("n", 0, estimated_rows=100, actual_rows=50)
        under = NodeAccuracy("n", 0, estimated_rows=50, actual_rows=100)
        assert over.q_error == pytest.approx(under.q_error) == 2.0

    def test_perfect_estimate(self):
        exact = NodeAccuracy("n", 0, estimated_rows=100, actual_rows=100)
        assert exact.q_error == 1.0

    def test_zero_actual_guarded(self):
        entry = NodeAccuracy("n", 0, estimated_rows=10, actual_rows=0)
        assert entry.q_error == 20.0  # vs the 0.5 floor


class TestMeasureAccuracy:
    def make_plan(self, db):
        query = Query(
            tables=["t2", "t3"],
            predicates=[
                equijoin(db, ("t2", "ua1"), ("t3", "a1")),
                costly_filter(db, "costly100", ("t3", "u20")),
            ],
        )
        return optimize(db, query, strategy="migration").plan

    def test_covers_every_node(self, tiny_db):
        plan = self.make_plan(tiny_db)
        rows = measure_accuracy(tiny_db, plan)
        assert len(rows) == len(list(plan.root.walk()))
        assert rows[0].depth == 0

    def test_base_scans_exact(self, tiny_db):
        plan = self.make_plan(tiny_db)
        rows = measure_accuracy(tiny_db, plan)
        for entry in rows:
            if entry.label.startswith("SeqScan") and "filter" not in entry.label:
                assert entry.q_error == 1.0

    def test_meter_left_clean(self, tiny_db):
        plan = self.make_plan(tiny_db)
        measure_accuracy(tiny_db, plan)
        assert tiny_db.meter.charged == 0.0

    def test_format_contains_rows(self, tiny_db):
        plan = self.make_plan(tiny_db)
        text = format_accuracy("t", measure_accuracy(tiny_db, plan))
        assert "q-err" in text and "SeqScan" in text

    def test_worst_q_error_empty(self):
        assert worst_q_error([]) == 1.0


class TestStress:
    def test_random_sql_deterministic(self):
        import random

        a = [random_sql(random.Random(3), ["t1", "t2"]) for _ in range(5)]
        b = [random_sql(random.Random(3), ["t1", "t2"]) for _ in range(5)]
        assert a == b

    def test_random_sql_parses(self, tiny_db):
        import random

        from repro.sql import compile_query

        rng = random.Random(1)
        for _ in range(20):
            sql = random_sql(rng, ["t1", "t2", "t3"])
            query = compile_query(tiny_db, sql)
            assert query.tables

    def test_stress_run_is_clean(self, tiny_db):
        report = stress_optimizer(tiny_db, queries=10, seed=5)
        assert report.queries_run == 10
        assert report.clean, report.summary()

    def test_summary_mentions_status(self, tiny_db):
        report = stress_optimizer(tiny_db, queries=3, seed=5)
        assert "CLEAN" in report.summary()
