"""Unit tests: the charged-cost meter (the paper's measurement currency)."""

import pytest

from repro.errors import BudgetExceededError
from repro.storage.meter import CostMeter, IOKind


class TestCharging:
    def test_random_io_costs_one_unit(self):
        meter = CostMeter()
        meter.charge_io(IOKind.RANDOM, 3)
        assert meter.charged == 3.0

    def test_sequential_io_weighted(self):
        meter = CostMeter(seq_weight=0.25)
        meter.charge_io(IOKind.SEQUENTIAL, 8)
        assert meter.charged == 2.0

    def test_function_charging(self):
        meter = CostMeter()
        meter.charge_function(100.0, calls=3)
        assert meter.function_calls == 3
        assert meter.charged == 300.0

    def test_cpu_charging(self):
        meter = CostMeter()
        meter.charge_cpu(1.5)
        assert meter.charged == 1.5

    def test_mixed_total(self):
        meter = CostMeter(seq_weight=0.5)
        meter.charge_io(IOKind.RANDOM, 2)
        meter.charge_io(IOKind.SEQUENTIAL, 4)
        meter.charge_function(10.0)
        meter.charge_cpu(0.5)
        assert meter.charged == pytest.approx(2 + 2 + 10 + 0.5)
        assert meter.io_charged == pytest.approx(4.0)

    def test_negative_amounts_rejected(self):
        meter = CostMeter()
        with pytest.raises(ValueError):
            meter.charge_io(IOKind.RANDOM, -1)
        with pytest.raises(ValueError):
            meter.charge_function(1.0, calls=-1)
        with pytest.raises(ValueError):
            meter.charge_cpu(-0.1)

    def test_reset(self):
        meter = CostMeter()
        meter.charge_io(IOKind.RANDOM)
        meter.charge_function(5.0)
        meter.charge_cpu(1.0)
        meter.reset()
        assert meter.charged == 0.0
        assert meter.snapshot()["function_calls"] == 0

    def test_snapshot_keys(self):
        snapshot = CostMeter().snapshot()
        assert set(snapshot) == {
            "random_ios",
            "seq_ios",
            "function_calls",
            "function_charged",
            "cpu_charged",
            "io_charged",
            "charged",
        }


class TestBudget:
    def test_budget_aborts(self):
        meter = CostMeter(budget=10.0)
        meter.charge_io(IOKind.RANDOM, 10)
        with pytest.raises(BudgetExceededError):
            meter.charge_io(IOKind.RANDOM, 1)

    def test_budget_exact_boundary_allowed(self):
        meter = CostMeter(budget=10.0)
        meter.charge_io(IOKind.RANDOM, 10)  # == budget is fine
        assert meter.charged == 10.0

    def test_budget_error_carries_amounts(self):
        meter = CostMeter(budget=5.0)
        with pytest.raises(BudgetExceededError) as info:
            meter.charge_function(100.0)
        assert info.value.budget == 5.0
        assert info.value.charged == 100.0

    def test_no_budget_never_aborts(self):
        meter = CostMeter()
        meter.charge_function(1e12)
        assert meter.charged == 1e12


class TestChargeClamping:
    """A UDF lying about its catalog cost must not poison the ledger:
    one nan charge would make every later budget comparison false."""

    def test_nan_cost_clamped_to_zero(self):
        meter = CostMeter()
        meter.charge_function(float("nan"), calls=3)
        assert meter.function_charged == 0.0
        assert meter.function_calls == 3
        assert meter.clamped_charges == 3

    def test_negative_and_negative_infinite_cost_clamped(self):
        meter = CostMeter()
        meter.charge_function(-100.0)
        meter.charge_function(float("-inf"))
        assert meter.function_charged == 0.0
        assert meter.clamped_charges == 2

    def test_positive_infinite_cost_clamped(self):
        meter = CostMeter()
        meter.charge_function(float("inf"))
        assert meter.function_charged == 0.0
        assert meter.clamped_charges == 1

    def test_clamped_charge_cannot_disable_budget(self):
        meter = CostMeter(budget=5.0)
        meter.charge_function(float("nan"))  # would make charged nan
        with pytest.raises(BudgetExceededError):
            meter.charge_function(100.0)

    def test_honest_charges_unaffected(self):
        meter = CostMeter()
        meter.charge_function(10.0, calls=2)
        assert meter.function_charged == 20.0
        assert meter.clamped_charges == 0

    def test_reset_clears_clamp_counter(self):
        meter = CostMeter()
        meter.charge_function(float("nan"))
        meter.reset()
        assert meter.clamped_charges == 0
