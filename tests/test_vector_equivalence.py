"""Differential property suite: the vector executor is the row
executor's semantic twin.

Every workload × strategy × data seed must produce the identical row
multiset under ``executor="row"`` and ``executor="vector"``, with the
same completion verdict and — for completed runs — the same charged
totals and cache statistics (under the default unbounded cache, whose
hit/miss history is evaluation-order independent in totals). The chaos
invariants must also survive batching: lossy containment policies keep
their subset/superset relationship to the fault-free oracle.
"""

from collections import Counter

import pytest

from repro import Executor, build_database, optimize
from repro.bench.harness import DEFAULT_STRATEGIES
from repro.bench.workloads import build_workload, ensure_workload_functions
from repro.errors import ExecutionError
from repro.obs.artifacts import plan_fingerprint

QUERY_WORKLOADS = ("q1", "q2", "q3", "q4", "q5")
SEEDS = (7, 11, 13)
SCALE = 12


def _databases():
    """One database per seed, shared across the parametrized tests."""
    databases = {}
    for seed in SEEDS:
        db = build_database(scale=SCALE, seed=seed)
        ensure_workload_functions(db)
        databases[seed] = db
    return databases


_DATABASES = _databases()


def _run(db, plan, budget, executor, **kwargs):
    return Executor(
        db, budget=budget, executor=executor, **kwargs
    ).execute(plan)


class TestRowVectorEquivalence:
    @pytest.mark.parametrize("workload_key", QUERY_WORKLOADS)
    @pytest.mark.parametrize("strategy", DEFAULT_STRATEGIES)
    def test_identical_multisets_all_seeds(self, workload_key, strategy):
        for seed in SEEDS:
            db = _DATABASES[seed]
            workload = build_workload(db, workload_key)
            plan = optimize(
                db, workload.query, strategy=strategy
            ).plan
            row = _run(db, plan, workload.budget, "row")
            vector = _run(db, plan, workload.budget, "vector")
            label = f"{workload_key}/{strategy}/seed={seed}"
            assert vector.completed == row.completed, label
            assert Counter(vector.rows) == Counter(row.rows), label
            if row.completed:
                assert vector.charged == pytest.approx(row.charged), label
                for metric in (
                    "io_charged",
                    "function_charged",
                    "function_calls",
                    "cpu_charged",
                ):
                    assert vector.metrics[metric] == pytest.approx(
                        row.metrics[metric]
                    ), f"{label}:{metric}"

    @pytest.mark.parametrize("caching_kwargs", [
        {"caching": True},
        {"caching": True, "cache_mode": "function"},
    ])
    def test_cached_runs_match(self, caching_kwargs):
        db = _DATABASES[7]
        workload = build_workload(db, "q4")
        plan = optimize(
            db, workload.query, strategy="migration", caching=True
        ).plan
        row = _run(db, plan, workload.budget, "row", **caching_kwargs)
        vector = _run(db, plan, workload.budget, "vector", **caching_kwargs)
        assert Counter(vector.rows) == Counter(row.rows)
        assert vector.charged == pytest.approx(row.charged)
        if row.cache_stats is not None:
            assert vector.cache_stats.hits == row.cache_stats.hits
            assert vector.cache_stats.misses == row.cache_stats.misses

    def test_odd_batch_sizes_change_nothing(self):
        db = _DATABASES[11]
        workload = build_workload(db, "q5")
        plan = optimize(db, workload.query, strategy="pushdown").plan
        reference = _run(db, plan, workload.budget, "row")
        for batch_rows in (1, 7, 64, 100_000):
            vector = Executor(
                db,
                budget=workload.budget,
                executor="vector",
                batch_rows=batch_rows,
            ).execute(plan)
            assert Counter(vector.rows) == Counter(reference.rows), batch_rows
            assert vector.charged == pytest.approx(reference.charged)

    def test_unknown_executor_rejected(self):
        db = _DATABASES[7]
        with pytest.raises(ExecutionError) as excinfo:
            Executor(db, executor="warp")
        assert "row" in str(excinfo.value)
        assert "vector" in str(excinfo.value)


class TestRowPathNeutrality:
    def test_vector_runs_leave_plans_untouched(self):
        """Running the vector executor must not perturb the catalog or
        statistics the planner reads: fingerprints before and after a
        vector run are byte-identical."""
        db = _DATABASES[13]
        workload = build_workload(db, "q4")
        before = plan_fingerprint(
            optimize(db, workload.query, strategy="migration").plan
        )
        plan = optimize(db, workload.query, strategy="migration").plan
        _run(db, plan, workload.budget, "vector")
        after = plan_fingerprint(
            optimize(
                db, build_workload(db, "q4").query, strategy="migration"
            ).plan
        )
        assert before == after


class TestChaosUnderBatching:
    """Containment's lossy policies keep their oracle relationship when
    predicate evaluation happens batch-at-a-time."""

    @pytest.mark.parametrize("policy,allowed", [
        ("skip-row", {"equal", "subset"}),
        ("assume-fail", {"equal", "subset"}),
        ("assume-pass", {"equal", "superset"}),
    ])
    def test_policy_relation_survives_batching(self, policy, allowed):
        from repro.faults.chaos import run_chaos

        report = run_chaos(
            "q1",
            seeds=(7,),
            strategies=("pushdown", "migration"),
            policy=policy,
            scale=4,
            executor="vector",
        )
        assert report.passed, report.violations
        assert report.executor == "vector"
        for outcome in report.outcomes:
            if outcome.completed:
                assert outcome.rows_vs_oracle in allowed, (
                    policy,
                    outcome.strategy,
                    outcome.rows_vs_oracle,
                )

    def test_chaos_vector_matches_row_report_shape(self):
        from repro.faults.chaos import run_chaos

        row_report = run_chaos(
            "q2", seeds=(11,), strategies=("pushdown",), scale=4,
            executor="row",
        )
        vector_report = run_chaos(
            "q2", seeds=(11,), strategies=("pushdown",), scale=4,
            executor="vector",
        )
        assert row_report.passed and vector_report.passed
        pairs = zip(row_report.outcomes, vector_report.outcomes)
        for row_outcome, vector_outcome in pairs:
            assert (
                vector_outcome.rows_vs_oracle == row_outcome.rows_vs_oracle
            )
            assert vector_outcome.row_count == row_outcome.row_count
