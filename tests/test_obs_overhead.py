"""The default (untraced) path must not pay for the tracing subsystem."""

import time

import repro.obs.tracer as tracer_module
from repro import Executor, compile_query, optimize
from repro.obs import NullTracer

SQL = (
    "SELECT * FROM t3, t6, t10 "
    "WHERE t3.ua1 = t6.a1 AND t6.ua1 = t10.a1 "
    "AND costly100sel10(t3.u20)"
)


def _plan_and_run(db, query, tracer=None):
    optimized = optimize(db, query, strategy="migration", tracer=tracer)
    Executor(db, tracer=tracer).execute(optimized.plan)


def test_default_path_constructs_zero_spans(db, monkeypatch):
    """The acceptance bar: no Span object is ever built unless a real
    Tracer was passed in."""
    constructed = []
    original_init = tracer_module.Span.__init__

    def counting_init(self, *args, **kwargs):
        constructed.append(self)
        original_init(self, *args, **kwargs)

    monkeypatch.setattr(tracer_module.Span, "__init__", counting_init)
    query = compile_query(db, SQL, name="overhead-spans")
    _plan_and_run(db, query)  # tracer defaults to NULL_TRACER
    assert constructed == []

    _plan_and_run(db, query, tracer=tracer_module.Tracer())
    assert constructed  # sanity: the counter does fire when traced


def test_null_tracer_within_noise_of_default(db):
    """Passing an explicit NullTracer runs the identical code path as the
    default; min-of-N wall times must agree within generous noise."""
    query = compile_query(db, SQL, name="overhead-noise")
    _plan_and_run(db, query)  # warm up caches/pools

    def min_of(tracer, repeats=5):
        times = []
        for _ in range(repeats):
            started = time.perf_counter()
            _plan_and_run(db, query, tracer=tracer)
            times.append(time.perf_counter() - started)
        return min(times)

    baseline = min_of(None)
    nulled = min_of(NullTracer())
    assert nulled <= baseline * 5 + 0.05

    # bench_opt_time.py-style absolute bar: a full plan-and-run of the
    # 3-way migration query stays far under the paper's 8-second budget.
    assert baseline < 8.0
