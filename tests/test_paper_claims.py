"""Integration tests: the paper's headline experimental claims, asserted.

Each test pins the *shape* of one published result — who wins and by
roughly what factor — at the suite's small scale. The benchmarks in
``benchmarks/`` print the full tables; these tests make the claims part of
CI.
"""

import pytest

from repro.bench import (
    build_workload,
    outcome_by_strategy,
    run_strategies,
)
from repro.exec import Executor
from repro.optimizer import optimize


class TestFigure3Query1:
    """PushDown is far worse when the join is selective over the relation
    carrying the expensive selection."""

    def test_pushdown_at_least_3x_worse(self, db):
        workload = build_workload(db, "q1")
        outcomes = run_strategies(db, workload.query)
        pushdown = outcome_by_strategy(outcomes, "pushdown")
        migration = outcome_by_strategy(outcomes, "migration")
        assert pushdown.charged > 3.0 * migration.charged

    def test_everyone_else_optimal(self, db):
        workload = build_workload(db, "q1")
        outcomes = run_strategies(db, workload.query)
        for strategy in ("pullrank", "migration", "ldl", "pullup", "exhaustive"):
            assert outcome_by_strategy(outcomes, strategy).relative < 1.05


class TestFigure4Query2:
    """Over-eager pullup errs, but nearly insignificantly, when the join
    has selectivity ~1 over the filtered relation."""

    def test_pullup_strictly_but_barely_worse(self, db):
        workload = build_workload(db, "q2")
        outcomes = run_strategies(db, workload.query)
        pullup = outcome_by_strategy(outcomes, "pullup")
        best = min(
            o.charged for o in outcomes if o.strategy != "pullup"
        )
        assert pullup.charged > best          # it does err ...
        assert pullup.charged < 1.01 * best   # ... insignificantly

    def test_rank_aware_algorithms_do_not_pull(self, db):
        workload = build_workload(db, "q2")
        outcomes = run_strategies(db, workload.query)
        for strategy in ("pushdown", "pullrank", "migration", "exhaustive"):
            assert outcome_by_strategy(outcomes, strategy).relative == (
                pytest.approx(1.0)
            )


class TestFigure5Query3:
    """Over-eager pullup is significantly poor on a fanout join — and
    predicate caching rescues it (Section 4.2)."""

    def test_pullup_at_least_2x_worse(self, db):
        workload = build_workload(db, "q3")
        outcomes = run_strategies(db, workload.query)
        pullup = outcome_by_strategy(outcomes, "pullup")
        migration = outcome_by_strategy(outcomes, "migration")
        assert pullup.charged > 2.0 * migration.charged

    def test_caching_rescues_pullup(self, db):
        workload = build_workload(db, "q3")
        pullup_plan = optimize(db, workload.query, strategy="pullup").plan
        uncached = Executor(db, caching=False).execute(pullup_plan)
        cached = Executor(db, caching=True).execute(pullup_plan)
        assert cached.charged < 0.5 * uncached.charged


class TestFigure8Query4:
    """PushDown is badly suboptimal; the rank-aware algorithms win by
    nearly an order of magnitude. (The fixed-order PullRank failure is
    asserted in test_bench_harness.)"""

    def test_pushdown_many_times_worse(self, db):
        workload = build_workload(db, "q4")
        outcomes = run_strategies(db, workload.query)
        pushdown = outcome_by_strategy(outcomes, "pushdown")
        migration = outcome_by_strategy(outcomes, "migration")
        assert pushdown.charged > 5.0 * migration.charged

    def test_migration_matches_exhaustive(self, db):
        workload = build_workload(db, "q4")
        outcomes = run_strategies(db, workload.query)
        migration = outcome_by_strategy(outcomes, "migration")
        exhaustive = outcome_by_strategy(outcomes, "exhaustive")
        assert migration.charged == pytest.approx(
            exhaustive.charged, rel=0.01
        )


class TestFigure9Query5:
    """PullUp's plan with an expensive primary join predicate must DNF;
    everyone else completes."""

    def test_pullup_dnf_everyone_else_completes(self, db):
        workload = build_workload(db, "q5")
        outcomes = run_strategies(db, workload.query, budget=workload.budget)
        assert outcome_by_strategy(outcomes, "pullup").dnf
        for strategy in ("pushdown", "pullrank", "migration", "ldl",
                         "exhaustive"):
            assert outcome_by_strategy(outcomes, strategy).completed

    def test_pullup_estimate_shows_the_blowup(self, db):
        workload = build_workload(db, "q5")
        pullup = optimize(db, workload.query, strategy="pullup")
        migration = optimize(db, workload.query, strategy="migration")
        assert pullup.estimated_cost > 5.0 * migration.estimated_cost


class TestSection44PlanningTime:
    """Montage planned a 5-way join with expensive predicates in under 8
    seconds on a 1993 SparcStation; our pure-Python optimizer should too."""

    def test_five_way_join_plans_under_8_seconds(self, db):
        workload = build_workload(db, "fiveway")
        optimized = optimize(db, workload.query, strategy="migration")
        assert optimized.planning_seconds < 8.0
        assert optimized.plan.root.tables() == frozenset(
            {"t2", "t4", "t6", "t8", "t10"}
        )


class TestFigure10Eagerness:
    """The eagerness spectrum: PushDown ≤ PullRank ≤ Migration ≤ PullUp,
    with PushDown = 0 and PullUp = 1."""

    def test_spectrum_ordering(self, db):
        from repro.bench import eagerness_score

        scores = {}
        for strategy in ("pushdown", "pullrank", "migration", "ldl", "pullup"):
            values = []
            for key in ("q1", "q2", "q3", "q4"):
                workload = build_workload(db, key)
                plan = optimize(db, workload.query, strategy=strategy).plan
                score = eagerness_score(plan)
                if score is not None:
                    values.append(score)
            scores[strategy] = sum(values) / len(values)
        assert scores["pushdown"] == pytest.approx(0.0)
        assert scores["pullup"] == pytest.approx(1.0)
        assert scores["pushdown"] <= scores["pullrank"] + 1e-9
        assert scores["pullrank"] <= scores["pullup"] + 1e-9
        assert scores["migration"] <= scores["pullup"] + 1e-9


class TestTable1Applicability:
    """The measured applicability matrix matches the paper's claims."""

    def test_matrix_matches_expectations(self, db):
        from repro.bench.applicability import EXPECTED, applicability_matrix

        matrix = applicability_matrix(db)
        for workload_key, expectations in EXPECTED.items():
            for strategy, should_be_correct in expectations.items():
                cell = matrix[workload_key][strategy]
                assert cell.correct == should_be_correct, (
                    f"{workload_key}/{strategy}: expected "
                    f"correct={should_be_correct}, got relative="
                    f"{cell.relative:.2f} completed={cell.completed}"
                )
