"""Shared fixtures for the test suite.

A session-scoped synthetic database at a small scale keeps the suite fast;
executions reset meters and counters per run, so sharing is safe. Tests
that mutate catalog contents build their own database.
"""

from __future__ import annotations

import pytest

from repro.catalog.datagen import build_database
from repro.database import Database
from repro.expr.expressions import Column, Comparison, FuncCall
from repro.expr.predicates import analyze_conjunct

#: Scale used across the suite: tN has N x 100 tuples (t10 = 1000).
TEST_SCALE = 100


@pytest.fixture(scope="session")
def db() -> Database:
    database = build_database(scale=TEST_SCALE, seed=42)
    from repro.bench.workloads import ensure_workload_functions

    ensure_workload_functions(database)
    return database


@pytest.fixture()
def fresh_db() -> Database:
    """A private database for tests that mutate catalog state."""
    return build_database(scale=20, seed=7)


@pytest.fixture(scope="session")
def tiny_db() -> Database:
    """A very small database for exhaustive/execution-equivalence tests."""
    database = build_database(scale=20, seed=11)
    from repro.bench.workloads import ensure_workload_functions

    ensure_workload_functions(database)
    return database


def equijoin(db: Database, left: tuple[str, str], right: tuple[str, str]):
    """Helper: an analyzed cheap equijoin predicate."""
    return analyze_conjunct(
        db.catalog,
        Comparison("=", Column(*left), Column(*right)),
    )


def costly_filter(db: Database, name: str, column: tuple[str, str]):
    """Helper: an analyzed expensive UDF selection."""
    return analyze_conjunct(db.catalog, FuncCall(name, (Column(*column),)))
