"""Injected cardinalities (``--inject-cards``) and mid-query epochs.

Satellite guarantees of the adaptive PR: exact catalog lies can be
installed deterministically through the one sanctioned statistics
mutation path (``Catalog.apply_feedback``), and the mid-query feedback
epochs an adaptive re-plan snapshots never collide with the end-of-run
epochs the stats CLI records.
"""

import json

import pytest

from repro import build_database
from repro.__main__ import main
from repro.adaptive import AdaptivePolicy, load_injected_cards
from repro.adaptive.inject import InjectedCardinalityStore
from repro.adaptive.workloads import (
    REALIZED_SELECTIVITY,
    build_adapt_workload,
)
from repro.errors import ArtifactError
from repro.exec import Executor
from repro.obs.artifacts import plan_fingerprint
from repro.obs.feedback import (
    FeedbackCollector,
    StatsFeedbackStore,
    predicate_fingerprint,
)
from repro.optimizer import optimize


def _write(tmp_path, document, name="cards.json"):
    path = tmp_path / name
    path.write_text(json.dumps(document), encoding="utf-8")
    return path


def _cards(cards):
    return {"schema_version": 1, "kind": "injected-cards", "cards": cards}


class TestStoreValidation:
    def test_load_missing_file(self, tmp_path):
        with pytest.raises(ArtifactError, match="cannot read"):
            load_injected_cards(tmp_path / "absent.json")

    def test_load_invalid_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{nope", encoding="utf-8")
        with pytest.raises(ArtifactError, match="not valid JSON"):
            load_injected_cards(path)

    def test_wrong_schema_version(self, tmp_path):
        document = _cards({"f": {"selectivity": 0.5}})
        document["schema_version"] = 99
        with pytest.raises(ArtifactError, match="schema_version"):
            load_injected_cards(_write(tmp_path, document))

    def test_empty_cards_rejected(self, tmp_path):
        with pytest.raises(ArtifactError, match="non-empty 'cards'"):
            load_injected_cards(_write(tmp_path, _cards({})))

    def test_card_must_be_object(self):
        with pytest.raises(ArtifactError, match="not an object"):
            InjectedCardinalityStore.from_dict(_cards({"f": 0.5}))

    def test_rows_without_input_rows(self):
        with pytest.raises(ArtifactError, match="input_rows"):
            InjectedCardinalityStore.from_dict(_cards({"f": {"rows": 10}}))


class TestCardShapes:
    def test_direct_selectivity(self):
        store = InjectedCardinalityStore.from_dict(
            _cards({"costly100": {"selectivity": 0.25}})
        )
        (obs,) = store.observations_for()
        assert obs.functions == ("costly100",)
        assert obs.observed_selectivity == 0.25
        assert obs.evaluated >= 1
        assert obs.charged_calls == 0  # no cost injected → cost untouched

    def test_rows_over_input_rows(self):
        store = InjectedCardinalityStore.from_dict(
            _cards({"f": {"rows": 120, "input_rows": 480,
                          "cost_per_call": 50.0}})
        )
        (obs,) = store.observations_for()
        assert obs.observed_selectivity == 0.25
        assert obs.evaluated == 480
        assert obs.charged_calls == 1
        assert obs.observed_cost_per_call == 50.0

    def test_fingerprint_binding_and_unmatched_warning(self):
        db = build_database(scale=20, seed=42)
        query = build_adapt_workload(db, "adapt_drift").query
        liar = next(
            predicate for predicate in query.predicates
            if "adaptliar100" in str(predicate)
        )
        fingerprint = predicate_fingerprint(liar)
        stale = "0" * 16  # fingerprint-shaped, matches nothing
        store = InjectedCardinalityStore.from_dict(
            _cards({
                fingerprint: {"selectivity": 0.4},
                stale: {"selectivity": 0.9},
            })
        ).bind(query.predicates)
        by_key = {obs.key: obs for obs in store.observations_for()}
        assert by_key[fingerprint].functions == ("adaptliar100",)
        assert by_key[stale].functions == (stale,)
        assert store.unmatched == [stale]


class TestApplyFeedback:
    def test_injection_recovers_the_honest_plan(self):
        """Injecting the truth about the liar must flip the drift plan
        to the honest scenario's shape — same mechanism, no execution."""
        honest_db = build_database(scale=100, seed=42)
        honest_plan = optimize(
            honest_db,
            build_adapt_workload(honest_db, "adapt_honest").query,
            strategy="migration",
        ).plan

        db = build_database(scale=100, seed=42)
        build_adapt_workload(db, "adapt_drift")
        store = InjectedCardinalityStore.from_dict(
            _cards({"adaptliar100": {
                "selectivity": REALIZED_SELECTIVITY,
            }})
        )
        changed = db.catalog.apply_feedback(store)
        assert changed >= 1
        corrected_plan = optimize(
            db,
            build_adapt_workload(db, "adapt_drift").query,
            strategy="migration",
        ).plan
        assert plan_fingerprint(corrected_plan) == plan_fingerprint(
            honest_plan
        )

    def test_unregistered_function_cards_are_inert(self):
        db = build_database(scale=5, seed=42)
        store = InjectedCardinalityStore.from_dict(
            _cards({"no_such_udf": {"selectivity": 0.1}})
        )
        assert db.catalog.apply_feedback(store) == 0


class TestInjectCardsCli:
    def test_run_with_injected_truth_plans_honest(self, capsys, tmp_path):
        path = _write(
            tmp_path,
            _cards({"adaptliar100": {
                "selectivity": REALIZED_SELECTIVITY,
            }}),
        )
        code = main([
            "--workload", "adapt_drift", "--scale", "100",
            "--inject-cards", str(path), "--explain-only",
        ])
        captured = capsys.readouterr()
        assert code == 0
        assert "injected cards: 1 statistic(s) updated" in captured.err
        # The truth pushes the liar down onto its scan — the honest shape.
        assert "filter: adaptliar100" in captured.out

    def test_unmatched_fingerprint_warns(self, capsys, tmp_path):
        path = _write(
            tmp_path, _cards({"0" * 16: {"selectivity": 0.5}})
        )
        code = main([
            "--workload", "q1", "--scale", "5",
            "--inject-cards", str(path), "--explain-only",
        ])
        err = capsys.readouterr().err
        assert code == 0
        assert "matches none of this query's predicates" in err

    def test_bad_file_is_a_clean_error(self, capsys, tmp_path):
        code = main([
            "--workload", "q1", "--scale", "5",
            "--inject-cards", str(tmp_path / "absent.json"),
        ])
        assert code == 1
        assert "cannot read" in capsys.readouterr().err


class TestEpochSequencing:
    def _observations(self, selectivity=0.5):
        db = build_database(scale=5, seed=42)
        query = build_adapt_workload(db, "adapt_honest").query
        plan = optimize(db, query, strategy="pushdown").plan
        collector = FeedbackCollector()
        Executor(db, collector=collector).execute(plan)
        return collector.observations()

    def test_mid_query_epochs_group_under_the_run_number(self):
        store = StatsFeedbackStore("adapt_drift")
        observations = self._observations()
        store.record_epoch(
            observations, strategy="migration", scale=5, seed=42,
            sequence=1,
        )
        store.record_epoch(
            observations, strategy="migration", scale=5, seed=42,
            sequence=2,
        )
        number = store.record_epoch(
            observations, strategy="migration", scale=5, seed=42
        )
        assert number == 1
        assert store.epoch_numbers() == [1]
        snapshots = store.mid_query_epochs(1)
        assert [epoch["sequence"] for epoch in snapshots] == [1, 2]
        assert all(epoch["epoch"] == 1 for epoch in snapshots)
        assert store.latest_epoch()["sequence"] == 0

    def test_next_run_does_not_collide_with_snapshots(self):
        store = StatsFeedbackStore("adapt_drift")
        observations = self._observations()
        store.record_epoch(
            observations, strategy="migration", scale=5, seed=42,
            sequence=1,
        )
        first = store.record_epoch(
            observations, strategy="migration", scale=5, seed=42
        )
        second = store.record_epoch(
            observations, strategy="migration", scale=5, seed=42
        )
        assert (first, second) == (1, 2)
        assert store.epoch_numbers() == [1, 2]
        assert store.epoch(1, sequence=1)["sequence"] == 1
        with pytest.raises(ArtifactError, match="sequence 1"):
            store.epoch(2, sequence=1)

    def test_pre_sequence_stores_read_as_end_of_run(self):
        # Documents written before sequences existed carry no key.
        store = StatsFeedbackStore(
            "q1",
            epochs=[{"epoch": 1, "strategy": "pushdown",
                     "observations": {}}],
        )
        assert store.epoch_numbers() == [1]
        assert store.latest_epoch()["epoch"] == 1
        assert store.mid_query_epochs(1) == []

    def test_adaptive_execution_snapshots_mid_query_epoch(self):
        """The executor wiring: a drift re-plan records its backing
        observations as a sequence-numbered epoch that groups with the
        end-of-run epoch recorded afterwards."""
        db = build_database(scale=100, seed=42)
        query = build_adapt_workload(db, "adapt_drift").query
        plan = optimize(db, query, strategy="migration").plan
        store = StatsFeedbackStore("adapt_drift")
        collector = FeedbackCollector()
        result = Executor(
            db,
            adaptive=AdaptivePolicy(),
            collector=collector,
            adaptive_stats_store=store,
            adaptive_stats_meta={
                "strategy": "migration", "scale": 100, "seed": 42,
            },
        ).execute(plan)
        assert result.adaptive.replans == 1
        assert store.epoch_numbers() == []  # nothing end-of-run yet
        (snapshot,) = store.mid_query_epochs(1)
        assert snapshot["sequence"] == 1
        assert snapshot["strategy"] == "migration"
        number = store.record_epoch(
            collector.observations(), strategy="migration",
            scale=100, seed=42,
        )
        assert number == 1
        assert store.latest_epoch()["sequence"] == 0
