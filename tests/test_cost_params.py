"""Unit tests: the cost-model constants and derived formulas."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.cost.params import CostParams


class TestPagesFor:
    def test_basic(self):
        params = CostParams(page_size=8192)
        assert params.pages_for(81, 100) == 1
        assert params.pages_for(82, 100) == 2

    def test_zero_rows(self):
        assert CostParams().pages_for(0, 100) == 0.0

    def test_wide_tuples(self):
        params = CostParams(page_size=1000)
        assert params.pages_for(10, 5000) == 10  # one tuple per page


class TestIndexHeight:
    def test_single_level(self):
        params = CostParams(index_fanout=512)
        assert params.index_height(1) == 1
        assert params.index_height(512) == 1

    def test_two_levels(self):
        params = CostParams(index_fanout=512)
        assert params.index_height(513) == 2
        assert params.index_height(512 * 512) == 2

    def test_three_levels(self):
        params = CostParams(index_fanout=512)
        assert params.index_height(512 * 512 + 1) == 3

    def test_paper_probe_bound(self):
        # "typically 3 I/Os or less" at realistic cardinalities.
        params = CostParams()
        assert params.index_height(10_000_000) <= 3


class TestSortModel:
    def test_in_memory_single_pass(self):
        params = CostParams(sort_memory_pages=256)
        assert params.sort_passes(256) == 1

    def test_one_merge_pass(self):
        params = CostParams(sort_memory_pages=256, sort_fanin=64)
        assert params.sort_passes(257) == 2
        assert params.sort_passes(256 * 64) == 2

    def test_two_merge_passes(self):
        params = CostParams(sort_memory_pages=256, sort_fanin=64)
        assert params.sort_passes(256 * 64 + 1) == 3

    def test_sort_cost_formula(self):
        params = CostParams(
            page_size=8192, seq_weight=0.25, sort_memory_pages=256
        )
        rows, width = 810, 100  # 10 pages, one pass
        assert params.sort_cost(rows, width) == pytest.approx(
            2 * 10 * 1 * 0.25
        )

    def test_sort_cost_zero_rows(self):
        assert CostParams().sort_cost(0, 100) == 0.0

    @given(st.floats(1, 1e7))
    def test_passes_monotone_in_pages(self, pages):
        params = CostParams(sort_memory_pages=64, sort_fanin=8)
        assert params.sort_passes(pages) <= params.sort_passes(pages * 2)

    @given(st.integers(1, 10**7))
    def test_passes_logarithmic(self, pages):
        params = CostParams(sort_memory_pages=64, sort_fanin=8)
        runs = max(1, math.ceil(pages / 64))
        expected_merges = 0 if runs == 1 else math.ceil(
            math.log(runs, 8)
        )
        assert params.sort_passes(pages) <= 1 + expected_merges + 1


class TestDefaults:
    def test_paper_currency(self):
        params = CostParams()
        assert params.seq_weight == 0.25
        assert params.page_size == 8192

    def test_frozen(self):
        with pytest.raises(Exception):
            CostParams().seq_weight = 0.5  # type: ignore[misc]
