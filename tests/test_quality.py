"""The shared q-error helper, drift detector, and quality summaries.

:mod:`repro.obs.quality` owns the edge semantics every consumer of
"how wrong were we?" shares — these tests pin them down, including the
zero/zero and non-finite corners the module docstring promises.
"""

import math

import pytest

from repro.obs.provenance import ProvenanceLedger
from repro.obs.quality import (
    DRIFT_QERROR_THRESHOLD,
    DriftFinding,
    catalog_drift,
    detect_drift,
    fmt_stat,
    qerror,
    qerror_histogram,
    quality_summary,
    signed_relative_error,
    valid_cost,
    valid_selectivity,
)
from repro.obs.tracer import Tracer

NAN = float("nan")
INF = float("inf")


# -- qerror -------------------------------------------------------------------


def test_qerror_perfect_is_one():
    assert qerror(10.0, 10.0) == 1.0


def test_qerror_symmetric():
    assert qerror(2.0, 8.0) == qerror(8.0, 2.0) == 4.0


def test_qerror_both_zero_is_perfect():
    assert qerror(0.0, 0.0) == 1.0


def test_qerror_one_zero_is_infinite():
    assert qerror(0.0, 5.0) == INF
    assert qerror(5.0, 0.0) == INF


def test_qerror_nan_propagates():
    assert math.isnan(qerror(NAN, 1.0))
    assert math.isnan(qerror(1.0, NAN))


def test_qerror_negative_is_undefined():
    assert math.isnan(qerror(-1.0, 2.0))
    assert math.isnan(qerror(2.0, -1.0))


def test_qerror_both_infinite_is_undefined():
    assert math.isnan(qerror(INF, INF))


def test_qerror_one_infinite_is_infinite():
    assert qerror(INF, 3.0) == INF
    assert qerror(3.0, INF) == INF


# -- signed_relative_error ----------------------------------------------------


def test_signed_error_matches_legacy_convention():
    # The bench report's est.err column: (estimated - actual) / actual.
    assert signed_relative_error(120.0, 100.0) == pytest.approx(0.2)
    assert signed_relative_error(50.0, 100.0) == pytest.approx(-0.5)


def test_signed_error_zero_actual():
    assert signed_relative_error(0.0, 0.0) == 0.0
    assert math.isnan(signed_relative_error(5.0, 0.0))


def test_signed_error_negative_or_nan_actual():
    assert math.isnan(signed_relative_error(1.0, -2.0))
    assert math.isnan(signed_relative_error(NAN, 1.0))
    assert math.isnan(signed_relative_error(1.0, NAN))


# -- histogram ----------------------------------------------------------------


def test_histogram_buckets_powers_of_two():
    histogram = qerror_histogram([1.0, 1.5, 2.0, 3.9, 4.0, 1100.0])
    assert histogram == {"[1,2)": 2, "[2,4)": 2, "[4,8)": 1, ">=1024": 1}


def test_histogram_skips_nan_counts_inf():
    histogram = qerror_histogram([NAN, INF, INF, 1.0])
    assert histogram == {"[1,2)": 1, "inf": 2}


def test_histogram_empty():
    assert qerror_histogram([]) == {}


def test_histogram_key_order_is_ascending():
    histogram = qerror_histogram([512.0, 2.0, 1.0, INF])
    assert list(histogram) == ["[1,2)", "[2,4)", "[512,1024)", "inf"]


# -- fmt_stat / domain predicates --------------------------------------------


def test_fmt_stat_round_trips_non_finite():
    for value in (NAN, INF, -INF):
        encoded = fmt_stat(value)
        assert isinstance(encoded, str)
        decoded = float(encoded)
        assert math.isnan(decoded) or decoded == value
    assert fmt_stat(0.25) == 0.25


def test_domain_predicates():
    assert valid_selectivity(0.0) and valid_selectivity(1.0)
    assert not valid_selectivity(-0.1)
    assert not valid_selectivity(3.0)
    assert not valid_selectivity(NAN)
    assert valid_cost(0.0) and valid_cost(100.0)
    assert not valid_cost(-1.0)
    assert not valid_cost(INF)


# -- drift detection ----------------------------------------------------------


class FakeObservation:
    """Duck-typed stand-in for a PredicateObservation."""

    def __init__(
        self,
        predicate="p(x)",
        declared_selectivity=0.5,
        observed_selectivity=0.5,
        evaluated=10,
        declared_cost_per_call=10.0,
        observed_cost_per_call=10.0,
        charged_calls=10,
    ):
        self.predicate = predicate
        self.declared_selectivity = declared_selectivity
        self.observed_selectivity = observed_selectivity
        self.evaluated = evaluated
        self.declared_cost_per_call = declared_cost_per_call
        self.observed_cost_per_call = observed_cost_per_call
        self.charged_calls = charged_calls


def test_detect_drift_quiet_when_accurate():
    assert detect_drift([FakeObservation()]) == []


def test_detect_drift_exactly_at_threshold_is_quiet():
    obs = FakeObservation(
        declared_selectivity=0.2,
        observed_selectivity=0.2 * DRIFT_QERROR_THRESHOLD,
    )
    assert detect_drift([obs]) == []


def test_detect_drift_just_past_threshold_fires():
    obs = FakeObservation(
        declared_selectivity=0.1, observed_selectivity=0.21
    )
    findings = detect_drift([obs])
    assert [f.field for f in findings] == ["selectivity"]
    assert findings[0].reason == "qerror"
    assert findings[0].qerror == pytest.approx(2.1)


def test_detect_drift_cost_field():
    obs = FakeObservation(
        declared_cost_per_call=10.0, observed_cost_per_call=100.0
    )
    findings = detect_drift([obs])
    assert [f.field for f in findings] == ["cost_per_call"]


def test_detect_drift_respects_custom_threshold():
    obs = FakeObservation(
        declared_selectivity=0.1, observed_selectivity=0.15
    )
    assert detect_drift([obs]) == []
    findings = detect_drift([obs], threshold=1.2)
    assert len(findings) == 1


def test_detect_drift_ignores_unobserved_fields():
    obs = FakeObservation(
        observed_selectivity=NAN,
        evaluated=0,
        observed_cost_per_call=NAN,
        charged_calls=0,
    )
    assert detect_drift([obs]) == []


def test_detect_drift_invalid_declared_needs_no_observation():
    obs = FakeObservation(
        declared_selectivity=NAN,
        evaluated=0,
        observed_selectivity=NAN,
        declared_cost_per_call=-5.0,
        charged_calls=0,
        observed_cost_per_call=NAN,
    )
    findings = detect_drift([obs])
    assert sorted(f.field for f in findings) == [
        "cost_per_call",
        "selectivity",
    ]
    assert all(f.reason == "invalid-declared" for f in findings)


def test_detect_drift_emits_ledger_and_trace_events():
    ledger = ProvenanceLedger()
    tracer = Tracer()
    obs = FakeObservation(
        declared_selectivity=0.1, observed_selectivity=0.9
    )
    with tracer.span("test"):
        findings = detect_drift([obs], ledger=ledger, tracer=tracer)
    assert len(findings) == 1
    events = [e for e in ledger.events if e.kind == "stats.drift"]
    assert len(events) == 1
    assert events[0].data["subject"] == "p(x)"
    assert events[0].data["field"] == "selectivity"
    span = tracer.spans[0]
    assert any(e["name"] == "stats.drift" for e in span.events)


def test_finding_describe_mentions_both_values():
    finding = DriftFinding(
        subject="p(x)", field="selectivity", declared=0.1,
        observed=0.9, qerror=9.0,
    )
    text = finding.describe()
    assert "p(x)" in text and "0.1" in text and "0.9" in text


# -- catalog_drift ------------------------------------------------------------


def _catalog_with(selectivity, cost):
    from repro.catalog.catalog import Catalog

    catalog = Catalog()
    catalog.functions.register(
        "f", cost_per_call=cost, selectivity=selectivity,
        fn=lambda value: True,
    )
    return catalog


def test_catalog_drift_clean():
    assert catalog_drift(_catalog_with(0.5, 10.0)) == []


def test_catalog_drift_flags_corrupted_declarations():
    findings = catalog_drift(_catalog_with(NAN, -INF))
    assert sorted(f.field for f in findings) == [
        "cost_per_call",
        "selectivity",
    ]
    assert all(f.reason == "invalid-declared" for f in findings)
    assert all(f.subject == "f" for f in findings)


def test_catalog_drift_respects_names_filter():
    catalog = _catalog_with(NAN, 10.0)
    assert catalog_drift(catalog, names=[]) == []
    assert len(catalog_drift(catalog, names=["f"])) == 1


# -- quality_summary ----------------------------------------------------------


def test_quality_summary_shape():
    obs = FakeObservation(
        declared_selectivity=0.1, observed_selectivity=0.4
    )
    summary = quality_summary(1000.0, 1100.0, [obs])
    assert summary["cost_qerror"] == pytest.approx(1.1)
    assert summary["predicates_observed"] == 1
    assert summary["selectivity_qerror_max"] == pytest.approx(4.0)
    assert summary["selectivity_qerror_histogram"] == {"[4,8)": 1}
    assert summary["drift_flags"] == 1
    assert summary["drift"][0]["field"] == "selectivity"


def test_quality_summary_serialises_non_finite():
    import json

    obs = FakeObservation(
        declared_selectivity=0.1,
        observed_selectivity=0.0,  # q-error inf
    )
    summary = quality_summary(0.0, 100.0, [obs])
    # Strict JSON (allow_nan=False) must accept the whole section.
    encoded = json.dumps(summary, allow_nan=False)
    assert '"inf"' in encoded
