"""Unit tests: the series–parallel machinery of Predicate Migration."""

import math

import pytest

from repro.cost.model import CostModel
from repro.optimizer.migration import (
    Module,
    group_rank,
    is_rank_ordered,
    migrate_plan,
    normalize_modules,
    optimal_slot,
)
from repro.plan.nodes import Join, JoinMethod, Plan, Scan
from tests.conftest import costly_filter, equijoin


def mod(selectivity, cost, position):
    return Module(selectivity, cost, position, position)


class TestGroupRank:
    def test_paper_formula(self):
        """rank(J1 J2) = (s1·s2 − 1) / (c1 + s1·c2) — the Section 4.4
        displayed equation."""
        s1, c1, s2, c2 = 0.8, 2.0, 0.5, 3.0
        expected = (s1 * s2 - 1) / (c1 + s1 * c2)
        assert group_rank([s1, s2], [c1, c2]) == pytest.approx(expected)

    def test_three_way_composition_associative(self):
        s = [0.9, 0.5, 2.0]
        c = [1.0, 2.0, 0.5]
        left = group_rank(s, c)
        merged_first = Module(s[0], c[0], 0, 0).merge(
            Module(s[1], c[1], 1, 1)
        )
        two_then_one = merged_first.merge(Module(s[2], c[2], 2, 2))
        assert left == pytest.approx(two_then_one.rank)

    def test_bad_input_rejected(self):
        from repro.errors import PlanError

        with pytest.raises(PlanError):
            group_rank([], [])
        with pytest.raises(PlanError):
            group_rank([0.5], [1.0, 2.0])


class TestNormalize:
    def test_increasing_ranks_untouched(self):
        modules = [mod(0.1, 1.0, 0), mod(0.5, 1.0, 1), mod(0.9, 1.0, 2)]
        assert normalize_modules(modules) == modules

    def test_decreasing_ranks_merge(self):
        modules = [mod(0.9, 1.0, 0), mod(0.1, 1.0, 1)]
        merged = normalize_modules(modules)
        assert len(merged) == 1
        assert merged[0].start == 0 and merged[0].end == 1

    def test_cascading_merge(self):
        modules = [mod(0.9, 1.0, 0), mod(0.5, 1.0, 1), mod(0.1, 1.0, 2)]
        merged = normalize_modules(modules)
        assert len(merged) == 1

    def test_result_rank_ordered(self):
        modules = [
            mod(0.9, 1.0, 0), mod(0.1, 2.0, 1),
            mod(0.8, 0.5, 2), mod(0.3, 1.0, 3),
        ]
        ranks = [m.rank for m in normalize_modules(modules)]
        assert is_rank_ordered(ranks)

    def test_empty(self):
        assert normalize_modules([]) == []


class TestOptimalSlot:
    def test_free_predicate_stays_at_entry(self):
        joins = [mod(0.5, 1.0, 0), mod(0.5, 1.0, 1)]
        assert optimal_slot(-math.inf, joins, 0) == 0

    def test_crosses_low_rank_joins(self):
        # Join ranks −0.5; predicate rank −0.005 → goes above both.
        joins = [mod(0.5, 1.0, 0), mod(0.5, 1.0, 1)]
        assert optimal_slot(-0.005, joins, 0) == 2

    def test_stops_below_high_rank_join(self):
        # Join 0 has rank ~0 (sel 1); predicate rank −0.005 stays below.
        joins = [mod(1.0, 1.0, 0), mod(1.0, 1.0, 1)]
        assert optimal_slot(-0.005, joins, 0) == 0

    def test_group_pullup_crosses_pair(self):
        """The Figure 6 scenario: J1 rank ≈ 0, J2 rank very low; their
        group rank is below the predicate's, so the predicate crosses
        BOTH, though it would not cross J1 alone."""
        j1 = mod(1.0, 0.003, 0)       # rank 0
        j2 = mod(0.1, 0.003, 1)       # rank -300
        predicate_rank = -0.009
        assert optimal_slot(predicate_rank, [j1, j2], 0) == 2
        # Against J1 alone it would stay put — PullRank's behaviour.
        assert optimal_slot(predicate_rank, [j1], 0) == 0

    def test_entry_constraint_respected(self):
        joins = [mod(0.1, 1.0, 0), mod(1.0, 1.0, 1)]
        assert optimal_slot(-0.005, joins, 1) == 1

    def test_fanout_join_never_crossed(self):
        joins = [mod(3.0, 0.001, 0)]
        assert optimal_slot(-0.005, joins, 0) == 0

    def test_suffix_decomposition_differs_from_full(self):
        # Full chain [rank 5-ish, low]: merged; but entry=1 sees only the
        # low module, so a mid-rank predicate crosses it.
        joins = [mod(2.0, 0.1, 0), mod(0.1, 10.0, 1)]  # ranks +10, -0.09
        assert optimal_slot(-0.05, joins, 1) == 2
        assert optimal_slot(-0.05, joins, 0) == 0


class TestMigratePlan:
    def make_plan(self, db, predicate_on_leaf):
        lower = Join(
            filters=[],
            outer=Scan(filters=[predicate_on_leaf], table="t3"),
            inner=Scan(filters=[], table="t6"),
            method=JoinMethod.HASH,
            primary=equijoin(db, ("t3", "ua1"), ("t6", "a1")),
        )
        top = Join(
            filters=[],
            outer=lower,
            inner=Scan(
                filters=[], table="t10",
            ),
            method=JoinMethod.HASH,
            primary=equijoin(db, ("t6", "ua1"), ("t10", "a1")),
        )
        return Plan(top)

    def test_migration_reduces_or_keeps_cost(self, db):
        model = CostModel(db.catalog, db.params)
        predicate = costly_filter(db, "costly100sel10", ("t3", "u20"))
        plan = self.make_plan(db, predicate)
        before = model.estimate_plan(plan.root).cost
        migrated = migrate_plan(plan, model)
        assert migrated.estimated_cost <= before + 1e-6

    def test_migration_preserves_predicates(self, db):
        model = CostModel(db.catalog, db.params)
        predicate = costly_filter(db, "costly100sel10", ("t3", "u20"))
        plan = self.make_plan(db, predicate)
        migrated = migrate_plan(plan, model)
        placed = [
            p for node in migrated.root.walk() for p in node.filters
        ]
        assert placed == [predicate]

    def test_migration_is_idempotent(self, db):
        model = CostModel(db.catalog, db.params)
        predicate = costly_filter(db, "costly100sel10", ("t3", "u20"))
        once = migrate_plan(self.make_plan(db, predicate), model)
        twice = migrate_plan(once, model)
        assert twice.estimated_cost == pytest.approx(once.estimated_cost)

    def test_original_plan_untouched(self, db):
        model = CostModel(db.catalog, db.params)
        predicate = costly_filter(db, "costly100sel10", ("t3", "u20"))
        plan = self.make_plan(db, predicate)
        migrate_plan(plan, model)
        assert predicate in plan.root.outer.outer.filters


class TestIsRankOrdered:
    def test_ordered(self):
        assert is_rank_ordered([-5.0, -1.0, 0.0, 3.0])

    def test_unordered(self):
        assert not is_rank_ordered([0.0, -1.0])

    def test_empty_and_single(self):
        assert is_rank_ordered([])
        assert is_rank_ordered([1.0])
