"""Tests for the fault-injection package: clock, schedules, injector."""

import math

import pytest

from repro.catalog.datagen import build_database
from repro.bench.workloads import ensure_workload_functions
from repro.errors import ReproError, UdfError
from repro.faults import (
    FaultInjector,
    FaultPlan,
    FaultSpec,
    SimulatedClock,
    backoff_schedule,
)


class TestSimulatedClock:
    def test_starts_at_zero(self):
        clock = SimulatedClock()
        assert clock.now == 0.0
        assert clock.latency_units == 0.0
        assert clock.backoff_units == 0.0

    def test_charges_accumulate_into_now(self):
        clock = SimulatedClock()
        clock.charge_latency(3.0)
        clock.charge_backoff(2.0)
        clock.charge_latency(1.0)
        assert clock.latency_units == 4.0
        assert clock.backoff_units == 2.0
        assert clock.now == 6.0

    def test_reset(self):
        clock = SimulatedClock()
        clock.charge_latency(5.0)
        clock.reset()
        assert clock.now == 0.0
        assert clock.snapshot()["latency_units"] == 0.0

    def test_backoff_schedule_is_exponential(self):
        assert backoff_schedule(1.0, 3) == [1.0, 2.0, 4.0]
        assert backoff_schedule(0.5, 2, multiplier=3.0) == [0.5, 1.5]


class TestFaultSpec:
    def test_transient_error_window(self):
        spec = FaultSpec(
            "costly100", "error", first_call=3, failures=2, transient=True
        )
        assert [spec.fires_on(i) for i in range(1, 7)] == [
            False, False, True, True, False, False,
        ]

    def test_permanent_error_fires_forever(self):
        spec = FaultSpec(
            "costly100", "error", first_call=4, transient=False
        )
        assert not spec.fires_on(3)
        assert all(spec.fires_on(i) for i in (4, 5, 100))

    def test_periodic_latency(self):
        spec = FaultSpec(
            "costly100", "latency", first_call=2, every=3,
            latency_units=5.0,
        )
        assert [i for i in range(1, 10) if spec.fires_on(i)] == [2, 5, 8]

    def test_unknown_kind_rejected(self):
        with pytest.raises(ReproError):
            FaultSpec("costly100", "gremlins")

    def test_bad_first_call_rejected(self):
        with pytest.raises(ReproError):
            FaultSpec("costly100", "error", first_call=0)


class TestFaultPlan:
    def test_generate_is_deterministic(self):
        functions = ["costly100", "costly100sel10"]
        one = FaultPlan.generate(7, functions, profile="mixed")
        two = FaultPlan.generate(7, functions, profile="mixed")
        assert one.as_dict() == two.as_dict()

    def test_different_seeds_differ(self):
        functions = ["costly100", "costly100sel10"]
        plans = {
            str(FaultPlan.generate(seed, functions).as_dict())
            for seed in range(20)
        }
        assert len(plans) > 1

    def test_at_most_one_error_fault_per_function(self):
        for seed in range(30):
            plan = FaultPlan.generate(
                seed, ["costly100"], profile="mixed", max_faults=6
            )
            errors = [s for s in plan.specs if s.kind == "error"]
            assert len(errors) <= 1

    def test_recoverable_logic(self):
        transient = FaultPlan(
            seed=0,
            specs=(
                FaultSpec("f", "error", failures=2, transient=True),
            ),
        )
        assert transient.recoverable(retries=2)
        assert not transient.recoverable(retries=1)
        permanent = FaultPlan(
            seed=0, specs=(FaultSpec("f", "error", transient=False),)
        )
        assert not permanent.recoverable(retries=100)
        benign = FaultPlan(
            seed=0,
            specs=(
                FaultSpec("f", "latency", latency_units=9.0),
                FaultSpec("f", "corrupt-stats", selectivity=float("nan")),
            ),
        )
        assert benign.recoverable(retries=0)

    def test_unknown_profile_rejected(self):
        with pytest.raises(ReproError):
            FaultPlan.generate(1, ["f"], profile="bogus")

    def test_planner_faults_only_for_named_strategies(self):
        plan = FaultPlan.generate(
            3,
            ["costly100"],
            planner_fault_rate=1.0,
            strategies=("exhaustive", "migration"),
        )
        assert set(plan.planner_faults) == {"exhaustive", "migration"}
        assert plan.planner_fault("pushdown") is None


class TestFaultInjector:
    def _db(self):
        db = build_database(scale=5, seed=42)
        ensure_workload_functions(db)
        return db

    def test_error_fault_raises_on_scheduled_call(self):
        db = self._db()
        plan = FaultPlan(
            seed=1,
            specs=(
                FaultSpec(
                    "costly100", "error", first_call=2, failures=1
                ),
            ),
        )
        function = db.catalog.functions.get("costly100")
        with FaultInjector(plan).install(db.catalog) as injector:
            function(1)  # call #1: clean
            with pytest.raises(UdfError) as exc_info:
                function(2)  # call #2: scheduled failure
            assert exc_info.value.call_index == 2
            assert exc_info.value.transient
            function(3)  # window passed
            assert injector.stats.errors_injected == 1

    def test_latency_fault_charges_clock_only(self):
        db = self._db()
        plan = FaultPlan(
            seed=1,
            specs=(
                FaultSpec(
                    "costly100", "latency", first_call=1,
                    latency_units=7.5,
                ),
            ),
        )
        function = db.catalog.functions.get("costly100")
        baseline = function(10)
        db.catalog.functions.reset_counters()
        with FaultInjector(plan).install(db.catalog) as injector:
            assert function(10) == baseline
            assert injector.clock.latency_units == 7.5

    def test_corrupt_stats_rewrite_catalog_metadata(self):
        db = self._db()
        plan = FaultPlan(
            seed=1,
            specs=(
                FaultSpec(
                    "costly100",
                    "corrupt-stats",
                    selectivity=float("nan"),
                    cost_per_call=-5.0,
                ),
            ),
        )
        function = db.catalog.functions.get("costly100")
        with FaultInjector(plan).install(db.catalog):
            assert math.isnan(function.selectivity)
            assert function.cost_per_call == -5.0

    def test_uninstall_restores_everything(self):
        db = self._db()
        function = db.catalog.functions.get("costly100")
        original_fn = function.fn
        original_sel = function.selectivity
        original_cost = function.cost_per_call
        plan = FaultPlan(
            seed=1,
            specs=(
                FaultSpec("costly100", "error", first_call=1),
                FaultSpec(
                    "costly100",
                    "corrupt-stats",
                    selectivity=3.0,
                    cost_per_call=float("inf"),
                ),
            ),
        )
        injector = FaultInjector(plan)
        injector.install(db.catalog)
        assert function.fn is not original_fn
        injector.uninstall()
        assert function.fn is original_fn
        assert function.selectivity == original_sel
        assert function.cost_per_call == original_cost

    def test_double_install_rejected(self):
        db = self._db()
        plan = FaultPlan(
            seed=1, specs=(FaultSpec("costly100", "error"),)
        )
        injector = FaultInjector(plan)
        injector.install(db.catalog)
        with pytest.raises(ReproError):
            injector.install(db.catalog)
        injector.uninstall()

    def test_context_manager_uninstalls_on_error(self):
        db = self._db()
        function = db.catalog.functions.get("costly100")
        original_fn = function.fn
        plan = FaultPlan(
            seed=1, specs=(FaultSpec("costly100", "error"),)
        )
        with pytest.raises(RuntimeError):
            with FaultInjector(plan).install(db.catalog):
                raise RuntimeError("boom")
        assert function.fn is original_fn
