"""Unit tests: the LDL algorithm's structural over-eagerness (Section 3.1)."""

import pytest

from repro.cost.model import CostModel
from repro.optimizer.ldl import inner_pullup_violations, ldl_plan
from repro.optimizer.optimizer import optimize
from repro.optimizer.query import Query
from repro.plan.nodes import Join, JoinMethod, Scan
from tests.conftest import costly_filter, equijoin


def two_sided_query(db):
    """The Section 3.1 example: R ⋈ S with p(R) and q(S) both expensive.

    The join fans out on both sides and the predicates are weakly
    selective, so the optimal (Figure 1) plan keeps both selections below
    the join — the shape LDL structurally cannot produce."""
    return Query(
        tables=["t3", "t6"],
        predicates=[
            equijoin(db, ("t3", "ua20"), ("t6", "ua20")),
            costly_filter(db, "costly100sel90", ("t3", "u20")),
            costly_filter(db, "costly100sel90", ("t6", "u100")),
        ],
        name="ldl-example",
    )


class TestStructuralConstraint:
    def test_no_expensive_predicate_on_any_inner_scan(self, db):
        model = CostModel(db.catalog, db.params)
        plan = ldl_plan(two_sided_query(db), db.catalog, model)
        assert inner_pullup_violations(plan.root) == []

    def test_violation_detector_works(self, db):
        predicate = costly_filter(db, "costly100", ("t10", "u20"))
        join = Join(
            filters=[],
            outer=Scan(filters=[], table="t3"),
            inner=Scan(filters=[predicate], table="t10"),
            method=JoinMethod.HASH,
            primary=equijoin(db, ("t3", "a1"), ("t10", "ua1")),
        )
        assert inner_pullup_violations(join) == [predicate]

    def test_all_predicates_applied(self, db):
        model = CostModel(db.catalog, db.params)
        query = two_sided_query(db)
        plan = ldl_plan(query, db.catalog, model)
        placed = [p for node in plan.root.walk() for p in node.filters]
        primaries = [
            node.primary
            for node in plan.root.walk()
            if isinstance(node, Join)
        ]
        assert set(placed) | set(primaries) >= set(query.predicates)


class TestLDLVersusMigration:
    def test_ldl_never_beats_migration_on_two_sided_selections(self, db):
        """Migration can keep both expensive selections below the join;
        LDL must pull one up — so Migration's estimate is at least as
        good."""
        query = two_sided_query(db)
        ldl = optimize(db, query, strategy="ldl")
        migration = optimize(db, query, strategy="migration")
        assert migration.estimated_cost <= ldl.estimated_cost + 1e-6

    def test_ldl_strictly_worse_when_both_sides_filterable(self, db):
        """In the Figures 1–2 scenario the forced pullup really costs."""
        query = two_sided_query(db)
        ldl = optimize(db, query, strategy="ldl")
        migration = optimize(db, query, strategy="migration")
        assert ldl.estimated_cost > migration.estimated_cost

    def test_ldl_matches_migration_single_expensive_predicate(self, db):
        query = Query(
            tables=["t3", "t10"],
            predicates=[
                equijoin(db, ("t3", "a1"), ("t10", "ua1")),
                costly_filter(db, "costly100", ("t10", "u20")),
            ],
        )
        ldl = optimize(db, query, strategy="ldl")
        migration = optimize(db, query, strategy="migration")
        assert ldl.estimated_cost == pytest.approx(
            migration.estimated_cost, rel=0.01
        )


class TestLDLMechanics:
    def test_single_table_query(self, db):
        model = CostModel(db.catalog, db.params)
        query = Query(
            tables=["t3"],
            predicates=[costly_filter(db, "costly100", ("t3", "u20"))],
        )
        plan = ldl_plan(query, db.catalog, model)
        assert isinstance(plan.root, Scan)
        assert len(plan.root.filters) == 1

    def test_cheap_only_query(self, db):
        model = CostModel(db.catalog, db.params)
        query = Query(
            tables=["t3", "t10"],
            predicates=[equijoin(db, ("t3", "a1"), ("t10", "ua1"))],
        )
        plan = ldl_plan(query, db.catalog, model)
        assert plan.root.tables() == frozenset({"t3", "t10"})
