"""Unit tests: synthetic database generation (Section 2 / Table 2)."""

import pytest

from repro.catalog.datagen import (
    build_database,
    generate_column,
    relation_cardinality,
)
from repro.errors import CatalogError


class TestRelationCardinality:
    def test_tn_convention(self):
        assert relation_cardinality("t3", 1000) == 3000
        assert relation_cardinality("t10", 1000) == 10_000

    def test_bad_name_raises(self):
        with pytest.raises(CatalogError):
            relation_cardinality("emp", 1000)


class TestGenerateColumn:
    def test_repetition_exact(self):
        import random

        values = generate_column(100, 20, random.Random(0))
        counts = {value: values.count(value) for value in set(values)}
        assert set(counts.values()) == {20}
        assert len(counts) == 5

    def test_unique_column_is_permutation(self):
        import random

        values = generate_column(50, 1, random.Random(0))
        assert sorted(values) == list(range(50))

    def test_remainder_folded_into_last_value(self):
        import random

        values = generate_column(10, 3, random.Random(0))
        assert max(values) == 10 // 3 - 1  # ndistinct = 3, values 0..2


class TestBuildDatabase:
    def test_relation_cardinalities(self, db):
        from tests.conftest import TEST_SCALE

        for n in range(1, 11):
            assert db.catalog.table(f"t{n}").cardinality == n * TEST_SCALE

    def test_indexes_follow_naming(self, db):
        t3 = db.catalog.table("t3")
        assert t3.has_index("a1") and t3.has_index("a20")
        assert not t3.has_index("ua1") and not t3.has_index("u20")

    def test_indexes_are_complete(self, db):
        t5 = db.catalog.table("t5")
        index = t5.index("a1")
        assert index.entries == t5.cardinality
        index.check_invariants()

    def test_index_points_at_right_rows(self, db):
        t2 = db.catalog.table("t2")
        index = t2.index("a20")
        position = t2.schema.position("a20")
        db.meter.reset()
        for rid in index.search(3):
            assert t2.heap.fetch_rid(rid)[position] == 3
        db.meter.reset()

    def test_deterministic_in_seed(self):
        a = build_database(scale=10, seed=5)
        b = build_database(scale=10, seed=5)
        assert (
            a.catalog.table("t3").heap.all_rows()
            == b.catalog.table("t3").heap.all_rows()
        )

    def test_seed_changes_data(self):
        a = build_database(scale=10, seed=5)
        b = build_database(scale=10, seed=6)
        assert (
            a.catalog.table("t3").heap.all_rows()
            != b.catalog.table("t3").heap.all_rows()
        )

    def test_standard_functions_registered(self, db):
        for cost in (1, 10, 100, 1000):
            assert f"costly{cost}" in db.catalog.functions

    def test_meter_clean_after_build(self):
        database = build_database(scale=10, seed=1)
        assert database.meter.charged == 0.0
        assert database.pool.stats.accesses == 0

    def test_database_size_tracks_scale(self):
        small = build_database(scale=10, seed=1)
        # t1..t10 = 55 x scale tuples at 100 bytes, plus index pages.
        assert small.size_bytes() > 55 * 10 * 100

    def test_paper_scale_is_about_110_megabytes(self):
        # Checked arithmetically, not by building the big database: 550k
        # tuples x 100 bytes = ~52 MB of heap plus indexes and slack —
        # the same order as the paper's 110 MB.
        from repro.catalog.datagen import PAPER_SCALE

        heap_bytes = 55 * PAPER_SCALE * 100
        assert 40e6 < heap_bytes < 120e6
