"""Tests for the command-line driver (python -m repro)."""

import json

import pytest

from repro.__main__ import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


SQL = (
    "SELECT * FROM t3, t10 "
    "WHERE t3.a1 = t10.ua1 AND costly100(t10.u20)"
)


class TestCli:
    def test_basic_run(self, capsys):
        code, out, _ = run_cli(
            capsys, "--sql", SQL, "--scale", "20", "--seed", "7"
        )
        assert code == 0
        assert "strategy: migration" in out
        assert "charged" in out

    def test_explain_only(self, capsys):
        code, out, _ = run_cli(
            capsys, "--sql", SQL, "--scale", "20", "--explain-only"
        )
        assert code == 0
        assert "join" in out
        assert "charged" not in out

    def test_strategy_flag(self, capsys):
        code, out, _ = run_cli(
            capsys, "--sql", SQL, "--scale", "20",
            "--strategy", "pushdown", "--explain-only",
        )
        assert code == 0
        assert "strategy: pushdown" in out

    def test_compare_table(self, capsys):
        code, out, _ = run_cli(
            capsys, "--sql", SQL, "--scale", "20", "--compare"
        )
        assert code == 0
        for strategy in ("pushdown", "migration", "exhaustive"):
            assert strategy in out

    def test_workload_q1(self, capsys):
        code, out, _ = run_cli(
            capsys, "--workload", "q1", "--scale", "20", "--explain-only"
        )
        assert code == 0
        assert "Query 1" in out

    def test_rows_printed(self, capsys):
        code, out, _ = run_cli(
            capsys, "--sql", SQL, "--scale", "20", "--rows", "3"
        )
        assert code == 0
        assert out.strip().count("(") >= 3

    def test_budget_dnf_exit_code(self, capsys):
        code, out, _ = run_cli(
            capsys, "--sql", SQL, "--scale", "20",
            "--strategy", "pushdown", "--budget", "10",
        )
        assert code == 2
        assert "DNF" in out

    def test_bad_sql_reports_error(self, capsys):
        code, _, err = run_cli(
            capsys, "--sql", "SELECT * FROM nope", "--scale", "20"
        )
        assert code == 1
        assert "unknown relation" in err

    def test_caching_flag(self, capsys):
        code, out, _ = run_cli(
            capsys, "--sql", SQL, "--scale", "20", "--caching"
        )
        assert code == 0

    def test_explain_analyze(self, capsys):
        code, out, _ = run_cli(
            capsys, "--sql", SQL, "--scale", "20", "--explain-analyze"
        )
        assert code == 0
        assert "est rows=" in out
        assert "act rows=" in out
        assert "err rows" in out
        assert "charged" in out  # the summary line still prints

    def test_stats_flag(self, capsys):
        code, out, _ = run_cli(
            capsys, "--sql", SQL, "--scale", "20", "--stats"
        )
        assert code == 0
        assert "plan.wall_seconds" in out
        assert "exec.wall_seconds" in out
        assert "plan.subplans_enumerated" in out
        assert "exec.charged" in out

    def test_stats_with_explain_only_reports_plan_side(self, capsys):
        code, out, _ = run_cli(
            capsys, "--sql", SQL, "--scale", "20",
            "--explain-only", "--stats",
        )
        assert code == 0
        assert "plan.wall_seconds" in out
        assert "exec.wall_seconds" not in out

    def test_trace_writes_valid_jsonl(self, capsys, tmp_path):
        trace = tmp_path / "trace.jsonl"
        code, _, err = run_cli(
            capsys, "--sql", SQL, "--scale", "20", "--trace", str(trace)
        )
        assert code == 0
        assert "spans" in err
        records = [
            json.loads(line)
            for line in trace.read_text(encoding="utf-8").splitlines()
        ]
        assert records
        names = [record["span"] for record in records]
        # one span per optimizer phase, plus the executor's
        assert "optimize" in names
        assert "enumerate" in names
        assert "migrate" in names  # default strategy is migration
        assert "execute" in names
        by_id = {record["id"]: record for record in records}
        enumerate_span = next(
            record for record in records if record["span"] == "enumerate"
        )
        assert by_id[enumerate_span["parent"]]["span"] == "optimize"

    def test_trace_unwritable_path_reports_error(self, capsys, tmp_path):
        target = tmp_path / "missing-dir" / "trace.jsonl"
        code, _, err = run_cli(
            capsys, "--sql", SQL, "--scale", "20", "--trace", str(target)
        )
        assert code == 1
        assert "cannot write trace file" in err

    def test_parser_rejects_sql_and_workload(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["--sql", "x", "--workload", "q1"]
            )

    def test_parser_requires_a_source(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--compare"])

    def test_strategies_all_reaches_full_registry(self, capsys):
        code, out, _ = run_cli(
            capsys, "--workload", "q1", "--scale", "20",
            "--compare", "--strategies", "all",
        )
        assert code == 0
        assert "ldl-ikkbz" in out

    def test_strategies_comma_list(self, capsys):
        code, out, _ = run_cli(
            capsys, "--sql", SQL, "--scale", "20",
            "--compare", "--strategies", "pushdown,pullup",
        )
        assert code == 0
        assert "pushdown" in out
        assert "migration" not in out

    def test_strategies_unknown_name_exit_two(self, capsys):
        code, _, err = run_cli(
            capsys, "--sql", SQL, "--scale", "20",
            "--compare", "--strategies", "bogus",
        )
        assert code == 2
        assert "unknown strategies" in err
        # One-line usage error listing the valid choices.
        assert "pushdown" in err


class TestRecordAndDiff:
    def record(self, capsys, tmp_path, name, **overrides):
        target = tmp_path / name
        argv = [
            "--workload", "q1", "--scale", "20", "--seed", "42",
            "--compare", "--record", str(target),
        ]
        for flag, value in overrides.items():
            argv += [f"--{flag}", str(value)]
        code, out, err = run_cli(capsys, *argv)
        assert code == 0
        assert "artifact" in err
        return target

    def test_record_writes_artifact_with_profile(self, capsys, tmp_path):
        target = self.record(capsys, tmp_path, "runA")
        files = list(target.glob("BENCH_*.json"))
        assert len(files) == 1
        document = json.loads(files[0].read_text(encoding="utf-8"))
        assert document["workload"] == "q1"
        assert document["environment"]["scale"] == 20
        assert "migration" in document["strategies"]
        assert document["strategies"]["migration"]["fingerprint"]
        # Recording turns the profiler on; hotspots land in the artifact.
        assert document["hotspots"]

    def test_bench_diff_identical_runs_exit_zero(self, capsys, tmp_path):
        a = self.record(capsys, tmp_path, "runA")
        b = self.record(capsys, tmp_path, "runB")
        code, out, _ = run_cli(capsys, "bench-diff", str(a), str(b))
        assert code == 0
        assert "no regressions" in out

    def test_bench_diff_detects_regression(self, capsys, tmp_path):
        a = self.record(capsys, tmp_path, "runA")
        b = self.record(capsys, tmp_path, "runB")
        artifact = next(b.glob("BENCH_*.json"))
        document = json.loads(artifact.read_text(encoding="utf-8"))
        document["strategies"]["migration"]["charged"] *= 1.5
        document["strategies"]["pushdown"]["fingerprint"] = "0" * 16
        artifact.write_text(json.dumps(document), encoding="utf-8")
        code, out, _ = run_cli(capsys, "bench-diff", str(a), str(b))
        assert code == 1
        assert "[REGRESSION]" in out
        assert "charged" in out
        assert "fingerprint" in out
        assert "regression(s)" in out

    def test_bench_diff_empty_candidate_dir_exit_two(self, capsys, tmp_path):
        a = self.record(capsys, tmp_path, "runA")
        empty = tmp_path / "empty"
        empty.mkdir()
        code, _, err = run_cli(capsys, "bench-diff", str(a), str(empty))
        assert code == 2
        assert "no BENCH_" in err

    def test_bench_diff_unreadable_artifact_exit_two(self, capsys, tmp_path):
        a = self.record(capsys, tmp_path, "runA")
        broken = tmp_path / "broken"
        broken.mkdir()
        (broken / "BENCH_q1.json").write_text("{nope", encoding="utf-8")
        code, _, err = run_cli(capsys, "bench-diff", str(a), str(broken))
        assert code == 2
        assert "not valid JSON" in err


class TestOptSpeed:
    ARGS = (
        "--scale", "5", "--repeats", "1", "--tables", "2",
        "--strategies", "pushdown,exhaustive",
    )

    def test_table_and_json_artifact(self, capsys, tmp_path):
        out_file = tmp_path / "OPTSPEED.json"
        code, out, err = run_cli(
            capsys, "opt-speed", *self.ARGS, "--out", str(out_file)
        )
        assert code == 0
        assert "== opt-speed" in out
        assert "exhaustive" in out
        payload = json.loads(out_file.read_text(encoding="utf-8"))
        assert payload["bench"] == "opt-speed"
        assert {s["strategy"] for s in payload["samples"]} == {
            "pushdown", "exhaustive",
        }
        assert all(s["median_ms"] > 0 for s in payload["samples"])
        assert "opt-speed artifact" in err

    def test_bench_opt_speed_spelling(self, capsys):
        code, out, _ = run_cli(capsys, "bench", "opt-speed", *self.ARGS)
        assert code == 0
        assert "== opt-speed" in out

    def test_baseline_regression_warns_but_exits_zero(
        self, capsys, tmp_path
    ):
        out_file = tmp_path / "OPTSPEED.json"
        code, _, _ = run_cli(
            capsys, "opt-speed", *self.ARGS, "--out", str(out_file)
        )
        assert code == 0
        baseline = json.loads(out_file.read_text(encoding="utf-8"))
        # An impossibly fast baseline forces a >25% regression warning.
        for sample in baseline["samples"]:
            sample["median_ms"] = 1e-6
        fast = tmp_path / "fast.json"
        fast.write_text(json.dumps(baseline), encoding="utf-8")
        code, out, _ = run_cli(
            capsys, "opt-speed", *self.ARGS, "--baseline", str(fast)
        )
        assert code == 0
        assert "regressed" in out
        assert "informational" in out

    def test_baseline_clean_pass(self, capsys, tmp_path):
        out_file = tmp_path / "OPTSPEED.json"
        run_cli(capsys, "opt-speed", *self.ARGS, "--out", str(out_file))
        # Compared against an impossibly slow baseline nothing can regress.
        baseline = json.loads(out_file.read_text(encoding="utf-8"))
        for sample in baseline["samples"]:
            sample["median_ms"] = 1e9
        slow = tmp_path / "slow.json"
        slow.write_text(json.dumps(baseline), encoding="utf-8")
        code, out, _ = run_cli(
            capsys, "opt-speed", *self.ARGS, "--baseline", str(slow)
        )
        assert code == 0
        assert "no planning-time regressions" in out

    def test_unreadable_baseline_exit_two(self, capsys, tmp_path):
        missing = tmp_path / "nope.json"
        code, _, err = run_cli(
            capsys, "opt-speed", *self.ARGS, "--baseline", str(missing)
        )
        assert code == 2
        assert "cannot read baseline" in err

    def test_bad_strategy_exit_two(self, capsys):
        code, _, err = run_cli(
            capsys, "opt-speed", "--strategies", "nope", "--scale", "5"
        )
        assert code == 2
        assert "unknown strategies" in err


class TestWhy:
    def test_explains_expensive_predicate(self, capsys):
        code, out, _ = run_cli(
            capsys, "why", "q4", "--strategy", "migration", "--scale", "5"
        )
        assert code == 0
        assert "== why: Query 4 under migration" in out
        assert "costly100sel10(t3.u20)" in out
        assert "rank comparison" in out
        assert "counterfactual" in out
        assert "re-costs to" in out

    def test_predicate_filter(self, capsys):
        code, out, _ = run_cli(
            capsys, "why", "q4", "--scale", "5",
            "--predicate", "no-such-predicate",
        )
        assert code == 0
        assert "no expensive predicate matching" in out

    def test_unknown_strategy_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            run_cli(capsys, "why", "q4", "--strategy", "bogus")
        assert excinfo.value.code == 2

    def test_unknown_workload_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            run_cli(capsys, "why", "q99")
        assert excinfo.value.code == 2


class TestPlanDiff:
    def test_side_by_side_with_ledger_counts(self, capsys):
        code, out, _ = run_cli(
            capsys, "plan-diff", "q4", "pushdown", "migration",
            "--scale", "5",
        )
        assert code == 0
        assert "pushdown" in out and "migration" in out
        assert "est cost" in out
        assert "ledger events)" in out
        assert "≠" in out  # the two strategies disagree on q4
        assert "ledger event counts:" in out
        assert "scan.rank_order" in out

    def test_same_strategy_diff_has_no_markers(self, capsys):
        code, out, _ = run_cli(
            capsys, "plan-diff", "q1", "pushdown", "pushdown",
            "--scale", "5",
        )
        assert code == 0
        assert "≠" not in out

    def test_unknown_strategy_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            run_cli(capsys, "plan-diff", "q4", "pushdown", "bogus")
        assert excinfo.value.code == 2


class TestTraceExport:
    def test_writes_chrome_trace(self, capsys, tmp_path):
        path = tmp_path / "trace.json"
        code, _, err = run_cli(
            capsys, "--workload", "q4", "--scale", "5",
            "--trace-export", str(path),
        )
        assert code == 0
        assert "trace-export" in err
        document = json.loads(path.read_text(encoding="utf-8"))
        events = document["traceEvents"]
        assert any(e["ph"] == "X" and e["tid"] == 1 for e in events)
        # The profiler rides along: optimizer/executor phases on tid 2.
        assert any(e["ph"] == "X" and e["tid"] == 2 for e in events)

    def test_unwritable_path_exits_1(self, capsys, tmp_path):
        code, _, err = run_cli(
            capsys, "--workload", "q4", "--scale", "5",
            "--explain-only",
            "--trace-export", str(tmp_path / "no" / "dir" / "t.json"),
        )
        assert code == 1
        assert "cannot write trace-export" in err

    def test_combines_with_jsonl_trace(self, capsys, tmp_path):
        jsonl = tmp_path / "trace.jsonl"
        chrome = tmp_path / "trace.json"
        code, _, err = run_cli(
            capsys, "--workload", "q1", "--scale", "5", "--explain-only",
            "--trace", str(jsonl), "--trace-export", str(chrome),
        )
        assert code == 0
        assert jsonl.exists() and chrome.exists()
        assert "-- trace:" in err and "-- trace-export:" in err


class TestFlightRecord:
    """--flight-record end to end: a budget-killed run leaves a dump."""

    def test_dead_run_writes_renderable_dump(self, capsys, tmp_path):
        code, out, err = run_cli(
            capsys, "--workload", "q1", "--scale", "10",
            "--executor", "vector", "--budget", "50",
            "--flight-record", str(tmp_path),
        )
        assert code == 2
        assert "DNF" in out
        assert "-- flight dump:" in err
        dump = tmp_path / "FLIGHT_q1.json"
        assert dump.exists()
        document = json.loads(dump.read_text())
        assert document["kind"] == "flight"
        assert document["reason"].startswith("budget")

        code, out, _ = run_cli(capsys, "postmortem", str(dump))
        assert code == 0
        assert "postmortem: q1" in out
        assert "reason: budget" in out
        assert "timeline (last" in out

    def test_completed_run_writes_no_dump(self, capsys, tmp_path):
        code, _, err = run_cli(
            capsys, "--workload", "q1", "--scale", "5",
            "--flight-record", str(tmp_path),
        )
        assert code == 0
        assert "-- flight dump:" not in err
        assert not list(tmp_path.glob("FLIGHT_*.json"))

    def test_unwritable_dir_exits_1(self, capsys, tmp_path):
        blocker = tmp_path / "file"
        blocker.write_text("not a directory")
        code, _, err = run_cli(
            capsys, "--workload", "q1", "--scale", "10",
            "--budget", "50",
            "--flight-record", str(blocker / "nested"),
        )
        assert code == 1
        assert "cannot write flight dump" in err


class TestPostmortem:
    """Exit-code hardening for the dump-reading verb."""

    def test_missing_dump_exits_2(self, capsys, tmp_path):
        code, _, err = run_cli(
            capsys, "postmortem", str(tmp_path / "FLIGHT_nope.json")
        )
        assert code == 2
        assert "error:" in err

    def test_malformed_json_exits_2(self, capsys, tmp_path):
        dump = tmp_path / "FLIGHT_bad.json"
        dump.write_text("{not json")
        code, _, err = run_cli(capsys, "postmortem", str(dump))
        assert code == 2
        assert "error:" in err

    def test_wrong_kind_exits_2(self, capsys, tmp_path):
        dump = tmp_path / "FLIGHT_kind.json"
        dump.write_text(json.dumps({"kind": "bench-artifact"}))
        code, _, err = run_cli(capsys, "postmortem", str(dump))
        assert code == 2
        assert "error:" in err

    def test_last_flag_caps_timeline(self, capsys, tmp_path):
        code, _, _ = run_cli(
            capsys, "--workload", "q1", "--scale", "10",
            "--executor", "vector", "--budget", "50",
            "--flight-record", str(tmp_path),
        )
        assert code == 2
        dump = tmp_path / "FLIGHT_q1.json"
        code, out, _ = run_cli(
            capsys, "postmortem", str(dump), "--last", "2"
        )
        assert code == 0
        assert "timeline (last 2" in out
