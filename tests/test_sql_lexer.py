"""Unit tests: the SQL tokenizer."""

import pytest

from repro.errors import SQLLexError
from repro.sql.lexer import Token, tokenize


def kinds(sql):
    return [(t.kind, t.text) for t in tokenize(sql)[:-1]]


class TestTokenize:
    def test_keywords_case_insensitive(self):
        assert kinds("select FROM Where") == [
            ("KEYWORD", "SELECT"),
            ("KEYWORD", "FROM"),
            ("KEYWORD", "WHERE"),
        ]

    def test_identifiers_keep_case(self):
        assert kinds("t3 Ua1") == [("IDENT", "t3"), ("IDENT", "Ua1")]

    def test_numbers(self):
        assert kinds("42 3.14") == [("NUMBER", "42"), ("NUMBER", "3.14")]

    def test_strings_with_escape(self):
        tokens = tokenize("'red' 'o''brien'")
        assert tokens[0].text == "red"
        assert tokens[1].text == "o'brien"

    def test_unterminated_string(self):
        with pytest.raises(SQLLexError):
            tokenize("'oops")

    def test_operators_maximal_munch(self):
        assert kinds("<= < <> != >=") == [
            ("OP", "<="),
            ("OP", "<"),
            ("OP", "<>"),
            ("OP", "!="),
            ("OP", ">="),
        ]

    def test_punctuation(self):
        assert kinds("(a, b.c);") == [
            ("PUNCT", "("),
            ("IDENT", "a"),
            ("PUNCT", ","),
            ("IDENT", "b"),
            ("PUNCT", "."),
            ("IDENT", "c"),
            ("PUNCT", ")"),
            ("PUNCT", ";"),
        ]

    def test_line_comment_skipped(self):
        assert kinds("a -- comment here\n b") == [
            ("IDENT", "a"),
            ("IDENT", "b"),
        ]

    def test_minus_is_operator_not_comment(self):
        assert kinds("1 - 2") == [
            ("NUMBER", "1"),
            ("OP", "-"),
            ("NUMBER", "2"),
        ]

    def test_unknown_character(self):
        with pytest.raises(SQLLexError) as info:
            tokenize("a @ b")
        assert info.value.position == 2

    def test_eof_token(self):
        tokens = tokenize("a")
        assert tokens[-1] == Token("EOF", "", 1)

    def test_boolean_and_null_literals(self):
        assert kinds("TRUE false NULL") == [
            ("KEYWORD", "TRUE"),
            ("KEYWORD", "FALSE"),
            ("KEYWORD", "NULL"),
        ]
