"""Randomized equivalence: rewritten planners vs the vendored seed code.

The PR 3 planner overhaul (bitmask DP keys, memoized cost estimates,
branch-and-bound exhaustive search) carries one hard contract: *chosen
plans must not change*. The five committed bench baselines pin that down
for the paper's queries; these property tests pin it down across a cloud
of seeded random queries (2–5 tables, random join graphs, random
expensive selections) by comparing sha256 plan fingerprints against the
pre-overhaul implementations vendored in
:mod:`tests.reference_planners`.
"""

from __future__ import annotations

import random

import pytest

from repro.cost.model import CostModel
from repro.obs.artifacts import plan_fingerprint
from repro.optimizer.exhaustive import exhaustive_plan
from repro.optimizer.policies import (
    MigrationPhaseOnePolicy,
    PullRankPolicy,
    PullUpPolicy,
    PushDownPolicy,
)
from repro.optimizer.systemr import SystemRPlanner
from repro.sql import compile_query
from tests.reference_planners import (
    ReferenceSystemRPlanner,
    reference_exhaustive_plan,
)

#: Join columns (indexed and unindexed, several repetition factors) and
#: the UDF argument columns; same families the paper's queries draw from.
JOIN_COLUMNS = ("a1", "a20", "a100", "ua1", "ua20", "ua100")
UDF_COLUMNS = ("u20", "u100")
FUNCTIONS = ("costly1", "costly10", "costly100", "costly1000")

POLICIES = {
    "pushdown": PushDownPolicy,
    "pullup": PullUpPolicy,
    "pullrank": PullRankPolicy,
    "migration-enumeration": MigrationPhaseOnePolicy,
}


def random_query_sql(rng: random.Random, max_tables: int = 5) -> str:
    """A random connected join query with expensive selections.

    A spanning chain keeps the graph connected; a 30% optional extra edge
    exercises cyclic graphs. Every query carries at least one expensive
    selection so placement strategies genuinely diverge.
    """
    count = rng.randint(2, max_tables)
    tables = rng.sample([f"t{n}" for n in range(1, 9)], count)
    conjuncts = [
        f"{left}.{rng.choice(JOIN_COLUMNS)} = "
        f"{right}.{rng.choice(JOIN_COLUMNS)}"
        for left, right in zip(tables, tables[1:])
    ]
    if count >= 3 and rng.random() < 0.3:
        extra_left, extra_right = rng.sample(tables, 2)
        conjuncts.append(
            f"{extra_left}.{rng.choice(JOIN_COLUMNS)} = "
            f"{extra_right}.{rng.choice(JOIN_COLUMNS)}"
        )
    filters = [
        f"{rng.choice(FUNCTIONS)}({table}.{rng.choice(UDF_COLUMNS)})"
        for table in tables
        if rng.random() < 0.6
    ]
    if not filters:
        filters.append(f"costly100({tables[0]}.u20)")
    return (
        f"SELECT * FROM {', '.join(tables)} "
        f"WHERE {' AND '.join(conjuncts + filters)}"
    )


def _fresh_model(db) -> CostModel:
    return CostModel(db.catalog, db.params)


@pytest.mark.parametrize("seed", range(12))
@pytest.mark.parametrize("policy_name", sorted(POLICIES))
def test_systemr_matches_reference(tiny_db, policy_name, seed):
    """Bitmask-DP System R chooses byte-identical plans to the seed
    frozenset-DP enumerator, under every placement policy."""
    rng = random.Random(f"systemr/{policy_name}/{seed}")
    query = compile_query(
        tiny_db, random_query_sql(rng), name=f"rand{seed}"
    )
    policy_cls = POLICIES[policy_name]
    production = SystemRPlanner(
        tiny_db.catalog, _fresh_model(tiny_db), policy=policy_cls()
    ).plan(query)
    reference = ReferenceSystemRPlanner(
        tiny_db.catalog, _fresh_model(tiny_db), policy=policy_cls()
    ).plan(query)
    assert plan_fingerprint(production) == plan_fingerprint(reference)
    assert production.estimated_cost == pytest.approx(
        reference.estimated_cost, rel=1e-9
    )


@pytest.mark.parametrize("seed", range(12))
def test_exhaustive_greedy_matches_reference(tiny_db, seed):
    """Branch-and-bound exhaustive search lands on the same plan as the
    seed full-product search (greedy join-method selection)."""
    rng = random.Random(f"exhaustive/greedy/{seed}")
    query = compile_query(
        tiny_db, random_query_sql(rng, max_tables=4), name=f"rand{seed}"
    )
    production = exhaustive_plan(
        query, tiny_db.catalog, _fresh_model(tiny_db)
    )
    reference = reference_exhaustive_plan(
        query, tiny_db.catalog, _fresh_model(tiny_db)
    )
    assert plan_fingerprint(production) == plan_fingerprint(reference)
    assert production.estimated_cost == pytest.approx(
        reference.estimated_cost, rel=1e-9
    )


@pytest.mark.parametrize("seed", range(6))
def test_exhaustive_enumerate_matches_reference(tiny_db, seed):
    """Same equivalence with full join-method enumeration, on smaller
    queries (the method product grows fast)."""
    rng = random.Random(f"exhaustive/enumerate/{seed}")
    query = compile_query(
        tiny_db, random_query_sql(rng, max_tables=3), name=f"rand{seed}"
    )
    production = exhaustive_plan(
        query,
        tiny_db.catalog,
        _fresh_model(tiny_db),
        method_choice="enumerate",
    )
    reference = reference_exhaustive_plan(
        query,
        tiny_db.catalog,
        _fresh_model(tiny_db),
        method_choice="enumerate",
    )
    assert plan_fingerprint(production) == plan_fingerprint(reference)
    assert production.estimated_cost == pytest.approx(
        reference.estimated_cost, rel=1e-9
    )
