"""Tests for executor UDF failure containment (retries, policies,
quarantine) driven end-to-end through injected faults."""

import pytest

from repro.bench.workloads import build_workload
from repro.catalog.datagen import build_database
from repro.errors import ExecutionError
from repro.exec import Executor, FailurePolicy
from repro.exec.containment import (
    EXHAUSTION_POLICIES,
    ContainmentState,
    QuarantineReport,
)
from repro.faults import FaultInjector, FaultPlan, FaultSpec
from repro.obs import Tracer
from repro.optimizer import optimize


def q1_setup(scale=5):
    db = build_database(scale=scale, seed=42)
    workload = build_workload(db, "q1")
    optimized = optimize(db, workload.query, strategy="pushdown")
    return db, optimized.plan


def run_with_faults(db, plan, specs, policy, clock=None):
    fault_plan = FaultPlan(seed=0, specs=tuple(specs))
    injector = FaultInjector(fault_plan)
    with injector.install(db.catalog):
        executor = Executor(
            db, failure_policy=policy, clock=injector.clock
        )
        return executor.execute(plan), injector


class TestFailurePolicy:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ExecutionError) as exc_info:
            FailurePolicy(on_exhausted="explode")
        for name in EXHAUSTION_POLICIES:
            assert name in str(exc_info.value)

    def test_negative_retries_rejected(self):
        with pytest.raises(ExecutionError):
            FailurePolicy(retries=-1)

    def test_backoff_units_grow_exponentially(self):
        policy = FailurePolicy(backoff_base=1.0, backoff_multiplier=2.0)
        assert [policy.backoff_units(a) for a in range(3)] == [
            1.0, 2.0, 4.0,
        ]


class TestRetryRecovery:
    def test_transient_fault_within_retries_recovers_exactly(self):
        db, plan = q1_setup()
        oracle = sorted(Executor(db).execute(plan).rows)
        specs = [
            FaultSpec(
                "costly100", "error", first_call=3, failures=2,
                transient=True,
            )
        ]
        result, _ = run_with_faults(
            db, plan, specs, FailurePolicy(retries=2)
        )
        assert result.completed
        assert sorted(result.rows) == oracle
        assert result.quarantine is not None
        assert result.quarantine.quarantined == 0
        assert result.quarantine.retries == 2
        assert result.quarantine.recovered == 1
        assert result.metrics["udf.retries"] == 2.0
        # Backoff: 1.0 for attempt 0 plus 2.0 for attempt 1.
        assert result.metrics["udf.backoff_units"] == 3.0

    def test_retry_ignores_transient_flag_on_permanent_faults(self):
        # Real systems cannot see fault metadata: permanent faults still
        # burn the whole retry budget before the policy applies.
        db, plan = q1_setup()
        specs = [
            FaultSpec(
                "costly100", "error", first_call=1, transient=False
            )
        ]
        result, _ = run_with_faults(
            db, plan, specs, FailurePolicy(retries=3, on_exhausted="skip-row")
        )
        assert result.completed
        assert result.quarantine.retries >= 3


class TestExhaustionPolicies:
    def setup_method(self):
        self.db, self.plan = q1_setup()
        self.oracle = sorted(Executor(self.db).execute(self.plan).rows)
        self.permanent = [
            FaultSpec(
                "costly100", "error", first_call=4, transient=False
            )
        ]

    def test_abort_surfaces_structured_dnf(self):
        result, _ = run_with_faults(
            self.db, self.plan, self.permanent,
            FailurePolicy(retries=1, on_exhausted="abort"),
        )
        assert not result.completed
        assert result.error.startswith("udf:")
        assert "costly100" in result.error

    def test_skip_row_yields_subset(self):
        result, _ = run_with_faults(
            self.db, self.plan, self.permanent,
            FailurePolicy(retries=1, on_exhausted="skip-row"),
        )
        assert result.completed
        assert result.error == ""
        assert result.quarantine.quarantined > 0
        oracle = set(self.oracle)
        assert all(row in oracle for row in result.rows)
        assert result.degraded

    def test_assume_fail_matches_skip_row_rows(self):
        skip, _ = run_with_faults(
            self.db, self.plan, self.permanent,
            FailurePolicy(retries=1, on_exhausted="skip-row"),
        )
        assume, _ = run_with_faults(
            self.db, self.plan, self.permanent,
            FailurePolicy(retries=1, on_exhausted="assume-fail"),
        )
        assert sorted(skip.rows) == sorted(assume.rows)

    def test_assume_pass_yields_superset(self):
        result, _ = run_with_faults(
            self.db, self.plan, self.permanent,
            FailurePolicy(retries=1, on_exhausted="assume-pass"),
        )
        assert result.completed
        assert result.quarantine.quarantined > 0
        rows = sorted(result.rows)
        assert len(rows) >= len(self.oracle)
        remaining = list(rows)
        for row in self.oracle:
            assert row in remaining
            remaining.remove(row)

    def test_quarantine_entries_name_function_and_predicate(self):
        result, _ = run_with_faults(
            self.db, self.plan, self.permanent,
            FailurePolicy(retries=0, on_exhausted="skip-row"),
        )
        entry = result.quarantine.entries[0]
        assert entry.function == "costly100"
        assert "costly100" in entry.predicate
        assert entry.action == "skip-row"
        assert entry.attempts == 1
        assert entry.row_preview

    def test_quarantine_report_serialises(self):
        result, _ = run_with_faults(
            self.db, self.plan, self.permanent,
            FailurePolicy(retries=0, on_exhausted="skip-row"),
        )
        data = result.quarantine.as_dict()
        assert data["quarantined"] == result.quarantine.quarantined
        assert isinstance(data["entries"], list)

    def test_no_policy_means_no_containment(self):
        fault_plan = FaultPlan(seed=0, specs=tuple(self.permanent))
        with FaultInjector(fault_plan).install(self.db.catalog):
            result = Executor(self.db).execute(self.plan)
        # Without a FailurePolicy the executor still converts the escape
        # into a structured DNF (never a traceback), with no quarantine.
        assert not result.completed
        assert result.error.startswith("udf:")
        assert result.quarantine is None


class TestContainmentEvents:
    def test_retry_and_quarantine_emit_trace_events(self):
        db, plan = q1_setup()
        tracer = Tracer()
        fault_plan = FaultPlan(
            seed=0,
            specs=(
                FaultSpec(
                    "costly100", "error", first_call=2, transient=False
                ),
            ),
        )
        injector = FaultInjector(fault_plan)
        with injector.install(db.catalog):
            executor = Executor(
                db,
                failure_policy=FailurePolicy(
                    retries=1, on_exhausted="skip-row"
                ),
                clock=injector.clock,
                tracer=tracer,
            )
            executor.execute(plan)
        events = [
            event["name"]
            for span in tracer.spans
            for event in span.events
        ]
        assert "udf.retry" in events
        assert "udf.quarantine" in events

    def test_metrics_include_latency_from_shared_clock(self):
        db, plan = q1_setup()
        specs = [
            FaultSpec(
                "costly100", "latency", first_call=1, every=1,
                latency_units=2.0,
            )
        ]
        result, injector = run_with_faults(
            db, plan, specs, FailurePolicy(retries=0)
        )
        assert result.completed
        assert (
            result.metrics["udf.latency_units"]
            == injector.clock.latency_units
            > 0
        )


class TestQuarantineCap:
    def test_entries_bounded_but_count_accurate(self, monkeypatch):
        import repro.exec.containment as containment_module

        monkeypatch.setattr(
            containment_module, "MAX_QUARANTINE_ENTRIES", 3
        )
        db, plan = q1_setup()
        specs = [
            FaultSpec(
                "costly100", "error", first_call=1, transient=False
            )
        ]
        result, _ = run_with_faults(
            db, plan, specs, FailurePolicy(retries=0, on_exhausted="skip-row")
        )
        assert len(result.quarantine.entries) == 3
        assert result.metrics["udf.quarantined"] > 3
