"""Tests for bushy-tree support: path machinery, bushy enumeration, bushy
LDL (the paper's stated fix for LDL's left-deep limitation), and bushy
Predicate Migration."""

import pytest

from repro.cost.model import CostModel
from repro.exec import Executor
from repro.optimizer import Query, optimize
from repro.optimizer.ldl import inner_pullup_violations
from repro.optimizer.migration import migrate_plan
from repro.plan.nodes import Join, JoinMethod, Plan, Scan, validate_placement
from repro.plan.paths import root_paths, scan_of
from tests.conftest import costly_filter, equijoin


def bushy_tree(db):
    """(t1 ⋈ t2) ⋈ (t3 ⋈ t6): a genuinely bushy shape."""
    left = Join(
        filters=[],
        outer=Scan(filters=[], table="t1"),
        inner=Scan(filters=[], table="t2"),
        method=JoinMethod.HASH,
        primary=equijoin(db, ("t1", "ua1"), ("t2", "a1")),
    )
    right = Join(
        filters=[],
        outer=Scan(filters=[], table="t3"),
        inner=Scan(filters=[], table="t6"),
        method=JoinMethod.HASH,
        primary=equijoin(db, ("t3", "ua1"), ("t6", "a1")),
    )
    return Join(
        filters=[],
        outer=left,
        inner=right,
        method=JoinMethod.HASH,
        primary=equijoin(db, ("t2", "ua1"), ("t3", "a1")),
    )


class TestRootPaths:
    def test_one_path_per_leaf(self, db):
        paths = root_paths(bushy_tree(db))
        assert len(paths) == 4
        assert sorted(p.leaf.table for p in paths) == ["t1", "t2", "t3", "t6"]

    def test_steps_bottom_up(self, db):
        tree = bushy_tree(db)
        path = next(p for p in root_paths(tree) if p.leaf.table == "t1")
        assert len(path.steps) == 2
        assert path.steps[0].join is tree.outer
        assert path.steps[1].join is tree
        assert path.steps[0].from_outer and path.steps[1].from_outer

    def test_inner_side_flags(self, db):
        tree = bushy_tree(db)
        path = next(p for p in root_paths(tree) if p.leaf.table == "t6")
        assert not path.steps[0].from_outer  # t6 is inner of t3⋈t6
        assert not path.steps[1].from_outer  # right subtree is inner of root

    def test_entry_slots(self, db):
        tree = bushy_tree(db)
        path = next(p for p in root_paths(tree) if p.leaf.table == "t1")
        on_t1 = costly_filter(db, "costly100", ("t1", "u20"))
        on_t2 = costly_filter(db, "costly100", ("t2", "u20"))
        on_t6 = costly_filter(db, "costly100", ("t6", "u20"))
        assert path.entry_slot(on_t1) == 0
        assert path.entry_slot(on_t2) == 0  # below join 0, on t2's scan
        assert path.entry_slot(on_t6) == 1  # in scope above the root-1 join

    def test_scan_of_finds_leaf_anywhere(self, db):
        tree = bushy_tree(db)
        on_t6 = costly_filter(db, "costly100", ("t6", "u20"))
        assert scan_of(tree, on_t6).table == "t6"

    def test_left_deep_tree_has_linear_paths(self, db):
        left_deep = Join(
            filters=[],
            outer=Join(
                filters=[],
                outer=Scan(filters=[], table="t1"),
                inner=Scan(filters=[], table="t2"),
                method=JoinMethod.HASH,
                primary=equijoin(db, ("t1", "ua1"), ("t2", "a1")),
            ),
            inner=Scan(filters=[], table="t3"),
            method=JoinMethod.HASH,
            primary=equijoin(db, ("t2", "ua1"), ("t3", "a1")),
        )
        paths = root_paths(left_deep)
        lengths = sorted(len(p.steps) for p in paths)
        assert lengths == [1, 2, 2]


class TestBushyExecution:
    def test_bushy_plan_executes_correctly(self, tiny_db):
        tree = bushy_tree(tiny_db)
        result = Executor(tiny_db).execute(Plan(tree))
        # Reference: chain of hash semantics via brute force.
        tables = ["t1", "t2", "t3", "t6"]
        entries = {t: tiny_db.catalog.table(t) for t in tables}
        rows = {t: entries[t].heap.all_rows() for t in tables}
        pos = lambda t, c: entries[t].schema.position(c)  # noqa: E731
        expected = sorted(
            a + b + c + d
            for a in rows["t1"]
            for b in rows["t2"]
            if a[pos("t1", "ua1")] == b[pos("t2", "a1")]
            for c in rows["t3"]
            if b[pos("t2", "ua1")] == c[pos("t3", "a1")]
            for d in rows["t6"]
            if c[pos("t3", "ua1")] == d[pos("t6", "a1")]
        )
        assert sorted(result.rows) == expected

    def test_nl_with_bushy_inner_charges_materialised_pages(self, tiny_db):
        inner = Join(
            filters=[],
            outer=Scan(filters=[], table="t1"),
            inner=Scan(filters=[], table="t2"),
            method=JoinMethod.HASH,
            primary=equijoin(tiny_db, ("t1", "ua1"), ("t2", "a1")),
        )
        tree = Join(
            filters=[],
            outer=Scan(filters=[], table="t3"),
            inner=inner,
            method=JoinMethod.NESTED_LOOP,
            primary=equijoin(tiny_db, ("t3", "ua1"), ("t1", "a1")),
        )
        model = CostModel(tiny_db.catalog, tiny_db.params)
        estimate = model.estimate_plan(tree)
        result = Executor(tiny_db).execute(Plan(tree))
        assert result.completed
        assert result.charged == pytest.approx(estimate.cost, rel=0.3)


class TestBushyEnumeration:
    def make_query(self, db):
        return Query(
            tables=["t1", "t2", "t3", "t6"],
            predicates=[
                equijoin(db, ("t1", "ua1"), ("t2", "a1")),
                equijoin(db, ("t2", "ua1"), ("t3", "a1")),
                equijoin(db, ("t3", "ua1"), ("t6", "a1")),
                costly_filter(db, "costly100", ("t2", "ua1")),
            ],
        )

    def test_bushy_never_worse_than_left_deep(self, db):
        query = self.make_query(db)
        left_deep = optimize(db, query, strategy="migration")
        bushy = optimize(db, query, strategy="migration", bushy=True)
        assert bushy.estimated_cost <= left_deep.estimated_cost + 1e-6

    def test_bushy_plans_are_valid_and_correct(self, tiny_db):
        query = self.make_query(tiny_db)
        reference = None
        for bushy in (False, True):
            plan = optimize(
                tiny_db, query, strategy="pullrank", bushy=bushy
            ).plan
            validate_placement(plan.root, tiny_db.catalog)
            rows = sorted(
                tuple(sorted(row))
                for row in Executor(tiny_db).execute(plan).rows
            )
            if reference is None:
                reference = rows
            else:
                assert rows == reference


class TestBushyLDL:
    """Section 3.1: 'A System R optimizer can be modified to explore the
    space of bushy trees' — which removes LDL's forced inner pullup."""

    def ldl_example(self, db):
        return Query(
            tables=["t3", "t6"],
            predicates=[
                equijoin(db, ("t3", "ua20"), ("t6", "ua20")),
                costly_filter(db, "costly100sel90", ("t3", "u20")),
                costly_filter(db, "costly100sel90", ("t6", "u100")),
            ],
        )

    def test_bushy_ldl_reaches_figure1_plan(self, db):
        query = self.ldl_example(db)
        left_deep = optimize(db, query, strategy="ldl")
        bushy = optimize(db, query, strategy="ldl", bushy=True)
        migration = optimize(db, query, strategy="migration")
        assert bushy.estimated_cost < left_deep.estimated_cost
        assert bushy.estimated_cost == pytest.approx(
            migration.estimated_cost, rel=0.01
        )

    def test_bushy_ldl_places_selection_on_inner_side(self, db):
        """The defining structural change: the inner relation's expensive
        selection may now run before the join (as a virtual join over the
        inner subtree)."""
        query = self.ldl_example(db)
        plan = optimize(db, query, strategy="ldl", bushy=True).plan
        # The left-deep invariant no longer holds in spirit: both expensive
        # selections execute below the top join.
        assert not plan.root.filters or not any(
            p.is_expensive for p in plan.root.filters
        )

    def test_left_deep_ldl_still_constrained(self, db):
        query = self.ldl_example(db)
        plan = optimize(db, query, strategy="ldl").plan
        assert inner_pullup_violations(plan.root) == []


class TestBushyMigration:
    def test_migrates_predicates_on_bushy_trees(self, db):
        tree = bushy_tree(db)
        predicate = costly_filter(db, "costly100sel10", ("t6", "u20"))
        tree.filters.append(predicate)
        model = CostModel(db.catalog, db.params)
        before = model.estimate_plan(tree).cost
        migrated = migrate_plan(Plan(tree), model)
        assert migrated.estimated_cost <= before
        validate_placement(migrated.root, db.catalog)
        placed = [
            p for node in migrated.root.walk() for p in node.filters
        ]
        assert placed == [predicate]

    def test_bushy_migration_pushes_selective_predicate_down(self, db):
        """Both joins on t1's path pass every t1-stream tuple (rank 0), so
        a selective expensive predicate on t1 belongs on its scan; place it
        badly at the root and let migration push it down the path."""
        tree = bushy_tree(db)
        predicate = costly_filter(db, "costly100sel10", ("t1", "ua1"))
        tree.filters.append(predicate)
        model = CostModel(db.catalog, db.params)
        migrated = migrate_plan(Plan(tree), model)
        owner = next(
            node
            for node in migrated.root.walk()
            if predicate in node.filters
        )
        assert isinstance(owner, Scan) and owner.table == "t1"

    def test_bushy_migration_keeps_predicate_above_selective_joins(self, db):
        """On t6's path both joins are selective over the stream (each
        filters it by half), so the expensive predicate is rank-optimal at
        the root — migration must leave it there."""
        tree = bushy_tree(db)
        predicate = costly_filter(db, "costly100sel10", ("t6", "u20"))
        tree.filters.append(predicate)
        model = CostModel(db.catalog, db.params)
        migrated = migrate_plan(Plan(tree), model)
        assert predicate in migrated.root.filters
