"""End-to-end property test: the whole pipeline vs a naive evaluator.

Random SQL queries are parsed, bound, optimized under a random strategy,
and executed (with and without caching); the result must equal brute-force
evaluation of the WHERE clause over the cross product of the base tables.
This is the paper's debugging lesson ("benchmarking is absolutely crucial
to thoroughly debugging a query optimizer") turned into a property.
"""

from hypothesis import given, settings, strategies as st

from repro.exec import Executor
from repro.expr.expressions import Scope
from repro.optimizer import optimize
from repro.sql import compile_query

TABLES = ["t1", "t2", "t3"]
COLUMNS = ["a1", "a20", "ua1", "ua20", "u20"]
FUNCTIONS = ["costly1", "costly10", "costly100"]
OPERATORS = ["=", "<", "<=", ">", ">=", "<>"]

STRATEGIES = ["pushdown", "pullup", "pullrank", "migration", "exhaustive"]


@st.composite
def random_query(draw):
    table_count = draw(st.integers(1, 2))
    tables = draw(
        st.lists(
            st.sampled_from(TABLES),
            min_size=table_count,
            max_size=table_count,
            unique=True,
        )
    )
    conjuncts = []
    # Join predicate (keeps two-table queries connected).
    if len(tables) == 2:
        left_col = draw(st.sampled_from(COLUMNS))
        right_col = draw(st.sampled_from(COLUMNS))
        conjuncts.append(
            f"{tables[0]}.{left_col} = {tables[1]}.{right_col}"
        )
    for _ in range(draw(st.integers(0, 2))):
        table = draw(st.sampled_from(tables))
        kind = draw(st.sampled_from(["compare", "function"]))
        if kind == "compare":
            column = draw(st.sampled_from(COLUMNS))
            op = draw(st.sampled_from(OPERATORS))
            value = draw(st.integers(0, 30))
            conjuncts.append(f"{table}.{column} {op} {value}")
        else:
            function = draw(st.sampled_from(FUNCTIONS))
            column = draw(st.sampled_from(COLUMNS))
            conjuncts.append(f"{function}({table}.{column})")
    sql = f"SELECT * FROM {', '.join(tables)}"
    if conjuncts:
        sql += " WHERE " + " AND ".join(conjuncts)
    strategy = draw(st.sampled_from(STRATEGIES))
    caching = draw(st.booleans())
    return sql, tables, strategy, caching


def naive_rows(db, query, tables):
    """Brute-force: cross product, full WHERE via predicate evaluation."""
    scope = Scope(
        [
            (table, name)
            for table in tables
            for name in db.catalog.table(table).schema.attribute_names
        ]
    )
    streams = [db.catalog.table(t).heap.all_rows() for t in tables]
    if len(streams) == 1:
        combined = [tuple(row) for row in streams[0]]
    else:
        combined = [a + b for a in streams[0] for b in streams[1]]
    functions = db.catalog.functions
    kept = []
    for row in combined:
        if all(
            predicate.expr.evaluate(row, scope, functions) is True
            for predicate in query.predicates
        ):
            kept.append(row)
    return sorted(kept)


@given(random_query())
@settings(max_examples=30, deadline=None)
def test_pipeline_matches_naive_evaluation(tiny_db, case):
    sql, tables, strategy, caching = case
    query = compile_query(tiny_db, sql)
    plan = optimize(tiny_db, query, strategy=strategy, caching=caching).plan

    from repro.plan.nodes import validate_placement

    validate_placement(plan.root, tiny_db.catalog)

    canonical = [
        (table, name)
        for table in tables
        for name in tiny_db.catalog.table(table).schema.attribute_names
    ]
    result = Executor(tiny_db, caching=caching).execute(
        plan, project=canonical
    )
    assert result.completed
    assert sorted(result.rows) == naive_rows(tiny_db, query, tables)


@given(random_query())
@settings(max_examples=15, deadline=None)
def test_strategies_agree_pairwise(tiny_db, case):
    sql, tables, _, _ = case
    query = compile_query(tiny_db, sql)
    canonical = [
        (table, name)
        for table in tables
        for name in tiny_db.catalog.table(table).schema.attribute_names
    ]
    reference = None
    for strategy in ("pushdown", "migration"):
        plan = optimize(tiny_db, query, strategy=strategy).plan
        rows = sorted(
            Executor(tiny_db).execute(plan, project=canonical).rows
        )
        if reference is None:
            reference = rows
        else:
            assert rows == reference
