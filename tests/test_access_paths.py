"""Unit tests: index-scan access-path selection."""

import pytest

from repro.catalog.datagen import build_database
from repro.exec import Executor
from repro.expr.expressions import Column, Comparison, Const
from repro.expr.predicates import analyze_conjunct
from repro.optimizer import Query, optimize
from repro.optimizer.joinutil import index_access
from repro.plan.nodes import Scan
from tests.conftest import costly_filter


@pytest.fixture(scope="module")
def wide_db():
    """Large enough that an index probe beats a sequential scan."""
    database = build_database(scale=300, seed=13)
    return database


def comparison(db, table, attribute, op, value):
    return analyze_conjunct(
        db.catalog, Comparison(op, Column(table, attribute), Const(value))
    )


class TestIndexAccessDecoding:
    def test_equality(self, db):
        entry = db.catalog.table("t10")
        predicate = comparison(db, "t10", "a1", "=", 5)
        assert index_access(entry, predicate) == ("a1", 5, 5)

    def test_less_than(self, db):
        entry = db.catalog.table("t10")
        predicate = comparison(db, "t10", "a1", "<", 10)
        stats = entry.stats.attribute("a1")
        assert index_access(entry, predicate) == ("a1", stats.low, 9)

    def test_greater_equal(self, db):
        entry = db.catalog.table("t10")
        predicate = comparison(db, "t10", "a1", ">=", 10)
        stats = entry.stats.attribute("a1")
        assert index_access(entry, predicate) == ("a1", 10, stats.high)

    def test_flipped_constant_side(self, db):
        entry = db.catalog.table("t10")
        predicate = analyze_conjunct(
            db.catalog,
            Comparison(">", Const(10), Column("t10", "a1")),
        )
        stats = entry.stats.attribute("a1")
        assert index_access(entry, predicate) == ("a1", stats.low, 9)

    def test_unindexed_attribute_rejected(self, db):
        entry = db.catalog.table("t10")
        predicate = comparison(db, "t10", "ua1", "=", 5)
        assert index_access(entry, predicate) is None

    def test_expensive_predicate_rejected(self, db):
        entry = db.catalog.table("t10")
        predicate = costly_filter(db, "costly100", ("t10", "u20"))
        assert index_access(entry, predicate) is None

    def test_not_equal_rejected(self, db):
        entry = db.catalog.table("t10")
        predicate = comparison(db, "t10", "a1", "<>", 5)
        assert index_access(entry, predicate) is None

    def test_non_integer_rejected(self, db):
        entry = db.catalog.table("t10")
        predicate = comparison(db, "t10", "a1", "=", 2.5)
        assert index_access(entry, predicate) is None


class TestAccessPathChoice:
    def test_selective_equality_uses_index(self, wide_db):
        query = Query(
            tables=["t10"],
            predicates=[comparison(wide_db, "t10", "a1", "=", 5)],
        )
        plan = optimize(wide_db, query, strategy="migration").plan
        assert isinstance(plan.root, Scan)
        assert plan.root.index_attr == "a1"
        assert plan.root.index_range == (5, 5)

    def test_unselective_range_uses_seq_scan(self, wide_db):
        query = Query(
            tables=["t10"],
            predicates=[comparison(wide_db, "t10", "a1", ">", 5)],
        )
        plan = optimize(wide_db, query, strategy="migration").plan
        assert plan.root.index_attr is None

    def test_index_scan_rows_match_seq_scan(self, wide_db):
        query = Query(
            tables=["t10"],
            predicates=[comparison(wide_db, "t10", "a20", "=", 3)],
        )
        plan = optimize(wide_db, query, strategy="migration").plan
        result = Executor(wide_db).execute(plan)
        entry = wide_db.catalog.table("t10")
        slot = entry.schema.position("a20")
        expected = [r for r in entry.heap.all_rows() if r[slot] == 3]
        assert sorted(result.rows) == sorted(expected)

    def test_index_path_cheaper_when_chosen(self, wide_db):
        from repro.cost.model import CostModel

        model = CostModel(wide_db.catalog, wide_db.params)
        predicate = comparison(wide_db, "t10", "a1", "=", 5)
        seq = Scan(filters=[predicate], table="t10")
        index = Scan(
            filters=[], table="t10", index_attr="a1", index_range=(5, 5)
        )
        assert (
            model.estimate_plan(index).cost < model.estimate_plan(seq).cost
        )

    def test_index_scan_under_join_still_correct(self, wide_db):
        from tests.conftest import equijoin

        query = Query(
            tables=["t3", "t10"],
            predicates=[
                equijoin(wide_db, ("t3", "ua1"), ("t10", "a1")),
                comparison(wide_db, "t10", "a20", "=", 3),
            ],
        )
        # Ground truth via nested loops over raw rows, in canonical
        # (t3 columns, t10 columns) order.
        t3 = wide_db.catalog.table("t3")
        t10 = wide_db.catalog.table("t10")
        ua1 = t3.schema.position("ua1")
        a1 = t10.schema.position("a1")
        a20 = t10.schema.position("a20")
        expected = sorted(
            o + i
            for o in t3.heap.all_rows()
            for i in t10.heap.all_rows()
            if o[ua1] == i[a1] and i[a20] == 3
        )
        canonical = [
            ("t3", n) for n in t3.schema.attribute_names
        ] + [("t10", n) for n in t10.schema.attribute_names]
        for strategy in ("migration", "pushdown"):
            plan = optimize(wide_db, query, strategy=strategy).plan
            result = Executor(wide_db).execute(plan, project=canonical)
            assert result.completed
            assert sorted(result.rows) == expected
