"""Unit tests: plan tree nodes, cloning, validation."""

import pytest

from repro.errors import PlanError
from repro.plan.nodes import Join, JoinMethod, Scan, validate_placement
from tests.conftest import costly_filter, equijoin


def simple_join(db, method=JoinMethod.HASH):
    return Join(
        filters=[],
        outer=Scan(filters=[], table="t3"),
        inner=Scan(filters=[], table="t10"),
        method=method,
        primary=equijoin(db, ("t3", "a1"), ("t10", "ua1")),
    )


class TestScan:
    def test_tables_and_children(self):
        scan = Scan(filters=[], table="t3")
        assert scan.tables() == frozenset({"t3"})
        assert scan.children() == []

    def test_scope_lists_schema_columns(self, db):
        scan = Scan(filters=[], table="t3")
        scope = scan.scope(db.catalog)
        assert ("t3", "a1") in scope
        assert len(scope) == len(db.catalog.table("t3").schema)

    def test_requires_table(self):
        with pytest.raises(PlanError):
            Scan(filters=[])

    def test_index_range_must_pair_with_attr(self):
        with pytest.raises(PlanError):
            Scan(filters=[], table="t3", index_attr="a1")

    def test_str(self):
        assert str(Scan(filters=[], table="t3")) == "SeqScan(t3)"
        assert "IndexScan" in str(
            Scan(filters=[], table="t3", index_attr="a1", index_range=(0, 5))
        )


class TestJoin:
    def test_tables_union(self, db):
        join = simple_join(db)
        assert join.tables() == frozenset({"t3", "t10"})

    def test_scope_concatenation(self, db):
        join = simple_join(db)
        scope = join.scope(db.catalog)
        assert scope.slot("t3", "a1") < scope.slot("t10", "a1")

    def test_method_requires_equijoin(self, db):
        expensive = costly_filter(db, "costly100", ("t3", "u20"))
        with pytest.raises(PlanError):
            Join(
                filters=[],
                outer=Scan(filters=[], table="t3"),
                inner=Scan(filters=[], table="t10"),
                method=JoinMethod.HASH,
                primary=expensive,
            )

    def test_join_columns_oriented(self, db):
        join = simple_join(db)
        outer_col, inner_col = join.join_columns()
        assert outer_col.table == "t3" and inner_col.table == "t10"
        # Reversed predicate orientation still resolves correctly.
        flipped = Join(
            filters=[],
            outer=Scan(filters=[], table="t3"),
            inner=Scan(filters=[], table="t10"),
            method=JoinMethod.HASH,
            primary=equijoin(db, ("t10", "ua1"), ("t3", "a1")),
        )
        outer_col, inner_col = flipped.join_columns()
        assert outer_col.table == "t3" and inner_col.table == "t10"


class TestCloneAndTraversal:
    def test_clone_is_structurally_independent(self, db):
        join = simple_join(db)
        predicate = costly_filter(db, "costly100", ("t3", "u20"))
        join.outer.filters.append(predicate)
        cloned = join.clone()
        cloned.outer.filters.clear()
        assert join.outer.filters == [predicate]

    def test_clone_shares_predicates(self, db):
        join = simple_join(db)
        predicate = costly_filter(db, "costly100", ("t3", "u20"))
        join.filters.append(predicate)
        assert join.clone().filters[0] is predicate

    def test_walk_preorder(self, db):
        join = simple_join(db)
        nodes = list(join.walk())
        assert nodes[0] is join
        assert {type(n).__name__ for n in nodes[1:]} == {"Scan"}

    def test_all_predicates_includes_primary(self, db):
        join = simple_join(db)
        predicate = costly_filter(db, "costly100", ("t3", "u20"))
        join.outer.filters.append(predicate)
        placed = join.all_predicates()
        assert join.primary in placed and predicate in placed

    def test_find_and_remove_filter(self, db):
        join = simple_join(db)
        predicate = costly_filter(db, "costly100", ("t10", "u20"))
        join.inner.filters.append(predicate)
        assert join.find_filter(predicate) is join.inner
        join.remove_filter(predicate)
        assert join.find_filter(predicate) is None
        with pytest.raises(PlanError):
            join.remove_filter(predicate)

    def test_base_scans(self, db):
        join = simple_join(db)
        assert [scan.table for scan in join.base_scans()] == ["t3", "t10"]


class TestValidatePlacement:
    def test_valid_plan_passes(self, db):
        join = simple_join(db)
        join.filters.append(costly_filter(db, "costly100", ("t3", "u20")))
        validate_placement(join, db.catalog)

    def test_out_of_scope_filter_rejected(self, db):
        join = simple_join(db)
        join.outer.filters.append(
            costly_filter(db, "costly100", ("t10", "u20"))
        )
        with pytest.raises(PlanError):
            validate_placement(join, db.catalog)
