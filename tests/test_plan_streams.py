"""Unit and property tests: spine slots and placement application."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import PlanError
from repro.plan.nodes import Join, JoinMethod, Scan
from repro.plan.streams import movable_predicates, spine_of
from tests.conftest import costly_filter, equijoin


def three_way(db):
    """(t3 join t6) join t10 with no filters."""
    lower = Join(
        filters=[],
        outer=Scan(filters=[], table="t3"),
        inner=Scan(filters=[], table="t6"),
        method=JoinMethod.HASH,
        primary=equijoin(db, ("t3", "ua1"), ("t6", "a1")),
    )
    return Join(
        filters=[],
        outer=lower,
        inner=Scan(filters=[], table="t10"),
        method=JoinMethod.HASH,
        primary=equijoin(db, ("t6", "ua1"), ("t10", "a1")),
    )


class TestSpineExtraction:
    def test_spine_shape(self, db):
        spine = spine_of(three_way(db))
        assert spine.leaf.table == "t3"
        assert [sj.join.inner.table for sj in spine.joins] == ["t6", "t10"]
        assert spine.slots == 3

    def test_single_scan_spine(self, db):
        spine = spine_of(Scan(filters=[], table="t3"))
        assert spine.slots == 1
        assert spine.top is spine.leaf

    def test_bushy_plan_rejected(self, db):
        bushy = Join(
            filters=[],
            outer=Scan(filters=[], table="t1"),
            inner=three_way(db),  # join as inner input
            method=JoinMethod.NESTED_LOOP,
            primary=equijoin(db, ("t1", "ua1"), ("t10", "a1")),
        )
        with pytest.raises(PlanError):
            spine_of(bushy)


class TestEntrySlots:
    def test_leaf_selection_enters_at_zero(self, db):
        spine = spine_of(three_way(db))
        predicate = costly_filter(db, "costly100", ("t3", "u20"))
        assert spine.entry_slot(predicate) == 0

    def test_inner_selection_enters_at_its_join_position(self, db):
        spine = spine_of(three_way(db))
        on_t6 = costly_filter(db, "costly100", ("t6", "u20"))
        on_t10 = costly_filter(db, "costly100", ("t10", "u20"))
        assert spine.entry_slot(on_t6) == 0  # below join 0, on t6's scan
        assert spine.entry_slot(on_t10) == 1

    def test_join_predicate_enters_above_its_join(self, db):
        spine = spine_of(three_way(db))
        secondary = equijoin(db, ("t3", "u20"), ("t6", "u20"))
        assert spine.entry_slot(secondary) == 1
        spanning = equijoin(db, ("t3", "u20"), ("t10", "u20"))
        assert spine.entry_slot(spanning) == 2

    def test_foreign_predicate_rejected(self, db):
        spine = spine_of(three_way(db))
        foreign = costly_filter(db, "costly100", ("t9", "u20"))
        with pytest.raises(PlanError):
            spine.entry_slot(foreign)


class TestNodeAtSlot:
    def test_selection_at_entry_lands_on_its_scan(self, db):
        root = three_way(db)
        spine = spine_of(root)
        on_t6 = costly_filter(db, "costly100", ("t6", "u20"))
        node = spine.node_at_slot(on_t6, spine.entry_slot(on_t6))
        assert isinstance(node, Scan) and node.table == "t6"

    def test_selection_above_entry_lands_on_join(self, db):
        root = three_way(db)
        spine = spine_of(root)
        on_t6 = costly_filter(db, "costly100", ("t6", "u20"))
        assert spine.node_at_slot(on_t6, 1) is spine.joins[0].join
        assert spine.node_at_slot(on_t6, 2) is spine.joins[1].join

    def test_below_entry_rejected(self, db):
        spine = spine_of(three_way(db))
        spanning = equijoin(db, ("t3", "u20"), ("t10", "u20"))
        with pytest.raises(PlanError):
            spine.node_at_slot(spanning, 1)


class TestApplyPlacement:
    def test_moves_and_orders_by_rank(self, db):
        root = three_way(db)
        cheap = costly_filter(db, "costly1", ("t3", "u20"))
        pricey = costly_filter(db, "costly100", ("t3", "u100"))
        root.outer.outer.filters.extend([pricey, cheap])
        spine = spine_of(root)
        spine.apply_placement({cheap: 2, pricey: 2})
        top = spine.joins[1].join
        assert top.filters == [cheap, pricey]  # ascending rank
        assert root.outer.outer.filters == []

    def test_unplaced_predicate_rejected(self, db):
        root = three_way(db)
        spine = spine_of(root)
        stray = costly_filter(db, "costly100", ("t3", "u20"))
        with pytest.raises(PlanError):
            spine.apply_placement({stray: 1})

    @given(st.data())
    @settings(max_examples=30, deadline=None)
    def test_random_placements_stay_consistent(self, db, data):
        """Property: after any legal placement, every predicate appears
        exactly once, at a node where it is in scope."""
        root = three_way(db)
        predicates = [
            costly_filter(db, "costly100", ("t3", "u20")),
            costly_filter(db, "costly10", ("t6", "u20")),
            costly_filter(db, "costly1", ("t10", "u20")),
            equijoin(db, ("t3", "u20"), ("t6", "u20")),
        ]
        # Start everything at its entry position.
        spine = spine_of(root)
        for predicate in predicates:
            spine.node_at_slot(
                predicate, spine.entry_slot(predicate)
            ).filters.append(predicate)

        placements = {
            predicate: data.draw(
                st.integers(spine.entry_slot(predicate), spine.slots - 1)
            )
            for predicate in predicates
        }
        spine.apply_placement(placements)

        from repro.plan.nodes import validate_placement

        validate_placement(root, db.catalog)
        placed = [p for node in root.walk() for p in node.filters]
        assert sorted(p.pred_id for p in placed) == sorted(
            p.pred_id for p in predicates
        )
        assert set(movable_predicates(spine_of(root))) == set(predicates)
