"""Budget-DNF coverage: the executor's cost-budget abort path.

The paper's Query 5 footnote ("never completed") is reproduced by a
charged-cost budget: execution stops the moment the meter's charge
exceeds it. These tests pin the DNF contract — where the abort can
strike (mid-selection, mid-join), what the meter and ``error`` field
must say afterwards, and that a budget exactly at the final charge is
*not* an abort (the check is strictly greater-than).
"""

import pytest

from repro.bench.workloads import build_workload, ensure_workload_functions
from repro.catalog.datagen import build_database
from repro.errors import BudgetExceededError
from repro.exec import Executor
from repro.optimizer import optimize
from repro.sql import compile_query


@pytest.fixture(scope="module")
def db():
    database = build_database(scale=10, seed=42)
    ensure_workload_functions(database)
    return database


def selection_plan(db):
    """A single-table scan whose expensive filter dominates the charge."""
    query = compile_query(
        db, "SELECT * FROM t3 WHERE costly100(t3.u20)", name="sel"
    )
    return optimize(db, query, strategy="pushdown").plan


def join_plan(db):
    """Query 1's join, planned so the expensive filter runs mid-plan."""
    return optimize(
        db, build_workload(db, "q1").query, strategy="pushdown"
    ).plan


class TestBudgetDnf:
    def test_mid_selection_abort(self, db):
        plan = selection_plan(db)
        full = Executor(db).execute(plan)
        assert full.completed
        budget = full.charged / 2
        result = Executor(db, budget=budget).execute(plan)
        assert not result.completed
        assert result.rows == [] or len(result.rows) < len(full.rows)
        # The structured DNF reason names both sides of the comparison.
        assert result.error == (
            f"budget: charged {result.charged:.1f} > budget {budget:.1f}"
        )
        # The meter stopped at the violating charge: above the budget,
        # but short of the fault-free total (execution really stopped).
        assert budget < result.charged < full.charged
        assert result.metrics["charged"] == result.charged
        assert (
            result.metrics["function_calls"] < full.metrics["function_calls"]
        )

    def test_mid_join_abort(self, db):
        plan = join_plan(db)
        full = Executor(db).execute(plan)
        assert full.completed
        budget = full.charged * 0.75
        result = Executor(db, budget=budget).execute(plan)
        assert not result.completed
        assert result.error.startswith("budget: charged")
        assert budget < result.charged < full.charged
        assert len(result.rows) < len(full.rows)

    def test_budget_exactly_at_total_charge_completes(self, db):
        plan = selection_plan(db)
        full = Executor(db).execute(plan)
        at_boundary = Executor(db, budget=full.charged).execute(plan)
        assert at_boundary.completed
        assert at_boundary.error == ""
        assert at_boundary.charged == full.charged
        assert sorted(at_boundary.rows) == sorted(full.rows)

    def test_budget_just_below_total_charge_aborts(self, db):
        plan = selection_plan(db)
        full = Executor(db).execute(plan)
        result = Executor(
            db, budget=full.charged - 1e-6
        ).execute(plan)
        assert not result.completed
        assert result.error.startswith("budget:")

    def test_raise_on_budget_propagates_structured_error(self, db):
        plan = selection_plan(db)
        full = Executor(db).execute(plan)
        executor = Executor(db, budget=full.charged / 2)
        with pytest.raises(BudgetExceededError) as exc_info:
            executor.execute(plan, raise_on_budget=True)
        assert exc_info.value.charged > exc_info.value.budget

    def test_dnf_restores_database_budget(self, db):
        plan = selection_plan(db)
        db.meter.budget = None
        result = Executor(db, budget=1.0).execute(plan)
        assert not result.completed
        # The executor must not leak its private budget into the shared
        # meter after a DNF.
        assert db.meter.budget is None

    def test_q5_workload_budget_reproduces_paper_dnf(self, db):
        workload = build_workload(db, "q5")
        assert workload.budget is not None
        plan = optimize(db, workload.query, strategy="pullup").plan
        result = Executor(db, budget=workload.budget).execute(plan)
        assert not result.completed
        assert result.error.startswith("budget:")
