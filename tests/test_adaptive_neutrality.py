"""With ``--adaptive`` off, nothing this PR added may move a baseline.

The adaptive controller threads through the executor, the bench
harness, and the CLI — so the non-adaptive path must be provably
untouched. These tests regenerate every committed baseline workload
(q1–q5 and qor) in fresh interpreters under differing
``PYTHONHASHSEED`` values (the PR 6 feedback-neutrality pattern) and
require the gated fields — plan fingerprints and charged costs — to be
byte-identical across hash seeds *and* equal to the committed
``benchmarks/baselines/BENCH_*.json`` documents.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parents[1]
BASELINES = ROOT / "benchmarks" / "baselines"
WORKLOADS = ("q1", "q2", "q3", "q4", "q5", "qor")

#: One "workload strategy fingerprint charged" line per execution, with
#: the recording path's observation flags on (they must be free) and
#: the adaptive plumbing at its default (off).
SCRIPT = """
from repro.bench.harness import run_strategies
from repro.bench.workloads import build_workload
from repro.catalog.datagen import build_database
from repro.obs.artifacts import plan_fingerprint

db = build_database(scale=10, seed=42)
for key in ("q1", "q2", "q3", "q4", "q5", "qor"):
    workload = build_workload(db, key)
    outcomes = run_strategies(
        db, workload.query, budget=workload.budget,
        provenance=True, feedback=True, telemetry=True,
    )
    for outcome in outcomes:
        assert not outcome.error, (key, outcome.strategy, outcome.error)
        print(
            key, outcome.strategy, plan_fingerprint(outcome.plan),
            repr(outcome.charged),
        )
"""


def _run(hashseed: str) -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hashseed
    env["PYTHONPATH"] = str(ROOT / "src")
    result = subprocess.run(
        [sys.executable, "-c", SCRIPT],
        capture_output=True,
        text=True,
        env=env,
        cwd=ROOT,
        check=False,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


@pytest.fixture(scope="module")
def runs():
    return [_run(seed) for seed in ("0", "0", "1")]


def test_all_workloads_covered(runs):
    lines = runs[0].strip().splitlines()
    covered = {line.split()[0] for line in lines}
    assert covered == set(WORKLOADS)


def test_byte_identical_across_identical_runs(runs):
    assert runs[0] == runs[1]


def test_byte_identical_across_hash_seeds(runs):
    assert runs[0] == runs[2]


def test_matches_committed_baselines(runs):
    """Fingerprints and charged costs equal the committed artifacts —
    the same fields ``repro bench-diff`` gates in CI."""
    fresh = {}
    for line in runs[0].strip().splitlines():
        workload, strategy, fingerprint, charged = line.split()
        fresh[(workload, strategy)] = (fingerprint, float(charged))
    for workload in WORKLOADS:
        with open(BASELINES / f"BENCH_{workload}.json") as handle:
            document = json.load(handle)
        assert document["environment"]["scale"] == 10
        for strategy, record in document["strategies"].items():
            key = (workload, strategy)
            assert key in fresh, key
            assert fresh[key][0] == record["fingerprint"], key
            assert fresh[key][1] == record["charged"], key
