"""Per-operator instrumentation and the EXPLAIN ANALYZE rendering."""

from repro import Executor, compile_query, explain_analyze, optimize
from repro.cost.model import CostModel

SQL = (
    "SELECT * FROM t3, t10 "
    "WHERE t3.a1 = t10.ua1 AND costly100(t10.u20)"
)


def _instrumented_run(db, strategy="migration", caching=False):
    query = compile_query(db, SQL, name="analyze-test")
    optimized = optimize(db, query, strategy=strategy, caching=caching)
    result = Executor(db, caching=caching).execute(
        optimized.plan, instrument=True
    )
    return optimized, result


class TestInstrumentation:
    def test_default_execution_collects_no_node_stats(self, db):
        query = compile_query(db, SQL, name="analyze-off")
        optimized = optimize(db, query)
        result = Executor(db).execute(optimized.plan)
        assert result.node_stats is None

    def test_every_executed_node_gets_stats(self, db):
        optimized, result = _instrumented_run(db)
        root = optimized.plan.root
        stats = result.node_stats
        assert stats is not None
        assert id(root) in stats
        for child in root.children():
            assert id(child) in stats

    def test_root_actuals_match_result(self, db):
        optimized, result = _instrumented_run(db)
        root_stats = result.node_stats[id(optimized.plan.root)]
        assert root_stats.rows_out == result.row_count
        # charges are inclusive of the subtree, so the root accounts for
        # (almost) the whole ledger and dominates every child
        assert root_stats.charged <= result.charged + 1e-9
        for child in optimized.plan.root.children():
            child_stats = result.node_stats.get(id(child))
            if child_stats is not None:
                assert child_stats.charged <= root_stats.charged + 1e-9

    def test_stats_round_trip_as_dict(self, db):
        _, result = _instrumented_run(db)
        for stats in result.node_stats.values():
            record = stats.as_dict()
            assert record["rows_out"] == stats.rows_out
            assert record["charged"] == stats.charged

    def test_cache_hits_attributed_when_caching(self, db):
        _, result = _instrumented_run(db, caching=True)
        total_hits = sum(
            stats.cache_hits for stats in result.node_stats.values()
        )
        assert total_hits == result.cache_stats.hits


class TestExplainAnalyzeRendering:
    def test_tree_annotated_with_est_act_err(self, db):
        optimized, result = _instrumented_run(db)
        model = CostModel(db.catalog, db.params)
        text = explain_analyze(optimized.plan, result.node_stats, model)
        assert "est rows=" in text
        assert "act rows=" in text
        assert "err rows" in text
        assert "cost" in text
        # one annotated line per plan node
        annotated = [line for line in text.splitlines() if "act" in line]
        assert len(annotated) >= 3  # join + two scans

    def test_renders_without_cost_model(self, db):
        optimized, result = _instrumented_run(db)
        text = explain_analyze(optimized.plan, result.node_stats)
        assert "act rows=" in text
        assert "est rows=" not in text

    def test_missing_stats_marked_not_executed(self, db):
        optimized, result = _instrumented_run(db)
        text = explain_analyze(optimized.plan, {}, None)
        assert "not separately executed" in text
