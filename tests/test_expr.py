"""Unit tests: the expression AST, evaluation, and NULL semantics."""

import pytest

from repro.catalog.functions import FunctionRegistry
from repro.errors import PlanError
from repro.expr.expressions import (
    BinaryOp,
    Column,
    Comparison,
    Const,
    FuncCall,
    Logical,
    Not,
    Scope,
    conjuncts,
)


@pytest.fixture()
def env():
    scope = Scope([("t", "a"), ("t", "b"), ("s", "a")])
    registry = FunctionRegistry()
    registry.register("double", lambda x: 2 * x, cost_per_call=1.0)
    registry.register("is_even", lambda x: x % 2 == 0, cost_per_call=1.0)
    row = (5, None, 7)
    return row, scope, registry


class TestScope:
    def test_slots(self):
        scope = Scope([("t", "a"), ("s", "b")])
        assert scope.slot("t", "a") == 0
        assert scope.slot("s", "b") == 1

    def test_missing_column_raises(self):
        with pytest.raises(PlanError):
            Scope([("t", "a")]).slot("t", "b")

    def test_duplicate_rejected(self):
        with pytest.raises(PlanError):
            Scope([("t", "a"), ("t", "a")])

    def test_concat(self):
        left = Scope([("t", "a")])
        right = Scope([("s", "a")])
        combined = left.concat(right)
        assert combined.slot("s", "a") == 1
        assert ("t", "a") in combined

    def test_equality(self):
        assert Scope([("t", "a")]) == Scope([("t", "a")])
        assert Scope([("t", "a")]) != Scope([("s", "a")])


class TestEvaluation:
    def test_const(self, env):
        row, scope, registry = env
        assert Const(42).evaluate(row, scope, registry) == 42

    def test_column(self, env):
        row, scope, registry = env
        assert Column("s", "a").evaluate(row, scope, registry) == 7

    def test_func_call_counts_invocations(self, env):
        row, scope, registry = env
        expr = FuncCall("double", (Column("t", "a"),))
        assert expr.evaluate(row, scope, registry) == 10
        assert registry.get("double").calls == 1

    def test_comparison(self, env):
        row, scope, registry = env
        assert Comparison("<", Column("t", "a"), Const(6)).evaluate(
            row, scope, registry
        ) is True
        assert Comparison("=", Column("t", "a"), Column("s", "a")).evaluate(
            row, scope, registry
        ) is False

    def test_comparison_null_propagates(self, env):
        row, scope, registry = env
        assert Comparison("=", Column("t", "b"), Const(1)).evaluate(
            row, scope, registry
        ) is None

    def test_arithmetic(self, env):
        row, scope, registry = env
        expr = BinaryOp("+", Column("t", "a"), Const(3))
        assert expr.evaluate(row, scope, registry) == 8

    def test_arithmetic_null(self, env):
        row, scope, registry = env
        expr = BinaryOp("*", Column("t", "b"), Const(3))
        assert expr.evaluate(row, scope, registry) is None

    def test_and_three_valued(self, env):
        row, scope, registry = env
        null = Comparison("=", Column("t", "b"), Const(1))
        false = Const(False)
        true = Const(True)
        assert Logical("AND", (null, false)).evaluate(row, scope, registry) is False
        assert Logical("AND", (null, true)).evaluate(row, scope, registry) is None
        assert Logical("AND", (true, true)).evaluate(row, scope, registry) is True

    def test_or_three_valued(self, env):
        row, scope, registry = env
        null = Comparison("=", Column("t", "b"), Const(1))
        assert Logical("OR", (null, Const(True))).evaluate(
            row, scope, registry
        ) is True
        assert Logical("OR", (null, Const(False))).evaluate(
            row, scope, registry
        ) is None

    def test_not(self, env):
        row, scope, registry = env
        assert Not(Const(False)).evaluate(row, scope, registry) is True
        null = Comparison("=", Column("t", "b"), Const(1))
        assert Not(null).evaluate(row, scope, registry) is None

    def test_nested_function(self, env):
        row, scope, registry = env
        expr = FuncCall("is_even", (FuncCall("double", (Column("t", "a"),)),))
        assert expr.evaluate(row, scope, registry) is True
        assert registry.get("double").calls == 1
        assert registry.get("is_even").calls == 1


class TestStructure:
    def test_columns_traversal(self):
        expr = Logical(
            "AND",
            (
                Comparison("=", Column("t", "a"), Column("s", "b")),
                FuncCall("f", (Column("t", "c"),)),
            ),
        )
        assert list(expr.columns()) == [("t", "a"), ("s", "b"), ("t", "c")]
        assert expr.tables() == frozenset({"t", "s"})

    def test_function_names(self):
        expr = FuncCall("f", (FuncCall("g", ()), FuncCall("f", ())))
        assert sorted(expr.function_names()) == ["f", "f", "g"]

    def test_invalid_operators_rejected(self):
        with pytest.raises(PlanError):
            Comparison("~", Const(1), Const(2))
        with pytest.raises(PlanError):
            BinaryOp("%", Const(1), Const(2))
        with pytest.raises(PlanError):
            Logical("XOR", (Const(True), Const(False)))
        with pytest.raises(PlanError):
            Logical("AND", (Const(True),))

    def test_str_rendering(self):
        expr = Comparison(
            "=", FuncCall("f", (Column("t", "a"),)), Const("red")
        )
        assert str(expr) == "f(t.a) = 'red'"


class TestConjuncts:
    def test_flattens_nested_and(self):
        a, b, c = Const(True), Const(False), Const(True)
        expr = Logical("AND", (Logical("AND", (a, b)), c))
        assert conjuncts(expr) == [a, b, c]

    def test_or_not_split(self):
        expr = Logical("OR", (Const(True), Const(False)))
        assert conjuncts(expr) == [expr]

    def test_none_is_empty(self):
        assert conjuncts(None) == []

    def test_single_predicate(self):
        expr = Comparison("=", Const(1), Const(1))
        assert conjuncts(expr) == [expr]
