"""Unit and integration tests: SQL binding, including IN-subquery desugaring."""

import pytest

from repro.errors import BindError
from repro.exec import Executor
from repro.expr.expressions import Column, Comparison, FuncCall
from repro.optimizer import optimize
from repro.sql import compile_query


class TestBasicBinding:
    def test_qualified_columns(self, db):
        query = compile_query(
            db, "SELECT * FROM t3, t10 WHERE t3.a1 = t10.ua1"
        )
        assert query.tables == ["t3", "t10"]
        predicate = query.predicates[0]
        assert predicate.equijoin == (
            Column("t3", "a1"), Column("t10", "ua1")
        )

    def test_unqualified_unique_column_resolves(self, fresh_db):
        # All tN share attribute names, so restrict to one table.
        query = compile_query(fresh_db, "SELECT a1 FROM t3 WHERE u20 = 1")
        assert query.select == [("t3", "a1")]
        assert query.predicates[0].tables == frozenset({"t3"})

    def test_ambiguous_unqualified_column_rejected(self, db):
        with pytest.raises(BindError):
            compile_query(db, "SELECT * FROM t3, t10 WHERE a1 = 3")

    def test_unknown_table_rejected(self, db):
        with pytest.raises(BindError):
            compile_query(db, "SELECT * FROM nope")

    def test_unknown_column_rejected(self, db):
        with pytest.raises(BindError):
            compile_query(db, "SELECT * FROM t3 WHERE t3.zz = 1")

    def test_table_not_in_from_rejected(self, db):
        with pytest.raises(BindError):
            compile_query(db, "SELECT * FROM t3 WHERE t10.a1 = 1")

    def test_duplicate_from_rejected(self, db):
        with pytest.raises(BindError):
            compile_query(db, "SELECT * FROM t3, t3")

    def test_unknown_function_rejected(self, db):
        with pytest.raises(BindError):
            compile_query(db, "SELECT * FROM t3 WHERE mystery(t3.a1)")

    def test_where_split_into_conjuncts(self, db):
        query = compile_query(
            db,
            "SELECT * FROM t3, t10 "
            "WHERE t3.a1 = t10.ua1 AND costly100(t10.u20) AND t3.a20 < 3",
        )
        assert len(query.predicates) == 3

    def test_or_stays_single_conjunct(self, db):
        query = compile_query(
            db, "SELECT * FROM t3 WHERE t3.a20 < 3 OR t3.a20 > 5"
        )
        assert len(query.predicates) == 1


class TestInSubquery:
    def test_desugars_to_expensive_predicate(self, fresh_db):
        query = compile_query(
            fresh_db,
            "SELECT * FROM t3 WHERE t3.u20 IN (SELECT ua20 FROM t2)",
        )
        (predicate,) = query.predicates
        assert predicate.is_expensive
        assert isinstance(predicate.expr, FuncCall)
        assert predicate.tables == frozenset({"t3"})

    def test_correlated_parameters_become_arguments(self, fresh_db):
        query = compile_query(
            fresh_db,
            "SELECT * FROM t3 WHERE t3.u20 IN "
            "(SELECT ua20 FROM t2 WHERE t2.u100 = t3.u100)",
        )
        (predicate,) = query.predicates
        assert set(predicate.input_columns()) == {
            ("t3", "u20"), ("t3", "u100"),
        }

    def test_cost_is_one_inner_scan(self, fresh_db):
        query = compile_query(
            fresh_db,
            "SELECT * FROM t3 WHERE t3.u20 IN (SELECT ua20 FROM t2)",
        )
        (predicate,) = query.predicates
        pages = fresh_db.catalog.table("t2").pages
        expected = max(1.0, pages * fresh_db.params.seq_weight)
        assert predicate.cost_per_tuple == pytest.approx(expected)

    def test_semantics_match_manual_evaluation(self, fresh_db):
        query = compile_query(
            fresh_db,
            "SELECT * FROM t3 WHERE t3.u20 IN (SELECT ua20 FROM t2)",
        )
        plan = optimize(fresh_db, query, strategy="migration").plan
        result = Executor(fresh_db).execute(plan)
        t2 = fresh_db.catalog.table("t2")
        t3 = fresh_db.catalog.table("t3")
        inner_values = {
            row[t2.schema.position("ua20")] for row in t2.heap.all_rows()
        }
        expected = [
            row
            for row in t3.heap.all_rows()
            if row[t3.schema.position("u20")] in inner_values
        ]
        assert sorted(result.rows) == sorted(expected)

    def test_correlated_semantics(self, fresh_db):
        query = compile_query(
            fresh_db,
            "SELECT * FROM t3 WHERE t3.u20 IN "
            "(SELECT ua20 FROM t2 WHERE t2.u100 = t3.u100)",
        )
        plan = optimize(fresh_db, query, strategy="migration").plan
        result = Executor(fresh_db).execute(plan)
        t2 = fresh_db.catalog.table("t2")
        t3 = fresh_db.catalog.table("t3")
        t2_rows = t2.heap.all_rows()
        ua20 = t2.schema.position("ua20")
        u100_2 = t2.schema.position("u100")
        u20 = t3.schema.position("u20")
        u100_3 = t3.schema.position("u100")
        expected = [
            row
            for row in t3.heap.all_rows()
            if any(
                inner[ua20] == row[u20] and inner[u100_2] == row[u100_3]
                for inner in t2_rows
            )
        ]
        assert sorted(result.rows) == sorted(expected)

    def test_subquery_scoping_prefers_inner_table(self, db):
        # "ua20" exists on every table; inside the subquery it must bind to
        # the subquery's own relation.
        query = compile_query(
            db,
            "SELECT * FROM t3, t6 WHERE t3.a1 = t6.ua1 "
            "AND t3.u20 IN (SELECT ua20 FROM t2 WHERE u100 = t3.u100)",
        )
        in_predicate = next(p for p in query.predicates if p.is_expensive)
        assert in_predicate.tables == frozenset({"t3"})

    def test_multi_table_subquery_rejected(self, db):
        with pytest.raises(BindError):
            compile_query(
                db,
                "SELECT * FROM t3 WHERE t3.u20 IN (SELECT ua20 FROM t1, t2)",
            )

    def test_multi_column_select_rejected(self, db):
        with pytest.raises(BindError):
            compile_query(
                db,
                "SELECT * FROM t3 WHERE t3.u20 IN (SELECT ua20, ua1 FROM t2)",
            )

    def test_star_subquery_rejected(self, db):
        with pytest.raises(BindError):
            compile_query(
                db, "SELECT * FROM t3 WHERE t3.u20 IN (SELECT * FROM t2)"
            )

    def test_caching_memoises_per_binding(self, fresh_db):
        query = compile_query(
            fresh_db,
            "SELECT * FROM t3 WHERE t3.u20 IN (SELECT ua20 FROM t2)",
        )
        plan = optimize(
            fresh_db, query, strategy="migration", caching=True
        ).plan
        result = Executor(fresh_db, caching=True).execute(plan)
        ndistinct = fresh_db.catalog.table("t3").stats.ndistinct("u20")
        assert result.cache_stats.misses == ndistinct
