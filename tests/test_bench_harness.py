"""Unit tests: the benchmark harness, reporting, and eagerness metric."""

import math

import pytest

from repro.errors import OptimizerError

from repro.bench import (
    build_workload,
    eagerness_score,
    fixed_order_outcomes,
    format_matrix,
    format_outcomes,
    outcome_by_strategy,
    run_strategies,
)
from repro.bench.harness import best_outcome


class TestRunStrategies:
    def test_outcomes_cover_requested_strategies(self, db):
        workload = build_workload(db, "q1")
        outcomes = run_strategies(
            db, workload.query, strategies=("pushdown", "migration")
        )
        assert [o.strategy for o in outcomes] == ["pushdown", "migration"]

    def test_relative_anchored_at_best(self, db):
        workload = build_workload(db, "q1")
        outcomes = run_strategies(
            db, workload.query, strategies=("pushdown", "migration")
        )
        best = best_outcome(outcomes)
        assert best.relative == pytest.approx(1.0)
        worst = outcome_by_strategy(outcomes, "pushdown")
        assert worst.relative > 1.0

    def test_optimize_only_mode(self, db):
        workload = build_workload(db, "q1")
        outcomes = run_strategies(
            db, workload.query, strategies=("migration",), execute=False
        )
        assert not outcomes[0].executed
        assert math.isnan(outcomes[0].charged)

    def test_budget_produces_dnf(self, db):
        workload = build_workload(db, "q1")
        outcomes = run_strategies(
            db, workload.query, strategies=("pushdown",), budget=10.0
        )
        assert outcomes[0].dnf

    def test_missing_strategy_lookup_raises(self, db):
        workload = build_workload(db, "q1")
        outcomes = run_strategies(
            db, workload.query, strategies=("migration",)
        )
        with pytest.raises(OptimizerError) as exc_info:
            outcome_by_strategy(outcomes, "pushdown")
        assert "migration" in str(exc_info.value)


class TestReport:
    def test_format_contains_all_strategies(self, db):
        workload = build_workload(db, "q1")
        outcomes = run_strategies(
            db, workload.query, strategies=("pushdown", "migration")
        )
        text = format_outcomes("Query 1", outcomes)
        assert "pushdown" in text and "migration" in text
        assert "#" in text  # bars

    def test_dnf_rendered(self, db):
        workload = build_workload(db, "q1")
        outcomes = run_strategies(
            db, workload.query, strategies=("pushdown",), budget=10.0
        )
        text = format_outcomes("Query 1", outcomes)
        assert "DNF" in text

    def test_matrix_formatting(self, db):
        from repro.bench.applicability import ApplicabilityCell

        matrix = {
            "q1": {
                "pushdown": ApplicabilityCell("q1", "pushdown", 3.3, True),
                "migration": ApplicabilityCell("q1", "migration", 1.0, True),
            }
        }
        text = format_matrix(matrix, strategies=("pushdown", "migration"))
        assert "3.3x" in text and "ok" in text


class TestEagerness:
    def test_pushdown_zero_pullup_one(self, db):
        workload = build_workload(db, "q4")
        outcomes = run_strategies(
            db,
            workload.query,
            strategies=("pushdown", "pullup"),
            execute=False,
        )
        pushdown = eagerness_score(outcome_by_strategy(outcomes, "pushdown").plan)
        pullup = eagerness_score(outcome_by_strategy(outcomes, "pullup").plan)
        assert pushdown == pytest.approx(0.0)
        assert pullup == pytest.approx(1.0)

    def test_no_expensive_predicates_returns_none(self, db):
        from repro.optimizer import Query, optimize
        from tests.conftest import equijoin

        query = Query(
            tables=["t3", "t10"],
            predicates=[equijoin(db, ("t3", "a1"), ("t10", "ua1"))],
        )
        plan = optimize(db, query, strategy="pushdown").plan
        assert eagerness_score(plan) is None


class TestFixedOrder:
    def test_pullrank_fails_on_q4_fixed_order(self, db):
        """Figures 6-8: with the join order fixed, PullRank cannot do the
        group pullup and is many times worse than Migration."""
        workload = build_workload(db, "q4")
        outcomes = fixed_order_outcomes(
            db, workload.query, ("t3", "t6", "t10")
        )
        pullrank = outcome_by_strategy(outcomes, "pullrank")
        migration = outcome_by_strategy(outcomes, "migration")
        exhaustive = outcome_by_strategy(outcomes, "exhaustive")
        assert pullrank.charged > 5 * migration.charged
        assert migration.charged == pytest.approx(
            exhaustive.charged, rel=0.01
        )

    def test_fixed_order_strategies_same_rows(self, db):
        workload = build_workload(db, "q4")
        outcomes = fixed_order_outcomes(
            db, workload.query, ("t3", "t6", "t10")
        )
        row_sets = {
            outcome.strategy: sorted(
                tuple(sorted(row)) for row in
                __import__("repro.exec", fromlist=["Executor"]).Executor(
                    db
                ).execute(outcome.plan).rows
            )
            for outcome in outcomes
        }
        reference = next(iter(row_sets.values()))
        assert all(rows == reference for rows in row_sets.values())
