"""Unit tests: predicate analysis — cost, selectivity, rank (Section 4.1)."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.expr.expressions import (
    Column,
    Comparison,
    Const,
    FuncCall,
    Logical,
    Not,
)
from repro.expr.predicates import (
    BoolBranch,
    BoolLeaf,
    analyze_conjunct,
    build_bool_tree,
    rank,
)


class TestRankMetric:
    def test_definition(self):
        # rank = (selectivity - 1) / cost
        assert rank(0.5, 100.0) == pytest.approx(-0.005)

    def test_free_filter_sorts_first(self):
        assert rank(0.1, 0.0) == -math.inf

    def test_free_fanout_sorts_last(self):
        assert rank(2.0, 0.0) == math.inf

    def test_free_neutral(self):
        assert rank(1.0, 0.0) == 0.0

    def test_lower_selectivity_means_lower_rank(self):
        assert rank(0.1, 10.0) < rank(0.9, 10.0)

    def test_cheaper_predicate_means_lower_rank(self):
        assert rank(0.5, 1.0) < rank(0.5, 100.0)

    @given(st.floats(0.0, 0.999), st.floats(0.001, 1e6))
    def test_selective_predicates_rank_negative(self, selectivity, cost):
        assert rank(selectivity, cost) < 0


class TestSelectionAnalysis:
    def test_costly_function(self, db):
        predicate = analyze_conjunct(
            db.catalog, FuncCall("costly100", (Column("t3", "u20"),))
        )
        assert predicate.cost_per_tuple == 100.0
        assert predicate.selectivity == 0.5
        assert predicate.is_expensive and predicate.is_selection
        assert predicate.table() == "t3"
        assert predicate.rank == pytest.approx(-0.005)

    def test_simple_comparison_is_free(self, db):
        predicate = analyze_conjunct(
            db.catalog,
            Comparison("<", Column("t3", "a20"), Const(3)),
        )
        assert predicate.cost_per_tuple == 0.0
        assert not predicate.is_expensive
        assert predicate.rank == -math.inf

    def test_equality_selectivity_one_over_ndistinct(self, db):
        predicate = analyze_conjunct(
            db.catalog,
            Comparison("=", Column("t3", "u20"), Const(3)),
        )
        ndistinct = db.catalog.table("t3").stats.ndistinct("u20")
        assert predicate.selectivity == pytest.approx(1 / ndistinct)

    def test_range_selectivity_from_domain(self, db):
        stats = db.catalog.table("t10").stats.attribute("a20")
        midpoint = (stats.low + stats.high + 1) / 2
        predicate = analyze_conjunct(
            db.catalog,
            Comparison("<", Column("t10", "a20"), Const(midpoint)),
        )
        assert predicate.selectivity == pytest.approx(0.5, abs=0.05)

    def test_range_flipped_constant_side(self, db):
        left = analyze_conjunct(
            db.catalog, Comparison(">", Const(5), Column("t10", "a20"))
        )
        right = analyze_conjunct(
            db.catalog, Comparison("<", Column("t10", "a20"), Const(5))
        )
        assert left.selectivity == pytest.approx(right.selectivity)

    def test_not_equal_selectivity(self, db):
        predicate = analyze_conjunct(
            db.catalog, Comparison("<>", Column("t3", "u20"), Const(3))
        )
        ndistinct = db.catalog.table("t3").stats.ndistinct("u20")
        assert predicate.selectivity == pytest.approx(1 - 1 / ndistinct)

    def test_function_comparison_uses_declared_selectivity(self, db):
        predicate = analyze_conjunct(
            db.catalog,
            Comparison(
                "=", FuncCall("costly10", (Column("t3", "u20"),)), Const(True)
            ),
        )
        assert predicate.selectivity == 0.5
        assert predicate.cost_per_tuple == 10.0

    def test_and_multiplies_selectivities(self, db):
        both = analyze_conjunct(
            db.catalog,
            Logical(
                "AND",
                (
                    FuncCall("costly10", (Column("t3", "u20"),)),
                    FuncCall("costly100", (Column("t3", "u100"),)),
                ),
            ),
        )
        assert both.selectivity == pytest.approx(0.25)
        # Expected short-circuit cost, not the naive 110: costly10 runs
        # first (lower rank) and costly100 only on its survivors.
        assert both.cost_per_tuple == pytest.approx(10.0 + 0.5 * 100.0)

    def test_or_combines_selectivities(self, db):
        either = analyze_conjunct(
            db.catalog,
            Logical(
                "OR",
                (
                    FuncCall("costly10", (Column("t3", "u20"),)),
                    FuncCall("costly100", (Column("t3", "u100"),)),
                ),
            ),
        )
        assert either.selectivity == pytest.approx(0.75)
        # costly10 terminates the OR per unit cost 10/0.5 = 20, costly100
        # at 100/0.5 = 200, so costly10 runs first; costly100 only runs
        # when costly10 came up false.
        assert either.cost_per_tuple == pytest.approx(10.0 + 0.5 * 100.0)

    def test_not_inverts(self, db):
        negated = analyze_conjunct(
            db.catalog,
            Not(FuncCall("costly10", (Column("t3", "u20"),))),
        )
        assert negated.selectivity == pytest.approx(0.5)

    def test_input_columns_deduplicated(self, db):
        predicate = analyze_conjunct(
            db.catalog,
            Logical(
                "AND",
                (
                    FuncCall("costly10", (Column("t3", "u20"),)),
                    FuncCall("costly100", (Column("t3", "u20"),)),
                ),
            ),
        )
        assert predicate.input_columns() == (("t3", "u20"),)


class TestBooleanTrees:
    def test_single_leaf_conjunct_gets_leaf_tree(self, db):
        predicate = analyze_conjunct(
            db.catalog, FuncCall("costly100", (Column("t3", "u20"),))
        )
        assert isinstance(predicate.tree, BoolLeaf)
        assert not predicate.is_compound
        assert predicate.tree.cost == predicate.cost_per_tuple

    def test_and_children_ordered_by_rank(self, db):
        tree = build_bool_tree(
            db.catalog,
            Logical(
                "AND",
                (
                    FuncCall("costly100", (Column("t3", "u100"),)),
                    FuncCall("costly10", (Column("t3", "u20"),)),
                ),
            ),
        )
        assert isinstance(tree, BoolBranch)
        # rank(.5, 10) < rank(.5, 100): the cheap filter runs first even
        # though it appeared second in the source.
        names = [child.expr.name for child in tree.children]
        assert names == ["costly10", "costly100"]

    def test_or_children_ordered_by_termination_rate(self, db):
        # OR short-circuits on TRUE: order by ascending cost / selectivity.
        # costly100 (c=100, s=.5 → 200) beats costly100sel10
        # (c=100, s=.1 → 1000).
        from repro.bench.workloads import ensure_workload_functions

        ensure_workload_functions(db)
        tree = build_bool_tree(
            db.catalog,
            Logical(
                "OR",
                (
                    FuncCall("costly100sel10", (Column("t3", "u100"),)),
                    FuncCall("costly100", (Column("t3", "u20"),)),
                ),
            ),
        )
        names = [child.expr.name for child in tree.children]
        assert names == ["costly100", "costly100sel10"]
        # Expected cost: 100 + (1 - .5) · 100 = 150, below the naive 200.
        assert tree.cost == pytest.approx(150.0)
        assert tree.selectivity == pytest.approx(1 - 0.5 * 0.9)

    def test_free_guard_short_circuits_expensive_or(self, db):
        tree = build_bool_tree(
            db.catalog,
            Logical(
                "OR",
                (
                    FuncCall("costly100", (Column("t3", "u20"),)),
                    Comparison("<", Column("t3", "a20"), Const(3)),
                ),
            ),
        )
        # The free comparison has rank(1 − s, 0) = −∞ under OR ordering,
        # so it guards the expensive call.
        assert isinstance(tree.children[0], BoolLeaf)
        assert tree.children[0].cost == 0.0
        expected = tree.children[0].selectivity
        assert tree.cost == pytest.approx((1.0 - expected) * 100.0)

    def test_compound_flag_and_leaves(self, db):
        predicate = analyze_conjunct(
            db.catalog,
            Logical(
                "OR",
                (
                    FuncCall("costly10", (Column("t3", "u20"),)),
                    FuncCall("costly100", (Column("t3", "u100"),)),
                ),
            ),
        )
        assert predicate.is_compound
        assert len(predicate.tree.leaves()) == 2

    def test_nested_tree_cost_propagates(self, db):
        # (costly10 OR costly100) is itself a child of an AND with a free
        # comparison: the free guard sorts first, the OR branch carries
        # its own short-circuit cost.
        tree = build_bool_tree(
            db.catalog,
            Logical(
                "AND",
                (
                    Logical(
                        "OR",
                        (
                            FuncCall("costly10", (Column("t3", "u20"),)),
                            FuncCall("costly100", (Column("t3", "u100"),)),
                        ),
                    ),
                    Comparison("<", Column("t3", "a20"), Const(3)),
                ),
            ),
        )
        assert isinstance(tree.children[0], BoolLeaf)  # free guard first
        assert isinstance(tree.children[1], BoolBranch)
        guard_sel = tree.children[0].selectivity
        assert tree.cost == pytest.approx(guard_sel * (10 + 0.5 * 100))


class TestJoinAnalysis:
    def test_equijoin_detected(self, db):
        predicate = analyze_conjunct(
            db.catalog,
            Comparison("=", Column("t3", "a1"), Column("t10", "ua1")),
        )
        assert predicate.is_join and predicate.is_equijoin
        assert not predicate.is_expensive
        assert predicate.tables == frozenset({"t3", "t10"})

    def test_equijoin_selectivity_one_over_max_ndistinct(self, db):
        predicate = analyze_conjunct(
            db.catalog,
            Comparison("=", Column("t3", "a1"), Column("t10", "ua1")),
        )
        nd_t10 = db.catalog.table("t10").stats.ndistinct("ua1")
        assert predicate.selectivity == pytest.approx(1 / nd_t10)

    def test_same_table_equality_is_not_join(self, db):
        predicate = analyze_conjunct(
            db.catalog,
            Comparison("=", Column("t3", "a1"), Column("t3", "ua1")),
        )
        assert predicate.is_selection and not predicate.is_equijoin

    def test_expensive_join_predicate(self, db):
        predicate = analyze_conjunct(
            db.catalog,
            FuncCall("expjoin10", (Column("t7", "u20"), Column("t3", "u100"))),
        )
        assert predicate.is_join and predicate.is_expensive
        assert not predicate.is_equijoin
        assert predicate.cost_per_tuple == 10.0

    def test_inequality_join_not_equijoin(self, db):
        predicate = analyze_conjunct(
            db.catalog,
            Comparison("<", Column("t3", "a1"), Column("t10", "ua1")),
        )
        assert predicate.is_join and not predicate.is_equijoin

    def test_identity_semantics(self, db):
        expr = FuncCall("costly100", (Column("t3", "u20"),))
        first = analyze_conjunct(db.catalog, expr)
        second = analyze_conjunct(db.catalog, expr)
        assert first != second  # distinct placement units
        assert first.pred_id != second.pred_id
