"""Cross-strategy invariants: correctness and the paper's quality claims.

The strongest invariant here doubles as an optimizer-correctness oracle
(the paper: "benchmarking is absolutely crucial to thoroughly debugging a
query optimizer"): every strategy's plan, executed, must return exactly the
same rows.
"""

import pytest

from repro.exec import Executor
from repro.optimizer import STRATEGIES, optimize
from repro.optimizer.query import Query
from repro.plan.nodes import validate_placement
from tests.conftest import costly_filter, equijoin


def small_queries(db):
    return [
        Query(
            tables=["t2", "t3"],
            predicates=[
                equijoin(db, ("t2", "ua1"), ("t3", "a1")),
                costly_filter(db, "costly100", ("t3", "ua1")),
            ],
            name="two-way",
        ),
        Query(
            tables=["t1", "t2", "t3"],
            predicates=[
                equijoin(db, ("t1", "ua1"), ("t2", "a1")),
                equijoin(db, ("t2", "ua1"), ("t3", "a1")),
                costly_filter(db, "costly100sel10", ("t1", "ua1")),
                costly_filter(db, "costly10", ("t3", "ua1")),
            ],
            name="three-way",
        ),
        Query(
            tables=["t2", "t3"],
            predicates=[
                equijoin(db, ("t2", "ua1"), ("t3", "a20")),  # fanout
                costly_filter(db, "costly100", ("t2", "ua1")),
            ],
            name="fanout",
        ),
    ]


class TestResultEquivalence:
    @pytest.mark.parametrize("query_index", [0, 1, 2])
    def test_all_strategies_same_rows(self, tiny_db, query_index):
        query = small_queries(tiny_db)[query_index]
        reference = None
        for strategy in STRATEGIES:
            plan = optimize(tiny_db, query, strategy=strategy).plan
            validate_placement(plan.root, tiny_db.catalog)
            result = Executor(tiny_db).execute(plan)
            assert result.completed, strategy
            rows = sorted(tuple(sorted(row)) for row in result.rows)
            if reference is None:
                reference = rows
            else:
                assert rows == reference, (
                    f"{strategy} returned different rows on "
                    f"{query.name}"
                )

    @pytest.mark.parametrize("query_index", [0, 1])
    def test_caching_does_not_change_results(self, tiny_db, query_index):
        query = small_queries(tiny_db)[query_index]
        plan = optimize(tiny_db, query, strategy="migration").plan
        plain = Executor(tiny_db, caching=False).execute(plan)
        cached = Executor(tiny_db, caching=True).execute(plan)
        assert sorted(plain.rows) == sorted(cached.rows)


class TestQualityOrdering:
    """Estimated-cost dominance relations from Table 1 / Section 4."""

    @pytest.mark.parametrize("query_index", [0, 1, 2])
    def test_exhaustive_is_minimum(self, db, query_index):
        query = small_queries(db)[query_index]
        exhaustive = optimize(db, query, strategy="exhaustive")
        for strategy in STRATEGIES:
            other = optimize(db, query, strategy=strategy)
            assert exhaustive.estimated_cost <= other.estimated_cost + 1e-6

    @pytest.mark.parametrize("query_index", [0, 1, 2])
    def test_migration_not_worse_than_simple_heuristics(self, db, query_index):
        """Section 5: after debugging, 'Predicate Migration always did at
        least as well as the heuristics'."""
        query = small_queries(db)[query_index]
        migration = optimize(db, query, strategy="migration")
        for strategy in ("pushdown", "pullup", "pullrank"):
            other = optimize(db, query, strategy=strategy)
            assert (
                migration.estimated_cost <= other.estimated_cost + 1e-6
            ), strategy

    def test_pullrank_optimal_for_single_join(self, db):
        """Section 4.3: 'PullRank is an optimal algorithm for queries with
        only one join'."""
        for query in small_queries(db):
            if len(query.tables) != 2:
                continue
            pullrank = optimize(db, query, strategy="pullrank")
            exhaustive = optimize(db, query, strategy="exhaustive")
            assert pullrank.estimated_cost == pytest.approx(
                exhaustive.estimated_cost, rel=0.01
            )

    def test_migration_matches_exhaustive_on_cheap_primary_joins(self, db):
        """Table 1: Migration is 'widely effective' for standard primary
        joins — on these queries it should match the exhaustive optimum."""
        for query in small_queries(db):
            migration = optimize(db, query, strategy="migration")
            exhaustive = optimize(db, query, strategy="exhaustive")
            assert migration.estimated_cost == pytest.approx(
                exhaustive.estimated_cost, rel=0.01
            ), query.name


class TestFacade:
    def test_unknown_strategy_rejected(self, db):
        from repro.errors import OptimizerError

        query = small_queries(db)[0]
        with pytest.raises(OptimizerError):
            optimize(db, query, strategy="nope")

    def test_planning_time_recorded(self, db):
        query = small_queries(db)[0]
        optimized = optimize(db, query, strategy="migration")
        assert optimized.planning_seconds >= 0.0
        assert optimized.strategy == "migration"
        assert optimized.query_name == "two-way"

    def test_global_model_flag_changes_plans_or_costs(self, db):
        from repro.bench.workloads import build_workload

        workload = build_workload(db, "q1")
        per_input = optimize(db, workload.query, strategy="migration")
        global_model = optimize(
            db, workload.query, strategy="migration", global_model=True
        )
        measured_per_input = Executor(db).execute(per_input.plan).charged
        measured_global = Executor(db).execute(global_model.plan).charged
        # The discarded global model must not beat the per-input model.
        assert measured_per_input <= measured_global + 1e-6
