"""Figure 4 — Query 2: over-eager pullup errs, nearly insignificantly.

Paper shape: the join has selectivity ~1 over t10, so pulling costly100
above it saves nothing and inflates the join's inputs. PullUp's plan is
strictly worse, but the error is tiny compared to PushDown's error on
Query 1 — the paper's "safer to overdo a cheap operation than an expensive
one" lesson.
"""

from conftest import emit

from repro.bench import format_outcomes, outcome_by_strategy, run_strategies


def test_fig4_query2(benchmark, db, workloads, recorder, profiler):
    workload = workloads["q2"]
    outcomes = benchmark.pedantic(
        lambda: run_strategies(
            db, workload.query, profiler=profiler,
            provenance=recorder.enabled,
            feedback=recorder.enabled,
            telemetry=recorder.enabled,
        ),
        rounds=1,
        iterations=1,
    )
    emit(format_outcomes(
        f"{workload.title} ({workload.figure})", outcomes,
        note=workload.sql.replace("\n", " "),
    ))
    recorder.record("q2", outcomes, profiler=profiler)

    pullup = outcome_by_strategy(outcomes, "pullup")
    best = min(
        o.charged for o in outcomes
        if o.completed and o.strategy != "pullup"
    )
    assert best < pullup.charged < 1.01 * best
    for strategy in ("pushdown", "pullrank", "migration", "exhaustive"):
        outcome = outcome_by_strategy(outcomes, strategy)
        assert abs(outcome.relative - 1.0) < 1e-6
