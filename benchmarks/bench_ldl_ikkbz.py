"""Section 3.1 follow-up — LDL on System R DP vs LDL on IK-KBZ ([KZ88]).

The paper notes LDL "does not integrate well with a System R-style
optimization algorithm" because the rewrite inflates the join count, and
that [KZ88] therefore grafted it onto polynomial-time IK-KBZ. This bench
measures the trade on the 5-way chain: the DP variant explores an
exponential state space (tables x applied predicates); the IK-KBZ variant
orders in polynomial time but commits to one linearisation.
"""

from conftest import emit

from repro.bench import run_strategies
from repro.bench.harness import outcome_by_strategy

STRATEGIES = ("ldl", "ldl-ikkbz", "migration")


def test_ldl_dp_vs_ikkbz(benchmark, db, workloads):
    workload = workloads["fiveway"]
    outcomes = benchmark.pedantic(
        lambda: run_strategies(
            db, workload.query, strategies=STRATEGIES
        ),
        rounds=1,
        iterations=1,
    )

    title = "LDL via System R DP vs via IK-KBZ (5-way chain, 3 expensive preds)"
    lines = [title, "=" * len(title)]
    lines.append(
        f"{'strategy':<12}{'plan time (ms)':>16}{'est.cost':>12}"
        f"{'charged':>12}"
    )
    for outcome in outcomes:
        lines.append(
            f"{outcome.strategy:<12}"
            f"{outcome.planning_seconds * 1000:>16.1f}"
            f"{outcome.estimated_cost:>12.0f}{outcome.charged:>12.0f}"
        )
    emit("\n".join(lines))

    ldl = outcome_by_strategy(outcomes, "ldl")
    ikkbz = outcome_by_strategy(outcomes, "ldl-ikkbz")
    migration = outcome_by_strategy(outcomes, "migration")
    # The polynomial variant plans faster than the DP variant...
    assert ikkbz.planning_seconds < ldl.planning_seconds
    # ...and neither LDL variant beats the DP LDL's plan quality bound.
    assert ldl.estimated_cost <= ikkbz.estimated_cost + 1e-6
    # Migration remains at least as good as both (Table 1).
    assert migration.estimated_cost <= ldl.estimated_cost + 1e-6
