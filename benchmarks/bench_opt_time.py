"""Section 4.4 — optimization time: the 5-way join under 8 seconds.

"Even in the worst-case scenario where no subplans can be pruned, Montage
plans a 5-way join with expensive predicates in under 8 seconds on our
SparcStation 10." This bench times every strategy's planner on the same
5-way chain with three expensive selections, and asserts Predicate
Migration stays under the paper's 8-second bar.
"""

from conftest import emit

from repro.bench import format_planning_times, run_strategies
from repro.bench.harness import outcome_by_strategy

STRATEGIES = ("pushdown", "pullrank", "migration", "pullup", "ldl")


def test_opt_time_five_way(benchmark, db, workloads):
    workload = workloads["fiveway"]

    def plan_all():
        return run_strategies(
            db, workload.query, strategies=STRATEGIES, execute=False
        )

    outcomes = benchmark.pedantic(plan_all, rounds=1, iterations=1)
    emit(format_planning_times(
        "Section 4.4 — planning times, 5-way join with expensive predicates",
        outcomes,
    ))

    migration = outcome_by_strategy(outcomes, "migration")
    assert migration.planning_seconds < 8.0
    for outcome in outcomes:
        assert outcome.plan.root.tables() == frozenset(
            {"t2", "t4", "t6", "t8", "t10"}
        )
    # Migration (with unpruneable retention) must not beat the cheaper
    # heuristics' plan quality claims in reverse: its estimate is minimal.
    for strategy in ("pushdown", "pullrank", "pullup"):
        other = outcome_by_strategy(outcomes, strategy)
        assert migration.estimated_cost <= other.estimated_cost + 1e-6
