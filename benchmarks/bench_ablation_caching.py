"""Ablation — predicate caching (Section 5.1).

Two published effects:

1. caching bounds a predicate's evaluations by its distinct input
   bindings, so it rescues PullUp on fanout joins (Query 3) — the paper's
   "the latter problem can be avoided by using function caching";
2. with caching on, the optimizer's rank arithmetic switches to
   value-based join selectivities bounded by 1, changing placement
   decisions.
"""

from conftest import emit

from repro.exec import Executor
from repro.optimizer import optimize


def run_caching_grid(db, query, budget=None):
    rows = []
    for strategy in ("pushdown", "migration", "pullup"):
        for caching in (False, True):
            plan = optimize(db, query, strategy=strategy, caching=caching).plan
            result = Executor(db, caching=caching, budget=budget).execute(plan)
            rows.append((
                strategy,
                "on" if caching else "off",
                result.charged if result.completed else float("nan"),
                int(result.metrics["function_calls"]),
                result.completed,
            ))
    return rows


def test_ablation_caching_query3(benchmark, db, workloads):
    query = workloads["q3"].query
    rows = benchmark.pedantic(
        lambda: run_caching_grid(db, query), rounds=1, iterations=1
    )

    title = "Ablation — predicate caching on the fanout query (Query 3)"
    lines = [title, "=" * len(title)]
    lines.append(
        f"{'strategy':<12}{'cache':>7}{'charged':>14}{'UDF calls':>12}"
    )
    for strategy, cache, charged, calls, completed in rows:
        status = f"{charged:>14.0f}" if completed else f"{'DNF':>14}"
        lines.append(f"{strategy:<12}{cache:>7}{status}{calls:>12}")
    emit("\n".join(lines))

    grid = {(r[0], r[1]): r for r in rows}
    # Caching rescues PullUp: its fanout-multiplied invocations collapse to
    # the distinct bindings.
    pullup_off = grid[("pullup", "off")]
    pullup_on = grid[("pullup", "on")]
    assert pullup_on[2] < 0.5 * pullup_off[2]
    assert pullup_on[3] < pullup_off[3]
    # Cached costs converge across strategies: with one evaluation per
    # distinct binding, placement matters far less.
    migration_on = grid[("migration", "on")]
    assert pullup_on[2] < 2.0 * migration_on[2]


def test_caching_invocations_bounded_by_values(db, workloads):
    query = workloads["q3"].query
    plan = optimize(db, query, strategy="pullup", caching=True).plan
    result = Executor(db, caching=True).execute(plan)
    ndistinct = db.catalog.table("t3").stats.ndistinct("u20")
    assert result.metrics["function_calls"] <= ndistinct
