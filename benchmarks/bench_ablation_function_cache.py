"""Ablation — predicate-level vs function-level caching (Section 5.1).

Montage caches the result of the entire *predicate* keyed on its input
variables; [Jhi88] and [HS93a] proposed caching each *function*. The paper
argues predicate-level entries stay small (function results may be huge
derived objects), but the schemes also differ in evaluation counts: a
predicate over two functions of different columns caches on the (x, y)
pair, while function-level caching memoises f per x and g per y —
Cartesian vs additive distinct counts.
"""

from conftest import emit

from repro.exec import Executor
from repro.expr.expressions import Column, FuncCall, Logical
from repro.expr.predicates import analyze_conjunct
from repro.plan.nodes import Plan, Scan


def compound_plan(db):
    predicate = analyze_conjunct(
        db.catalog,
        Logical(
            "AND",
            (
                FuncCall("costly10", (Column("t3", "u20"),)),
                FuncCall("costly100", (Column("t3", "u100"),)),
            ),
        ),
    )
    return Plan(Scan(filters=[predicate], table="t3"))


def run_grid(db):
    plan = compound_plan(db)
    rows = []
    for label, kwargs in (
        ("no cache", dict(caching=False)),
        ("predicate", dict(caching=True, cache_mode="predicate")),
        ("function", dict(caching=True, cache_mode="function")),
    ):
        result = Executor(db, **kwargs).execute(plan)
        rows.append((
            label,
            result.charged,
            int(result.metrics["function_calls"]),
            result.cache_entries,
        ))
    return rows


def test_ablation_function_vs_predicate_cache(benchmark, db):
    rows = benchmark.pedantic(lambda: run_grid(db), rounds=1, iterations=1)

    title = (
        "Ablation — caching level on costly10(u20) AND costly100(u100) "
        "over t3"
    )
    lines = [title, "=" * len(title)]
    lines.append(
        f"{'scheme':<12}{'charged':>12}{'UDF calls':>12}{'cache entries':>15}"
    )
    for label, charged, calls, entries in rows:
        lines.append(f"{label:<12}{charged:>12.0f}{calls:>12}{entries:>15}")
    stats = db.catalog.table("t3").stats
    lines.append(
        f"(nd(u20)={stats.ndistinct('u20')}, "
        f"nd(u100)={stats.ndistinct('u100')}, "
        f"|t3|={db.catalog.table('t3').cardinality})"
    )
    emit("\n".join(lines))

    grid = {row[0]: row for row in rows}
    # Both schemes beat no caching; function-level needs at most
    # nd(u20)+nd(u100) evaluations vs predicate-level's pair-based count.
    assert grid["predicate"][1] < grid["no cache"][1]
    assert grid["function"][1] <= grid["predicate"][1]
    assert grid["function"][2] <= (
        stats.ndistinct("u20") + stats.ndistinct("u100")
    )
