"""Ablation — the discarded "global" cost model of [HS93a] (Section 3.2).

The global model applies a join's raw selectivity ``s`` equally to both
input streams. The paper found it "inaccurate at modelling query plans in
practice": raw ``s`` (1/max distinct) is tiny, so *every* join looks
enormously selective on *both* streams — even a join that actually fans a
stream out. Under the global model the optimizer therefore pulls expensive
selections above everything (LDL-grade over-eagerness), which is exactly
wrong on fanout joins: Query 3 under the global model degrades to PullUp's
failure, while the per-input model keeps the selection below the join.
"""

from conftest import emit

from repro.exec import Executor
from repro.optimizer import optimize


def compare_models(db, workloads):
    rows = []
    for key in ("q1", "q3"):
        for label, global_model in (("per-input", False), ("global", True)):
            plan = optimize(
                db,
                workloads[key].query,
                strategy="migration",
                global_model=global_model,
            ).plan
            result = Executor(db).execute(plan)
            rows.append((key, label, plan.estimated_cost, result.charged))
    return rows


def test_ablation_global_cost_model(benchmark, db, workloads):
    rows = benchmark.pedantic(
        lambda: compare_models(db, workloads), rounds=1, iterations=1
    )

    title = "Ablation — [HS93a] global cost model vs per-input selectivities"
    lines = [title, "=" * len(title)]
    lines.append(f"{'query':<8}{'model':<12}{'est.cost':>14}{'measured':>14}")
    for key, label, estimated, charged in rows:
        lines.append(f"{key:<8}{label:<12}{estimated:>14.0f}{charged:>14.0f}")
    lines.append(
        "(global model: every join looks selective on both streams -> "
        "over-eager pullup; fails on the fanout query q3)"
    )
    emit("\n".join(lines))

    grid = {(r[0], r[1]): r[3] for r in rows}
    # On Query 1 over-eager pullup happens to be the right call: both
    # models coincide.
    assert grid[("q1", "global")] <= 1.01 * grid[("q1", "per-input")]
    # On the fanout query the global model pulls the selection above a
    # join that multiplies its invocations — the per-input model's fix.
    assert grid[("q3", "global")] > 2.0 * grid[("q3", "per-input")]


def test_global_model_is_never_better(db, workloads):
    for key in ("q1", "q2", "q3", "q4"):
        query = workloads[key].query
        per_input = optimize(db, query, strategy="migration").plan
        global_model = optimize(
            db, query, strategy="migration", global_model=True
        ).plan
        measured_per_input = Executor(db).execute(per_input).charged
        measured_global = Executor(db).execute(global_model).charged
        assert measured_per_input <= measured_global + 1e-6, key
