"""Ablation — unpruneable-subplan retention in Predicate Migration
(Section 4.4).

Predicate Migration modifies System R to retain subplans that still hold
an un-pulled expensive predicate, so a later group pullup can rescue them.
This ablation runs the migration pipeline with and without that retention
(plain PullRank enumeration feeding the series-parallel pass) and reports
how many extra candidates retention keeps and what it buys on each
workload query.
"""

from conftest import emit

from repro.cost.model import CostModel
from repro.optimizer.migration import migrate_plan
from repro.optimizer.policies import MigrationPhaseOnePolicy, PullRankPolicy
from repro.optimizer.systemr import SystemRPlanner
from repro.plan.nodes import Plan


def migrate_with_policy(db, query, policy):
    model = CostModel(db.catalog, db.params)
    planner = SystemRPlanner(db.catalog, model, policy)
    candidates = planner.final_candidates(query)
    best = None
    for candidate in candidates:
        migrated = migrate_plan(
            Plan(candidate.node, candidate.estimate.cost,
                 candidate.estimate.rows),
            model,
        )
        if best is None or migrated.estimated_cost < best.estimated_cost:
            best = migrated
    return best, len(candidates)


def run_ablation(db, workloads):
    rows = []
    for key in ("q1", "q2", "q3", "q4", "q5", "fiveway"):
        query = workloads[key].query
        with_retention, kept_with = migrate_with_policy(
            db, query, MigrationPhaseOnePolicy()
        )
        without_retention, kept_without = migrate_with_policy(
            db, query, PullRankPolicy()
        )
        rows.append((
            key,
            kept_with,
            kept_without,
            with_retention.estimated_cost,
            without_retention.estimated_cost,
        ))
    return rows


def test_ablation_unpruneable(benchmark, db, workloads):
    rows = benchmark.pedantic(
        lambda: run_ablation(db, workloads), rounds=1, iterations=1
    )

    title = "Ablation — unpruneable-subplan retention in Predicate Migration"
    lines = [title, "=" * len(title)]
    lines.append(
        f"{'query':<10}{'cands kept':>12}{'w/o retention':>15}"
        f"{'est.cost':>14}{'w/o est.cost':>14}"
    )
    for key, kept_with, kept_without, cost_with, cost_without in rows:
        lines.append(
            f"{key:<10}{kept_with:>12}{kept_without:>15}"
            f"{cost_with:>14.0f}{cost_without:>14.0f}"
        )
    emit("\n".join(lines))

    for key, kept_with, kept_without, cost_with, cost_without in rows:
        # Retention keeps at least as many candidates and never yields a
        # worse final plan.
        assert kept_with >= kept_without, key
        assert cost_with <= cost_without + 1e-6, key
    # Somewhere in the suite the retention actually preserves extra plans.
    assert any(row[1] > row[2] for row in rows)
