"""Shared fixtures for the benchmark suite.

Benchmarks run at ``REPRO_BENCH_SCALE`` (default 100: tN has N×100 tuples).
The paper's published scale is 10_000; shapes are scale-invariant because
selectivities derive from the attribute naming convention.

Run:  pytest benchmarks/ --benchmark-only -s
(the ``-s`` shows the reproduced tables; without it they are captured).
"""

from __future__ import annotations

import os

import pytest

from repro.bench.workloads import build_all
from repro.catalog.datagen import build_database

BENCH_SCALE = int(os.environ.get("REPRO_BENCH_SCALE", "100"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "42"))


@pytest.fixture(scope="session")
def db():
    return build_database(scale=BENCH_SCALE, seed=BENCH_SEED)


@pytest.fixture(scope="session")
def workloads(db):
    return build_all(db)


def emit(text: str) -> None:
    """Print a reproduced table/figure, framed for easy grepping."""
    print()
    print(text)
    print()
