"""Shared fixtures for the benchmark suite.

Benchmarks run at ``REPRO_BENCH_SCALE`` (default 100: tN has N×100 tuples).
The paper's published scale is 10_000; shapes are scale-invariant because
selectivities derive from the attribute naming convention.

Run:  pytest benchmarks/ --benchmark-only -s
(the ``-s`` shows the reproduced tables; without it they are captured).
"""

from __future__ import annotations

import os

import pytest

from repro.bench.workloads import build_all
from repro.catalog.datagen import build_database
from repro.obs import NULL_PROFILER, ArtifactRecorder, PhaseProfiler

BENCH_SCALE = int(os.environ.get("REPRO_BENCH_SCALE", "100"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "42"))


def pytest_addoption(parser):
    parser.addoption(
        "--record",
        metavar="DIR",
        default=None,
        help=(
            "record each workload's outcomes as a BENCH_<workload>.json "
            "run artifact under DIR (for `repro bench-diff`)"
        ),
    )


@pytest.fixture(scope="session")
def recorder(request):
    """Run-artifact recorder; disabled (no-op) unless ``--record DIR``."""
    return ArtifactRecorder(
        request.config.getoption("--record"),
        scale=BENCH_SCALE,
        seed=BENCH_SEED,
    )


@pytest.fixture
def profiler(recorder):
    """Fresh per-test phase profiler when recording, else the null one."""
    return PhaseProfiler() if recorder.enabled else NULL_PROFILER


@pytest.fixture(scope="session")
def db():
    return build_database(scale=BENCH_SCALE, seed=BENCH_SEED)


@pytest.fixture(scope="session")
def workloads(db):
    return build_all(db)


def emit(text: str) -> None:
    """Print a reproduced table/figure, framed for easy grepping."""
    print()
    print(text)
    print()
