"""Table 2 — physical characteristics of the relations.

The paper's Table 2 lists per-relation cardinality and physical size for
the Hong–Stonebraker schema (scaled ×10, 100-byte tuples, ~110 MB with
indexes and catalogs). We regenerate the table from the synthetic
database's catalog.
"""

from conftest import BENCH_SCALE, emit


def render_table2(db) -> str:
    title = f"Table 2 — relation characteristics (scale={BENCH_SCALE})"
    lines = [title, "=" * len(title)]
    header = (
        f"{'relation':<10}{'tuples':>10}{'pages':>8}{'size (KB)':>12}"
        f"{'indexes':>9}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    total_bytes = 0
    for name in sorted(db.catalog.table_names(), key=lambda n: int(n[1:])):
        entry = db.catalog.table(name)
        size_kb = entry.pages * db.params.page_size / 1024
        total_bytes += entry.pages * db.params.page_size
        lines.append(
            f"{name:<10}{entry.cardinality:>10}{entry.pages:>8}"
            f"{size_kb:>12.0f}{len(entry.indexes):>9}"
        )
    lines.append("-" * len(header))
    lines.append(
        f"database size with indexes: {db.size_megabytes():.1f} MB "
        f"(paper, at scale 10000: ~110 MB)"
    )
    return "\n".join(lines)


def test_table2_schema(benchmark, db):
    table = benchmark.pedantic(
        lambda: render_table2(db), rounds=1, iterations=1
    )
    emit(table)

    # Shape assertions: tN = N x scale tuples, 100-byte tuples, u-columns
    # unindexed.
    for n in (1, 5, 10):
        entry = db.catalog.table(f"t{n}")
        assert entry.cardinality == n * BENCH_SCALE
        assert entry.schema.tuple_width == 100
        assert len(entry.indexes) == len(entry.schema.indexed_attributes)
