"""Figure 10 — the spectrum of pullup eagerness.

The paper orders the algorithms by how eagerly they pull predicates up:

    PushDown < PullRank < Predicate Migration < LDL < PullUp

We quantify eagerness on real plans (mean normalised lift of expensive
predicates above their entry slots, over the workload suite) and check the
ordering, with PushDown pinned at 0 and PullUp at 1.
"""

from conftest import emit

from repro.bench import eagerness_score
from repro.optimizer import optimize

STRATEGIES = ("pushdown", "pullrank", "migration", "ldl", "pullup")
QUERIES = ("q1", "q2", "q3", "q4", "q5")


def measure_spectrum(db, workloads):
    scores = {}
    for strategy in STRATEGIES:
        values = []
        for key in QUERIES:
            plan = optimize(
                db, workloads[key].query, strategy=strategy
            ).plan
            score = eagerness_score(plan)
            if score is not None:
                values.append(score)
        scores[strategy] = sum(values) / len(values)
    return scores


def test_fig10_eagerness(benchmark, db, workloads):
    scores = benchmark.pedantic(
        lambda: measure_spectrum(db, workloads), rounds=1, iterations=1
    )

    title = "Figure 10 — spectrum of eagerness in pullup (measured)"
    lines = [title, "=" * len(title)]
    for strategy in STRATEGIES:
        bar = "#" * round(scores[strategy] * 40)
        lines.append(f"{strategy:<12} {scores[strategy]:5.2f}  {bar}")
    lines.append("(0 = pure pushdown, 1 = everything pulled to the top)")
    emit("\n".join(lines))

    assert scores["pushdown"] == 0.0
    assert scores["pullup"] == 1.0
    assert scores["pushdown"] <= scores["pullrank"] + 1e-9
    assert scores["pullrank"] <= scores["migration"] + 1e-9
    assert scores["migration"] <= scores["pullup"] + 1e-9
    assert scores["ldl"] <= scores["pullup"] + 1e-9
