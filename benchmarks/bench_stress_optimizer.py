"""Section 5 — the debugging methodology as a regression gate.

The paper: optimizer bugs "were exposed by running the same query under
the various different optimization heuristics, and comparing the estimated
costs and running times of the resulting plans". This bench runs a few
dozen random conjunctive queries under every heuristic, asserting that all
plans agree on their answers and that Predicate Migration never estimates
worse than a simpler heuristic.
"""

from conftest import emit

from repro.bench.stress import stress_optimizer


def test_stress_optimizer(benchmark, db):
    report = benchmark.pedantic(
        lambda: stress_optimizer(db, queries=40, seed=7),
        rounds=1,
        iterations=1,
    )
    emit(report.summary())
    assert report.queries_run == 40
    assert report.clean, report.summary()
