"""Disjunctive extension — qor: an OR of expensive predicates.

Not a paper figure: the paper's experiments are purely conjunctive. The
qor workload exercises the boolean-tree generalisation (Kim/Ileri/Madden
cost ordering for disjunctions): the optimizer treats the whole OR as one
compound predicate with combined selectivity 1-(1-s1)(1-s2) and places it
above the selective join exactly as q1 places costly100, while ordering
the OR's children so the likeliest-to-accept disjunct short-circuits
first. PushDown pays the disjunction on every t10 tuple and loses by
~|t10| / |t3 join t10|; every other algorithm finds the optimal plan.
"""

from conftest import emit

from repro.bench import format_outcomes, outcome_by_strategy, run_strategies


def test_disjunction_qor(benchmark, db, workloads, recorder, profiler):
    workload = workloads["qor"]
    outcomes = benchmark.pedantic(
        lambda: run_strategies(
            db, workload.query, profiler=profiler,
            provenance=recorder.enabled,
            feedback=recorder.enabled,
            telemetry=recorder.enabled,
        ),
        rounds=1,
        iterations=1,
    )
    emit(format_outcomes(
        f"{workload.title} ({workload.figure})", outcomes,
        note=workload.sql.replace("\n", " "),
    ))
    recorder.record("qor", outcomes, profiler=profiler)

    pushdown = outcome_by_strategy(outcomes, "pushdown")
    migration = outcome_by_strategy(outcomes, "migration")
    assert pushdown.charged > 3.0 * migration.charged
    for strategy in ("pullup", "pullrank", "ldl", "exhaustive"):
        assert outcome_by_strategy(outcomes, strategy).relative < 1.05
    # The compound OR was cost-ordered at analysis time: the placement
    # policies that rank-sort scan filters record it.
    assert migration.notes.get("disjunctions_ordered", 0) >= 1
