"""Figures 6–7 — Query 4's plan trees: the multi-join pullup problem.

Figure 6: the good join order, where the expensive selection should be
pulled above the J1·J2 *group* — but PullRank, comparing against J1 alone,
leaves it at the bottom. Figure 7: the plan PullRank actually produces.

We print both trees from the fixed-order study and assert the placement
difference the figures illustrate.
"""

from conftest import emit

from repro.bench import fixed_order_plans
from repro.plan import plan_tree
from repro.plan.nodes import Scan


def test_fig6_7_query4_plans(benchmark, db, workloads):
    workload = workloads["q4"]
    order = ("t3", "t6", "t10")
    plans = benchmark.pedantic(
        lambda: fixed_order_plans(db, workload.query, order),
        rounds=1,
        iterations=1,
    )

    emit(
        "Figure 6 — the good order with the selection correctly above the "
        "J1-J2 group\n(Predicate Migration):\n"
        + plan_tree(plans["migration"])
        + "\n\nFigure 7 — PullRank on the same order: the selection is "
        "stuck below J1:\n"
        + plan_tree(plans["pullrank"])
    )

    def expensive_on_scan(plan):
        return any(
            predicate.is_expensive
            for node in plan.root.walk()
            if isinstance(node, Scan)
            for predicate in node.filters
        )

    # PullRank leaves the costly selection on the t3 scan; Migration lifts
    # it above both joins.
    assert expensive_on_scan(plans["pullrank"])
    assert not expensive_on_scan(plans["migration"])
    assert any(p.is_expensive for p in plans["migration"].root.filters)
    # Migration's placement equals the exhaustive optimum on this order.
    assert plans["migration"].estimated_cost <= (
        plans["exhaustive"].estimated_cost * 1.001
    )
