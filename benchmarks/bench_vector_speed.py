"""Executor microbench — row vs. vector wall-clock on the same plans.

Not a paper figure: the paper charges costs analytically, so both
executors are charge-identical by construction (the differential suite
gates that). This bench measures the one thing batching is for — Python
interpreter dispatch per tuple — and asserts the vector path's advantage
on the UDF-heavy workloads at benchmark scale. The committed
``benchmarks/baselines/VECSPEED.json`` records the headline grid
(``repro vec-speed`` compares against it, warning-only).
"""

from conftest import BENCH_SCALE, BENCH_SEED, emit

from repro.bench.vecspeed import format_payload, run_payload

#: The wall-clock floor asserted here is deliberately far below the
#: recorded ~5-7x so CI noise cannot flake it; the recorded baseline and
#: the vec-speed CLI carry the real numbers.
GATED_SPEEDUP = 2.0


def test_vector_speed(benchmark):
    payload = benchmark.pedantic(
        lambda: run_payload(
            ("q1", "q4", "q5"), (BENCH_SCALE,), seed=BENCH_SEED
        ),
        rounds=1,
        iterations=1,
    )
    emit(format_payload(payload))

    cells = {s["workload"]: s for s in payload["samples"]}
    assert not [s for s in payload["samples"] if s["error"]]
    for key in ("q1", "q4", "q5"):
        assert cells[key]["vector_ms"] > 0
    if BENCH_SCALE >= 100:
        # Dispatch amortisation only dominates once the UDF loop is the
        # bill; tiny scales are fixed-overhead-bound and not gated.
        for key in ("q4", "q5"):
            assert cells[key]["speedup"] >= GATED_SPEEDUP, cells[key]
