"""Optional — Query 1 at the paper's published scale.

The paper's database is the Hong–Stonebraker schema scaled ×10 (t10 =
100,000 tuples, ~110 MB with indexes). This bench repeats the Figure 3
comparison at that scale to confirm the shapes are scale-invariant.

Disabled by default (it builds a ~50 MB in-memory database and executes
hundred-thousand-row joins in pure Python); enable with::

    REPRO_PAPER_SCALE=1 pytest benchmarks/bench_paper_scale.py --benchmark-only -s
"""

import os

import pytest

from conftest import emit

from repro.bench import (
    build_workload,
    format_outcomes,
    outcome_by_strategy,
    run_strategies,
)
from repro.catalog.datagen import PAPER_SCALE, build_database

pytestmark = pytest.mark.skipif(
    not os.environ.get("REPRO_PAPER_SCALE"),
    reason="paper-scale run disabled; set REPRO_PAPER_SCALE=1",
)


def test_paper_scale_query1(benchmark):
    def run():
        db = build_database(scale=PAPER_SCALE, seed=42)
        workload = build_workload(db, "q1")
        outcomes = run_strategies(
            db,
            workload.query,
            strategies=("pushdown", "migration"),
        )
        return db, outcomes

    db, outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(format_outcomes(
        f"Query 1 at paper scale (t10 = {10 * PAPER_SCALE:,} tuples, "
        f"{db.size_megabytes():.0f} MB)",
        outcomes,
    ))
    pushdown = outcome_by_strategy(outcomes, "pushdown")
    migration = outcome_by_strategy(outcomes, "migration")
    assert pushdown.charged > 3.0 * migration.charged
