"""Figure 3 — Query 1: selection pushdown fails on expensive predicates.

Paper shape: PushDown is several times worse than every other algorithm,
because it evaluates costly100 on all of t10 while the join would have
filtered t10 to ~30% first. Everyone else (PullUp, PullRank, Migration,
LDL, Exhaustive) finds the optimal plan.
"""

from conftest import emit

from repro.bench import format_outcomes, outcome_by_strategy, run_strategies


def test_fig3_query1(benchmark, db, workloads, recorder, profiler):
    workload = workloads["q1"]
    outcomes = benchmark.pedantic(
        lambda: run_strategies(
            db, workload.query, profiler=profiler,
            provenance=recorder.enabled,
            feedback=recorder.enabled,
            telemetry=recorder.enabled,
        ),
        rounds=1,
        iterations=1,
    )
    emit(format_outcomes(
        f"{workload.title} ({workload.figure})", outcomes,
        note=workload.sql.replace("\n", " "),
    ))
    recorder.record("q1", outcomes, profiler=profiler)

    pushdown = outcome_by_strategy(outcomes, "pushdown")
    migration = outcome_by_strategy(outcomes, "migration")
    assert pushdown.charged > 3.0 * migration.charged
    for strategy in ("pullup", "pullrank", "ldl", "exhaustive"):
        assert outcome_by_strategy(outcomes, strategy).relative < 1.05
