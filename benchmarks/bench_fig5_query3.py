"""Figure 5 — Query 3: over-eager pullup is significantly poor.

Paper shape: the join fans out (selectivity > 1) over the relation
carrying costly100, so PullUp multiplies the expensive invocations by the
fanout and loses by the same factor. (Section 4.2 notes function caching
avoids this — see bench_ablation_caching.)
"""

from conftest import emit

from repro.bench import format_outcomes, outcome_by_strategy, run_strategies


def test_fig5_query3(benchmark, db, workloads, recorder, profiler):
    workload = workloads["q3"]
    outcomes = benchmark.pedantic(
        lambda: run_strategies(
            db, workload.query, profiler=profiler,
            provenance=recorder.enabled,
            feedback=recorder.enabled,
            telemetry=recorder.enabled,
        ),
        rounds=1,
        iterations=1,
    )
    emit(format_outcomes(
        f"{workload.title} ({workload.figure})", outcomes,
        note=workload.sql.replace("\n", " "),
    ))
    recorder.record("q3", outcomes, profiler=profiler)

    pullup = outcome_by_strategy(outcomes, "pullup")
    migration = outcome_by_strategy(outcomes, "migration")
    assert pullup.charged > 2.0 * migration.charged
    for strategy in ("pushdown", "pullrank", "ldl", "exhaustive"):
        assert outcome_by_strategy(outcomes, strategy).relative < 1.05
