"""Figures 1–2 — the LDL example: optimal bushy placement vs left-deep LDL.

The paper's Figure 1 shows the optimal plan for R ⋈ S with expensive
selections p(R) and q(S): both selections directly above their scans.
Figure 2 shows the same plan in LDL's predicates-as-joins view — a bushy
tree, unreachable for a left-deep optimizer, which is why LDL is forced to
pull the inner relation's selection above the join.

This bench prints both plan trees and measures the cost of LDL's forced
over-eagerness on that exact query shape.
"""

from conftest import emit

from repro.bench import run_strategies, outcome_by_strategy, format_outcomes
from repro.optimizer import optimize
from repro.optimizer.ldl import inner_pullup_violations
from repro.plan import plan_tree


def test_fig1_2_ldl_trees(benchmark, db, workloads):
    workload = workloads["ldl_example"]

    def run():
        migration = optimize(db, workload.query, strategy="migration")
        ldl = optimize(db, workload.query, strategy="ldl")
        ldl_bushy = optimize(db, workload.query, strategy="ldl", bushy=True)
        return migration, ldl, ldl_bushy

    migration, ldl, ldl_bushy = benchmark.pedantic(run, rounds=1, iterations=1)

    emit(
        "Figure 1 — optimal placement (Predicate Migration):\n"
        + plan_tree(migration.plan)
        + "\n\nFigure 2 — LDL's left-deep equivalent (forced pullup):\n"
        + plan_tree(ldl.plan)
        + "\n\nSection 3.1's fix — LDL over a bushy System R reaches the\n"
        "Figure 1 plan (predicate-joins may apply to the inner subtree):\n"
        + plan_tree(ldl_bushy.plan)
    )
    outcomes = run_strategies(
        db, workload.query, strategies=("migration", "ldl", "exhaustive")
    )
    emit(format_outcomes(
        f"{workload.title} ({workload.figure})", outcomes,
        note=workload.diagnostic,
    ))

    # The optimal plan keeps both expensive selections on their scans;
    # LDL structurally cannot put one on the inner scan.
    migration_scans = migration.plan.root.base_scans()
    expensive_on_scans = sum(
        1
        for scan in migration_scans
        for predicate in scan.filters
        if predicate.is_expensive
    )
    assert expensive_on_scans == 2
    assert inner_pullup_violations(ldl.plan.root) == []
    assert ldl.estimated_cost > migration.estimated_cost
    assert outcome_by_strategy(outcomes, "ldl").charged > (
        outcome_by_strategy(outcomes, "migration").charged
    )
    # The paper's stated fix works: bushy enumeration restores LDL to the
    # Figure 1 optimum.
    import pytest

    assert ldl_bushy.estimated_cost == pytest.approx(
        migration.estimated_cost, rel=0.01
    )
