"""Figure 9 — Query 5: expensive primary join predicates.

Paper shape: with an expensive primary join predicate connecting t7,
PullUp lifts the costly selection above the expensive join, evaluating the
join predicate on the cross-product of t7 with the unfiltered three-way
join — the plan that "used up all available swap space and never
completed" in Montage. Our executor's cost budget turns that into a DNF.
All other algorithms complete with near-identical plans.
"""

from conftest import emit

from repro.bench import format_outcomes, outcome_by_strategy, run_strategies


def test_fig9_query5(benchmark, db, workloads, recorder, profiler):
    workload = workloads["q5"]
    outcomes = benchmark.pedantic(
        lambda: run_strategies(
            db, workload.query, budget=workload.budget, profiler=profiler,
            provenance=recorder.enabled,
            feedback=recorder.enabled,
            telemetry=recorder.enabled,
        ),
        rounds=1,
        iterations=1,
    )
    emit(format_outcomes(
        f"{workload.title} ({workload.figure})",
        outcomes,
        note=(
            f"{workload.sql.splitlines()[-1].strip()} is the expensive "
            f"primary join; budget={workload.budget:,.0f} units"
        ),
    ))
    recorder.record("q5", outcomes, profiler=profiler)

    assert outcome_by_strategy(outcomes, "pullup").dnf
    for strategy in ("pushdown", "pullrank", "migration", "ldl", "exhaustive"):
        outcome = outcome_by_strategy(outcomes, strategy)
        assert outcome.completed
        assert outcome.relative < 1.05
