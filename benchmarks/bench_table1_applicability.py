"""Table 1 — summary of algorithms: which query class each one optimises.

The paper's Table 1 states, per algorithm, the class of queries it handles.
This bench measures the matrix over the reconstructed workload suite and
checks it against the paper's claims (encoded in
``repro.bench.applicability.EXPECTED``).
"""

from conftest import emit

from repro.bench.applicability import (
    EXPECTED,
    applicability_matrix,
    format_matrix,
)


def test_table1_applicability(benchmark, db):
    matrix = benchmark.pedantic(
        lambda: applicability_matrix(db), rounds=1, iterations=1
    )
    emit(format_matrix(matrix))

    failures = []
    for workload, expectations in EXPECTED.items():
        for strategy, should_be_correct in expectations.items():
            cell = matrix[workload][strategy]
            if cell.correct != should_be_correct:
                failures.append(
                    f"{workload}/{strategy}: expected {should_be_correct}, "
                    f"relative={cell.relative:.2f}"
                )
    assert not failures, failures

    # Predicate Migration and Exhaustive are correct everywhere (Table 1's
    # "widely effective" / "all queries").
    for workload in EXPECTED:
        assert matrix[workload]["migration"].correct
        assert matrix[workload]["exhaustive"].correct
