"""Section 5.2 — accuracy of the cost model's cardinality estimates.

The paper's selectivity machinery is intentionally rough ("{R} is not well
defined ... we calculate {R} on the fly"). This bench measures per-node
estimated vs actual cardinalities (q-error) for the migration plan of each
workload query. On the synthetic database the System R rules should be
near-exact for equijoins and uniform columns; the expensive-primary-join
query (q5) shows the declared-selectivity error the paper's Section 5.2
heuristics tolerate.
"""

from conftest import emit

from repro.bench.accuracy import (
    format_accuracy,
    measure_accuracy,
    worst_q_error,
)
from repro.optimizer import optimize


def run_accuracy(db, workloads):
    results = {}
    for key in ("q1", "q2", "q3", "q4", "q5"):
        plan = optimize(db, workloads[key].query, strategy="migration").plan
        results[key] = measure_accuracy(db, plan)
    return results


def test_estimate_accuracy(benchmark, db, workloads):
    results = benchmark.pedantic(
        lambda: run_accuracy(db, workloads), rounds=1, iterations=1
    )
    for key, rows in results.items():
        emit(format_accuracy(
            f"Section 5.2 — estimate accuracy, {key} (migration plan)", rows
        ))

    # Cheap-equijoin queries estimate tightly on uniform synthetic data.
    for key in ("q1", "q2", "q4"):
        assert worst_q_error(results[key]) < 2.0, key
    # The synthetic-function queries are bounded but looser (the declared
    # selectivity is a population-level average).
    for key in ("q3", "q5"):
        assert worst_q_error(results[key]) < 5.0, key
