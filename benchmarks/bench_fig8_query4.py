"""Figure 8 — Query 4 performance: PullRank's multi-join failure.

Paper shape: only the algorithms capable of multi-join (group) pullup get
the good plan; PullRank is roughly an order of magnitude worse on the
Figure 6 join order, and PushDown is equally poor.

We report both studies:

* the fixed-order comparison (the paper's Figures 6–7 analysis) — PullRank
  cannot cross the J1·J2 group and loses ~9×;
* the free-order System R comparison — in our simulator PullRank escapes
  to an alternative join order whose joins happen to be cheap (Montage's
  equivalent escape order, Figure 7, was expensive on its 1993 cost
  surface), a documented deviation; PushDown still shows the full failure.
"""

from conftest import emit

from repro.bench import (
    fixed_order_outcomes,
    format_outcomes,
    outcome_by_strategy,
    run_strategies,
)


def test_fig8_query4_fixed_order(benchmark, db, workloads):
    workload = workloads["q4"]
    outcomes = benchmark.pedantic(
        lambda: fixed_order_outcomes(
            db, workload.query, ("t3", "t6", "t10")
        ),
        rounds=1,
        iterations=1,
    )
    emit(format_outcomes(
        f"{workload.title} ({workload.figure}) — fixed join order t3-t6-t10",
        outcomes,
        note=workload.diagnostic,
    ))
    pullrank = outcome_by_strategy(outcomes, "pullrank")
    migration = outcome_by_strategy(outcomes, "migration")
    exhaustive = outcome_by_strategy(outcomes, "exhaustive")
    assert pullrank.charged > 5.0 * migration.charged
    assert abs(migration.charged - exhaustive.charged) < 0.01 * (
        exhaustive.charged
    )


def test_fig8_query4_free_order(db, workloads, recorder, profiler):
    workload = workloads["q4"]
    outcomes = run_strategies(
        db, workload.query, profiler=profiler,
        provenance=recorder.enabled,
        feedback=recorder.enabled,
        telemetry=recorder.enabled,
    )
    emit(format_outcomes(
        f"{workload.title} ({workload.figure}) — full System R enumeration",
        outcomes,
    ))
    recorder.record("q4", outcomes, profiler=profiler)
    pushdown = outcome_by_strategy(outcomes, "pushdown")
    migration = outcome_by_strategy(outcomes, "migration")
    assert pushdown.charged > 5.0 * migration.charged
    assert outcome_by_strategy(outcomes, "exhaustive").relative < 1.01
