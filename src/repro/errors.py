"""Exception hierarchy for the repro package.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro package."""


class CatalogError(ReproError):
    """A catalog lookup or registration failed."""


class UnknownRelationError(CatalogError):
    """A relation name was not found in the catalog."""

    def __init__(self, name: str) -> None:
        super().__init__(f"unknown relation: {name!r}")
        self.name = name


class UnknownAttributeError(CatalogError):
    """An attribute name was not found on a relation."""

    def __init__(self, relation: str, attribute: str) -> None:
        super().__init__(f"unknown attribute: {relation!r}.{attribute!r}")
        self.relation = relation
        self.attribute = attribute


class UnknownFunctionError(CatalogError):
    """A user-defined function name was not registered."""

    def __init__(self, name: str) -> None:
        super().__init__(f"unknown function: {name!r}")
        self.name = name


class DuplicateNameError(CatalogError):
    """A relation, attribute, or function name was registered twice."""


class StorageError(ReproError):
    """A storage-layer operation failed."""


class PageFullError(StorageError):
    """An insert did not fit on the target page."""


class ExecutionError(ReproError):
    """Plan execution failed."""


class UdfError(ExecutionError):
    """A user-defined function failed at evaluation time.

    Carries enough context for containment and reporting: which function,
    which invocation (1-based call index at the time of the failure), and
    whether the fault is transient (a retry may succeed) or permanent.
    """

    def __init__(
        self,
        function: str,
        call_index: int = 0,
        transient: bool = False,
        reason: str = "injected fault",
    ) -> None:
        flavour = "transient" if transient else "permanent"
        super().__init__(
            f"UDF {function!r} failed on call #{call_index} "
            f"({flavour}): {reason}"
        )
        self.function = function
        self.call_index = call_index
        self.transient = transient
        self.reason = reason


class BudgetExceededError(ExecutionError):
    """Execution exceeded its charged-cost budget.

    Models the paper's Query 5 footnote, where PullUp's plan "used up all
    available swap space and never completed": rather than hang, the
    executor aborts and the harness reports a DNF.
    """

    def __init__(self, charged: float, budget: float) -> None:
        super().__init__(
            f"execution exceeded cost budget: charged {charged:.1f} units, "
            f"budget {budget:.1f} units"
        )
        self.charged = charged
        self.budget = budget


class ArtifactError(ReproError):
    """A run artifact is unreadable or has an incompatible schema."""


class PlanError(ReproError):
    """A plan tree is malformed or an optimizer invariant was violated."""


class OptimizerError(ReproError):
    """The optimizer could not produce a plan."""


class StatisticsError(ReproError):
    """A catalog statistic is unusable (non-finite or out of range).

    Raised only when a statistic cannot be repaired; the optimizer's
    guardrails normally clamp bad values in place and record a
    ``stats.clamp`` provenance event instead of raising.
    """


class PlanningTimeout(OptimizerError):
    """A placement strategy exceeded its planning-time budget."""

    def __init__(self, strategy: str, elapsed: float, budget: float) -> None:
        super().__init__(
            f"strategy {strategy!r} exceeded its planning budget: "
            f"{elapsed:.3f}s > {budget:.3f}s"
        )
        self.strategy = strategy
        self.elapsed = elapsed
        self.budget = budget


class SQLError(ReproError):
    """Base class for SQL front-end errors."""


class SQLLexError(SQLError):
    """The lexer hit an unrecognised character sequence."""

    def __init__(self, message: str, position: int) -> None:
        super().__init__(f"{message} (at offset {position})")
        self.position = position


class SQLParseError(SQLError):
    """The parser hit an unexpected token."""

    def __init__(self, message: str, position: int) -> None:
        super().__init__(f"{message} (at offset {position})")
        self.position = position


class BindError(SQLError):
    """Name resolution against the catalog failed."""
