"""User-defined functions with catalog cost and selectivity metadata.

The paper's experiments use functions named ``costlyN`` whose per-invocation
cost equals the I/O time of touching *N* unclustered tuples. Crucially, the
paper does **not** execute real work inside the functions: it counts
invocations and charges ``invocations × cost`` afterwards (Section 2). We do
the same — every :class:`UserFunction` carries a ``cost_per_call`` in
random-I/O units and an invocation counter that the executor charges against
its cost meter.

Functions still compute *real* boolean results so that measured
selectivities match the catalog estimates: :func:`synthetic_boolean` builds a
deterministic pseudo-random predicate with a target pass rate.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import DuplicateNameError, UnknownFunctionError

#: Resolution of the synthetic predicates' pass-rate quantisation.
_HASH_BUCKETS = 1_000_000


def synthetic_boolean(selectivity: float, seed: int = 0) -> Callable[..., bool]:
    """Build a deterministic boolean function with the given pass rate.

    The function hashes its arguments (with ``seed`` mixed in) onto
    ``[0, 1)`` and passes values landing below ``selectivity``. Because the
    hash is uniform, the measured selectivity over a large uniform input
    domain converges to the target, which keeps the optimizer's catalog
    estimates honest during execution.
    """
    if not 0.0 <= selectivity <= 1.0:
        raise ValueError(f"selectivity must be in [0, 1], got {selectivity}")
    threshold = int(round(selectivity * _HASH_BUCKETS))

    def predicate(*args: object) -> bool:
        payload = repr((seed,) + args).encode("utf-8")
        bucket = zlib.crc32(payload) % _HASH_BUCKETS
        return bucket < threshold

    def batch(bindings) -> list[bool]:
        """Vectorized form: one bool verdict per argument tuple, equal
        to calling ``predicate(*args)`` per element — the batch executor
        uses this to amortise per-call dispatch. ``%r`` formatting
        reproduces the tuple ``repr`` byte-for-byte (``%r`` is
        ``repr``) at roughly half the cost of building and repr-ing the
        prefixed tuple per element."""
        if not bindings:
            return []
        crc32 = zlib.crc32
        buckets = _HASH_BUCKETS
        arity = len(bindings[0])
        if arity == 0:
            verdict = (
                crc32(repr((seed,)).encode("utf-8")) % buckets < threshold
            )
            return [verdict] * len(bindings)
        fmt = "(" + repr(seed) + ", %r" * arity + ")"
        return [
            crc32((fmt % args).encode()) % buckets < threshold
            for args in bindings
        ]

    predicate.batch = batch
    return predicate


@dataclass
class UserFunction:
    """A registered UDF plus its catalog metadata.

    ``cost_per_call`` is expressed in random-I/O units (the paper's
    convention: ``costly100`` costs as much as 100 unclustered tuple reads).
    ``selectivity`` is the catalog's estimate of the pass rate when the
    function is used as a boolean predicate; it is ignored for non-boolean
    functions.
    """

    name: str
    fn: Callable[..., object]
    cost_per_call: float
    selectivity: float = 0.5
    calls: int = field(default=0, compare=False)

    def __call__(self, *args: object) -> object:
        self.calls += 1
        return self.fn(*args)

    def call_batch(self, bindings: list[tuple]) -> list[object]:
        """Invoke the function once per argument tuple, amortising
        dispatch when the implementation provides a vectorized ``batch``
        form (as :func:`synthetic_boolean` does; a ``batch`` form must
        return one ``bool`` per binding). Counts every element as one
        invocation either way. Falls back to per-call dispatch whenever
        ``fn`` lacks a ``batch`` attribute — in particular, a
        fault-injector wrapper replaces ``fn`` and relies on the
        per-call ``calls`` index, and the fallback preserves it."""
        batch = getattr(self.fn, "batch", None)
        if batch is None:
            return [self(*args) for args in bindings]
        self.calls += len(bindings)
        return batch(bindings)

    def reset(self) -> None:
        self.calls = 0

    @property
    def charged(self) -> float:
        """Total charged cost so far: invocations × per-call cost."""
        return self.calls * self.cost_per_call


class FunctionRegistry:
    """Name → :class:`UserFunction` registry with invocation accounting."""

    def __init__(self) -> None:
        self._functions: dict[str, UserFunction] = {}

    def register(
        self,
        name: str,
        fn: Callable[..., object] | None = None,
        *,
        cost_per_call: float,
        selectivity: float = 0.5,
        seed: int = 0,
    ) -> UserFunction:
        """Register a UDF.

        When ``fn`` is omitted, a deterministic synthetic boolean with the
        declared ``selectivity`` is installed — the common case for
        reproducing the paper's ``costlyN`` functions.
        """
        if name in self._functions:
            raise DuplicateNameError(f"function already registered: {name!r}")
        if fn is None:
            fn = synthetic_boolean(selectivity, seed=seed)
        function = UserFunction(
            name=name,
            fn=fn,
            cost_per_call=cost_per_call,
            selectivity=selectivity,
        )
        self._functions[name] = function
        return function

    def register_costly(
        self, cost: int, *, selectivity: float = 0.5, seed: int = 0
    ) -> UserFunction:
        """Register the paper's ``costly<N>`` naming shorthand."""
        return self.register(
            f"costly{cost}",
            cost_per_call=float(cost),
            selectivity=selectivity,
            seed=seed,
        )

    def get(self, name: str) -> UserFunction:
        try:
            return self._functions[name]
        except KeyError:
            raise UnknownFunctionError(name) from None

    def __contains__(self, name: str) -> bool:
        return name in self._functions

    def names(self) -> list[str]:
        return sorted(self._functions)

    def reset_counters(self) -> None:
        for function in self._functions.values():
            function.reset()

    def total_calls(self) -> int:
        return sum(f.calls for f in self._functions.values())

    def total_charged(self) -> float:
        """Charged function cost across all UDFs, in random-I/O units."""
        return sum(f.charged for f in self._functions.values())
