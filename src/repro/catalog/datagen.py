"""Synthetic database generator (the paper's Section 2 schema).

The paper's database follows Hong and Stonebraker with cardinalities scaled
up by 10: 100-byte tuples, attributes named by their repetition factor
(``u20``: each value duplicated ~20 times), ``u``-prefixed attributes
unindexed, everything else carrying a B-tree index. We name relations
``t1 .. t10`` where ``tN`` holds ``N × scale`` tuples; the paper's scale
(~110 MB with indexes and catalogs) corresponds to ``scale=10_000``.

Generation is fully deterministic in ``seed``; a column of repetition *k*
over cardinality *c* holds each value of ``range(c // k)`` exactly *k*
times (up to remainder), shuffled. Declared catalog statistics therefore
match measured statistics exactly — verified by tests.
"""

from __future__ import annotations

import random
import re

from repro.catalog.catalog import Catalog, TableEntry
from repro.catalog.schema import RelationSchema
from repro.catalog.statistics import declared_stats
from repro.cost.params import CostParams
from repro.database import Database
from repro.errors import CatalogError
from repro.storage.btree import BTree
from repro.storage.buffer import BufferPool
from repro.storage.heap import HeapFile
from repro.storage.meter import CostMeter

#: The paper's relation family.
DEFAULT_RELATIONS = tuple(f"t{n}" for n in range(1, 11))

#: Attribute mix per relation: indexed and unindexed at several repetition
#: factors, per the paper's naming convention.
DEFAULT_COLUMNS = ("a1", "a20", "a100", "ua1", "ua20", "ua100", "u20", "u100")

#: The scale at which the database matches the paper's (~110 MB).
PAPER_SCALE = 10_000

_RELATION_RE = re.compile(r"^t(\d+)$")


def relation_cardinality(name: str, scale: int) -> int:
    """``tN`` holds ``N × scale`` tuples."""
    match = _RELATION_RE.match(name)
    if match is None:
        raise CatalogError(
            f"relation name {name!r} does not follow the tN convention"
        )
    return int(match.group(1)) * scale


def generate_column(
    cardinality: int, repetition: int, rng: random.Random
) -> list[int]:
    """A shuffled column where each value repeats ~``repetition`` times."""
    ndistinct = max(1, cardinality // repetition)
    values = [min(i // repetition, ndistinct - 1) for i in range(cardinality)]
    rng.shuffle(values)
    return values


def build_table(
    db: Database, name: str, cardinality: int, columns=DEFAULT_COLUMNS
) -> TableEntry:
    """Generate, load, and index one relation into ``db``."""
    schema = RelationSchema.from_names(name, list(columns))
    rng = random.Random(f"{db.seed}/{name}")
    data = [
        generate_column(cardinality, attribute.repetition, rng)
        for attribute in schema.attributes
    ]
    rows = list(zip(*data)) if data and cardinality else []

    heap = HeapFile(
        name, schema.tuple_width, db.pool, page_size=db.params.page_size
    )
    rids = [heap.insert(row) for row in rows]

    entry = TableEntry(
        schema=schema,
        stats=declared_stats(schema, cardinality, db.params.page_size),
        heap=heap,
    )
    for position, attribute in enumerate(schema.attributes):
        if attribute.indexed:
            index = BTree(
                f"{name}_{attribute.name}",
                db.pool,
                page_size=db.params.page_size,
            )
            index.bulk_load(
                [(row[position], rid) for row, rid in zip(rows, rids)]
            )
            entry.indexes[attribute.name] = index
    db.catalog.register_table(entry)
    return entry


def register_standard_functions(
    db: Database, selectivity: float = 0.5, seed: int = 0
) -> None:
    """Register the paper's ``costlyN`` function family."""
    for cost in (1, 10, 100, 1000):
        db.catalog.functions.register_costly(
            cost, selectivity=selectivity, seed=seed + cost
        )


def build_database(
    scale: int = 1000,
    seed: int = 42,
    relations=DEFAULT_RELATIONS,
    columns=DEFAULT_COLUMNS,
    params: CostParams | None = None,
    pool_pages: int | None = None,
    register_functions: bool = True,
) -> Database:
    """Build the full synthetic database.

    ``pool_pages=None`` sizes the buffer pool at a quarter of the heap
    pages (min 64), roughly mirroring the paper's 32 MB of main memory
    against a 110 MB database.
    """
    params = params or CostParams()
    meter = CostMeter(seq_weight=params.seq_weight)
    # The pool is created with a placeholder capacity and resized below,
    # once the data volume is known.
    pool = BufferPool(1, meter)
    db = Database(
        catalog=Catalog(),
        meter=meter,
        pool=pool,
        params=params,
        scale=scale,
        seed=seed,
        description=f"Hong-Stonebraker-style synthetic database, scale={scale}",
    )
    for name in relations:
        build_table(db, name, relation_cardinality(name, scale), columns)
    total_pages = sum(entry.pages for entry in db.catalog)
    pool.capacity_pages = (
        pool_pages if pool_pages is not None else max(64, total_pages // 4)
    )
    if register_functions:
        register_standard_functions(db, seed=seed)
    meter.reset()
    pool.clear()
    pool.reset_stats()
    return db


def paper_scale_database(seed: int = 42) -> Database:
    """The database at the paper's published scale (~110 MB; slow to build)."""
    return build_database(scale=PAPER_SCALE, seed=seed)
