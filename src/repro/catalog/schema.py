"""Relation schemas and the paper's attribute naming convention.

The paper (Section 2) uses a schema derived from Hong and Stonebraker:

* attributes whose names start with ``u`` are unindexed; all others carry a
  B-tree index;
* the number in an attribute name gives the approximate number of times each
  value is repeated in the column (``u20`` means each value appears ~20
  times; ``a1``/``ua1`` are unique).

:func:`parse_attribute_name` decodes that convention so the synthetic data
generator and the statistics module can derive repetition factors and index
flags directly from names.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.errors import DuplicateNameError, UnknownAttributeError

#: Tuple width used throughout the paper's experiments ("All tuples are 100
#: bytes wide").
DEFAULT_TUPLE_WIDTH = 100

_NAME_RE = re.compile(r"^(?P<unindexed>u?)(?P<stem>[a-z]*?)(?P<rep>\d+)$")


def parse_attribute_name(name: str) -> tuple[bool, int]:
    """Decode the paper's attribute naming convention.

    Returns ``(indexed, repetition)`` where ``repetition`` is the approximate
    number of times each value repeats in the column. Names that do not match
    the convention default to an unindexed, unique attribute.

    >>> parse_attribute_name("a20")
    (True, 20)
    >>> parse_attribute_name("ua1")
    (False, 1)
    >>> parse_attribute_name("u20")
    (False, 20)
    """
    match = _NAME_RE.match(name)
    if match is None:
        return (False, 1)
    indexed = not match.group("unindexed")
    repetition = max(1, int(match.group("rep")))
    return (indexed, repetition)


@dataclass(frozen=True)
class Attribute:
    """One column of a relation.

    ``repetition`` drives the synthetic data generator: a column of
    repetition *k* over a relation of cardinality *c* holds values drawn from
    ``range(c // k)`` so each value appears ~*k* times.
    """

    name: str
    indexed: bool
    repetition: int = 1

    @classmethod
    def from_name(cls, name: str) -> "Attribute":
        """Build an attribute from the paper's naming convention alone."""
        indexed, repetition = parse_attribute_name(name)
        return cls(name=name, indexed=indexed, repetition=repetition)


@dataclass
class RelationSchema:
    """An ordered list of attributes plus the physical tuple width."""

    name: str
    attributes: list[Attribute]
    tuple_width: int = DEFAULT_TUPLE_WIDTH
    _positions: dict[str, int] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._positions = {}
        for position, attribute in enumerate(self.attributes):
            if attribute.name in self._positions:
                raise DuplicateNameError(
                    f"duplicate attribute {attribute.name!r} "
                    f"on relation {self.name!r}"
                )
            self._positions[attribute.name] = position

    @classmethod
    def from_names(
        cls,
        relation_name: str,
        attribute_names: list[str],
        tuple_width: int = DEFAULT_TUPLE_WIDTH,
    ) -> "RelationSchema":
        """Build a schema whose attributes all follow the naming convention."""
        attributes = [Attribute.from_name(name) for name in attribute_names]
        return cls(relation_name, attributes, tuple_width)

    def position(self, attribute_name: str) -> int:
        """Return the 0-based slot of ``attribute_name`` within a tuple."""
        try:
            return self._positions[attribute_name]
        except KeyError:
            raise UnknownAttributeError(self.name, attribute_name) from None

    def attribute(self, attribute_name: str) -> Attribute:
        """Return the :class:`Attribute` descriptor for a column."""
        return self.attributes[self.position(attribute_name)]

    def has_attribute(self, attribute_name: str) -> bool:
        return attribute_name in self._positions

    @property
    def attribute_names(self) -> list[str]:
        return [attribute.name for attribute in self.attributes]

    @property
    def indexed_attributes(self) -> list[str]:
        return [a.name for a in self.attributes if a.indexed]

    def __len__(self) -> int:
        return len(self.attributes)
