"""System catalog: relation schemas, statistics, and user-defined functions.

This package models the Montage system catalogs that the paper's optimizer
consults: per-relation cardinality and page counts, per-attribute distinct
value counts, which attributes carry B-tree indexes, and the cost/selectivity
metadata of user-defined functions (the paper's ``costly100`` etc.).
"""

from repro.catalog.schema import (
    Attribute,
    RelationSchema,
    parse_attribute_name,
)
from repro.catalog.statistics import AttributeStats, RelationStats
from repro.catalog.functions import (
    FunctionRegistry,
    UserFunction,
    synthetic_boolean,
)
from repro.catalog.catalog import Catalog, TableEntry

__all__ = [
    "Attribute",
    "AttributeStats",
    "Catalog",
    "FunctionRegistry",
    "RelationSchema",
    "RelationStats",
    "TableEntry",
    "UserFunction",
    "parse_attribute_name",
    "synthetic_boolean",
]
