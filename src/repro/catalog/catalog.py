"""The catalog proper: a registry of tables and user-defined functions.

The optimizer consults the catalog for statistics and index availability;
the executor consults it for heap files, B-trees, and UDF callables. Storage
handles are stored as opaque attributes so the catalog package stays free of
storage imports (the database assembly in :mod:`repro.database` wires them).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.catalog.functions import FunctionRegistry
from repro.catalog.schema import RelationSchema
from repro.catalog.statistics import RelationStats
from repro.errors import (
    DuplicateNameError,
    UnknownAttributeError,
    UnknownRelationError,
)


@dataclass
class TableEntry:
    """Everything the system knows about one base relation."""

    schema: RelationSchema
    stats: RelationStats
    heap: Any = None
    indexes: dict[str, Any] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.schema.name

    @property
    def cardinality(self) -> int:
        return self.stats.cardinality

    @property
    def pages(self) -> int:
        return self.stats.pages

    def has_index(self, attribute: str) -> bool:
        return attribute in self.indexes

    def index(self, attribute: str) -> Any:
        try:
            return self.indexes[attribute]
        except KeyError:
            raise UnknownAttributeError(self.name, attribute) from None


class Catalog:
    """Name → :class:`TableEntry` registry plus the function registry."""

    def __init__(self) -> None:
        self._tables: dict[str, TableEntry] = {}
        self.functions = FunctionRegistry()

    def register_table(self, entry: TableEntry) -> TableEntry:
        if entry.name in self._tables:
            raise DuplicateNameError(
                f"relation already registered: {entry.name!r}"
            )
        self._tables[entry.name] = entry
        return entry

    def table(self, name: str) -> TableEntry:
        try:
            return self._tables[name]
        except KeyError:
            raise UnknownRelationError(name) from None

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def __iter__(self) -> Iterator[TableEntry]:
        return iter(self._tables.values())

    def table_names(self) -> list[str]:
        return sorted(self._tables)

    def resolve_attribute(
        self, attribute: str, tables_in_scope: list[str]
    ) -> str:
        """Find the unique in-scope table that defines ``attribute``.

        Used by the SQL binder for unqualified column references. Raises
        :class:`UnknownAttributeError` when the name resolves to zero or to
        more than one table.
        """
        owners = [
            name
            for name in tables_in_scope
            if self.table(name).schema.has_attribute(attribute)
        ]
        if len(owners) != 1:
            raise UnknownAttributeError(
                "|".join(tables_in_scope) or "<empty scope>", attribute
            )
        return owners[0]

    def apply_feedback(self, store, epoch: int | None = None) -> int:
        """Overwrite declared UDF statistics with observed ones (opt-in).

        ``store`` is duck-typed — anything with
        ``observations_for(epoch)`` yielding objects with ``functions``,
        ``evaluated``/``observed_selectivity`` and
        ``charged_calls``/``observed_cost_per_call`` works; in practice
        it is a :class:`~repro.obs.feedback.StatsFeedbackStore`
        (``epoch=None`` means its latest epoch). This is the explicit
        jgmp-style injection path: nothing in planning or execution calls
        it implicitly, so plan fingerprints are untouched until a caller
        opts in, and callers must recompile workloads afterwards for
        ranks to re-derive from the new numbers.

        Only single-function predicate observations are applied — a
        multi-UDF conjunct's pass rate and charge cannot be attributed to
        either function — and only domain-valid values (selectivity
        finite in ``[0, 1]`` with at least one evaluation; per-call cost
        finite, non-negative, with at least one charged call). Returns
        the number of statistic fields changed.
        """
        changed = 0
        for observation in store.observations_for(epoch):
            names = tuple(observation.functions)
            if len(names) != 1 or names[0] not in self.functions:
                continue
            function = self.functions.get(names[0])
            if observation.evaluated > 0:
                selectivity = observation.observed_selectivity
                if (
                    math.isfinite(selectivity)
                    and 0.0 <= selectivity <= 1.0
                    and selectivity != function.selectivity
                ):
                    function.selectivity = selectivity
                    changed += 1
            if observation.charged_calls > 0:
                cost = observation.observed_cost_per_call
                if (
                    math.isfinite(cost)
                    and cost >= 0.0
                    and cost != function.cost_per_call
                ):
                    function.cost_per_call = cost
                    changed += 1
        return changed

    def total_bytes(self, include_indexes: bool = True) -> int:
        """Approximate database size, mirroring the paper's ~110 MB figure."""
        total = 0
        for entry in self:
            page_size = getattr(entry.heap, "page_size", 8192)
            total += entry.pages * page_size
            if include_indexes:
                for index in entry.indexes.values():
                    total += getattr(index, "pages", 0) * page_size
        return total
