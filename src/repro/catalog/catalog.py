"""The catalog proper: a registry of tables and user-defined functions.

The optimizer consults the catalog for statistics and index availability;
the executor consults it for heap files, B-trees, and UDF callables. Storage
handles are stored as opaque attributes so the catalog package stays free of
storage imports (the database assembly in :mod:`repro.database` wires them).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.catalog.functions import FunctionRegistry
from repro.catalog.schema import RelationSchema
from repro.catalog.statistics import RelationStats
from repro.errors import (
    DuplicateNameError,
    UnknownAttributeError,
    UnknownRelationError,
)


@dataclass
class TableEntry:
    """Everything the system knows about one base relation."""

    schema: RelationSchema
    stats: RelationStats
    heap: Any = None
    indexes: dict[str, Any] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.schema.name

    @property
    def cardinality(self) -> int:
        return self.stats.cardinality

    @property
    def pages(self) -> int:
        return self.stats.pages

    def has_index(self, attribute: str) -> bool:
        return attribute in self.indexes

    def index(self, attribute: str) -> Any:
        try:
            return self.indexes[attribute]
        except KeyError:
            raise UnknownAttributeError(self.name, attribute) from None


class Catalog:
    """Name → :class:`TableEntry` registry plus the function registry."""

    def __init__(self) -> None:
        self._tables: dict[str, TableEntry] = {}
        self.functions = FunctionRegistry()

    def register_table(self, entry: TableEntry) -> TableEntry:
        if entry.name in self._tables:
            raise DuplicateNameError(
                f"relation already registered: {entry.name!r}"
            )
        self._tables[entry.name] = entry
        return entry

    def table(self, name: str) -> TableEntry:
        try:
            return self._tables[name]
        except KeyError:
            raise UnknownRelationError(name) from None

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def __iter__(self) -> Iterator[TableEntry]:
        return iter(self._tables.values())

    def table_names(self) -> list[str]:
        return sorted(self._tables)

    def resolve_attribute(
        self, attribute: str, tables_in_scope: list[str]
    ) -> str:
        """Find the unique in-scope table that defines ``attribute``.

        Used by the SQL binder for unqualified column references. Raises
        :class:`UnknownAttributeError` when the name resolves to zero or to
        more than one table.
        """
        owners = [
            name
            for name in tables_in_scope
            if self.table(name).schema.has_attribute(attribute)
        ]
        if len(owners) != 1:
            raise UnknownAttributeError(
                "|".join(tables_in_scope) or "<empty scope>", attribute
            )
        return owners[0]

    def total_bytes(self, include_indexes: bool = True) -> int:
        """Approximate database size, mirroring the paper's ~110 MB figure."""
        total = 0
        for entry in self:
            page_size = getattr(entry.heap, "page_size", 8192)
            total += entry.pages * page_size
            if include_indexes:
                for index in entry.indexes.values():
                    total += getattr(index, "pages", 0) * page_size
        return total
