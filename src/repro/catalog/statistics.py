"""Optimizer statistics: cardinalities, page counts, distinct values.

These mirror the System R / Montage catalog statistics that every cost
estimate in the paper consumes. Statistics may be *declared* (derived from
the schema's naming convention before any data exists) or *measured* (computed
by scanning a populated table); the synthetic generator produces data whose
measured statistics match the declared ones, so plan-quality conclusions are
insensitive to which source is used.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.catalog.schema import RelationSchema


@dataclass(frozen=True)
class AttributeStats:
    """Statistics for one column."""

    ndistinct: int
    low: int
    high: int

    @property
    def width(self) -> int:
        """Size of the value domain (inclusive bounds)."""
        return max(0, self.high - self.low + 1)


@dataclass(frozen=True)
class RelationStats:
    """Statistics for one relation."""

    cardinality: int
    pages: int
    attributes: dict[str, AttributeStats]

    def attribute(self, name: str) -> AttributeStats:
        return self.attributes[name]

    def ndistinct(self, name: str) -> int:
        return self.attributes[name].ndistinct


def pages_for(cardinality: int, tuple_width: int, page_size: int) -> int:
    """Number of heap pages needed for ``cardinality`` fixed-width tuples."""
    if cardinality <= 0:
        return 0
    per_page = max(1, page_size // tuple_width)
    return math.ceil(cardinality / per_page)


def declared_stats(
    schema: RelationSchema, cardinality: int, page_size: int
) -> RelationStats:
    """Derive statistics from the naming convention alone.

    A column of repetition *k* over *c* tuples holds values ``0 .. c//k - 1``
    each repeated ~*k* times, so its distinct count is ``max(1, c // k)``.
    """
    attributes = {}
    for attribute in schema.attributes:
        ndistinct = max(1, cardinality // attribute.repetition)
        attributes[attribute.name] = AttributeStats(
            ndistinct=ndistinct, low=0, high=ndistinct - 1
        )
    return RelationStats(
        cardinality=cardinality,
        pages=pages_for(cardinality, schema.tuple_width, page_size),
        attributes=attributes,
    )


def measured_stats(
    schema: RelationSchema,
    rows: list[tuple],
    page_size: int,
) -> RelationStats:
    """Compute exact statistics by scanning ``rows``."""
    attributes = {}
    for position, attribute in enumerate(schema.attributes):
        values = [row[position] for row in rows]
        if values:
            attributes[attribute.name] = AttributeStats(
                ndistinct=len(set(values)), low=min(values), high=max(values)
            )
        else:
            attributes[attribute.name] = AttributeStats(
                ndistinct=0, low=0, high=-1
            )
    return RelationStats(
        cardinality=len(rows),
        pages=pages_for(len(rows), schema.tuple_width, page_size),
        attributes=attributes,
    )
