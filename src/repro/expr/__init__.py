"""Expression ASTs and predicate descriptors.

Expressions are what queries say (``costly100(t3.ua1)``, ``t3.a1 = t10.a1``);
:class:`~repro.expr.predicates.Predicate` is what the optimizer reasons
about — a conjunct annotated with the tables it references, its per-tuple
cost, its selectivity estimate, and hence its *rank*.
"""

from repro.expr.expressions import (
    BinaryOp,
    Column,
    Comparison,
    Const,
    Expr,
    FuncCall,
    Logical,
    Not,
    Scope,
)
from repro.expr.predicates import Predicate, analyze_conjunct, rank

__all__ = [
    "BinaryOp",
    "Column",
    "Comparison",
    "Const",
    "Expr",
    "FuncCall",
    "Logical",
    "Not",
    "Predicate",
    "Scope",
    "analyze_conjunct",
    "rank",
]
