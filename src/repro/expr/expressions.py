"""A small expression AST shared by the SQL front-end, optimizer, executor.

Nodes are immutable dataclasses. Evaluation binds column references through
a :class:`Scope` (a mapping from qualified column to slot in the current
composite row) and resolves function names through the catalog's
:class:`~repro.catalog.functions.FunctionRegistry`, which also counts
invocations — the paper's measurement methodology hinges on those counters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.catalog.functions import FunctionRegistry
from repro.errors import PlanError

#: A qualified column: (table name, attribute name).
QualifiedColumn = tuple[str, str]


class Scope:
    """Maps qualified columns to slots in a composite row."""

    def __init__(self, columns: list[QualifiedColumn]) -> None:
        self.columns = list(columns)
        self._slots = {column: slot for slot, column in enumerate(columns)}
        if len(self._slots) != len(columns):
            raise PlanError(f"duplicate columns in scope: {columns}")

    def slot(self, table: str, attribute: str) -> int:
        try:
            return self._slots[(table, attribute)]
        except KeyError:
            raise PlanError(
                f"column {table}.{attribute} not in scope {self.columns}"
            ) from None

    def __contains__(self, column: QualifiedColumn) -> bool:
        return column in self._slots

    def concat(self, other: "Scope") -> "Scope":
        return Scope(self.columns + other.columns)

    def __len__(self) -> int:
        return len(self.columns)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Scope) and self.columns == other.columns

    def __repr__(self) -> str:
        return f"Scope({self.columns!r})"


@dataclass(frozen=True)
class Expr:
    """Abstract base for expression nodes."""

    def columns(self) -> Iterator[QualifiedColumn]:
        """Yield every qualified column referenced (with repeats)."""
        raise NotImplementedError

    def function_names(self) -> Iterator[str]:
        """Yield every function name invoked (with repeats)."""
        raise NotImplementedError

    def evaluate(
        self, row: tuple, scope: Scope, functions: FunctionRegistry
    ) -> object:
        raise NotImplementedError

    def tables(self) -> frozenset[str]:
        return frozenset(table for table, _ in self.columns())


@dataclass(frozen=True)
class Const(Expr):
    value: object

    def columns(self) -> Iterator[QualifiedColumn]:
        return iter(())

    def function_names(self) -> Iterator[str]:
        return iter(())

    def evaluate(
        self, row: tuple, scope: Scope, functions: FunctionRegistry
    ) -> object:
        return self.value

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return f"'{self.value}'"
        return repr(self.value)


@dataclass(frozen=True)
class Column(Expr):
    table: str
    attribute: str

    def columns(self) -> Iterator[QualifiedColumn]:
        yield (self.table, self.attribute)

    def function_names(self) -> Iterator[str]:
        return iter(())

    def evaluate(
        self, row: tuple, scope: Scope, functions: FunctionRegistry
    ) -> object:
        return row[scope.slot(self.table, self.attribute)]

    def __str__(self) -> str:
        return f"{self.table}.{self.attribute}"


@dataclass(frozen=True)
class FuncCall(Expr):
    name: str
    args: tuple[Expr, ...]

    def columns(self) -> Iterator[QualifiedColumn]:
        for arg in self.args:
            yield from arg.columns()

    def function_names(self) -> Iterator[str]:
        yield self.name
        for arg in self.args:
            yield from arg.function_names()

    def evaluate(
        self, row: tuple, scope: Scope, functions: FunctionRegistry
    ) -> object:
        values = [arg.evaluate(row, scope, functions) for arg in self.args]
        return functions.get(self.name)(*values)

    def __str__(self) -> str:
        rendered = ", ".join(str(arg) for arg in self.args)
        return f"{self.name}({rendered})"


_COMPARATORS = {
    "=": lambda a, b: a == b,
    "<>": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


@dataclass(frozen=True)
class Comparison(Expr):
    op: str
    left: Expr
    right: Expr

    def __post_init__(self) -> None:
        if self.op not in _COMPARATORS:
            raise PlanError(f"unknown comparison operator: {self.op!r}")

    def columns(self) -> Iterator[QualifiedColumn]:
        yield from self.left.columns()
        yield from self.right.columns()

    def function_names(self) -> Iterator[str]:
        yield from self.left.function_names()
        yield from self.right.function_names()

    def evaluate(
        self, row: tuple, scope: Scope, functions: FunctionRegistry
    ) -> object:
        left = self.left.evaluate(row, scope, functions)
        right = self.right.evaluate(row, scope, functions)
        if left is None or right is None:
            return None
        return _COMPARATORS[self.op](left, right)

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


_ARITHMETIC = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
}


@dataclass(frozen=True)
class BinaryOp(Expr):
    """Arithmetic on column values (``t3.a1 + 10``)."""

    op: str
    left: Expr
    right: Expr

    def __post_init__(self) -> None:
        if self.op not in _ARITHMETIC:
            raise PlanError(f"unknown arithmetic operator: {self.op!r}")

    def columns(self) -> Iterator[QualifiedColumn]:
        yield from self.left.columns()
        yield from self.right.columns()

    def function_names(self) -> Iterator[str]:
        yield from self.left.function_names()
        yield from self.right.function_names()

    def evaluate(
        self, row: tuple, scope: Scope, functions: FunctionRegistry
    ) -> object:
        left = self.left.evaluate(row, scope, functions)
        right = self.right.evaluate(row, scope, functions)
        if left is None or right is None:
            return None
        return _ARITHMETIC[self.op](left, right)

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class Logical(Expr):
    """AND / OR over boolean sub-expressions."""

    op: str
    operands: tuple[Expr, ...]

    def __post_init__(self) -> None:
        if self.op not in ("AND", "OR"):
            raise PlanError(f"unknown logical operator: {self.op!r}")
        if len(self.operands) < 2:
            raise PlanError("logical operator needs at least two operands")

    def columns(self) -> Iterator[QualifiedColumn]:
        for operand in self.operands:
            yield from operand.columns()

    def function_names(self) -> Iterator[str]:
        for operand in self.operands:
            yield from operand.function_names()

    def evaluate(
        self, row: tuple, scope: Scope, functions: FunctionRegistry
    ) -> object:
        values = [
            operand.evaluate(row, scope, functions)
            for operand in self.operands
        ]
        if self.op == "AND":
            if any(value is False for value in values):
                return False
            if any(value is None for value in values):
                return None
            return True
        if any(value is True for value in values):
            return True
        if any(value is None for value in values):
            return None
        return False

    def __str__(self) -> str:
        joiner = f" {self.op} "
        return "(" + joiner.join(str(o) for o in self.operands) + ")"


@dataclass(frozen=True)
class Not(Expr):
    operand: Expr

    def columns(self) -> Iterator[QualifiedColumn]:
        yield from self.operand.columns()

    def function_names(self) -> Iterator[str]:
        yield from self.operand.function_names()

    def evaluate(
        self, row: tuple, scope: Scope, functions: FunctionRegistry
    ) -> object:
        value = self.operand.evaluate(row, scope, functions)
        if value is None:
            return None
        return not value

    def __str__(self) -> str:
        return f"NOT ({self.operand})"


def conjuncts(expr: Expr | None) -> list[Expr]:
    """Flatten a WHERE expression into its top-level AND conjuncts."""
    if expr is None:
        return []
    if isinstance(expr, Logical) and expr.op == "AND":
        flattened: list[Expr] = []
        for operand in expr.operands:
            flattened.extend(conjuncts(operand))
        return flattened
    return [expr]
