"""Predicate descriptors: the unit the placement algorithms move around.

A :class:`Predicate` is one WHERE-clause conjunct annotated with everything
the optimizer needs:

* the set of tables it references (one table → a selection; two or more →
  a join predicate);
* its estimated per-tuple evaluation cost, in random-I/O units (simple
  comparisons are free, per the paper's "we treat traditional simple
  predicates as being of zero cost");
* its estimated selectivity (System R rules for simple predicates, catalog
  metadata for user-defined functions);
* for equijoins, the two column references, so join methods and per-input
  selectivities can be derived.

The paper's central metric is the *rank* of a predicate,

    rank = (selectivity - 1) / cost_per_tuple,

computed here by :func:`rank`. Zero-cost predicates get rank −∞ so they
always sort first — applying a free filter can never hurt.

Disjunctions generalise the chain: a conjunct whose expression contains
``OR`` (or a nested ``AND`` under an ``OR``) is annotated with a
:class:`BoolBranch` tree whose children are *cost-ordered* for
short-circuit evaluation, following Kim/Ileri/Madden ("Optimizing Query
Predicates with Disjunctions for Column-Oriented Engines"):

* AND children short-circuit on the first false, so they are ordered by
  ascending ``rank(s, c)`` — exactly the paper's chain rule applied
  inside one conjunct;
* OR children short-circuit on the first *true*, so they are ordered by
  ascending ``rank(1 − s, c)`` (equivalently ascending ``c / s``): the
  child most likely to terminate evaluation per unit cost runs first.

The tree's :attr:`~BoolBranch.cost` is the *expected short-circuit cost*
per input tuple — ``Σᵢ (∏_{j<i} reach_j) · cᵢ`` where ``reach`` is the
probability a child is even evaluated (``s`` for AND, ``1 − s`` for OR).
:func:`analyze_conjunct` installs that as the predicate's
``cost_per_tuple``, so the cost model and the rank arithmetic price
disjunctive predicates at their short-circuit cost, and the executors
(row and vector) charge leaf-by-leaf in the same order, making estimates
and actuals agree. Single-leaf conjuncts are unaffected: their tree is a
:class:`BoolLeaf` and their cost is the plain per-call sum as before.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field

from repro.catalog.catalog import Catalog
from repro.expr.expressions import (
    Column,
    Comparison,
    Const,
    Expr,
    FuncCall,
    Logical,
    Not,
    QualifiedColumn,
)

#: Costs at or below this are treated as "free" for rank purposes.
ZERO_COST = 1e-9

#: Fallback selectivity for range predicates with unusable bounds (System R's
#: traditional 1/3).
DEFAULT_RANGE_SELECTIVITY = 1.0 / 3.0

_predicate_ids = itertools.count(1)


def rank(selectivity: float, cost_per_tuple: float) -> float:
    """The paper's rank metric.

    Free operators get an infinite-magnitude rank with the sign of
    ``selectivity - 1``: a free filter (selectivity < 1) should always run
    first (−∞) and a free fanout operator (selectivity > 1, e.g. a zero-cost
    expanding join) should always run last (+∞).
    """
    if cost_per_tuple <= ZERO_COST:
        if selectivity < 1.0:
            return -math.inf
        if selectivity > 1.0:
            return math.inf
        return 0.0
    return (selectivity - 1.0) / cost_per_tuple


@dataclass(frozen=True)
class BoolLeaf:
    """An indivisible unit of a conjunct's boolean tree: any expression
    that is not an AND/OR — comparisons, function calls, NOT subtrees."""

    expr: Expr
    selectivity: float
    cost: float

    @property
    def is_expensive(self) -> bool:
        return self.cost > ZERO_COST

    def __str__(self) -> str:
        return str(self.expr)


@dataclass(frozen=True)
class BoolBranch:
    """An AND/OR node with children in short-circuit evaluation order.

    ``cost`` is the expected per-tuple cost under short-circuiting, not
    the sum of the children's costs: child ``i`` only runs when none of
    its predecessors terminated the node (probability ``∏ s_j`` for AND,
    ``∏ (1 − s_j)`` for OR).
    """

    op: str  # "AND" | "OR"
    children: tuple["BoolLeaf | BoolBranch", ...]
    selectivity: float
    cost: float

    def leaves(self) -> tuple[BoolLeaf, ...]:
        out: list[BoolLeaf] = []
        for child in self.children:
            if isinstance(child, BoolLeaf):
                out.append(child)
            else:
                out.extend(child.leaves())
        return tuple(out)

    def __str__(self) -> str:
        joint = " AND " if self.op == "AND" else " OR "
        return "(" + joint.join(str(child) for child in self.children) + ")"


def build_bool_tree(catalog: Catalog, expr: Expr) -> BoolLeaf | BoolBranch:
    """Annotate one conjunct's expression as a cost-ordered boolean tree.

    AND children sort by ascending ``rank(s, c)``; OR children by
    ascending ``rank(1 − s, c)`` (ascending cost per unit of terminating
    probability). Both sorts are stable, so equal-rank children keep
    their source order and the result is deterministic.
    """
    if isinstance(expr, Logical):
        children = [build_bool_tree(catalog, o) for o in expr.operands]
        if expr.op == "AND":
            children.sort(key=lambda c: rank(c.selectivity, c.cost))
            selectivity = math.prod(c.selectivity for c in children)
        else:
            children.sort(key=lambda c: rank(1.0 - c.selectivity, c.cost))
            selectivity = 1.0 - math.prod(
                1.0 - c.selectivity for c in children
            )
        cost = 0.0
        reach = 1.0
        for child in children:
            cost += reach * child.cost
            reach *= (
                child.selectivity
                if expr.op == "AND"
                else 1.0 - child.selectivity
            )
        return BoolBranch(expr.op, tuple(children), selectivity, cost)
    return BoolLeaf(
        expr=expr,
        selectivity=_estimate_selectivity(catalog, expr),
        cost=_estimate_cost(catalog, expr),
    )


@dataclass(eq=False)
class Predicate:
    """One annotated conjunct. Identity-based equality: two structurally
    identical conjuncts in one query are still distinct placement units."""

    expr: Expr
    tables: frozenset[str]
    selectivity: float
    cost_per_tuple: float
    equijoin: tuple[Column, Column] | None = None
    #: Cost-ordered boolean tree of the conjunct; ``None`` for predicates
    #: built without catalog analysis (tests, ad-hoc construction), in
    #: which case the executors fall back to whole-expression evaluation.
    tree: BoolLeaf | BoolBranch | None = None
    pred_id: int = field(default_factory=lambda: next(_predicate_ids))

    @property
    def is_join(self) -> bool:
        return len(self.tables) >= 2

    @property
    def is_selection(self) -> bool:
        return len(self.tables) <= 1

    @property
    def is_equijoin(self) -> bool:
        return self.equijoin is not None

    @property
    def is_expensive(self) -> bool:
        return self.cost_per_tuple > ZERO_COST

    @property
    def is_compound(self) -> bool:
        """True when the conjunct is a boolean tree (contains OR/AND)
        rather than a single comparison or function call."""
        return isinstance(self.tree, BoolBranch)

    @property
    def rank(self) -> float:
        return rank(self.selectivity, self.cost_per_tuple)

    def input_columns(self) -> tuple[QualifiedColumn, ...]:
        """Distinct columns feeding the predicate — the cache key schema."""
        seen: dict[QualifiedColumn, None] = {}
        for column in self.expr.columns():
            seen.setdefault(column, None)
        return tuple(seen)

    def table(self) -> str:
        """The single table of a selection predicate."""
        if not self.is_selection or not self.tables:
            raise ValueError(f"not a single-table selection: {self}")
        (only,) = self.tables
        return only

    def __str__(self) -> str:
        return str(self.expr)

    def __repr__(self) -> str:
        return (
            f"Predicate#{self.pred_id}({self.expr}, sel={self.selectivity:g},"
            f" cost={self.cost_per_tuple:g})"
        )


def _column_ndistinct(catalog: Catalog, column: Column) -> int:
    return max(1, catalog.table(column.table).stats.ndistinct(column.attribute))


def _comparison_selectivity(catalog: Catalog, expr: Comparison) -> float:
    left, right = expr.left, expr.right
    # Normalise constant-on-the-left comparisons.
    if isinstance(left, Const) and isinstance(right, Column):
        flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}.get(
            expr.op, expr.op
        )
        return _comparison_selectivity(
            catalog, Comparison(flipped, right, left)
        )

    if isinstance(left, Column) and isinstance(right, Column):
        ndistinct_left = _column_ndistinct(catalog, left)
        ndistinct_right = _column_ndistinct(catalog, right)
        if expr.op == "=":
            return 1.0 / max(ndistinct_left, ndistinct_right)
        if expr.op == "<>":
            return 1.0 - 1.0 / max(ndistinct_left, ndistinct_right)
        return DEFAULT_RANGE_SELECTIVITY

    if isinstance(left, Column) and isinstance(right, Const):
        stats = catalog.table(left.table).stats.attribute(left.attribute)
        ndistinct = max(1, stats.ndistinct)
        if expr.op == "=":
            return 1.0 / ndistinct
        if expr.op == "<>":
            return 1.0 - 1.0 / ndistinct
        value = right.value
        if isinstance(value, (int, float)) and stats.width > 0:
            fraction = (float(value) - stats.low) / stats.width
            fraction = min(1.0, max(0.0, fraction))
            if expr.op in ("<", "<="):
                return fraction
            return 1.0 - fraction
        return DEFAULT_RANGE_SELECTIVITY

    return DEFAULT_RANGE_SELECTIVITY


def _estimate_selectivity(catalog: Catalog, expr: Expr) -> float:
    """System R-style selectivity rules plus UDF catalog metadata."""
    if isinstance(expr, FuncCall):
        return catalog.functions.get(expr.name).selectivity
    if isinstance(expr, Comparison):
        function_names = list(expr.function_names())
        if function_names:
            # `f(x) = const` and friends: the catalog's declared selectivity
            # for the function is the pass rate of the whole predicate.
            selectivity = 1.0
            for name in set(function_names):
                selectivity *= catalog.functions.get(name).selectivity
            return selectivity
        return _comparison_selectivity(catalog, expr)
    if isinstance(expr, Logical):
        parts = [_estimate_selectivity(catalog, o) for o in expr.operands]
        if expr.op == "AND":
            return math.prod(parts)
        miss = math.prod(1.0 - part for part in parts)
        return 1.0 - miss
    if isinstance(expr, Not):
        return 1.0 - _estimate_selectivity(catalog, expr.operand)
    if isinstance(expr, Const):
        return 1.0 if expr.value else 0.0
    return DEFAULT_RANGE_SELECTIVITY


def _estimate_cost(catalog: Catalog, expr: Expr) -> float:
    """Per-tuple cost: one charged call per function occurrence."""
    return sum(
        catalog.functions.get(name).cost_per_call
        for name in expr.function_names()
    )


def _detect_equijoin(expr: Expr) -> tuple[Column, Column] | None:
    if (
        isinstance(expr, Comparison)
        and expr.op == "="
        and isinstance(expr.left, Column)
        and isinstance(expr.right, Column)
        and expr.left.table != expr.right.table
    ):
        return (expr.left, expr.right)
    return None


def analyze_conjunct(catalog: Catalog, expr: Expr) -> Predicate:
    """Annotate one WHERE conjunct into a :class:`Predicate`.

    The boolean tree carries the conjunct's selectivity and its expected
    short-circuit cost; for a single-leaf conjunct (no OR) both collapse
    to the plain estimates, so non-disjunctive predicates are annotated
    exactly as before.
    """
    tree = build_bool_tree(catalog, expr)
    return Predicate(
        expr=expr,
        tables=expr.tables(),
        selectivity=tree.selectivity,
        cost_per_tuple=tree.cost,
        equijoin=_detect_equijoin(expr),
        tree=tree,
    )
