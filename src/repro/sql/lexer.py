"""Tokenizer for the SQL subset."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SQLLexError

KEYWORDS = {
    "SELECT",
    "FROM",
    "WHERE",
    "AND",
    "OR",
    "NOT",
    "IN",
    "TRUE",
    "FALSE",
    "NULL",
}

#: Multi-character operators first so maximal munch works.
OPERATORS = ("<=", ">=", "<>", "!=", "=", "<", ">", "+", "-", "*", "/")

PUNCTUATION = ("(", ")", ",", ".", ";")


@dataclass(frozen=True)
class Token:
    kind: str  # KEYWORD | IDENT | NUMBER | STRING | OP | PUNCT | EOF
    text: str
    position: int


def tokenize(sql: str) -> list[Token]:
    tokens: list[Token] = []
    position = 0
    length = len(sql)
    while position < length:
        ch = sql[position]
        if ch.isspace():
            position += 1
            continue
        if ch == "-" and sql.startswith("--", position):
            newline = sql.find("\n", position)
            position = length if newline < 0 else newline + 1
            continue
        if ch.isalpha() or ch == "_":
            start = position
            while position < length and (
                sql[position].isalnum() or sql[position] == "_"
            ):
                position += 1
            word = sql[start:position]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token("KEYWORD", upper, start))
            else:
                tokens.append(Token("IDENT", word, start))
            continue
        if ch.isdigit():
            start = position
            while position < length and sql[position].isdigit():
                position += 1
            if position < length and sql[position] == ".":
                position += 1
                while position < length and sql[position].isdigit():
                    position += 1
            tokens.append(Token("NUMBER", sql[start:position], start))
            continue
        if ch == "'":
            start = position
            position += 1
            chunks: list[str] = []
            while True:
                if position >= length:
                    raise SQLLexError("unterminated string literal", start)
                if sql[position] == "'":
                    if position + 1 < length and sql[position + 1] == "'":
                        chunks.append("'")
                        position += 2
                        continue
                    position += 1
                    break
                chunks.append(sql[position])
                position += 1
            tokens.append(Token("STRING", "".join(chunks), start))
            continue
        matched_op = next(
            (op for op in OPERATORS if sql.startswith(op, position)), None
        )
        if matched_op is not None:
            tokens.append(Token("OP", matched_op, position))
            position += len(matched_op)
            continue
        if ch in PUNCTUATION:
            tokens.append(Token("PUNCT", ch, position))
            position += 1
            continue
        raise SQLLexError(f"unexpected character {ch!r}", position)
    tokens.append(Token("EOF", "", length))
    return tokens
