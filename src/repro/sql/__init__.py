"""A small SQL front-end for the Montage SQL subset the paper exercises.

Supported grammar: ``SELECT`` list (``*`` or columns), ``FROM`` a list of
base tables, and a ``WHERE`` tree of comparisons, arithmetic, boolean
connectives, user-defined function calls, and ``IN (SELECT …)`` subqueries.

Subqueries follow the Montage treatment described in Section 5.1: an ``IN``
predicate is desugared into an *expensive predicate* — a synthetic function
whose arguments are the outer-query columns feeding the predicate, whose
per-call cost is a scan of the subquery's table, and whose results are
memoised by the predicate cache keyed on those arguments (the paper's
``(student.mother, student.dept)`` example).
"""

from repro.sql.lexer import Token, tokenize
from repro.sql.parser import parse
from repro.sql.binder import bind

__all__ = ["Token", "bind", "parse", "tokenize"]


def compile_query(db, sql: str, name: str = ""):
    """Parse and bind one SQL statement into an optimizer Query."""
    return bind(db, parse(sql), name=name)
