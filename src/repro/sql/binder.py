"""Name resolution: raw SQL AST → analyzed optimizer Query.

The binder resolves unqualified columns against the FROM scope, validates
function names against the catalog, and — following Montage (Section 5.1)
— desugars ``IN (SELECT …)`` into an expensive predicate: a synthetic
function whose arguments are the outer-query values the predicate depends
on (the needle plus any correlated columns), whose per-call cost is a scan
of the subquery's relation, and whose results the predicate cache memoises
per argument binding. Attributes of the subquery's own relation are *not*
arguments: as the paper puts it, the inner relation "is a set-valued
constant in the predicate".
"""

from __future__ import annotations

import itertools

from repro.database import Database
from repro.errors import BindError
from repro.expr.expressions import (
    BinaryOp,
    Column,
    Comparison,
    Const,
    Expr,
    FuncCall,
    Logical,
    Not,
    Scope,
)
from repro.optimizer.query import Query
from repro.sql.ast import (
    SelectStmt,
    SqlBinary,
    SqlColumnRef,
    SqlExpr,
    SqlFuncCall,
    SqlIn,
    SqlLiteral,
    SqlLogical,
    SqlNot,
)

_COMPARISONS = {"=", "<>", "<", "<=", ">", ">="}

#: Pseudo-table name for correlation parameters inside subquery evaluation.
PARAM_TABLE = "__param__"

#: Catalog default for the pass rate of an IN predicate.
DEFAULT_IN_SELECTIVITY = 0.5

_subquery_ids = itertools.count(1)


def bind(
    db: Database,
    stmt: SelectStmt,
    name: str = "",
    in_selectivity: float = DEFAULT_IN_SELECTIVITY,
) -> Query:
    """Bind one parsed statement into an optimizer :class:`Query`."""
    tables = list(stmt.tables)
    for table in tables:
        if table not in db.catalog:
            raise BindError(f"unknown relation in FROM: {table!r}")
    if len(set(tables)) != len(tables):
        raise BindError(f"duplicate relation in FROM: {tables}")

    binder = _Binder(db, tables, in_selectivity, scopes=[tables])
    where = binder.bind_expr(stmt.where) if stmt.where is not None else None
    select = None
    if stmt.select is not None:
        select = [
            (column.table, column.attribute)
            for column in (binder.bind_column(ref) for ref in stmt.select)
        ]
    return Query.from_where(db.catalog, tables, where, select=select, name=name)


class _Binder:
    def __init__(
        self,
        db: Database,
        tables: list[str],
        in_selectivity: float,
        scopes: list[list[str]] | None = None,
    ) -> None:
        self.db = db
        self.tables = tables
        self.in_selectivity = in_selectivity
        # Name-resolution scopes, innermost first (subqueries see their own
        # relation before the outer query's).
        self.scopes = scopes if scopes is not None else [tables]

    def bind_column(self, ref: SqlColumnRef) -> Column:
        if ref.table is not None:
            if ref.table not in self.tables:
                raise BindError(
                    f"table {ref.table!r} of {ref.table}.{ref.column} "
                    "is not in the FROM clause"
                )
            schema = self.db.catalog.table(ref.table).schema
            if not schema.has_attribute(ref.column):
                raise BindError(
                    f"relation {ref.table!r} has no attribute {ref.column!r}"
                )
            return Column(ref.table, ref.column)
        for scope in self.scopes:
            owners = [
                table
                for table in scope
                if self.db.catalog.table(table).schema.has_attribute(
                    ref.column
                )
            ]
            if len(owners) == 1:
                return Column(owners[0], ref.column)
            if len(owners) > 1:
                raise BindError(
                    f"column {ref.column!r} is ambiguous among {owners}"
                )
        raise BindError(f"column {ref.column!r} not found in scope")

    def bind_expr(self, node: SqlExpr) -> Expr:
        if isinstance(node, SqlLiteral):
            return Const(node.value)
        if isinstance(node, SqlColumnRef):
            return self.bind_column(node)
        if isinstance(node, SqlFuncCall):
            if node.name not in self.db.catalog.functions:
                raise BindError(f"unknown function: {node.name!r}")
            return FuncCall(
                node.name, tuple(self.bind_expr(arg) for arg in node.args)
            )
        if isinstance(node, SqlBinary):
            left = self.bind_expr(node.left)
            right = self.bind_expr(node.right)
            if node.op in _COMPARISONS:
                return Comparison(node.op, left, right)
            return BinaryOp(node.op, left, right)
        if isinstance(node, SqlLogical):
            return Logical(
                node.op, tuple(self.bind_expr(o) for o in node.operands)
            )
        if isinstance(node, SqlNot):
            return Not(self.bind_expr(node.operand))
        if isinstance(node, SqlIn):
            return self.bind_in(node)
        raise BindError(f"cannot bind expression node: {node!r}")

    # -- IN (SELECT …) desugaring ------------------------------------------

    def bind_in(self, node: SqlIn) -> Expr:
        subquery = node.subquery
        if len(subquery.tables) != 1:
            raise BindError(
                "IN subqueries over multiple relations are not supported"
            )
        inner_table = subquery.tables[0]
        if inner_table not in self.db.catalog:
            raise BindError(f"unknown relation in subquery: {inner_table!r}")
        if subquery.select is None or len(subquery.select) != 1:
            raise BindError("IN subquery must select exactly one column")

        needle = self.bind_expr(node.needle)

        # Bind the subquery body with the inner table in scope plus the
        # outer tables; outer references become correlation parameters.
        inner_binder = _Binder(
            self.db,
            [inner_table] + self.tables,
            self.in_selectivity,
            scopes=[[inner_table]] + self.scopes,
        )
        select_column = inner_binder.bind_column(subquery.select[0])
        if select_column.table != inner_table:
            raise BindError(
                "IN subquery must select a column of its own relation"
            )
        inner_where = (
            inner_binder.bind_expr(subquery.where)
            if subquery.where is not None
            else None
        )

        parameters: list[Column] = []
        if inner_where is not None:
            inner_where = _parameterize(inner_where, inner_table, parameters)

        function_name = f"in_{inner_table}_{next(_subquery_ids)}"
        self._register_in_function(
            function_name, inner_table, select_column, inner_where, parameters
        )
        return FuncCall(function_name, (needle, *parameters))

    def _register_in_function(
        self,
        function_name: str,
        inner_table: str,
        select_column: Column,
        inner_where: Expr | None,
        parameters: list[Column],
    ) -> None:
        entry = self.db.catalog.table(inner_table)
        schema = entry.schema
        eval_scope = Scope(
            [(inner_table, attr) for attr in schema.attribute_names]
            + [(PARAM_TABLE, f"p{position}") for position in range(len(parameters))]
        )
        select_slot = eval_scope.slot(inner_table, select_column.attribute)
        functions = self.db.catalog.functions

        def run_subquery(needle_value: object, *param_values: object) -> object:
            matched = False
            saw_null = False
            for row in entry.heap.all_rows():
                env = row + param_values
                if inner_where is not None:
                    verdict = inner_where.evaluate(env, eval_scope, functions)
                    if verdict is not True:
                        continue
                value = env[select_slot]
                if value is None:
                    saw_null = True
                elif value == needle_value:
                    matched = True
                    break
            if matched:
                return True
            return None if saw_null else False

        # Charged like the paper's subquery functions: one inner-relation
        # scan per invocation (the predicate cache is what makes repeats
        # cheap).
        cost_per_call = max(1.0, entry.pages * self.db.params.seq_weight)
        functions.register(
            function_name,
            run_subquery,
            cost_per_call=cost_per_call,
            selectivity=self.in_selectivity,
        )


def _parameterize(
    expr: Expr, inner_table: str, parameters: list[Column]
) -> Expr:
    """Replace outer-table columns by parameter slots, collecting them."""
    if isinstance(expr, Column):
        if expr.table == inner_table:
            return expr
        for position, existing in enumerate(parameters):
            if existing == expr:
                return Column(PARAM_TABLE, f"p{position}")
        parameters.append(expr)
        return Column(PARAM_TABLE, f"p{len(parameters) - 1}")
    if isinstance(expr, Const):
        return expr
    if isinstance(expr, FuncCall):
        return FuncCall(
            expr.name,
            tuple(_parameterize(a, inner_table, parameters) for a in expr.args),
        )
    if isinstance(expr, Comparison):
        return Comparison(
            expr.op,
            _parameterize(expr.left, inner_table, parameters),
            _parameterize(expr.right, inner_table, parameters),
        )
    if isinstance(expr, BinaryOp):
        return BinaryOp(
            expr.op,
            _parameterize(expr.left, inner_table, parameters),
            _parameterize(expr.right, inner_table, parameters),
        )
    if isinstance(expr, Logical):
        return Logical(
            expr.op,
            tuple(
                _parameterize(o, inner_table, parameters)
                for o in expr.operands
            ),
        )
    if isinstance(expr, Not):
        return Not(_parameterize(expr.operand, inner_table, parameters))
    raise BindError(f"cannot parameterize expression: {expr!r}")
