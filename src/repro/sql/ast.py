"""Raw (unresolved) SQL AST — column references may be unqualified."""

from __future__ import annotations

from dataclasses import dataclass


class SqlExpr:
    """Base class for raw expressions."""


@dataclass(frozen=True)
class SqlLiteral(SqlExpr):
    value: object  # int | float | str | bool | None


@dataclass(frozen=True)
class SqlColumnRef(SqlExpr):
    table: str | None
    column: str


@dataclass(frozen=True)
class SqlFuncCall(SqlExpr):
    name: str
    args: tuple[SqlExpr, ...]


@dataclass(frozen=True)
class SqlBinary(SqlExpr):
    op: str  # comparison or arithmetic operator
    left: SqlExpr
    right: SqlExpr


@dataclass(frozen=True)
class SqlLogical(SqlExpr):
    op: str  # "AND" | "OR"
    operands: tuple[SqlExpr, ...]


@dataclass(frozen=True)
class SqlNot(SqlExpr):
    operand: SqlExpr


@dataclass(frozen=True)
class SqlIn(SqlExpr):
    """``needle IN (SELECT …)`` — desugared by the binder into an
    expensive predicate, per the paper's Section 5.1."""

    needle: SqlExpr
    subquery: "SelectStmt"


@dataclass(frozen=True)
class SelectStmt:
    select: tuple[SqlColumnRef, ...] | None  # None means SELECT *
    tables: tuple[str, ...]
    where: SqlExpr | None
