"""Recursive-descent parser for the SQL subset."""

from __future__ import annotations

from repro.errors import SQLParseError
from repro.sql.ast import (
    SelectStmt,
    SqlBinary,
    SqlColumnRef,
    SqlExpr,
    SqlFuncCall,
    SqlIn,
    SqlLiteral,
    SqlLogical,
    SqlNot,
)
from repro.sql.lexer import Token, tokenize

_COMPARISONS = {"=", "<>", "!=", "<", "<=", ">", ">="}


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self.tokens = tokens
        self.position = 0

    # -- token helpers ------------------------------------------------------

    def peek(self) -> Token:
        return self.tokens[self.position]

    def advance(self) -> Token:
        token = self.tokens[self.position]
        self.position += 1
        return token

    def check(self, kind: str, text: str | None = None) -> bool:
        token = self.peek()
        return token.kind == kind and (text is None or token.text == text)

    def accept(self, kind: str, text: str | None = None) -> Token | None:
        if self.check(kind, text):
            return self.advance()
        return None

    def expect(self, kind: str, text: str | None = None) -> Token:
        token = self.accept(kind, text)
        if token is None:
            actual = self.peek()
            raise SQLParseError(
                f"expected {text or kind}, found {actual.text or actual.kind!r}",
                actual.position,
            )
        return token

    # -- grammar -------------------------------------------------------------

    def select_stmt(self) -> SelectStmt:
        self.expect("KEYWORD", "SELECT")
        select: tuple[SqlColumnRef, ...] | None
        if self.accept("OP", "*"):
            select = None
        else:
            items = [self.column_ref()]
            while self.accept("PUNCT", ","):
                items.append(self.column_ref())
            select = tuple(items)
        self.expect("KEYWORD", "FROM")
        tables = [self.expect("IDENT").text]
        while self.accept("PUNCT", ","):
            tables.append(self.expect("IDENT").text)
        where: SqlExpr | None = None
        if self.accept("KEYWORD", "WHERE"):
            where = self.expression()
        return SelectStmt(select=select, tables=tuple(tables), where=where)

    def column_ref(self) -> SqlColumnRef:
        first = self.expect("IDENT").text
        if self.accept("PUNCT", "."):
            return SqlColumnRef(table=first, column=self.expect("IDENT").text)
        return SqlColumnRef(table=None, column=first)

    def expression(self) -> SqlExpr:
        return self.or_expr()

    def or_expr(self) -> SqlExpr:
        operands = [self.and_expr()]
        while self.accept("KEYWORD", "OR"):
            operands.append(self.and_expr())
        if len(operands) == 1:
            return operands[0]
        return SqlLogical("OR", tuple(operands))

    def and_expr(self) -> SqlExpr:
        operands = [self.not_expr()]
        while self.accept("KEYWORD", "AND"):
            operands.append(self.not_expr())
        if len(operands) == 1:
            return operands[0]
        return SqlLogical("AND", tuple(operands))

    def not_expr(self) -> SqlExpr:
        if self.accept("KEYWORD", "NOT"):
            return SqlNot(self.not_expr())
        return self.predicate()

    def predicate(self) -> SqlExpr:
        left = self.additive()
        if self.accept("KEYWORD", "IN"):
            self.expect("PUNCT", "(")
            subquery = self.select_stmt()
            self.expect("PUNCT", ")")
            return SqlIn(needle=left, subquery=subquery)
        token = self.peek()
        if token.kind == "OP" and token.text in _COMPARISONS:
            self.advance()
            op = "<>" if token.text == "!=" else token.text
            return SqlBinary(op, left, self.additive())
        return left

    def additive(self) -> SqlExpr:
        left = self.multiplicative()
        while True:
            token = self.peek()
            if token.kind == "OP" and token.text in ("+", "-"):
                self.advance()
                left = SqlBinary(token.text, left, self.multiplicative())
            else:
                return left

    def multiplicative(self) -> SqlExpr:
        left = self.primary()
        while True:
            token = self.peek()
            if token.kind == "OP" and token.text in ("*", "/"):
                self.advance()
                left = SqlBinary(token.text, left, self.primary())
            else:
                return left

    def primary(self) -> SqlExpr:
        token = self.peek()
        if token.kind == "NUMBER":
            self.advance()
            value = float(token.text) if "." in token.text else int(token.text)
            return SqlLiteral(value)
        if token.kind == "STRING":
            self.advance()
            return SqlLiteral(token.text)
        if token.kind == "KEYWORD" and token.text in ("TRUE", "FALSE", "NULL"):
            self.advance()
            return SqlLiteral(
                {"TRUE": True, "FALSE": False, "NULL": None}[token.text]
            )
        if self.accept("PUNCT", "("):
            inner = self.expression()
            self.expect("PUNCT", ")")
            return inner
        if token.kind == "IDENT":
            self.advance()
            if self.check("PUNCT", "("):
                self.advance()
                args: list[SqlExpr] = []
                if not self.check("PUNCT", ")"):
                    args.append(self.expression())
                    while self.accept("PUNCT", ","):
                        args.append(self.expression())
                self.expect("PUNCT", ")")
                return SqlFuncCall(token.text, tuple(args))
            if self.accept("PUNCT", "."):
                return SqlColumnRef(
                    table=token.text, column=self.expect("IDENT").text
                )
            return SqlColumnRef(table=None, column=token.text)
        raise SQLParseError(
            f"unexpected token {token.text or token.kind!r}", token.position
        )


def parse(sql: str) -> SelectStmt:
    """Parse one SELECT statement (a trailing semicolon is allowed)."""
    parser = _Parser(tokenize(sql))
    statement = parser.select_stmt()
    parser.accept("PUNCT", ";")
    parser.expect("EOF")
    return statement
