"""The assembled database: catalog + storage + shared cost meter.

A :class:`Database` is what :func:`repro.catalog.datagen.build_database`
returns and what the optimizer facade and executor operate on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.catalog.catalog import Catalog
from repro.cost.params import CostParams
from repro.storage.buffer import BufferPool
from repro.storage.meter import CostMeter


@dataclass
class Database:
    """One self-contained database instance."""

    catalog: Catalog
    meter: CostMeter
    pool: BufferPool
    params: CostParams
    scale: int = 0
    seed: int = 0
    description: str = ""
    extras: dict = field(default_factory=dict)

    @classmethod
    def empty(
        cls,
        params: CostParams | None = None,
        pool_pages: int = 64,
    ) -> "Database":
        """An empty database ready for manual table registration (tests)."""
        params = params or CostParams()
        meter = CostMeter(seq_weight=params.seq_weight)
        pool = BufferPool(pool_pages, meter)
        return cls(
            catalog=Catalog(), meter=meter, pool=pool, params=params
        )

    def size_bytes(self) -> int:
        return self.catalog.total_bytes()

    def size_megabytes(self) -> float:
        return self.size_bytes() / (1024 * 1024)
