"""Tunable constants of the cost model.

All costs are in the paper's currency: 1 unit = 1 random page I/O.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class CostParams:
    """Physical constants shared by the cost model and the executor."""

    #: Bytes per page.
    page_size: int = 8192
    #: Relative cost of a sequential page read (seeks amortised).
    seq_weight: float = 0.25
    #: Modelled B-tree fanout (entries per node) for height estimates.
    index_fanout: int = 512
    #: Pages of workspace memory for hash joins; an inner build side larger
    #: than this forces a two-pass (Grace) hash join.
    hash_memory_pages: int = 1024
    #: CPU cost charged per tuple *processed by a join* (build, probe, sort,
    #: or loop input), in random-I/O units. The paper ignores join CPU in
    #: its analytical model but measures wall-clock time, where inflating a
    #: join's input visibly costs something (Query 2's PullUp error). A
    #: small non-zero default keeps that effect observable.
    cpu_per_tuple: float = 0.005
    #: Pages of workspace memory for sorts; inputs that fit sort in one
    #: in-memory pass (one write + one read of runs). Larger inputs pay
    #: extra multiway merge passes at ``sort_fanin`` runs per pass.
    sort_memory_pages: int = 256
    #: Number of runs merged per external-sort pass.
    sort_fanin: int = 64

    def sort_passes(self, pages: float) -> int:
        """Number of read+write passes an external sort needs."""
        if pages <= self.sort_memory_pages:
            return 1
        runs = math.ceil(pages / self.sort_memory_pages)
        passes = 1
        while runs > 1:
            runs = math.ceil(runs / self.sort_fanin)
            passes += 1
        return passes

    def sort_cost(self, rows: float, width: int) -> float:
        """Charged cost of sorting a stream: two sequential I/Os per page
        per pass (write runs, read them back), in random-I/O units."""
        pages = self.pages_for(rows, width)
        return 2.0 * pages * self.sort_passes(pages) * self.seq_weight

    def pages_for(self, rows: float, width: int) -> float:
        """Heap pages occupied by ``rows`` tuples of ``width`` bytes."""
        if rows <= 0:
            return 0.0
        per_page = max(1, self.page_size // max(1, width))
        return math.ceil(rows / per_page)

    def index_height(self, entries: int) -> int:
        """Modelled number of B-tree levels for ``entries`` index entries."""
        levels = 1
        capacity = self.index_fanout
        while capacity < entries:
            capacity *= self.index_fanout
            levels += 1
        return levels
