"""Cost and cardinality estimation over plan trees.

The model implements Section 3.2 of the paper:

* **Linear join costs.** Every join method's cost is of the form
  ``k{R} + l{S} + m`` in the input cardinalities, with the single exception
  of an *expensive primary join predicate*, which adds ``c_p{R}{S}``.
  Nested loop without an index fits because the number of inner blocks
  scanned per outer tuple is the *base* relation's page count, a constant
  irrespective of selections on the inner.
* **Per-input selectivities.** A join predicate of (absolute) selectivity
  ``s`` over R and S passes ``s·{S}`` of R's tuples and ``s·{R}`` of S's —
  different for each stream. The discarded "global" model of [HS93a]
  (``s`` applied equally to both inputs) is available via
  ``global_model=True`` for the ablation bench.
* **Predicate caching** (Section 5.1) changes rank arithmetic: per-input
  join selectivities become value-based (``s · number_of_values(other
  side's column)``) and are bounded by 1, and an expensive predicate is
  charged once per distinct input binding rather than once per tuple.

The executor in :mod:`repro.exec` charges I/O and function calls with the
same formulas, so estimated and measured costs agree up to estimation error
in cardinalities — which is what makes optimizer-quality comparisons
meaningful.
"""

from __future__ import annotations

from typing import NamedTuple

from repro.catalog.catalog import Catalog
from repro.cost.params import CostParams
from repro.errors import PlanError
from repro.expr.expressions import QualifiedColumn
from repro.expr.predicates import Predicate
from repro.plan.nodes import Join, JoinMethod, PlanNode, Scan


class Estimate(NamedTuple):
    """Estimated properties of a plan node's output stream.

    A named tuple rather than a (frozen) dataclass: estimates are built
    in the enumerators' innermost loops, and tuple construction skips
    the per-field ``object.__setattr__`` a frozen dataclass pays.
    """

    rows: float
    cost: float
    width: int
    order: QualifiedColumn | None = None


class PerInput(NamedTuple):
    """Differential (per-input) join quantities used for rank arithmetic."""

    outer_selectivity: float
    outer_cost: float
    inner_selectivity: float
    inner_cost: float

    @property
    def outer_rank(self) -> float:
        from repro.expr.predicates import rank

        return rank(self.outer_selectivity, self.outer_cost)

    @property
    def inner_rank(self) -> float:
        from repro.expr.predicates import rank

        return rank(self.inner_selectivity, self.inner_cost)


class CostModel:
    """Estimates cardinalities and charged costs of plan trees."""

    def __init__(
        self,
        catalog: Catalog,
        params: CostParams | None = None,
        caching: bool = False,
        global_model: bool = False,
    ) -> None:
        self.catalog = catalog
        self.params = params or CostParams()
        self.caching = caching
        self.global_model = global_model
        # Per-optimization estimate memo, keyed by plan-node identity.
        # Disabled (None) by default so ad-hoc estimation pays nothing;
        # the enumerators call memo_enable() and invalidate via forget()
        # whenever they mutate a node in place. Entries hold the node
        # itself alongside its estimate so a live id() can never be
        # recycled by the allocator while its entry is still cached.
        self._memo: dict[int, tuple[PlanNode, Estimate]] | None = None
        self.memo_hits = 0
        self.memo_misses = 0
        # Caches over static catalog facts (schema widths, join
        # selectivities from table stats); entries keep the predicate
        # alive so its id() cannot be recycled.
        self._width_cache: dict[str, int] = {}
        self._join_sel_cache: dict[int, tuple[Predicate, float]] = {}
        # Scan estimates keyed by (table, access path, filter identities):
        # enumeration and migration re-estimate structurally identical
        # scans constantly (clones share predicate objects). The cached
        # value holds the filter tuple so the keyed ids stay live.
        self._scan_est_cache: dict[tuple, tuple[tuple, Estimate]] = {}

    # -- estimate memoisation ----------------------------------------------

    def memo_enable(self) -> None:
        """Start memoising estimates by plan-node identity.

        Safe only while callers treat estimated nodes as immutable or
        call :meth:`forget` on every in-place mutation.
        """
        if self._memo is None:
            self._memo = {}

    def forget(self, node: PlanNode) -> None:
        """Drop the cached estimate of one (mutated) node."""
        if self._memo is not None:
            self._memo.pop(id(node), None)

    def seed(self, node: PlanNode, estimate: Estimate) -> None:
        """Install a known estimate for a node (e.g. a shared copy)."""
        if self._memo is not None:
            self._memo[id(node)] = (node, estimate)

    # -- predicate-level estimates ------------------------------------------

    def ndistinct_inputs(self, predicate: Predicate) -> float:
        """Estimated number of distinct input bindings of a predicate."""
        total = 1.0
        for table, attribute in predicate.input_columns():
            total *= max(
                1, self.catalog.table(table).stats.ndistinct(attribute)
            )
        return total

    def invocations(self, predicate: Predicate, rows_in: float) -> float:
        """How many times a filter is actually evaluated on ``rows_in``.

        With predicate caching, repeats of a binding hit the cache, so
        evaluations are bounded by the number of distinct bindings.
        """
        if self.caching and predicate.is_expensive:
            return min(rows_in, self.ndistinct_inputs(predicate))
        return rows_in

    def filter_chain(
        self, rows_in: float, filters: list[Predicate]
    ) -> tuple[float, float]:
        """Apply an ordered filter list; return (rows out, charged cost).

        A disjunctive predicate's ``cost_per_tuple`` is already its
        *expected short-circuit cost* over the cost-ordered boolean tree
        (see :func:`repro.expr.predicates.build_bool_tree`), so the chain
        formula prices boolean trees exactly as the executors evaluate
        them: leaf-by-leaf in rank order, stopping at the first decisive
        child.
        """
        rows = rows_in
        cost = 0.0
        for predicate in filters:
            cost += predicate.cost_per_tuple * self.invocations(
                predicate, rows
            )
            rows *= predicate.selectivity
        return rows, cost

    def join_selectivity(self, predicate: Predicate) -> float:
        """Absolute selectivity ``s``: output = s · {R} · {S}."""
        cached = self._join_sel_cache.get(id(predicate))
        if cached is not None:
            return cached[1]
        if predicate.equijoin is not None:
            left, right = predicate.equijoin
            ndistinct_left = self.catalog.table(left.table).stats.ndistinct(
                left.attribute
            )
            ndistinct_right = self.catalog.table(right.table).stats.ndistinct(
                right.attribute
            )
            value = 1.0 / max(1, ndistinct_left, ndistinct_right)
        else:
            value = predicate.selectivity
        self._join_sel_cache[id(predicate)] = (predicate, value)
        return value

    # -- node-level estimates --------------------------------------------------

    def estimate_plan(self, node: PlanNode) -> Estimate:
        memo = self._memo
        if memo is not None:
            cached = memo.get(id(node))
            if cached is not None:
                self.memo_hits += 1
                return cached[1]
            self.memo_misses += 1
        if isinstance(node, Scan):
            estimate = self.estimate_scan(node)
        elif isinstance(node, Join):
            estimate = self.estimate_join(node)
        else:
            raise PlanError(
                f"cannot estimate node type: {type(node).__name__}"
            )
        if memo is not None:
            memo[id(node)] = (node, estimate)
        return estimate

    def base_rows(self, table: str) -> int:
        return self.catalog.table(table).stats.cardinality

    def estimate_scan(self, scan: Scan) -> Estimate:
        key = (
            scan.table,
            scan.index_attr,
            scan.index_range,
            tuple(map(id, scan.filters)),
        )
        cached = self._scan_est_cache.get(key)
        if cached is not None:
            return cached[1]
        estimate = self._estimate_scan(scan)
        self._scan_est_cache[key] = (tuple(scan.filters), estimate)
        return estimate

    def _estimate_scan(self, scan: Scan) -> Estimate:
        entry = self.catalog.table(scan.table)
        width = entry.schema.tuple_width
        if scan.index_attr is not None:
            stats = entry.stats.attribute(scan.index_attr)
            low, high = scan.index_range  # type: ignore[misc]
            fraction = _range_fraction(stats.low, stats.high, low, high)
            matches = entry.cardinality * fraction
            probe = self.params.index_height(entry.cardinality)
            io_cost = probe + matches  # random fetches of matching RIDs
            rows, filter_cost = self.filter_chain(matches, scan.filters)
            return Estimate(
                rows=rows,
                cost=io_cost + filter_cost,
                width=width,
                order=(scan.table, scan.index_attr),
            )
        io_cost = entry.pages * self.params.seq_weight
        rows, filter_cost = self.filter_chain(
            float(entry.cardinality), scan.filters
        )
        return Estimate(rows=rows, cost=io_cost + filter_cost, width=width)

    def estimate_join(self, join: Join) -> Estimate:
        outer = self.estimate_plan(join.outer)
        width = outer.width + self._inner_width(join)
        selectivity = self.join_selectivity(join.primary)

        if join.method is JoinMethod.INDEX_NESTED_LOOP:
            estimate = self._estimate_index_nl(join, outer, selectivity, width)
        else:
            inner = self.estimate_plan(join.inner)
            if join.method is JoinMethod.NESTED_LOOP:
                estimate = self._estimate_nl(
                    join, outer, inner, selectivity, width
                )
            elif join.method is JoinMethod.MERGE:
                estimate = self._estimate_merge(
                    join, outer, inner, selectivity, width
                )
            elif join.method is JoinMethod.HASH:
                estimate = self._estimate_hash(
                    join, outer, inner, selectivity, width
                )
            else:  # pragma: no cover - exhaustive over enum
                raise PlanError(f"unknown join method {join.method}")

        rows, filter_cost = self.filter_chain(estimate.rows, join.filters)
        return Estimate(
            rows=rows,
            cost=estimate.cost + filter_cost,
            width=width,
            order=estimate.order,
        )

    def estimate_join_methods(
        self, join: Join, methods: list[JoinMethod]
    ) -> list[Estimate]:
        """Per-method estimates of one join, sharing method-independent work.

        Each returned estimate is bit-identical to :meth:`estimate_join`
        with ``join.method`` set accordingly (the helpers never read
        ``join.method``, so the node is not mutated): input estimates,
        widths, and selectivities are computed once, and the post-join
        filter chain is shared between nested loop, merge, and hash,
        whose pre-filter row counts are the same expression.
        """
        outer = self.estimate_plan(join.outer)
        width = outer.width + self._inner_width(join)
        selectivity = self.join_selectivity(join.primary)
        inner: Estimate | None = None
        shared_chain: tuple[float, float] | None = None
        results: list[Estimate] = []
        for method in methods:
            if method is JoinMethod.INDEX_NESTED_LOOP:
                estimate = self._estimate_index_nl(
                    join, outer, selectivity, width
                )
                rows, filter_cost = self.filter_chain(
                    estimate.rows, join.filters
                )
            else:
                if inner is None:
                    inner = self.estimate_plan(join.inner)
                if method is JoinMethod.NESTED_LOOP:
                    estimate = self._estimate_nl(
                        join, outer, inner, selectivity, width
                    )
                elif method is JoinMethod.MERGE:
                    estimate = self._estimate_merge(
                        join, outer, inner, selectivity, width
                    )
                elif method is JoinMethod.HASH:
                    estimate = self._estimate_hash(
                        join, outer, inner, selectivity, width
                    )
                else:  # pragma: no cover - exhaustive over enum
                    raise PlanError(f"unknown join method {method}")
                if shared_chain is None:
                    shared_chain = self.filter_chain(
                        estimate.rows, join.filters
                    )
                rows, filter_cost = shared_chain
            results.append(
                Estimate(
                    rows=rows,
                    cost=estimate.cost + filter_cost,
                    width=width,
                    order=estimate.order,
                )
            )
        return results

    def _table_width(self, name: str) -> int:
        width = self._width_cache.get(name)
        if width is None:
            width = self.catalog.table(name).schema.tuple_width
            self._width_cache[name] = width
        return width

    def _node_width(self, node: PlanNode) -> int:
        """Combined tuple width of a subtree's tables — recursion over the
        join shape instead of materialising and sorting the table set
        (integer addition, so the sum is order-independent)."""
        if isinstance(node, Scan):
            return self._table_width(node.table)
        assert isinstance(node, Join)
        return self._node_width(node.outer) + self._node_width(node.inner)

    def _inner_width(self, join: Join) -> int:
        return self._node_width(join.inner)

    def _inner_scan(self, join: Join) -> Scan:
        if not isinstance(join.inner, Scan):
            raise PlanError("left-deep plans require a scan inner input")
        return join.inner

    def _nl_rescan_pages(self, join: Join, inner: Estimate) -> float:
        """Blocks rescanned per outer tuple: base pages for a scan inner
        (constant irrespective of its selections, per the paper); pages of
        the materialised intermediate for a bushy inner."""
        if isinstance(join.inner, Scan):
            return float(self.catalog.table(join.inner.table).pages)
        return self.params.pages_for(inner.rows, inner.width)

    def _estimate_nl(
        self,
        join: Join,
        outer: Estimate,
        inner: Estimate,
        selectivity: float,
        width: int,
    ) -> Estimate:
        """Nested loop, inner materialised once then rescanned.

        Per the paper, the inner *block* scan volume per outer tuple is the
        base relation's page count, constant irrespective of inner
        selections; inner filters are evaluated once, during
        materialisation (their cost is inside ``inner.cost``).
        """
        base_pages = self._nl_rescan_pages(join, inner)
        rescan = outer.rows * base_pages * self.params.seq_weight
        primary_cost = join.primary.cost_per_tuple * self.invocations(
            join.primary, outer.rows * inner.rows
        )
        cpu = self.params.cpu_per_tuple * (outer.rows + inner.rows)
        rows = selectivity * outer.rows * inner.rows
        return Estimate(
            rows=rows,
            cost=outer.cost + inner.cost + rescan + primary_cost + cpu,
            width=width,
        )

    def _estimate_index_nl(
        self, join: Join, outer: Estimate, selectivity: float, width: int
    ) -> Estimate:
        """Index nested loop: probe + fetch per outer tuple; no inner scan.

        Inner tuples that fail the join are "filtered with zero cost"; the
        inner scan's own filters run only on fetched matches.
        """
        inner_scan = self._inner_scan(join)
        entry = self.catalog.table(inner_scan.table)
        columns = join.join_columns()
        if columns is None:
            raise PlanError("index nested loop requires an equijoin primary")
        height = self.params.index_height(entry.cardinality)
        matches = selectivity * outer.rows * entry.cardinality
        probe_cost = outer.rows * height
        fetch_cost = matches  # one random heap I/O per matching RID
        rows, inner_filter_cost = self.filter_chain(
            matches, inner_scan.filters
        )
        cpu = self.params.cpu_per_tuple * outer.rows
        return Estimate(
            rows=rows,
            cost=outer.cost + probe_cost + fetch_cost + inner_filter_cost + cpu,
            width=width,
        )

    def _sort_cost(self, rows: float, width: int) -> float:
        return self.params.sort_cost(rows, width)

    def _estimate_merge(
        self,
        join: Join,
        outer: Estimate,
        inner: Estimate,
        selectivity: float,
        width: int,
    ) -> Estimate:
        columns = join.join_columns()
        if columns is None:
            raise PlanError("merge join requires an equijoin primary")
        outer_column, inner_column = columns
        outer_key = (outer_column.table, outer_column.attribute)
        inner_key = (inner_column.table, inner_column.attribute)
        sort_cost = 0.0
        if outer.order != outer_key:
            sort_cost += self._sort_cost(outer.rows, outer.width)
        if inner.order != inner_key:
            sort_cost += self._sort_cost(inner.rows, inner.width)
        cpu = self.params.cpu_per_tuple * (outer.rows + inner.rows)
        rows = selectivity * outer.rows * inner.rows
        return Estimate(
            rows=rows,
            cost=outer.cost + inner.cost + sort_cost + cpu,
            width=width,
            order=outer_key,
        )

    def _estimate_hash(
        self,
        join: Join,
        outer: Estimate,
        inner: Estimate,
        selectivity: float,
        width: int,
    ) -> Estimate:
        if join.join_columns() is None:
            raise PlanError("hash join requires an equijoin primary")
        inner_pages = self.params.pages_for(inner.rows, inner.width)
        spill = 0.0
        if inner_pages > self.params.hash_memory_pages:
            outer_pages = self.params.pages_for(outer.rows, outer.width)
            spill = 2.0 * (inner_pages + outer_pages) * self.params.seq_weight
        cpu = self.params.cpu_per_tuple * (outer.rows + inner.rows)
        rows = selectivity * outer.rows * inner.rows
        return Estimate(
            rows=rows,
            cost=outer.cost + inner.cost + spill + cpu,
            width=width,
        )

    # -- differential per-input quantities (rank arithmetic) ---------------------

    def per_input(
        self, join: Join, outer_rows: float, inner_rows: float
    ) -> PerInput:
        """Per-input selectivity and differential cost of one join.

        ``outer_rows`` / ``inner_rows`` are the *current* stream estimates
        ``{R}`` / ``{S}`` — the paper computes them "on the fly as needed,
        based on the number of selections over R at the time" (Section 5.2),
        accepting some over-eager pullup from the resulting underestimates.
        """
        selectivity = self.join_selectivity(join.primary)
        if self.global_model:
            outer_sel = inner_sel = selectivity
        elif self.caching and join.primary.equijoin is not None:
            left, right = join.primary.equijoin
            if left.table in join.outer.tables():
                outer_col, inner_col = left, right
            else:
                outer_col, inner_col = right, left
            inner_values = self.catalog.table(inner_col.table).stats.ndistinct(
                inner_col.attribute
            )
            outer_values = self.catalog.table(outer_col.table).stats.ndistinct(
                outer_col.attribute
            )
            outer_sel = min(1.0, selectivity * inner_values)
            inner_sel = min(1.0, selectivity * outer_values)
        else:
            outer_sel = selectivity * inner_rows
            inner_sel = selectivity * outer_rows

        outer_cost, inner_cost = self._differential_costs(
            join, outer_rows, inner_rows
        )
        return PerInput(
            outer_selectivity=outer_sel,
            outer_cost=outer_cost,
            inner_selectivity=inner_sel,
            inner_cost=inner_cost,
        )

    def _differential_costs(
        self, join: Join, outer_rows: float, inner_rows: float
    ) -> tuple[float, float]:
        """(k, l) of the linear join cost ``k{R} + l{S} + m``, plus the
        ``c_p{other}`` share of an expensive primary join predicate."""
        params = self.params
        outer_width = self._node_width(join.outer)
        inner_width = self._inner_width(join)

        cpu = params.cpu_per_tuple
        if join.method is JoinMethod.NESTED_LOOP:
            if isinstance(join.inner, Scan):
                rescan_pages = float(
                    self.catalog.table(join.inner.table).pages
                )
            else:
                rescan_pages = params.pages_for(inner_rows, inner_width)
            outer_cost = rescan_pages * params.seq_weight + cpu
            # One-time materialisation share; essentially zero.
            inner_cost = (
                params.seq_weight * inner_width / params.page_size + cpu
            )
        elif join.method is JoinMethod.INDEX_NESTED_LOOP:
            inner_entry = self.catalog.table(self._inner_scan(join).table)
            selectivity = self.join_selectivity(join.primary)
            height = params.index_height(inner_entry.cardinality)
            outer_cost = height + selectivity * inner_entry.cardinality + cpu
            inner_cost = 0.0  # non-matching inner tuples are never touched
        elif join.method is JoinMethod.MERGE:
            outer_cost = (
                2.0 * params.seq_weight * outer_width / params.page_size + cpu
            )
            inner_cost = (
                2.0 * params.seq_weight * inner_width / params.page_size + cpu
            )
        elif join.method is JoinMethod.HASH:
            outer_cost = (
                params.seq_weight * outer_width / params.page_size + cpu
            )
            inner_cost = (
                params.seq_weight * inner_width / params.page_size + cpu
            )
        else:  # pragma: no cover - exhaustive over enum
            raise PlanError(f"unknown join method {join.method}")

        if join.primary.is_expensive:
            # Expensive primary join predicate: c_p{R}{S} does not fit the
            # linear model; following Section 5.2 we charge each input the
            # c_p × (current estimate of the other input) differential.
            outer_cost += join.primary.cost_per_tuple * inner_rows
            inner_cost += join.primary.cost_per_tuple * outer_rows
        return outer_cost, inner_cost


def _range_fraction(
    low_bound: float, high_bound: float, low: object, high: object
) -> float:
    width = high_bound - low_bound + 1
    if width <= 0:
        return 0.0
    low_value = low_bound if low is None else float(low)  # type: ignore[arg-type]
    high_value = high_bound if high is None else float(high)  # type: ignore[arg-type]
    span = max(0.0, min(high_value, high_bound) - max(low_value, low_bound) + 1)
    return min(1.0, span / width)
