"""The per-input linear cost model (Section 3.2 of the paper).

Join costs are constrained to the linear form ``k{R} + l{S} + m`` (plus a
``c_p{R}{S}`` term for expensive primary join predicates), and each join has
a *different* selectivity for each input stream — the correction the paper
makes to the "global" model of [HS93a]. The discarded global model is kept
behind a flag for the ablation benchmark.
"""

from repro.cost.params import CostParams
from repro.cost.model import CostModel, Estimate, PerInput

__all__ = ["CostModel", "CostParams", "Estimate", "PerInput"]
