"""Planner-only microbenchmark: planning time per strategy × table count.

The executor never runs here — the point is to make optimizer performance
measurable (and regressable in CI) on its own. For each requested table
count *k* the bench compiles a deterministic join chain over ``t2..t(k+1)``
carrying one expensive selection at each end of the chain (so every
placement strategy has real pullup/migration work to do), then times
:func:`repro.optimizer.optimize` over several repetitions and reports the
median and minimum wall-clock per strategy.

Results serialise to JSON so CI can diff runs across commits. Wall-clock is
machine-dependent, so comparisons warn rather than gate — see
:func:`compare_runs`.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import asdict, dataclass, field

from repro.database import Database
from repro.errors import OptimizerError
from repro.optimizer import optimize
from repro.sql import compile_query

#: Join-chain building blocks, smallest relations first so the microbench
#: stays planning-bound rather than catalog-bound at any scale.
CHAIN_TABLES = ("t2", "t3", "t4", "t5", "t6", "t7", "t8")

#: Table counts exercised by default: the 2-way base case up to the widest
#: chain the exhaustive strategy still enumerates quickly.
DEFAULT_TABLE_COUNTS = (2, 3, 4, 5)

DEFAULT_REPEATS = 5


def chain_sql(tables: int) -> str:
    """The deterministic *k*-table chain query used by the microbench.

    ``tN.a1`` is unique and indexed, so each hop is a plain equijoin; the
    two ``costly*`` selections sit on the chain's end tables, where
    pushdown/pullup/migration genuinely disagree about placement.
    """
    if not 2 <= tables <= len(CHAIN_TABLES):
        raise OptimizerError(
            f"table count must be between 2 and {len(CHAIN_TABLES)}"
        )
    names = CHAIN_TABLES[:tables]
    joins = [
        f"{left}.a1 = {right}.a1"
        for left, right in zip(names, names[1:])
    ]
    filters = [
        f"costly100({names[0]}.u20)",
        f"costly10({names[-1]}.u100)",
    ]
    return (
        f"SELECT * FROM {', '.join(names)}\n"
        f"WHERE {' AND '.join(joins + filters)}"
    )


@dataclass
class OptSpeedSample:
    """Median-of-N planning time for one (strategy, table count) cell."""

    strategy: str
    tables: int
    median_ms: float = float("nan")
    min_ms: float = float("nan")
    runs_ms: list[float] = field(default_factory=list)
    error: str = ""

    @property
    def key(self) -> str:
        return f"{self.strategy}/{self.tables}"


def measure(
    db: Database,
    strategies: tuple[str, ...],
    table_counts: tuple[int, ...] = DEFAULT_TABLE_COUNTS,
    repeats: int = DEFAULT_REPEATS,
) -> list[OptSpeedSample]:
    """Time ``optimize`` for every strategy × table count cell.

    Each repetition is an independent ``optimize`` call (the planner's
    memo caches are per-optimization, so repeats measure the same work).
    Query compilation happens once per table count, outside the timed
    region. Strategies that reject a query (e.g. ``ldl-ikkbz`` outside its
    scope) produce a sample with ``error`` set instead of raising.
    """
    samples: list[OptSpeedSample] = []
    for count in table_counts:
        query = compile_query(db, chain_sql(count), name=f"chain{count}")
        for strategy in strategies:
            sample = OptSpeedSample(strategy=strategy, tables=count)
            try:
                runs: list[float] = []
                for _ in range(repeats):
                    started = time.perf_counter()
                    optimize(db, query, strategy=strategy)
                    runs.append((time.perf_counter() - started) * 1000.0)
            except OptimizerError as exc:
                sample.error = str(exc)
            else:
                sample.runs_ms = [round(ms, 4) for ms in runs]
                sample.median_ms = round(statistics.median(runs), 4)
                sample.min_ms = round(min(runs), 4)
            samples.append(sample)
    return samples


def run_payload(
    db: Database,
    strategies: tuple[str, ...],
    table_counts: tuple[int, ...] = DEFAULT_TABLE_COUNTS,
    repeats: int = DEFAULT_REPEATS,
) -> dict:
    """The JSON-serialisable result document for one opt-speed run."""
    samples = measure(db, strategies, table_counts, repeats)
    return {
        "bench": "opt-speed",
        "scale": db.scale,
        "seed": db.seed,
        "repeats": repeats,
        "table_counts": list(table_counts),
        "strategies": list(strategies),
        "samples": [asdict(sample) for sample in samples],
    }


def format_payload(payload: dict) -> str:
    """A fixed-width table of median planning times (ms), one row per
    strategy, one column per table count."""
    counts = payload["table_counts"]
    cells: dict[tuple[str, int], dict] = {
        (s["strategy"], s["tables"]): s for s in payload["samples"]
    }
    lines = [
        f"== opt-speed (scale={payload['scale']}, seed={payload['seed']}, "
        f"median of {payload['repeats']}, ms)"
    ]
    header = f"{'strategy':<14}" + "".join(
        f"{f'{c} tables':>12}" for c in counts
    )
    lines.append(header)
    lines.append("-" * len(header))
    for strategy in payload["strategies"]:
        row = f"{strategy:<14}"
        for count in counts:
            sample = cells.get((strategy, count))
            if sample is None or sample.get("error"):
                row += f"{'—':>12}"
            else:
                row += f"{sample['median_ms']:>12.3f}"
        lines.append(row)
    return "\n".join(lines)


def compare_runs(
    baseline: dict, candidate: dict, threshold: float = 0.25
) -> list[str]:
    """Warnings for cells whose median planning time regressed beyond
    ``threshold`` (fractional growth) against the baseline run.

    Wall-clock is not comparable across machines, so callers should treat
    these as warnings, never CI failures. Cells present in only one run
    are reported too (a strategy or table count was added/removed).
    """
    warnings: list[str] = []

    def cells(payload: dict) -> dict[str, dict]:
        return {
            f"{s['strategy']}/{s['tables']}": s
            for s in payload.get("samples", [])
            if not s.get("error")
        }

    base, cand = cells(baseline), cells(candidate)
    for key in sorted(set(base) | set(cand)):
        if key not in cand:
            warnings.append(f"opt-speed: {key} missing from candidate run")
            continue
        if key not in base:
            warnings.append(f"opt-speed: {key} has no baseline entry")
            continue
        before = base[key].get("median_ms")
        after = cand[key].get("median_ms")
        if not before or not after or before <= 0:
            continue
        growth = (after - before) / before
        if growth > threshold:
            warnings.append(
                f"opt-speed: {key} median planning time regressed "
                f"{growth * 100:+.0f}% ({before:.3f} ms -> {after:.3f} ms, "
                f"threshold +{threshold * 100:.0f}%)"
            )
    return warnings
