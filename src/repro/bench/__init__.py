"""Benchmark harness: the paper's Queries 1–5 and measurement machinery.

The harness reproduces the paper's methodology: optimize each query under
every placement algorithm, execute the resulting plans, and report *charged*
running times (I/O units plus function invocations × cost) relative to the
best plan — the paper reports relative numbers only. Plans that blow
through the cost budget are reported as DNF, like the paper's Query 5
PullUp plan that "used up all available swap space and never completed".
"""

from repro.bench.workloads import WORKLOADS, Workload, build_all, build_workload
from repro.bench.harness import (
    ALL_STRATEGIES,
    DEFAULT_STRATEGIES,
    StrategyOutcome,
    best_outcome,
    outcome_by_strategy,
    resolve_strategies,
    run_strategies,
)
from repro.bench.report import format_outcomes, format_planning_times
from repro.bench.eagerness import eagerness_score
from repro.bench.fixed_order import fixed_order_outcomes, fixed_order_plans
from repro.bench.applicability import applicability_matrix, format_matrix
from repro.bench.accuracy import (
    format_accuracy,
    measure_accuracy,
    worst_q_error,
)
from repro.bench.stress import StressReport, stress_optimizer
from repro.bench.optspeed import (
    OptSpeedSample,
    chain_sql,
    compare_runs,
    format_payload,
    measure,
    run_payload,
)
from repro.bench.vecspeed import VecSpeedSample

__all__ = [
    "ALL_STRATEGIES",
    "DEFAULT_STRATEGIES",
    "OptSpeedSample",
    "StressReport",
    "VecSpeedSample",
    "WORKLOADS",
    "StrategyOutcome",
    "Workload",
    "chain_sql",
    "compare_runs",
    "measure",
    "run_payload",
    "format_payload",
    "format_accuracy",
    "measure_accuracy",
    "stress_optimizer",
    "worst_q_error",
    "applicability_matrix",
    "best_outcome",
    "build_all",
    "build_workload",
    "eagerness_score",
    "fixed_order_outcomes",
    "fixed_order_plans",
    "format_matrix",
    "format_outcomes",
    "format_planning_times",
    "outcome_by_strategy",
    "resolve_strategies",
    "run_strategies",
]
