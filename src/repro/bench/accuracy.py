"""Estimate-accuracy instrumentation (Section 5.2).

The paper reviews "the accuracy of these estimates in practice" — its
selectivity estimates are deliberately rough (``{R}`` computed on the fly),
erring toward over-eager pullup. This module measures, for every node of a
plan, the optimizer's estimated output cardinality against the actual row
count, reporting the standard q-error (max of the two ratios; 1.0 =
perfect).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cost.model import CostModel
from repro.database import Database
from repro.exec.operators import RuntimeContext, build_operator
from repro.obs.quality import qerror
from repro.plan.nodes import Join, Plan, PlanNode, Scan


@dataclass
class NodeAccuracy:
    """Estimated vs actual output cardinality of one plan node."""

    label: str
    depth: int
    estimated_rows: float
    actual_rows: int

    @property
    def q_error(self) -> float:
        """Standard q-error with both sides floored at half a row, so an
        estimate of 0 against an empty actual scores 1.0 (perfect), not
        0/0."""
        return qerror(
            max(self.estimated_rows, 0.5), max(float(self.actual_rows), 0.5)
        )


def _node_label(node: PlanNode) -> str:
    if isinstance(node, Join):
        label = f"{node.method.value}-join[{node.primary}]"
    else:
        label = str(node)
    if node.filters:
        label += f" +{len(node.filters)} filters"
    return label


def _actual_rows(db: Database, node: PlanNode, caching: bool) -> int:
    """Execute one subtree (uncharged: the meter is reset afterwards)."""
    ctx = RuntimeContext(
        catalog=db.catalog,
        meter=db.meter,
        params=db.params,
        caching=caching,
    )
    count = sum(1 for _ in build_operator(node, ctx))
    db.meter.reset()
    db.catalog.functions.reset_counters()
    return count


def measure_accuracy(
    db: Database,
    plan: Plan | PlanNode,
    caching: bool = False,
) -> list[NodeAccuracy]:
    """Per-node estimated vs actual cardinalities, root first."""
    root = plan.root if isinstance(plan, Plan) else plan
    model = CostModel(db.catalog, db.params, caching=caching)
    results: list[NodeAccuracy] = []

    def visit(node: PlanNode, depth: int) -> None:
        estimate = model.estimate_plan(node)
        actual = _actual_rows(db, node, caching)
        results.append(
            NodeAccuracy(
                label=_node_label(node),
                depth=depth,
                estimated_rows=estimate.rows,
                actual_rows=actual,
            )
        )
        for child in node.children():
            visit(child, depth + 1)

    visit(root, 0)
    return results


def format_accuracy(title: str, rows: list[NodeAccuracy]) -> str:
    lines = [title, "=" * len(title)]
    header = f"{'node':<58}{'est.rows':>10}{'actual':>9}{'q-err':>7}"
    lines.append(header)
    lines.append("-" * len(header))
    for entry in rows:
        label = ("  " * entry.depth + entry.label)[:56]
        lines.append(
            f"{label:<58}{entry.estimated_rows:>10.0f}"
            f"{entry.actual_rows:>9}{entry.q_error:>7.2f}"
        )
    return "\n".join(lines)


def worst_q_error(rows: list[NodeAccuracy]) -> float:
    return max((entry.q_error for entry in rows), default=1.0)
