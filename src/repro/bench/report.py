"""ASCII reporting in the spirit of the paper's bar-chart figures."""

from __future__ import annotations

import math

from repro.bench.harness import StrategyOutcome

_BAR_WIDTH = 40


def _bar(relative: float, max_relative: float) -> str:
    if math.isnan(relative) or max_relative <= 0:
        return ""
    filled = max(1, round(_BAR_WIDTH * relative / max_relative))
    return "#" * min(_BAR_WIDTH, filled)


def _plan_ms(outcome: StrategyOutcome) -> str:
    """Planning time in ms, ``—`` when unknown (e.g. optimizer error)."""
    if math.isnan(outcome.planning_seconds):
        return "—"
    return f"{outcome.planning_seconds * 1000:.1f}"


def format_outcomes(
    title: str,
    outcomes: list[StrategyOutcome],
    note: str = "",
) -> str:
    """Render one figure's worth of results as a table with bars."""
    lines = [title, "=" * len(title)]
    if note:
        lines.append(note)
    completed = [
        o.relative
        for o in outcomes
        if o.executed and o.completed and not math.isnan(o.relative)
    ]
    max_relative = max(completed) if completed else 1.0
    header = (
        f"{'strategy':<12} {'est.cost':>12} {'charged':>12} "
        f"{'est.err':>8} {'plan.ms':>8} {'rel':>8}  "
        f"{'(relative charged cost)'}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for outcome in outcomes:
        if outcome.error:
            lines.append(f"{outcome.strategy:<12} ERROR: {outcome.error}")
            continue
        est = f"{outcome.estimated_cost:>12.0f}"
        plan_ms = _plan_ms(outcome)
        if not outcome.executed:
            lines.append(
                f"{outcome.strategy:<12} {est} {'(not run)':>12} "
                f"{'—':>8} {plan_ms:>8}"
            )
            continue
        if not outcome.completed:
            lines.append(
                f"{outcome.strategy:<12} {est} {'DNF':>12} {'—':>8} "
                f"{plan_ms:>8} {'—':>8}  "
                "(exceeded cost budget; paper: 'never completed')"
            )
            continue
        error = outcome.estimation_error
        err = "—" if math.isnan(error) else f"{error * 100:+.0f}%"
        lines.append(
            f"{outcome.strategy:<12} {est} {outcome.charged:>12.0f} "
            f"{err:>8} {plan_ms:>8} {outcome.relative:>7.2f}x  "
            f"{_bar(outcome.relative, max_relative)}"
        )
    return "\n".join(lines)


def format_planning_times(
    title: str, outcomes: list[StrategyOutcome]
) -> str:
    lines = [title, "=" * len(title)]
    for outcome in outcomes:
        if outcome.error:
            lines.append(f"{outcome.strategy:<12} ERROR: {outcome.error}")
        elif math.isnan(outcome.planning_seconds):
            lines.append(f"{outcome.strategy:<12} planned in {'—':>9} ms")
        else:
            lines.append(
                f"{outcome.strategy:<12} planned in "
                f"{outcome.planning_seconds * 1000:9.1f} ms"
            )
    return "\n".join(lines)
