"""ASCII reporting in the spirit of the paper's bar-chart figures."""

from __future__ import annotations

import math

from repro.bench.harness import StrategyOutcome
from repro.obs.tables import Column, Table

_BAR_WIDTH = 40


def _bar(relative: float, max_relative: float) -> str:
    if math.isnan(relative) or max_relative <= 0:
        return ""
    filled = max(1, round(_BAR_WIDTH * relative / max_relative))
    return "#" * min(_BAR_WIDTH, filled)


def _plan_ms(outcome: StrategyOutcome) -> str:
    """Planning time in ms, ``—`` when unknown (e.g. optimizer error)."""
    if math.isnan(outcome.planning_seconds):
        return "—"
    return f"{outcome.planning_seconds * 1000:.1f}"


def format_outcomes(
    title: str,
    outcomes: list[StrategyOutcome],
    note: str = "",
) -> str:
    """Render one figure's worth of results as a table with bars."""
    lines = [title, "=" * len(title)]
    if note:
        lines.append(note)
    completed = [
        o.relative
        for o in outcomes
        if o.executed and o.completed and not math.isnan(o.relative)
    ]
    max_relative = max(completed) if completed else 1.0
    table = Table(
        [
            Column("strategy", 12, align="left"),
            Column("est.cost", 12),
            Column("charged", 12),
            Column("est.err", 8),
            Column("plan.ms", 8),
            Column("rel", 8),
            Column("(relative charged cost)", gap=2),
        ]
    )
    for outcome in outcomes:
        if outcome.error:
            table.raw(f"{outcome.strategy:<12} ERROR: {outcome.error}")
            continue
        est = f"{outcome.estimated_cost:.0f}"
        plan_ms = _plan_ms(outcome)
        if not outcome.executed:
            table.row(outcome.strategy, est, "(not run)", "—", plan_ms)
            continue
        if not outcome.completed:
            table.row(
                outcome.strategy, est, "DNF", "—", plan_ms, "—",
                "(exceeded cost budget; paper: 'never completed')",
            )
            continue
        error = outcome.estimation_error
        err = "—" if math.isnan(error) else f"{error * 100:+.0f}%"
        table.row(
            outcome.strategy,
            est,
            f"{outcome.charged:.0f}",
            err,
            plan_ms,
            f"{outcome.relative:.2f}x",
            _bar(outcome.relative, max_relative),
        )
    lines.append(table.render())
    return "\n".join(lines)


def format_planning_times(
    title: str, outcomes: list[StrategyOutcome]
) -> str:
    lines = [title, "=" * len(title)]
    for outcome in outcomes:
        if outcome.error:
            lines.append(f"{outcome.strategy:<12} ERROR: {outcome.error}")
        elif math.isnan(outcome.planning_seconds):
            lines.append(f"{outcome.strategy:<12} planned in {'—':>9} ms")
        else:
            lines.append(
                f"{outcome.strategy:<12} planned in "
                f"{outcome.planning_seconds * 1000:9.1f} ms"
            )
    return "\n".join(lines)
