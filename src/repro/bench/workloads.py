"""The paper's benchmark queries, reconstructed.

The paper prints Query 1 and *describes* Queries 2–5; exact SQL was not
published. Each reconstruction below preserves the diagnostic property the
paper uses the query for (documented per query), against our synthetic
Hong–Stonebraker-style database where relation ``tN`` holds ``N × scale``
tuples and a column's trailing number is its value-repetition factor.

Functions follow the paper's convention: ``costlyN`` costs N random I/Os
per invocation. Selectivities are catalog metadata; the synthetic function
bodies deterministically realise them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.database import Database
from repro.optimizer.query import Query
from repro.sql import compile_query


@dataclass
class Workload:
    """One benchmark query plus its reproduction context."""

    key: str
    title: str
    figure: str
    sql: str
    diagnostic: str
    query: Query
    #: Charged-cost budget for execution; None = unbounded. Only Query 5
    #: needs one (its PullUp plan must DNF, per the paper's footnote).
    budget: float | None = None


def ensure_workload_functions(db: Database) -> None:
    """Register the UDFs the workloads rely on (idempotent)."""
    functions = db.catalog.functions
    if "costly100" not in functions:
        functions.register_costly(100, selectivity=0.5, seed=db.seed + 100)
    if "costly100sel10" not in functions:
        functions.register(
            "costly100sel10",
            cost_per_call=100.0,
            selectivity=0.10,
            seed=db.seed + 1,
        )
    if "expjoin10" not in functions:
        functions.register(
            "expjoin10",
            cost_per_call=10.0,
            selectivity=0.01,
            seed=db.seed + 2,
        )
    if "costly100sel90" not in functions:
        functions.register(
            "costly100sel90",
            cost_per_call=100.0,
            selectivity=0.90,
            seed=db.seed + 3,
        )


def _query1(db: Database) -> Workload:
    """Query 1 (Figure 3): the join is selective (0.3) over the relation
    carrying the expensive selection, so the selection belongs *above* the
    join — PushDown evaluates costly100 on every t10 tuple and loses by
    more than 3×."""
    sql = (
        "SELECT * FROM t3, t10\n"
        "WHERE t3.a1 = t10.ua1 AND costly100(t10.u20)"
    )
    return Workload(
        key="q1",
        title="Query 1",
        figure="Figure 3",
        sql=sql,
        diagnostic=(
            "join selective over t10; pullup of costly100 wins big; "
            "PushDown suboptimal by ~|t10| / |t3 join t10| in function cost"
        ),
        query=compile_query(db, sql, name="Query 1"),
    )


def _query2(db: Database) -> Workload:
    """Query 2 (Figure 4): same shape as Query 1 but the join has
    selectivity ~1 over t10 ("t9's join column has more values than
    t10's"), so pullup buys nothing and only inflates the join inputs —
    PullUp errs, but nearly insignificantly.

    The paper swaps t3 for t9; under our generator the equivalent way to
    make the join non-selective over t10 is joining t9's unique column to
    t10's 20-way-repeated column (every t10 tuple finds its match).
    """
    sql = (
        "SELECT * FROM t9, t10\n"
        "WHERE t9.a1 = t10.ua20 AND costly100(t10.u20)"
    )
    return Workload(
        key="q2",
        title="Query 2",
        figure="Figure 4",
        sql=sql,
        diagnostic=(
            "join selectivity 1 over t10; over-eager pullup loses only the "
            "join-input inflation — a nearly insignificant error"
        ),
        query=compile_query(db, sql, name="Query 2"),
    )


def _query3(db: Database) -> Workload:
    """Query 3 (Figure 5): the join *fans out* (selectivity > 1) over the
    relation carrying the expensive selection — each qualifying t3 tuple
    matches ~20 t10 tuples — so pulling the selection up multiplies its
    invocations. Over-eager pullup is significantly poor here (and
    predicate caching is what rescues it; see the caching ablation)."""
    sql = (
        "SELECT * FROM t3, t10\n"
        "WHERE t3.ua1 = t10.ua20 AND costly100(t3.u20)"
    )
    return Workload(
        key="q3",
        title="Query 3",
        figure="Figure 5",
        sql=sql,
        diagnostic=(
            "join fans out over t3 (selectivity > 1); PullUp multiplies "
            "costly100 invocations by the fanout"
        ),
        query=compile_query(db, sql, name="Query 3"),
    )


def _query4(db: Database) -> Workload:
    """Query 4 (Figures 6–8): a three-way join whose spine ranks decrease —
    J1 (t3⋈t6) passes every t3 tuple (rank ~0) while J2 (⋈t10, with t10
    pre-filtered) is very selective (rank << 0). The expensive selection's
    rank sits between them: PullRank, comparing one join at a time, leaves
    it below J1 forever; Predicate Migration groups J1·J2 and pulls it
    above the pair."""
    stats = db.catalog.table("t10").stats.attribute("a20")
    threshold = stats.low + max(1, round(0.1 * stats.width))
    sql = (
        "SELECT * FROM t3, t6, t10\n"
        "WHERE costly100sel10(t3.u20)\n"
        "  AND t3.ua1 = t6.a1\n"
        "  AND t6.ua1 = t10.a1\n"
        f"  AND t10.a20 < {threshold}"
    )
    return Workload(
        key="q4",
        title="Query 4",
        figure="Figure 8 (plans: Figures 6-7)",
        sql=sql,
        diagnostic=(
            "decreasing join ranks up the spine require a multi-join group "
            "pullup; PullRank cannot and stays ~an order of magnitude off"
        ),
        query=compile_query(db, sql, name="Query 4"),
    )


def _query5(db: Database) -> Workload:
    """Query 5 (Figure 9): an *expensive primary join predicate* connects
    t7 (no cheap equijoin exists to it), plus an expensive selection on t3.
    PullUp pulls the selection above the expensive join, evaluating
    expjoin10 on the whole cross-product of t7 with the three-way join —
    the plan that filled Montage's swap and never completed. We give the
    executor a cost budget and report the DNF."""
    pages = sum(db.catalog.table(name).pages for name in ("t3", "t6", "t7", "t10"))
    t3 = db.catalog.table("t3").cardinality
    t7 = db.catalog.table("t7").cardinality
    # A generous budget: ~10× the good plan's charge, far below PullUp's.
    good_plan_charge = 0.1 * t3 * t7 * 10 + 100 * t3 + pages
    budget = 3.0 * good_plan_charge
    # The expensive join predicate reads unique columns so its realized
    # pass rate matches the declared 1% (coarse columns quantize it away
    # at small scales).
    sql = (
        "SELECT * FROM t3, t6, t7, t10\n"
        "WHERE costly100sel10(t3.u20)\n"
        "  AND t3.ua1 = t6.a1\n"
        "  AND t6.ua1 = t10.a1\n"
        "  AND expjoin10(t7.ua1, t3.ua1)"
    )
    return Workload(
        key="q5",
        title="Query 5",
        figure="Figure 9",
        sql=sql,
        diagnostic=(
            "expensive primary join predicate; PullUp lifts the selection "
            "above it and DNFs (the paper's swap-exhaustion footnote)"
        ),
        query=compile_query(db, sql, name="Query 5"),
        budget=budget,
    )


def _qor(db: Database) -> Workload:
    """Disjunctive extension (not in the paper): an OR of two expensive
    predicates over the q1 join shape. The optimizer treats the whole
    disjunction as one compound predicate — combined selectivity
    1 - (1-0.1)(1-0.9) = 0.91 — and places it *above* the selective join,
    exactly as q1 places costly100; PushDown pays the disjunction on every
    t10 tuple and loses by ~|t10| / |t3 join t10|.

    Within the disjunction the evaluator is cost-ordered: OR children run
    in ascending rank over their *pass* probability (equivalently, rank of
    1 - s), so costly100sel90 — nine times likelier to short-circuit the
    OR to true — is evaluated first even though the SQL lists it second
    (the Kim/Ileri/Madden ordering for disjunctive predicates on columnar
    engines). See EXPERIMENTS.md, "Disjunctions and the boolean tree".
    """
    sql = (
        "SELECT * FROM t3, t10\n"
        "WHERE t3.a1 = t10.ua1\n"
        "  AND (costly100sel10(t10.u20) OR costly100sel90(t10.ua20))"
    )
    return Workload(
        key="qor",
        title="Disjunctive query (OR of expensive predicates)",
        figure="Extension (disjunctive predicates)",
        sql=sql,
        diagnostic=(
            "compound OR placed above the selective join as one unit; "
            "children evaluated cheapest-to-accept first (rank over 1-s)"
        ),
        query=compile_query(db, sql, name="Disjunctive query"),
    )


def _ldl_example(db: Database) -> Workload:
    """The Section 3.1 example (Figures 1–2): R ⋈ S with expensive
    selections p(R), q(S) on *both* inputs, where the optimal plan (the
    paper's Figure 1) applies both below the join. That plan is bushy in
    LDL's join-ified view (Figure 2), so a left-deep LDL plan must pull one
    selection above the join — here a fanout join, which multiplies the
    pulled predicate's invocations."""
    sql = (
        "SELECT * FROM t3, t6\n"
        "WHERE t3.ua20 = t6.ua20\n"
        "  AND costly100sel90(t3.u20) AND costly100sel90(t6.u100)"
    )
    return Workload(
        key="ldl_example",
        title="LDL example (R join S with p(R), q(S))",
        figure="Figures 1-2",
        sql=sql,
        diagnostic=(
            "expensive selections on both inputs; LDL cannot keep the "
            "inner one below the join"
        ),
        query=compile_query(db, sql, name="LDL example"),
    )


def _fiveway(db: Database) -> Workload:
    """The Section 4.4 planning-time check: a 5-way join with expensive
    predicates planned in under 8 seconds (Montage on a SparcStation 10)."""
    sql = (
        "SELECT * FROM t2, t4, t6, t8, t10\n"
        "WHERE t2.ua1 = t4.a1\n"
        "  AND t4.ua1 = t6.a1\n"
        "  AND t6.ua1 = t8.a1\n"
        "  AND t8.ua1 = t10.a1\n"
        "  AND costly100(t2.u20)\n"
        "  AND costly100sel10(t6.u20)\n"
        "  AND costly100(t10.u20)"
    )
    return Workload(
        key="fiveway",
        title="5-way join with expensive predicates",
        figure="Section 4.4 (planning time)",
        sql=sql,
        diagnostic="optimization-time stress case for unpruneable retention",
        query=compile_query(db, sql, name="5-way join"),
    )


WORKLOADS: dict[str, Callable[[Database], Workload]] = {
    "q1": _query1,
    "q2": _query2,
    "q3": _query3,
    "q4": _query4,
    "q5": _query5,
    "qor": _qor,
    "ldl_example": _ldl_example,
    "fiveway": _fiveway,
}


def build_workload(db: Database, key: str) -> Workload:
    """Instantiate one workload against a database (registers its UDFs)."""
    ensure_workload_functions(db)
    return WORKLOADS[key](db)


def build_all(db: Database) -> dict[str, Workload]:
    ensure_workload_functions(db)
    return {key: factory(db) for key, factory in WORKLOADS.items()}
