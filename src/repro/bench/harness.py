"""Run one query under several placement strategies and measure plans."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.database import Database
from repro.errors import OptimizerError
from repro.exec import Executor
from repro.optimizer import optimize
from repro.optimizer.query import Query
from repro.plan.nodes import Plan

#: The paper's algorithm line-up, in its Figure 10 eagerness order.
DEFAULT_STRATEGIES = (
    "pushdown",
    "pullrank",
    "migration",
    "ldl",
    "pullup",
    "exhaustive",
)


@dataclass
class StrategyOutcome:
    """One strategy's plan and its measured charge."""

    strategy: str
    plan: Plan
    estimated_cost: float
    planning_seconds: float
    charged: float = float("nan")
    completed: bool = True
    rows: int = 0
    function_calls: int = 0
    executed: bool = False
    error: str = ""
    relative: float = float("nan")
    extras: dict = field(default_factory=dict)

    @property
    def dnf(self) -> bool:
        return self.executed and not self.completed


def run_strategies(
    db: Database,
    query: Query,
    strategies: tuple[str, ...] = DEFAULT_STRATEGIES,
    caching: bool = False,
    global_model: bool = False,
    budget: float | None = None,
    execute: bool = True,
) -> list[StrategyOutcome]:
    """Optimize and (optionally) execute ``query`` under each strategy.

    Returns outcomes with ``relative`` filled in: measured charge divided by
    the best completed plan's charge (the paper reports relative times).
    """
    outcomes: list[StrategyOutcome] = []
    for strategy in strategies:
        try:
            optimized = optimize(
                db,
                query,
                strategy=strategy,
                caching=caching,
                global_model=global_model,
            )
        except OptimizerError as error:
            outcomes.append(
                StrategyOutcome(
                    strategy=strategy,
                    plan=None,  # type: ignore[arg-type]
                    estimated_cost=float("nan"),
                    planning_seconds=float("nan"),
                    error=str(error),
                )
            )
            continue
        outcome = StrategyOutcome(
            strategy=strategy,
            plan=optimized.plan,
            estimated_cost=optimized.estimated_cost,
            planning_seconds=optimized.planning_seconds,
        )
        if execute:
            executor = Executor(db, caching=caching, budget=budget)
            result = executor.execute(optimized.plan)
            outcome.charged = result.charged
            outcome.completed = result.completed
            outcome.rows = result.row_count
            outcome.function_calls = int(result.metrics["function_calls"])
            outcome.executed = True
        outcomes.append(outcome)

    completed = [
        o.charged for o in outcomes if o.executed and o.completed
    ]
    if completed:
        best = min(completed)
        for outcome in outcomes:
            if outcome.executed and outcome.completed and best > 0:
                outcome.relative = outcome.charged / best
    return outcomes


def best_outcome(outcomes: list[StrategyOutcome]) -> StrategyOutcome:
    candidates = [o for o in outcomes if o.executed and o.completed]
    return min(candidates, key=lambda outcome: outcome.charged)


def outcome_by_strategy(
    outcomes: list[StrategyOutcome], strategy: str
) -> StrategyOutcome:
    for outcome in outcomes:
        if outcome.strategy == strategy:
            return outcome
    raise KeyError(strategy)
