"""Run one query under several placement strategies and measure plans."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.database import Database
from repro.errors import OptimizerError
from repro.exec import Executor
from repro.obs.feedback import FeedbackCollector
from repro.obs.profile import NULL_PROFILER
from repro.obs.provenance import NULL_LEDGER, ProvenanceLedger
from repro.obs.quality import quality_summary, signed_relative_error
from repro.obs.runtime_telemetry import RuntimeMonitor
from repro.obs.tracer import NULL_TRACER
from repro.optimizer import STRATEGIES, optimize
from repro.plan.display import _node_label
from repro.optimizer.query import Query
from repro.plan.nodes import Plan, PlanNode

#: The paper's algorithm line-up, in its Figure 10 eagerness order.
DEFAULT_STRATEGIES = (
    "pushdown",
    "pullrank",
    "migration",
    "ldl",
    "pullup",
    "exhaustive",
)

#: The full registry line-up: the paper's six plus the [KZ88] LDL/IK-KBZ
#: pipeline, which stays out of the default because it rejects queries
#: outside IK-KBZ's scope (cyclic graphs, expensive join predicates).
ALL_STRATEGIES = DEFAULT_STRATEGIES + ("ldl-ikkbz",)


def resolve_strategies(spec: str) -> tuple[str, ...]:
    """Parse a CLI strategy spec: ``default``, ``all``, or a comma list.

    Every name must exist in the optimizer's strategy registry; unknown
    names raise :class:`OptimizerError` with the valid choices.
    """
    if spec == "default":
        return DEFAULT_STRATEGIES
    if spec == "all":
        return ALL_STRATEGIES
    names = tuple(name.strip() for name in spec.split(",") if name.strip())
    unknown = [name for name in names if name not in STRATEGIES]
    if unknown or not names:
        raise OptimizerError(
            f"unknown strategies {unknown or [spec]}; choose from "
            f"{sorted(STRATEGIES)} or 'default'/'all'"
        )
    return names


@dataclass
class StrategyOutcome:
    """One strategy's plan and its measured charge."""

    strategy: str
    plan: Plan
    estimated_cost: float
    planning_seconds: float
    charged: float = float("nan")
    completed: bool = True
    rows: int = 0
    function_calls: int = 0
    executed: bool = False
    error: str = ""
    relative: float = float("nan")
    #: The optimizer's decision counts (``OptimizedPlan.notes``).
    notes: dict = field(default_factory=dict)
    extras: dict = field(default_factory=dict)

    @property
    def dnf(self) -> bool:
        return self.executed and not self.completed

    @property
    def estimation_error(self) -> float:
        """Signed relative error of the cost estimate against the charge
        actually measured (``nan`` until the plan ran to completion).

        Convention for zero charges: a legitimately free completed plan
        (``charged == 0``) with a zero estimate is a *perfect* estimate —
        ``0.0``, not ``nan``. A zero charge against a nonzero estimate
        stays ``nan``: relative error against zero is undefined, and
        reporting it as infinite would poison aggregates. These semantics
        live in :func:`repro.obs.quality.signed_relative_error`, shared
        with the estimation-quality scorecards.
        """
        if not self.executed or not self.completed:
            return float("nan")
        return signed_relative_error(self.estimated_cost, self.charged)


def _operator_summary(
    plan: Plan, node_stats: dict, batch_stats: dict | None = None
) -> list[dict]:
    """Flatten instrumented per-node actuals into report-friendly dicts,
    pre-order so the list reads like the plan tree.

    ``batch_stats`` (instrumented vector runs only) embeds each node's
    batch-granular actuals under a ``batch`` key; row-path records never
    carry it, so row-recorded baselines stay byte-identical and
    bench-diff treats the section as an informational note."""
    summary: list[dict] = []
    batch_map = batch_stats or {}

    def visit(node: PlanNode) -> None:
        stats = node_stats.get(id(node))
        entry = {"node": _node_label(node)}
        if stats is not None:
            entry.update(stats.as_dict())
        batch = batch_map.get(id(node))
        if batch is not None:
            entry["batch"] = batch.as_dict()
        summary.append(entry)
        for child in node.children():
            visit(child)

    visit(plan.root)
    return summary


def run_strategies(
    db: Database,
    query: Query,
    strategies: tuple[str, ...] = DEFAULT_STRATEGIES,
    caching: bool = False,
    global_model: bool = False,
    budget: float | None = None,
    execute: bool = True,
    tracer=NULL_TRACER,
    instrument: bool = False,
    profiler=NULL_PROFILER,
    provenance: bool = False,
    feedback: bool = False,
    telemetry: bool = False,
    executor: str = "row",
    adaptive=None,
) -> list[StrategyOutcome]:
    """Optimize and (optionally) execute ``query`` under each strategy.

    Returns outcomes with ``relative`` filled in: measured charge divided by
    the best completed plan's charge (the paper reports relative times).
    Planner decision counts land in each outcome's ``notes``;
    ``instrument=True`` additionally collects per-operator actuals into
    ``extras["operators"]``. A ``profiler``
    (:class:`repro.obs.PhaseProfiler`) accumulates per-phase wall-clock
    across all strategies — its hotspot report lands in recorded run
    artifacts. ``provenance=True`` records each strategy's placement
    decisions into a fresh :class:`repro.obs.ProvenanceLedger`, summarised
    into ``extras["ledger"]`` (and from there into run artifacts).
    ``feedback=True`` runs each executed strategy with a fresh
    :class:`repro.obs.FeedbackCollector` and summarises estimation
    quality (cost q-error, per-predicate selectivity q-errors, drift
    flags) into ``extras["quality"]`` — collection only; plans are
    optimized before any observation exists, so fingerprints are
    untouched. ``telemetry=True`` attaches a fresh
    :class:`repro.obs.RuntimeMonitor` to each execution: the resource
    roll-up lands in ``extras["resources"]`` (artifact-bound) and the
    monitor itself in ``extras["monitor"]`` for the export surface —
    like feedback, pure observation that never changes a plan.
    ``executor`` selects the row-at-a-time (``"row"``, the default) or
    batch-at-a-time (``"vector"``) execution path for every strategy.
    ``adaptive`` (an :class:`repro.adaptive.AdaptivePolicy`) arms
    mid-query re-optimization on each execution; the controller's
    report lands in ``extras["adaptive"]`` and its ``plan.replan``
    events in the strategy's ledger (when ``provenance=True``).
    """
    outcomes: list[StrategyOutcome] = []
    for strategy in strategies:
        ledger = ProvenanceLedger() if provenance else NULL_LEDGER
        try:
            optimized = optimize(
                db,
                query,
                strategy=strategy,
                caching=caching,
                global_model=global_model,
                tracer=tracer,
                profiler=profiler,
                ledger=ledger,
            )
        except OptimizerError as error:
            outcomes.append(
                StrategyOutcome(
                    strategy=strategy,
                    plan=None,  # type: ignore[arg-type]
                    estimated_cost=float("nan"),
                    planning_seconds=float("nan"),
                    error=str(error),
                )
            )
            continue
        outcome = StrategyOutcome(
            strategy=strategy,
            plan=optimized.plan,
            estimated_cost=optimized.estimated_cost,
            planning_seconds=optimized.planning_seconds,
            notes=dict(optimized.notes),
        )
        if execute:
            collector = FeedbackCollector() if feedback else None
            monitor = RuntimeMonitor() if telemetry else None
            runner = Executor(
                db, caching=caching, budget=budget, tracer=tracer,
                profiler=profiler, collector=collector, monitor=monitor,
                executor=executor, adaptive=adaptive, ledger=ledger,
            )
            result = runner.execute(optimized.plan, instrument=instrument)
            outcome.charged = result.charged
            outcome.completed = result.completed
            outcome.rows = result.row_count
            outcome.function_calls = int(result.metrics["function_calls"])
            outcome.executed = True
            if result.node_stats is not None:
                outcome.extras["operators"] = _operator_summary(
                    optimized.plan,
                    result.node_stats,
                    result.batch_stats,
                )
            if collector is not None:
                outcome.extras["quality"] = quality_summary(
                    outcome.estimated_cost,
                    result.charged,
                    collector.observations(),
                )
            if monitor is not None:
                if result.resources is not None:
                    outcome.extras["resources"] = (
                        result.resources.as_dict()
                    )
                outcome.extras["monitor"] = monitor
            if result.adaptive is not None:
                outcome.extras["adaptive"] = result.adaptive.as_dict()
        if provenance:
            # Summarised after execution so mid-query plan.replan events
            # (adaptive runs) land next to the planning-time decisions.
            outcome.extras["ledger"] = ledger.summary()
        outcomes.append(outcome)

    completed = [
        o.charged for o in outcomes if o.executed and o.completed
    ]
    if completed:
        best = min(completed)
        for outcome in outcomes:
            if outcome.executed and outcome.completed and best > 0:
                outcome.relative = outcome.charged / best
    return outcomes


def best_outcome(outcomes: list[StrategyOutcome]) -> StrategyOutcome:
    candidates = [o for o in outcomes if o.executed and o.completed]
    return min(candidates, key=lambda outcome: outcome.charged)


def outcome_by_strategy(
    outcomes: list[StrategyOutcome], strategy: str
) -> StrategyOutcome:
    for outcome in outcomes:
        if outcome.strategy == strategy:
            return outcome
    raise OptimizerError(
        f"no outcome recorded for strategy {strategy!r}; "
        f"ran {[o.strategy for o in outcomes]}"
    )
