"""Pullup-eagerness measurement (the paper's Figure 10 spectrum).

Figure 10 orders the algorithms by how eagerly they pull predicates up:
PushDown < PullRank < Predicate Migration < LDL < PullUp. We quantify this
on real plans: for each expensive movable predicate, its *lift* is how far
above its entry slot it was placed, normalised by the available headroom;
an algorithm's eagerness on a query is the mean lift over its expensive
predicates, and the spectrum is the mean over a workload suite.
"""

from __future__ import annotations

from repro.plan.nodes import Plan, PlanNode
from repro.plan.streams import spine_of


def eagerness_score(plan: Plan | PlanNode) -> float | None:
    """Mean normalised lift of the expensive filters in one plan.

    Returns ``None`` when the plan has no expensive filter with headroom
    (nothing to be eager about).
    """
    root = plan.root if isinstance(plan, Plan) else plan
    spine = spine_of(root)
    lifts: list[float] = []
    for node in root.walk():
        for predicate in node.filters:
            if not predicate.is_expensive:
                continue
            entry = spine.entry_slot(predicate)
            headroom = (spine.slots - 1) - entry
            if headroom <= 0:
                continue
            slot = _current_slot(spine, node)
            lifts.append(max(0, slot - entry) / headroom)
    if not lifts:
        return None
    return sum(lifts) / len(lifts)


def _current_slot(spine, node: PlanNode) -> int:
    """The slot a filter list corresponds to: scans are below every join
    they feed; join ``i``'s filters sit at slot ``i + 1``."""
    for spine_join in spine.joins:
        if node is spine_join.join:
            return spine_join.slot
        if node is spine_join.join.inner:
            return 0
    return 0  # the spine leaf
