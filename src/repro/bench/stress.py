"""Random-query stress testing: the paper's Section 5 debugging lesson.

"Benchmarking is absolutely crucial to thoroughly debugging a query
optimizer ... Typically, bugs were exposed by running the same query under
the various different optimization heuristics, and comparing the estimated
costs and running times of the resulting plans."

This module automates exactly that: generate random conjunctive queries,
optimize each under every algorithm, execute every plan, and flag

* *disagreements* — two plans for the same query returning different rows
  (an executor or placement-correctness bug), and
* *regressions* — Predicate Migration estimating worse than a simpler
  heuristic (the paper's tell-tale for an optimizer bug).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.database import Database
from repro.errors import OptimizerError
from repro.exec import Executor
from repro.optimizer import optimize
from repro.optimizer.query import Query
from repro.sql import compile_query

DEFAULT_STRATEGIES = ("pushdown", "pullup", "pullrank", "migration")

_COLUMNS = ("a1", "a20", "ua1", "ua20", "u20")
_FUNCTIONS = ("costly1", "costly10", "costly100")
_OPERATORS = ("=", "<", "<=", ">", ">=", "<>")


@dataclass
class StressIssue:
    sql: str
    kind: str  # "disagreement" | "regression" | "error"
    detail: str


@dataclass
class StressReport:
    queries_run: int = 0
    issues: list[StressIssue] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.issues

    def summary(self) -> str:
        status = "CLEAN" if self.clean else f"{len(self.issues)} ISSUE(S)"
        lines = [f"stress: {self.queries_run} random queries — {status}"]
        for issue in self.issues[:10]:
            lines.append(f"  [{issue.kind}] {issue.sql}")
            lines.append(f"      {issue.detail}")
        return "\n".join(lines)


def random_sql(rng: random.Random, tables: list[str]) -> str:
    """One random conjunctive query over 1–2 of ``tables``."""
    chosen = rng.sample(tables, rng.randint(1, min(2, len(tables))))
    conjuncts: list[str] = []
    if len(chosen) == 2:
        conjuncts.append(
            f"{chosen[0]}.{rng.choice(_COLUMNS)} = "
            f"{chosen[1]}.{rng.choice(_COLUMNS)}"
        )
    for _ in range(rng.randint(0, 2)):
        table = rng.choice(chosen)
        if rng.random() < 0.5:
            conjuncts.append(
                f"{table}.{rng.choice(_COLUMNS)} "
                f"{rng.choice(_OPERATORS)} {rng.randint(0, 30)}"
            )
        else:
            conjuncts.append(
                f"{rng.choice(_FUNCTIONS)}({table}.{rng.choice(_COLUMNS)})"
            )
    sql = f"SELECT * FROM {', '.join(chosen)}"
    if conjuncts:
        sql += " WHERE " + " AND ".join(conjuncts)
    return sql


def _canonical_rows(db: Database, query: Query, plan) -> list[tuple]:
    project = [
        (table, name)
        for table in sorted(query.tables)
        for name in db.catalog.table(table).schema.attribute_names
    ]
    result = Executor(db).execute(plan, project=project)
    return sorted(result.rows)


def stress_optimizer(
    db: Database,
    queries: int = 40,
    seed: int = 0,
    tables: tuple[str, ...] = ("t1", "t2", "t3"),
    strategies: tuple[str, ...] = DEFAULT_STRATEGIES,
) -> StressReport:
    """Run the random stress suite; returns a report of any issues found."""
    rng = random.Random(seed)
    report = StressReport()
    for _ in range(queries):
        sql = random_sql(rng, list(tables))
        report.queries_run += 1
        try:
            query = compile_query(db, sql, name="stress")
            reference_rows = None
            estimates: dict[str, float] = {}
            for strategy in strategies:
                optimized = optimize(db, query, strategy=strategy)
                estimates[strategy] = optimized.estimated_cost
                rows = _canonical_rows(db, query, optimized.plan)
                if reference_rows is None:
                    reference_rows = rows
                elif rows != reference_rows:
                    report.issues.append(
                        StressIssue(
                            sql,
                            "disagreement",
                            f"{strategy} returned {len(rows)} rows vs "
                            f"{len(reference_rows)}",
                        )
                    )
            if "migration" in estimates:
                floor = estimates["migration"]
                for strategy, estimate in estimates.items():
                    if estimate < floor - 1e-6:
                        report.issues.append(
                            StressIssue(
                                sql,
                                "regression",
                                f"migration estimated {floor:.1f} but "
                                f"{strategy} estimated {estimate:.1f}",
                            )
                        )
        except OptimizerError as error:
            report.issues.append(StressIssue(sql, "error", str(error)))
    return report
