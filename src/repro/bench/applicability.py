"""Table 1 reproduction: which algorithm optimises which query class.

The paper's Table 1 states, per algorithm, the class of queries it handles
correctly. We verify the claims empirically: run every workload query under
every algorithm and mark the algorithm "correct" on that query when its
measured charge is within tolerance of the best completed plan's charge.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.harness import DEFAULT_STRATEGIES, run_strategies
from repro.bench.workloads import build_all
from repro.database import Database

#: A plan is "correct" when within this factor of the best plan's charge.
TOLERANCE = 1.10

#: The paper's Table 1 claims, restated as the expected outcome per
#: (workload, strategy): True = produces a (near-)optimal plan.
EXPECTED = {
    #                pushdown pullrank migration  ldl  pullup exhaustive
    "q1": dict(
        pushdown=False, pullrank=True, migration=True,
        ldl=True, pullup=True, exhaustive=True,
    ),
    "q2": dict(
        pushdown=True, pullrank=True, migration=True,
        ldl=True, pullup=True, exhaustive=True,  # pullup errs insignificantly
    ),
    "q3": dict(
        pushdown=True, pullrank=True, migration=True,
        ldl=True, pullup=False, exhaustive=True,
    ),
    "q4": dict(
        pushdown=False, pullrank=True, migration=True,
        ldl=True, pullup=True, exhaustive=True,
        # NB: full-enumeration PullRank escapes via another join order here;
        # the fixed-order study (Figures 6-7) shows the placement failure.
    ),
    "q5": dict(
        pushdown=True, pullrank=True, migration=True,
        ldl=True, pullup=False, exhaustive=True,
    ),
    "qor": dict(
        # Same join shape as q1; the compound OR behaves like one
        # expensive predicate, so only PushDown errs.
        pushdown=False, pullrank=True, migration=True,
        ldl=True, pullup=True, exhaustive=True,
    ),
    "ldl_example": dict(
        pushdown=True, pullrank=True, migration=True,
        ldl=False, pullup=False, exhaustive=True,
    ),
}


@dataclass
class ApplicabilityCell:
    workload: str
    strategy: str
    relative: float
    completed: bool

    @property
    def correct(self) -> bool:
        return self.completed and self.relative <= TOLERANCE


def applicability_matrix(
    db: Database, strategies=DEFAULT_STRATEGIES
) -> dict[str, dict[str, ApplicabilityCell]]:
    """Run the workload suite and classify each (query, algorithm) cell."""
    matrix: dict[str, dict[str, ApplicabilityCell]] = {}
    for key, workload in build_all(db).items():
        if key == "fiveway":
            continue  # planning-time case, not a placement-quality case
        outcomes = run_strategies(
            db, workload.query, strategies=strategies, budget=workload.budget
        )
        matrix[key] = {
            outcome.strategy: ApplicabilityCell(
                workload=key,
                strategy=outcome.strategy,
                relative=outcome.relative,
                completed=outcome.completed,
            )
            for outcome in outcomes
        }
    return matrix


def format_matrix(
    matrix: dict[str, dict[str, ApplicabilityCell]],
    strategies=DEFAULT_STRATEGIES,
) -> str:
    title = "Table 1 — algorithm applicability (measured)"
    lines = [title, "=" * len(title)]
    header = f"{'query':<12}" + "".join(f"{s:>12}" for s in strategies)
    lines.append(header)
    lines.append("-" * len(header))
    for key, row in matrix.items():
        cells = []
        for strategy in strategies:
            cell = row[strategy]
            if not cell.completed:
                cells.append(f"{'DNF':>12}")
            else:
                mark = "ok" if cell.correct else f"{cell.relative:.1f}x"
                cells.append(f"{mark:>12}")
        lines.append(f"{key:<12}" + "".join(cells))
    lines.append("")
    lines.append(
        f"'ok' = within {TOLERANCE:.2f}x of the best completed plan; "
        "DNF = exceeded cost budget."
    )
    return "\n".join(lines)
