"""Executor microbenchmark: row vs. vector wall-clock per workload × scale.

The counterpart of :mod:`repro.bench.optspeed` for the execution layer:
for each (workload, scale) cell it optimizes once, then times the same
physical plan under ``executor="row"`` and ``executor="vector"`` and
reports the best-of-N wall-clock for both plus the speedup ratio. The
charged-cost model is executor-independent (the differential suite gates
that), so this bench measures only what batching is for — interpreter
dispatch per tuple.

Results serialise to JSON so CI can diff runs across commits. Wall-clock
is machine-dependent, so comparisons warn rather than gate — see
:func:`compare_runs`. The committed ``benchmarks/baselines/VECSPEED.json``
records the headline claim: ≥5× on the UDF-heavy q4/q5 at scale 100.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import asdict, dataclass, field

from repro.catalog.datagen import build_database
from repro.exec.runtime import EXECUTORS, Executor
from repro.optimizer import optimize

#: The default grid. q1 is join-dominated (batching buys little); q4 and
#: q5 are UDF-evaluation-dominated, where per-tuple dispatch is the bill.
DEFAULT_WORKLOADS = ("q1", "q4", "q5")
DEFAULT_SCALES = (10, 100)
DEFAULT_REPEATS = 5
DEFAULT_STRATEGY = "pushdown"


@dataclass
class VecSpeedSample:
    """Best-of-N execution time per executor for one (workload, scale)."""

    workload: str
    scale: int
    row_ms: float = float("nan")
    vector_ms: float = float("nan")
    speedup: float = float("nan")
    rows: int = 0
    row_runs_ms: list[float] = field(default_factory=list)
    vector_runs_ms: list[float] = field(default_factory=list)
    error: str = ""

    @property
    def key(self) -> str:
        return f"{self.workload}/{self.scale}"


def measure(
    workload_keys: tuple[str, ...] = DEFAULT_WORKLOADS,
    scales: tuple[int, ...] = DEFAULT_SCALES,
    repeats: int = DEFAULT_REPEATS,
    seed: int = 42,
    strategy: str = DEFAULT_STRATEGY,
) -> list[VecSpeedSample]:
    """Time both executors on every workload × scale cell.

    One database per scale, one ``optimize`` per cell (outside the timed
    region — planning time is opt-speed's business), ``repeats``
    independent executions per executor with the *minimum* reported:
    best-of-N is the standard estimator for interpreter-bound loops,
    where noise is strictly additive. The row multiset is asserted equal
    across executors on every repetition, so a speedup can never come
    from computing less.
    """
    from collections import Counter

    from repro.bench.workloads import build_workload

    samples: list[VecSpeedSample] = []
    for scale in scales:
        db = build_database(scale=scale, seed=seed)
        for key in workload_keys:
            sample = VecSpeedSample(workload=key, scale=scale)
            try:
                workload = build_workload(db, key)
                plan = optimize(db, workload.query, strategy=strategy).plan
                timings: dict[str, list[float]] = {}
                reference = None
                for executor in EXECUTORS:
                    runs: list[float] = []
                    for _ in range(repeats):
                        runner = Executor(
                            db, budget=workload.budget, executor=executor
                        )
                        started = time.perf_counter()
                        result = runner.execute(plan)
                        runs.append(
                            (time.perf_counter() - started) * 1000.0
                        )
                    multiset = Counter(result.rows)
                    if reference is None:
                        reference = multiset
                        sample.rows = result.row_count
                    elif multiset != reference:
                        raise AssertionError(
                            f"{key}/scale={scale}: executors disagree "
                            "on the row multiset"
                        )
                    timings[executor] = runs
            except Exception as exc:  # noqa: BLE001 — recorded, not raised
                sample.error = str(exc)
            else:
                sample.row_runs_ms = [round(ms, 4) for ms in timings["row"]]
                sample.vector_runs_ms = [
                    round(ms, 4) for ms in timings["vector"]
                ]
                sample.row_ms = round(min(timings["row"]), 4)
                sample.vector_ms = round(min(timings["vector"]), 4)
                if sample.vector_ms > 0:
                    sample.speedup = round(
                        sample.row_ms / sample.vector_ms, 3
                    )
            samples.append(sample)
    return samples


def run_payload(
    workload_keys: tuple[str, ...] = DEFAULT_WORKLOADS,
    scales: tuple[int, ...] = DEFAULT_SCALES,
    repeats: int = DEFAULT_REPEATS,
    seed: int = 42,
    strategy: str = DEFAULT_STRATEGY,
) -> dict:
    """The JSON-serialisable result document for one vec-speed run."""
    samples = measure(workload_keys, scales, repeats, seed, strategy)
    return {
        "bench": "vec-speed",
        "seed": seed,
        "strategy": strategy,
        "repeats": repeats,
        "scales": list(scales),
        "workloads": list(workload_keys),
        "samples": [asdict(sample) for sample in samples],
    }


def format_payload(payload: dict) -> str:
    """A fixed-width table: one row per (workload, scale) cell."""
    lines = [
        f"== vec-speed (seed={payload['seed']}, "
        f"strategy={payload['strategy']}, best of {payload['repeats']}, ms)"
    ]
    header = (
        f"{'workload':<10}{'scale':>7}{'row ms':>12}{'vector ms':>12}"
        f"{'speedup':>10}{'rows':>8}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for sample in payload["samples"]:
        if sample.get("error"):
            lines.append(
                f"{sample['workload']:<10}{sample['scale']:>7}"
                f"{'—':>12}{'—':>12}{'—':>10}  {sample['error']}"
            )
            continue
        lines.append(
            f"{sample['workload']:<10}{sample['scale']:>7}"
            f"{sample['row_ms']:>12.3f}{sample['vector_ms']:>12.3f}"
            f"{sample['speedup']:>9.2f}x{sample['rows']:>8}"
        )
    return "\n".join(lines)


def compare_runs(
    baseline: dict, candidate: dict, threshold: float = 0.25
) -> list[str]:
    """Warnings for cells whose vector time regressed or whose speedup
    shrank beyond ``threshold`` (fractional) against the baseline run.

    Wall-clock is not comparable across machines, so callers should treat
    these as warnings, never CI failures. Cells present in only one run
    are reported too.
    """
    warnings: list[str] = []

    def cells(payload: dict) -> dict[str, dict]:
        return {
            f"{s['workload']}/{s['scale']}": s
            for s in payload.get("samples", [])
            if not s.get("error")
        }

    base, cand = cells(baseline), cells(candidate)
    for key in sorted(set(base) | set(cand)):
        if key not in cand:
            warnings.append(f"vec-speed: {key} missing from candidate run")
            continue
        if key not in base:
            warnings.append(f"vec-speed: {key} has no baseline entry")
            continue
        before_ms = base[key].get("vector_ms")
        after_ms = cand[key].get("vector_ms")
        if before_ms and after_ms and before_ms > 0:
            growth = (after_ms - before_ms) / before_ms
            if growth > threshold:
                warnings.append(
                    f"vec-speed: {key} vector time regressed "
                    f"{growth * 100:+.0f}% ({before_ms:.3f} ms -> "
                    f"{after_ms:.3f} ms, threshold +{threshold * 100:.0f}%)"
                )
        before_x = base[key].get("speedup")
        after_x = cand[key].get("speedup")
        if before_x and after_x and before_x > 0:
            decline = (before_x - after_x) / before_x
            if decline > threshold:
                warnings.append(
                    f"vec-speed: {key} speedup shrank "
                    f"-{decline * 100:.0f}% ({before_x:.2f}x -> "
                    f"{after_x:.2f}x, threshold -{threshold * 100:.0f}%)"
                )
    return warnings
