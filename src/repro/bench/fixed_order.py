"""Placement comparison on a *fixed* join order (the paper's Figures 6–7).

Section 4.3 analyses PullRank's failure on one specific plan shape: with the
join order fixed, ranks decreasing up the spine require pulling a selection
above a *group* of joins, which PullRank (one join at a time) cannot do.
Inside full System R enumeration a different join order can mask the effect
— Montage's masked order was expensive (Figure 7), ours may not be — so
this module compares the placement algorithms head-to-head on the same
skeleton, which isolates exactly the effect the paper's figures analyse.

Join methods are chosen once (greedily, under pushdown placement) and held
fixed across algorithms, mirroring the paper's "all the algorithms pick the
same join method" setup.
"""

from __future__ import annotations

import itertools

from repro.bench.harness import StrategyOutcome
from repro.cost.model import CostModel
from repro.database import Database
from repro.exec import Executor
from repro.optimizer.exhaustive import _method_costs, _skeleton
from repro.optimizer.migration import migrate_node
from repro.optimizer.policies import rank_sorted
from repro.optimizer.query import Query
from repro.plan.nodes import Plan, PlanNode, Scan
from repro.plan.streams import Spine, spine_of

FIXED_ORDER_STRATEGIES = (
    "pushdown",
    "pullrank",
    "migration",
    "pullup",
    "exhaustive",
)


def fixed_order_plans(
    db: Database,
    query: Query,
    order: tuple[str, ...],
    caching: bool = False,
) -> dict[str, Plan]:
    """One plan per placement algorithm, all sharing the same join order
    and join methods."""
    model = CostModel(db.catalog, db.params, caching=caching)
    base, movable = _skeleton(query, order, query.join_predicates())
    spine = spine_of(base)
    # Fix methods once, greedily, under the as-built (pushdown) placement.
    list(_method_costs(spine, db.catalog, model, "greedy"))

    plans: dict[str, Plan] = {}

    pushdown = base.clone()
    plans["pushdown"] = _finish(pushdown, model)

    pullup = base.clone()
    pullup_spine = spine_of(pullup)
    pullup_spine.apply_placement(
        {
            predicate: pullup_spine.slots - 1
            for predicate in _movable_of(pullup_spine)
        }
    )
    plans["pullup"] = _finish(pullup, model)

    pullrank = base.clone()
    _pullrank_fixed(spine_of(pullrank), model)
    plans["pullrank"] = _finish(pullrank, model)

    migration = base.clone()
    migrate_node(migration, model)
    plans["migration"] = _finish(migration, model)

    exhaustive = base.clone()
    _best_slots(spine_of(exhaustive), model)
    plans["exhaustive"] = _finish(exhaustive, model)
    return plans


def fixed_order_outcomes(
    db: Database,
    query: Query,
    order: tuple[str, ...],
    caching: bool = False,
    budget: float | None = None,
    execute: bool = True,
) -> list[StrategyOutcome]:
    """Measure the fixed-order plans; relative charge vs the best."""
    plans = fixed_order_plans(db, query, order, caching=caching)
    outcomes: list[StrategyOutcome] = []
    for strategy in FIXED_ORDER_STRATEGIES:
        plan = plans[strategy]
        outcome = StrategyOutcome(
            strategy=strategy,
            plan=plan,
            estimated_cost=plan.estimated_cost or float("nan"),
            planning_seconds=0.0,
        )
        if execute:
            result = Executor(db, caching=caching, budget=budget).execute(plan)
            outcome.charged = result.charged
            outcome.completed = result.completed
            outcome.rows = result.row_count
            outcome.function_calls = int(result.metrics["function_calls"])
            outcome.executed = True
        outcomes.append(outcome)
    completed = [o.charged for o in outcomes if o.executed and o.completed]
    if completed:
        best = min(completed)
        for outcome in outcomes:
            if outcome.executed and outcome.completed and best > 0:
                outcome.relative = outcome.charged / best
    return outcomes


def _movable_of(spine: Spine) -> list:
    movable = []
    for node in spine.top.walk():
        movable.extend(p for p in node.filters if p.is_expensive)
    return movable


def _pullrank_fixed(spine: Spine, model: CostModel) -> None:
    """PullRank's per-join decisions replayed bottom-up on a fixed tree."""
    for spine_join in spine.joins:
        join = spine_join.join
        outer_rows = model.estimate_plan(join.outer).rows
        inner_rows = model.estimate_plan(join.inner).rows
        per_input = model.per_input(join, outer_rows, inner_rows)
        for source, input_rank in (
            (join.outer, per_input.outer_rank),
            (join.inner, per_input.inner_rank),
        ):
            pulled = [p for p in source.filters if p.rank > input_rank]
            for predicate in pulled:
                source.filters.remove(predicate)
            join.filters = rank_sorted(join.filters + pulled)


def _best_slots(spine: Spine, model: CostModel) -> None:
    """Exhaustive slot assignment for the expensive movables."""
    movable = _movable_of(spine)
    best_cost = float("inf")
    best_assignment: dict | None = None
    slot_ranges = [
        range(spine.entry_slot(predicate), spine.slots)
        for predicate in movable
    ]
    for slots in itertools.product(*slot_ranges):
        assignment = dict(zip(movable, slots))
        spine.apply_placement(assignment)
        cost = model.estimate_plan(spine.top).cost
        if cost < best_cost:
            best_cost = cost
            best_assignment = assignment
    if best_assignment is not None:
        spine.apply_placement(best_assignment)


def _finish(root: PlanNode, model: CostModel) -> Plan:
    estimate = model.estimate_plan(root)
    return Plan(root, estimate.cost, estimate.rows)


def default_good_order(query: Query, db: Database) -> tuple[str, ...]:
    """A deterministic left-deep order: tables sorted by filtered size,
    then connectivity-first. Good enough for the fixed-order studies, which
    pass explicit orders anyway."""
    del db
    return tuple(query.tables)
