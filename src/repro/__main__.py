"""Command-line driver: optimize and run SQL against the synthetic database.

Examples::

    python -m repro --sql "SELECT * FROM t3, t10 \
        WHERE t3.a1 = t10.ua1 AND costly100(t10.u20)"
    python -m repro --sql "..." --strategy pushdown --explain-only
    python -m repro --sql "..." --compare --caching
    python -m repro --workload q4 --compare --strategies all
    python -m repro --workload q1 --compare --record artifacts/
    python -m repro bench-diff benchmarks/baselines artifacts/
    python -m repro opt-speed --scale 10 --out artifacts/OPTSPEED.json
    python -m repro why q4 --strategy migration
    python -m repro plan-diff q4 pushdown migration
    python -m repro chaos q4 --seed 7
    python -m repro chaos q1 --seeds 7,11,13 --policy skip-row --report artifacts/
    python -m repro stats q4 --strategy pushdown --dir artifacts/
    python -m repro drift q4 1 2 --dir artifacts/
    python -m repro --workload q4 --trace-export trace.json
    python -m repro --workload q4 --executor vector --explain-analyze
    python -m repro --workload q1 --budget 50 --flight-record artifacts/
    python -m repro postmortem artifacts/FLIGHT_q1.json
    python -m repro top q4 --once
    python -m repro top q1 --strategy pushdown --metrics-export top.prom
    python -m repro --workload q1 --compare --metrics-export metrics.json
    python -m repro bench-history benchmarks/baselines artifacts/
"""

from __future__ import annotations

import argparse
import math
import sys

from repro import Executor, build_database, compile_query, optimize, plan_tree
from repro.adaptive import AdaptivePolicy, load_injected_cards
from repro.adaptive.workloads import ADAPT_WORKLOADS, build_adapt_workload
from repro.bench import format_outcomes, resolve_strategies, run_strategies
from repro.bench.optspeed import (
    DEFAULT_REPEATS,
    DEFAULT_TABLE_COUNTS,
    compare_runs,
    format_payload,
    run_payload,
)
from repro.bench import vecspeed as vecspeed_bench
from repro.bench.workloads import WORKLOADS, build_workload
from repro.cost.model import CostModel
from repro.errors import ArtifactError, OptimizerError, ReproError
from repro.exec.containment import DEFAULT_RETRIES, EXHAUSTION_POLICIES
from repro.exec.runtime import EXECUTORS
from repro.faults.plan import PROFILES
from repro.obs import (
    DRIFT_QERROR_THRESHOLD,
    NULL_PROFILER,
    NULL_TRACER,
    ArtifactRecorder,
    FlightRecorder,
    MetricsRegistry,
    PhaseProfiler,
    ProvenanceLedger,
    RuntimeMonitor,
    Tracer,
    build_export,
    build_flight_dump,
    collect_artifacts,
    diff_artifacts,
    export_chrome_trace,
    export_metrics,
    flight_path,
    format_postmortem,
    format_top,
    has_regressions,
    load_flight_dump,
    load_run_artifact,
    record_run,
    why_report,
    write_flight_dump,
)
from repro.optimizer import STRATEGIES
from repro.plan import explain_analyze


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Practical Predicate Placement' "
            "(Hellerstein, SIGMOD 1994): optimize and execute SQL with "
            "expensive predicates."
        ),
    )
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument("--sql", help="SQL text to plan and run")
    source.add_argument(
        "--workload",
        choices=sorted(WORKLOADS) + sorted(ADAPT_WORKLOADS),
        help="one of the paper's benchmark queries, or an adapt_* "
        "misestimation scenario (seeded catalog lies for --adaptive)",
    )
    parser.add_argument(
        "--strategy",
        default="migration",
        choices=sorted(STRATEGIES),
        help="placement algorithm (default: migration)",
    )
    parser.add_argument(
        "--compare",
        action="store_true",
        help="run every placement algorithm and print the comparison table",
    )
    parser.add_argument(
        "--strategies",
        default="default",
        metavar="SPEC",
        help="strategy line-up for --compare: 'default' (the paper's six), "
        "'all' (adds ldl-ikkbz, the full registry), or a comma-separated "
        "list of strategy names",
    )
    parser.add_argument(
        "--record",
        metavar="DIR",
        help="write a BENCH_<workload>.json run artifact (environment, "
        "per-strategy measurements, plan fingerprints, hotspots) into DIR "
        "after a --compare run; pair with 'bench-diff' to gate regressions",
    )
    parser.add_argument(
        "--scale",
        type=int,
        default=100,
        help="database scale: tN has N x scale tuples (default 100; "
        "the paper's scale is 10000)",
    )
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--caching", action="store_true", help="enable predicate caching"
    )
    parser.add_argument(
        "--executor",
        default="row",
        choices=EXECUTORS,
        help="execution path: 'row' (tuple-at-a-time, the default) or "
        "'vector' (batch-at-a-time columnar); both produce identical "
        "rows and charges",
    )
    parser.add_argument(
        "--cache-capacity",
        type=int,
        default=None,
        metavar="N",
        help="bound the predicate cache to N total entries across all "
        "predicates (global LRU; default: unbounded)",
    )
    parser.add_argument(
        "--bushy",
        action="store_true",
        help="enumerate bushy join trees (enumeration-based strategies)",
    )
    parser.add_argument(
        "--budget",
        type=float,
        default=None,
        help="charged-cost budget; plans exceeding it report DNF",
    )
    parser.add_argument(
        "--explain-only",
        action="store_true",
        help="print the plan without executing it",
    )
    parser.add_argument(
        "--explain-analyze",
        action="store_true",
        help="execute with per-operator instrumentation and print the plan "
        "annotated with estimated vs. actual rows/cost per node "
        "(single-strategy runs)",
    )
    parser.add_argument(
        "--trace",
        metavar="FILE",
        help="record optimizer and executor spans and write them to FILE "
        "as JSON lines",
    )
    parser.add_argument(
        "--trace-export",
        metavar="FILE",
        help="record spans and profiler phases and write them to FILE as "
        "Chrome trace_event JSON (loadable in chrome://tracing or "
        "Perfetto)",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print the plan./exec. metrics snapshot after the run "
        "(single-strategy runs)",
    )
    parser.add_argument(
        "--metrics-export",
        metavar="FILE",
        help="attach live telemetry and write the final metrics snapshot "
        "to FILE — Prometheus text format, or a JSON document when FILE "
        "ends in .json (works for single-strategy and --compare runs)",
    )
    parser.add_argument(
        "--rows",
        type=int,
        default=0,
        metavar="N",
        help="print the first N result rows",
    )
    parser.add_argument(
        "--flight-record",
        metavar="DIR",
        help="attach the execution flight recorder (a fixed-capacity ring "
        "buffer of batch/row events); if the run dies — UDF-DNF, budget "
        "exhaustion — a strict-JSON FLIGHT_<workload>.json crash dump is "
        "written into DIR for 'repro postmortem' (single-strategy runs)",
    )
    parser.add_argument(
        "--adaptive",
        action="store_true",
        help="arm mid-query re-optimization: at row milestones, compare "
        "observed selectivities against the plan's estimates and — past "
        "the drift threshold — re-plan the unexecuted suffix in place "
        "(guardrailed: re-plan budget, oscillation damping, improvement "
        "check; rows and zero-replan charges are identical to a "
        "non-adaptive run)",
    )
    parser.add_argument(
        "--drift-threshold",
        type=float,
        default=None,
        metavar="Q",
        help=f"q-error above which observed-vs-declared selectivity "
        f"drift triggers a re-plan (default {DRIFT_QERROR_THRESHOLD:g}; "
        f"requires --adaptive)",
    )
    parser.add_argument(
        "--max-replans",
        type=int,
        default=None,
        metavar="N",
        help="re-plan budget per query; once spent the controller "
        "records a refusal and disarms (default 2; requires --adaptive)",
    )
    parser.add_argument(
        "--inject-cards",
        metavar="FILE",
        help="inject exact cardinalities before planning: a JSON file "
        "mapping predicate fingerprints (or UDF names) to selectivity / "
        "rows+input_rows (and optional cost_per_call), applied through "
        "Catalog.apply_feedback, then the query is recompiled so ranks "
        "re-derive from the injected statistics",
    )
    return parser


def _adaptive_policy(args) -> AdaptivePolicy | None:
    """The CLI's adaptive knobs as a policy, or ``None`` when off."""
    if not getattr(args, "adaptive", False):
        return None
    kwargs = {}
    if args.drift_threshold is not None:
        kwargs["drift_threshold"] = args.drift_threshold
    if args.max_replans is not None:
        kwargs["max_replans"] = args.max_replans
    return AdaptivePolicy(**kwargs)


def _inject_cards(db, args, query, build) -> object:
    """Apply ``--inject-cards`` and recompile; returns the new query.

    Two passes: the first compile (already done by the caller) yields
    the predicates whose fingerprints card keys may name; binding, then
    ``apply_feedback``, mutates the catalog; the rebuild re-derives
    every rank from the injected statistics (predicate stats are baked
    in at compile time, like ``repro stats --apply-feedback``).
    """
    store = load_injected_cards(args.inject_cards).bind(query.predicates)
    applied = db.catalog.apply_feedback(store)
    for key in store.unmatched:
        print(
            f"warning: injected card {key!r} looks like a predicate "
            "fingerprint but matches none of this query's predicates "
            "(treated as a UDF name)",
            file=sys.stderr,
        )
    print(
        f"-- injected cards: {applied} statistic(s) updated from "
        f"{args.inject_cards}",
        file=sys.stderr,
    )
    return build()


def _write_metrics(path: str, export) -> int:
    """Write a metrics snapshot; returns 0, or 1 on an unwritable path
    (structured error, mirroring ``--trace``'s handling)."""
    try:
        target = export_metrics(path, export)
    except OSError as error:
        print(
            f"error: cannot write metrics file: {error}", file=sys.stderr
        )
        return 1
    print(f"-- metrics: {target}", file=sys.stderr)
    return 0


def _print_stats(registry: MetricsRegistry, out) -> None:
    print("-- stats", file=out)
    for name, value in sorted(registry.snapshot().items()):
        if isinstance(value, float):
            print(f"{name} = {value:.6g}", file=out)
        else:
            print(f"{name} = {value}", file=out)


def _write_flight(
    directory: str,
    flight,
    *,
    workload: str,
    reason: str,
    executor: str,
    strategy: str,
    seed: int,
    result=None,
    monitor=None,
    clamped_charges: int = 0,
) -> int:
    """Serialize one crash dump; returns 0, or 1 on an unwritable path."""
    document = build_flight_dump(
        flight,
        workload=workload,
        reason=reason,
        executor=executor,
        strategy=strategy,
        seed=seed,
        result=result,
        monitor=monitor,
        clamped_charges=clamped_charges,
    )
    try:
        target = write_flight_dump(
            flight_path(directory, workload), document
        )
    except OSError as error:
        print(
            f"error: cannot write flight dump: {error}", file=sys.stderr
        )
        return 1
    print(f"-- flight dump: {target}", file=sys.stderr)
    return 0


def _run(args, tracer, out, profiler=NULL_PROFILER, flight=None) -> int:
    db = build_database(scale=args.scale, seed=args.seed)
    registry = MetricsRegistry() if args.stats else None
    if args.workload and args.workload in ADAPT_WORKLOADS:
        from repro.adaptive.workloads import ADAPT_SQL

        adapt = build_adapt_workload(db, args.workload)
        query = adapt.query
        budget = args.budget
        rebuild = lambda: build_adapt_workload(db, args.workload).query  # noqa: E731
        print(f"-- {adapt.key}: {adapt.title}", file=out)
        print(ADAPT_SQL, file=out)
    elif args.workload:
        workload = build_workload(db, args.workload)
        query = workload.query
        budget = args.budget if args.budget is not None else workload.budget
        rebuild = lambda: build_workload(db, args.workload).query  # noqa: E731
        print(f"-- {workload.title} ({workload.figure})", file=out)
        print(workload.sql, file=out)
    else:
        from repro.bench.workloads import ensure_workload_functions

        ensure_workload_functions(db)
        query = compile_query(db, args.sql, name="cli")
        budget = args.budget
        rebuild = lambda: compile_query(db, args.sql, name="cli")  # noqa: E731
    if args.inject_cards:
        query = _inject_cards(db, args, query, rebuild)
    adaptive_policy = _adaptive_policy(args)

    if args.compare:
        # Recording instruments the run so artifacts carry per-operator
        # actuals, per-strategy provenance ledgers, and the profiler's
        # hotspot report.
        if not profiler.enabled and args.record:
            profiler = PhaseProfiler()
        try:
            strategies = resolve_strategies(args.strategies)
        except OptimizerError as error:
            # A mistyped strategy name is a usage error, not a runtime
            # failure: one line of valid choices, argparse's exit code.
            print(f"error: {error}", file=sys.stderr)
            return 2
        outcomes = run_strategies(
            db,
            query,
            strategies=strategies,
            caching=args.caching,
            budget=budget,
            execute=not args.explain_only,
            tracer=tracer,
            instrument=args.explain_analyze or bool(args.record),
            profiler=profiler,
            provenance=bool(args.record),
            feedback=bool(args.record),
            telemetry=bool(args.record) or bool(args.metrics_export),
            executor=args.executor,
            adaptive=adaptive_policy,
        )
        if adaptive_policy is not None:
            for outcome in outcomes:
                summary = outcome.extras.get("adaptive")
                if summary:
                    print(
                        f"-- adaptive[{outcome.strategy}]: "
                        f"{summary['replans']} replan(s), "
                        f"{summary['refusals']} refusal(s), "
                        f"{summary['triggers']} trigger(s) over "
                        f"{summary['boundaries']} boundaries",
                        file=out,
                    )
        print(
            format_outcomes(
                f"{query.name or 'query'} under every algorithm", outcomes
            ),
            file=out,
        )
        if args.metrics_export:
            monitors = {
                outcome.strategy: outcome.extras.get("monitor")
                for outcome in outcomes
                if outcome.extras.get("monitor") is not None
            }
            code = _write_metrics(
                args.metrics_export,
                build_export(registry=registry, monitors=monitors),
            )
            if code:
                return code
        if args.record:
            recorder = ArtifactRecorder(
                args.record, scale=args.scale, seed=args.seed
            )
            target = recorder.record(
                args.workload or query.name or "cli",
                outcomes,
                profiler=profiler,
            )
            print(f"-- artifact: {target}", file=sys.stderr)
        return 0

    optimized = optimize(
        db,
        query,
        strategy=args.strategy,
        caching=args.caching,
        bushy=args.bushy,
        tracer=tracer,
        profiler=profiler,
    )
    print(
        f"-- strategy: {args.strategy}  "
        f"(planned in {optimized.planning_seconds * 1000:.1f} ms, "
        f"estimated cost {optimized.estimated_cost:,.1f})",
        file=out,
    )
    # --explain-analyze replaces the plain tree with the annotated one,
    # unless --explain-only skips execution (then the plain tree is all
    # there is to show).
    if args.explain_only or not args.explain_analyze:
        print(plan_tree(optimized.plan), file=out)
    if args.explain_only:
        if registry is not None:
            record_run(registry, optimized)
            _print_stats(registry, out)
        return 0

    # A flight-recorded run keeps the monitor attached regardless of
    # --metrics-export: the crash dump's frozen progress section needs it.
    monitor = (
        RuntimeMonitor()
        if args.metrics_export or flight is not None
        else None
    )
    adaptive_ledger = (
        ProvenanceLedger() if adaptive_policy is not None else None
    )
    executor = Executor(
        db, caching=args.caching, budget=budget, tracer=tracer,
        profiler=profiler, monitor=monitor, executor=args.executor,
        cache_capacity=args.cache_capacity, flight=flight,
        adaptive=adaptive_policy, ledger=adaptive_ledger,
    )
    result = executor.execute(
        optimized.plan,
        project=query.select,
        instrument=args.explain_analyze,
    )
    if result.adaptive is not None:
        report = result.adaptive
        status = (
            "active" if report.active
            else f"disabled ({report.disabled_reason})"
        )
        print(
            f"-- adaptive: {status}; {report.replans} replan(s), "
            f"{report.refusals} refusal(s), {report.triggers} trigger(s) "
            f"over {report.boundaries} boundaries "
            f"({report.leaf_rows} leaf rows)",
            file=out,
        )
        for event in report.events:
            action = event.get("action", "?")
            detail = ""
            if action == "applied":
                moves = ", ".join(
                    f"{move['predicate']} slot "
                    f"{move['from_slot']}->{move['to_slot']}"
                    for move in event.get("moves", [])
                )
                detail = f" [{event.get('rung', '?')}] {moves}"
            elif event.get("reason"):
                detail = f": {event['reason']}"
            print(
                f"--   replan event at leaf row "
                f"{event.get('leaf_rows', '?')}: {action}{detail}",
                file=out,
            )
    if monitor is not None and args.metrics_export:
        code = _write_metrics(
            args.metrics_export,
            build_export(registry=registry, monitors={"": monitor}),
        )
        if code:
            return code
    if args.explain_analyze:
        model = CostModel(db.catalog, db.params, caching=args.caching)
        print(
            explain_analyze(
                optimized.plan,
                result.node_stats,
                model,
                batch_stats=result.batch_stats,
            ),
            file=out,
        )
    if registry is not None:
        record_run(registry, optimized, result)
        _print_stats(registry, out)
    if not result.completed:
        if flight is not None and args.flight_record:
            code = _write_flight(
                args.flight_record,
                flight,
                workload=args.workload or query.name or "cli",
                reason=result.error,
                executor=args.executor,
                strategy=args.strategy,
                seed=args.seed,
                result=result,
                monitor=monitor,
                clamped_charges=int(db.meter.clamped_charges),
            )
            if code:
                return code
        print(
            f"DNF: exceeded budget after charging "
            f"{result.charged:,.1f} units",
            file=out,
        )
        return 2
    print(
        f"{result.row_count} rows, charged {result.charged:,.1f} units "
        f"({result.metrics['function_calls']:.0f} UDF calls, "
        f"{result.metrics['random_ios']:.0f} random + "
        f"{result.metrics['seq_ios']:.0f} sequential I/Os)",
        file=out,
    )
    for row in result.rows[: args.rows]:
        print(row, file=out)
    return 0


# -- bench-diff: the plan-regression gate ------------------------------------


def build_bench_diff_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro bench-diff",
        description=(
            "Compare two recorded bench runs (BENCH_*.json files, or "
            "directories of them) strategy by strategy. Exits 1 when a "
            "chosen plan's fingerprint changed, charged cost regressed "
            "beyond --max-regress, or cost-model error widened beyond "
            "--max-error-widen — so CI can gate on it."
        ),
    )
    parser.add_argument(
        "baseline", help="baseline artifact file or directory"
    )
    parser.add_argument(
        "candidate", help="candidate artifact file or directory"
    )
    parser.add_argument(
        "--max-regress",
        type=float,
        default=0.10,
        metavar="FRAC",
        help="maximum allowed fractional charged-cost growth per strategy "
        "(default 0.10)",
    )
    parser.add_argument(
        "--max-time-regress",
        type=float,
        default=None,
        metavar="FRAC",
        help="also gate on planning-time growth beyond FRAC (default: "
        "report only — wall-clock is not comparable across machines)",
    )
    parser.add_argument(
        "--max-error-widen",
        type=float,
        default=0.10,
        metavar="ABS",
        help="maximum allowed widening of |estimation error|, in absolute "
        "fractional-error units (default 0.10; pass inf to disable)",
    )
    return parser


def _artifact_number(record: dict, key: str) -> float:
    value = record.get(key)
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return float(value)
    return float("nan")


def _fmt_err(value: float) -> str:
    return "—" if math.isnan(value) else f"{value * 100:+.0f}%"


def _print_workload_diff(
    workload: str, baseline: dict, candidate: dict, out
) -> None:
    def strategies_of(document: dict) -> dict:
        value = document.get("strategies")
        return value if isinstance(value, dict) else {}

    base_strategies = strategies_of(baseline)
    cand_strategies = strategies_of(candidate)
    title = f"== {workload} (baseline -> candidate)"
    print(title, file=out)
    header = (
        f"{'strategy':<12} {'plan':>8} {'charged':>24} "
        f"{'plan.ms':>18} {'est.err':>12}"
    )
    print(header, file=out)
    print("-" * len(header), file=out)
    for strategy in sorted(set(base_strategies) | set(cand_strategies)):
        base = base_strategies.get(strategy)
        cand = cand_strategies.get(strategy)
        if base is None or cand is None:
            side = "candidate" if base is None else "baseline"
            print(f"{strategy:<12} (only in {side})", file=out)
            continue
        if not isinstance(base, dict) or not isinstance(cand, dict):
            print(f"{strategy:<12} (malformed record)", file=out)
            continue
        fingerprints = (base.get("fingerprint"), cand.get("fingerprint"))
        plan = "same" if fingerprints[0] == fingerprints[1] else "CHANGED"
        charged = (
            f"{_artifact_number(base, 'charged'):,.0f} -> "
            f"{_artifact_number(cand, 'charged'):,.0f}"
        )
        ms = (
            f"{_artifact_number(base, 'planning_seconds') * 1000:.1f}"
            " -> "
            f"{_artifact_number(cand, 'planning_seconds') * 1000:.1f}"
        )
        err = (
            f"{_fmt_err(_artifact_number(base, 'estimation_error'))}"
            " -> "
            f"{_fmt_err(_artifact_number(cand, 'estimation_error'))}"
        )
        print(
            f"{strategy:<12} {plan:>8} {charged:>24} {ms:>18} {err:>12}",
            file=out,
        )


def bench_diff(argv: list[str], out=None) -> int:
    """The ``bench-diff`` subcommand body; returns the exit code."""
    from repro.obs import Finding

    if out is None:
        # Late-bound so redirected/captured stdout is respected.
        out = sys.stdout
    args = build_bench_diff_parser().parse_args(argv)
    findings: list[Finding] = []
    try:
        base_set = collect_artifacts(args.baseline)
        cand_set = collect_artifacts(args.candidate)
        if not base_set:
            raise ArtifactError(
                f"no BENCH_*.json artifacts found under {args.baseline}"
            )
        if not cand_set:
            raise ArtifactError(
                f"no BENCH_*.json artifacts found under {args.candidate}"
            )
        for workload in sorted(set(base_set) | set(cand_set)):
            base_path = base_set.get(workload)
            cand_path = cand_set.get(workload)
            if base_path is None:
                findings.append(
                    Finding(
                        "note", workload, "*", "added",
                        "workload recorded only in the candidate run",
                    )
                )
                continue
            if cand_path is None:
                findings.append(
                    Finding(
                        "regression", workload, "*", "missing",
                        "workload present in baseline but not recorded "
                        "in the candidate run",
                    )
                )
                continue
            baseline = load_run_artifact(base_path)
            candidate = load_run_artifact(cand_path)
            _print_workload_diff(workload, baseline, candidate, out)
            findings.extend(
                diff_artifacts(
                    baseline,
                    candidate,
                    max_regress=args.max_regress,
                    max_time_regress=args.max_time_regress,
                    max_error_widen=args.max_error_widen,
                )
            )
    except ArtifactError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    for finding in findings:
        print(str(finding), file=out)
    if has_regressions(findings):
        count = sum(1 for f in findings if f.severity == "regression")
        print(f"bench-diff: {count} regression(s)", file=out)
        return 1
    print("bench-diff: no regressions", file=out)
    return 0


# -- opt-speed: the planner-only microbench ----------------------------------


def build_opt_speed_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro opt-speed",
        description=(
            "Planner-only microbenchmark: median planning time per "
            "strategy × table count on deterministic join-chain queries. "
            "Never executes plans. With --baseline, warns (exit 0) when a "
            "cell's median regressed beyond --threshold — wall-clock is "
            "not comparable across machines, so this never gates."
        ),
    )
    parser.add_argument(
        "--scale", type=int, default=10,
        help="database scale factor (default 10, matching the committed "
        "bench baselines)",
    )
    parser.add_argument(
        "--seed", type=int, default=42, help="data generator seed"
    )
    parser.add_argument(
        "--strategies", default="all",
        help="'default', 'all', or comma-separated strategy names",
    )
    parser.add_argument(
        "--tables", default=",".join(map(str, DEFAULT_TABLE_COUNTS)),
        metavar="LIST",
        help="comma-separated join-chain sizes (default "
        f"{','.join(map(str, DEFAULT_TABLE_COUNTS))})",
    )
    parser.add_argument(
        "--repeats", type=int, default=DEFAULT_REPEATS, metavar="N",
        help="repetitions per cell; the median is reported "
        f"(default {DEFAULT_REPEATS})",
    )
    parser.add_argument(
        "--out", metavar="FILE", help="write the run as JSON to FILE"
    )
    parser.add_argument(
        "--baseline", metavar="FILE",
        help="compare against a previously recorded opt-speed JSON run",
    )
    parser.add_argument(
        "--threshold", type=float, default=0.25, metavar="FRAC",
        help="fractional median growth that triggers a warning "
        "(default 0.25)",
    )
    return parser


def opt_speed(argv: list[str], out=None) -> int:
    """The ``opt-speed`` subcommand body; returns the exit code."""
    import json

    if out is None:
        out = sys.stdout
    args = build_opt_speed_parser().parse_args(argv)
    try:
        strategies = resolve_strategies(args.strategies)
        table_counts = tuple(
            int(part) for part in args.tables.split(",") if part.strip()
        )
        db = build_database(scale=args.scale, seed=args.seed)
        payload = run_payload(
            db, strategies, table_counts, repeats=args.repeats
        )
    except (ReproError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(format_payload(payload), file=out)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"-- opt-speed artifact: {args.out}", file=sys.stderr)
    if args.baseline:
        try:
            with open(args.baseline, encoding="utf-8") as handle:
                baseline = json.load(handle)
        except (OSError, ValueError) as error:
            print(
                f"error: cannot read baseline: {error}", file=sys.stderr
            )
            return 2
        warnings = compare_runs(
            baseline, payload, threshold=args.threshold
        )
        for warning in warnings:
            print(warning, file=out)
        if not warnings:
            print("opt-speed: no planning-time regressions", file=out)
        else:
            print(
                f"opt-speed: {len(warnings)} warning(s) — informational "
                "only, wall-clock never gates",
                file=out,
            )
    return 0


# -- vec-speed: the executor microbench ---------------------------------------


def build_vec_speed_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro vec-speed",
        description=(
            "Executor microbenchmark: best-of-N wall-clock for the row "
            "and vector executors on the same plan, per workload × scale, "
            "with the speedup ratio. Row multisets are asserted identical "
            "across executors on every cell. With --baseline, warns "
            "(exit 0) when vector time regressed or the speedup shrank "
            "beyond --threshold — wall-clock is not comparable across "
            "machines, so this never gates."
        ),
    )
    parser.add_argument(
        "--workloads",
        default=",".join(vecspeed_bench.DEFAULT_WORKLOADS),
        metavar="LIST",
        help="comma-separated workload keys (default "
        f"{','.join(vecspeed_bench.DEFAULT_WORKLOADS)})",
    )
    parser.add_argument(
        "--scales",
        default=",".join(map(str, vecspeed_bench.DEFAULT_SCALES)),
        metavar="LIST",
        help="comma-separated database scales (default "
        f"{','.join(map(str, vecspeed_bench.DEFAULT_SCALES))})",
    )
    parser.add_argument(
        "--seed", type=int, default=42, help="data generator seed"
    )
    parser.add_argument(
        "--strategy", default=vecspeed_bench.DEFAULT_STRATEGY,
        help="placement strategy whose plan both executors run "
        f"(default {vecspeed_bench.DEFAULT_STRATEGY})",
    )
    parser.add_argument(
        "--repeats", type=int, default=vecspeed_bench.DEFAULT_REPEATS,
        metavar="N",
        help="repetitions per executor; the minimum is reported "
        f"(default {vecspeed_bench.DEFAULT_REPEATS})",
    )
    parser.add_argument(
        "--out", metavar="FILE", help="write the run as JSON to FILE"
    )
    parser.add_argument(
        "--baseline", metavar="FILE",
        help="compare against a previously recorded vec-speed JSON run",
    )
    parser.add_argument(
        "--threshold", type=float, default=0.25, metavar="FRAC",
        help="fractional regression that triggers a warning "
        "(default 0.25)",
    )
    return parser


def vec_speed(argv: list[str], out=None) -> int:
    """The ``vec-speed`` subcommand body; returns the exit code."""
    import json

    if out is None:
        out = sys.stdout
    args = build_vec_speed_parser().parse_args(argv)
    try:
        workload_keys = tuple(
            part.strip() for part in args.workloads.split(",") if part.strip()
        )
        unknown = [key for key in workload_keys if key not in WORKLOADS]
        if unknown:
            raise ReproError(
                f"unknown workload(s) {unknown}; "
                f"choose from {sorted(WORKLOADS)}"
            )
        scales = tuple(
            int(part) for part in args.scales.split(",") if part.strip()
        )
        payload = vecspeed_bench.run_payload(
            workload_keys,
            scales,
            repeats=args.repeats,
            seed=args.seed,
            strategy=args.strategy,
        )
    except (ReproError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(vecspeed_bench.format_payload(payload), file=out)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"-- vec-speed artifact: {args.out}", file=sys.stderr)
    if args.baseline:
        try:
            with open(args.baseline, encoding="utf-8") as handle:
                baseline = json.load(handle)
        except (OSError, ValueError) as error:
            print(
                f"error: cannot read baseline: {error}", file=sys.stderr
            )
            return 2
        warnings = vecspeed_bench.compare_runs(
            baseline, payload, threshold=args.threshold
        )
        for warning in warnings:
            print(warning, file=out)
        if not warnings:
            print("vec-speed: no executor-speed regressions", file=out)
        else:
            print(
                f"vec-speed: {len(warnings)} warning(s) — informational "
                "only, wall-clock never gates",
                file=out,
            )
    return 0


# -- why: the per-predicate placement explainer -------------------------------


def build_why_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro why",
        description=(
            "Explain where a strategy placed each expensive predicate and "
            "why: the recorded decision chain (rank orderings, rank "
            "comparisons, migration passes) plus a counterfactual that "
            "re-costs the plan with the predicate moved one join up/down."
        ),
    )
    parser.add_argument(
        "workload", choices=sorted(WORKLOADS), help="workload to explain"
    )
    parser.add_argument(
        "--strategy", default="migration", choices=sorted(STRATEGIES),
        help="placement strategy to explain (default migration)",
    )
    parser.add_argument(
        "--predicate", metavar="SUBSTR",
        help="only explain predicates whose text contains SUBSTR",
    )
    parser.add_argument(
        "--scale", type=int, default=10,
        help="database scale factor (default 10, matching the committed "
        "bench baselines)",
    )
    parser.add_argument(
        "--seed", type=int, default=42, help="data generator seed"
    )
    parser.add_argument(
        "--caching", action="store_true",
        help="cost and plan under the function-cache model",
    )
    parser.add_argument(
        "--bushy", action="store_true",
        help="allow bushy join trees (exhaustive/migration strategies)",
    )
    return parser


def why(argv: list[str], out=None) -> int:
    """The ``why`` subcommand body; returns the exit code."""
    from repro.obs import ProvenanceLedger, why_report

    if out is None:
        out = sys.stdout
    args = build_why_parser().parse_args(argv)
    try:
        db = build_database(scale=args.scale, seed=args.seed)
        workload = build_workload(db, args.workload)
        ledger = ProvenanceLedger()
        optimized = optimize(
            db,
            workload.query,
            strategy=args.strategy,
            caching=args.caching,
            bushy=args.bushy,
            ledger=ledger,
        )
        model = CostModel(db.catalog, db.params, caching=args.caching)
        print(
            why_report(optimized, model, predicate=args.predicate), file=out
        )
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    return 0


# -- plan-diff: aligned cross-strategy plan comparison ------------------------


def build_plan_diff_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro plan-diff",
        description=(
            "Optimize one workload under two strategies and show the plans "
            "side by side — per-node estimated rows/cost, '≠' marking "
            "differing lines — followed by each strategy's provenance "
            "ledger event counts."
        ),
    )
    parser.add_argument(
        "workload", choices=sorted(WORKLOADS), help="workload to plan"
    )
    parser.add_argument(
        "strategy_a", choices=sorted(STRATEGIES), help="left strategy"
    )
    parser.add_argument(
        "strategy_b", choices=sorted(STRATEGIES), help="right strategy"
    )
    parser.add_argument(
        "--scale", type=int, default=10,
        help="database scale factor (default 10, matching the committed "
        "bench baselines)",
    )
    parser.add_argument(
        "--seed", type=int, default=42, help="data generator seed"
    )
    parser.add_argument(
        "--caching", action="store_true",
        help="cost and plan under the function-cache model",
    )
    parser.add_argument(
        "--bushy", action="store_true",
        help="allow bushy join trees (exhaustive/migration strategies)",
    )
    return parser


def plan_diff(argv: list[str], out=None) -> int:
    """The ``plan-diff`` subcommand body; returns the exit code."""
    from repro.obs import ProvenanceLedger
    from repro.plan.display import plan_tree_annotated, side_by_side

    if out is None:
        out = sys.stdout
    args = build_plan_diff_parser().parse_args(argv)
    try:
        db = build_database(scale=args.scale, seed=args.seed)
        workload = build_workload(db, args.workload)
        model = CostModel(db.catalog, db.params, caching=args.caching)
        columns = []
        ledgers = []
        for strategy in (args.strategy_a, args.strategy_b):
            ledger = ProvenanceLedger()
            optimized = optimize(
                db,
                workload.query,
                strategy=strategy,
                caching=args.caching,
                bushy=args.bushy,
                ledger=ledger,
            )
            title = (
                f"{strategy}  (est cost {optimized.estimated_cost:,.1f}, "
                f"{len(ledger.events)} ledger events)"
            )
            columns.append(
                (title, plan_tree_annotated(optimized.plan, model))
            )
            ledgers.append(ledger)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    (title_a, tree_a), (title_b, tree_b) = columns
    print(f"== {args.workload}: {workload.title}", file=out)
    print(side_by_side(tree_a, tree_b, title_a, title_b), file=out)
    print("", file=out)
    print("ledger event counts:", file=out)
    kinds = sorted(
        set(ledgers[0].event_counts()) | set(ledgers[1].event_counts())
    )
    counts_a = ledgers[0].event_counts()
    counts_b = ledgers[1].event_counts()
    width = max([len(kind) for kind in kinds] or [4])
    for kind in kinds:
        print(
            f"  {kind:<{width}}  {args.strategy_a}={counts_a.get(kind, 0)}"
            f"  {args.strategy_b}={counts_b.get(kind, 0)}",
            file=out,
        )
    if not kinds:
        print("  (none recorded)", file=out)
    return 0


# -- chaos: seeded fault injection across every strategy ----------------------


def build_chaos_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro chaos",
        description=(
            "Run one workload under seeded fault schedules (UDF errors, "
            "injected latency, corrupted statistics, planner crashes) "
            "across every strategy, and check the robustness invariants: "
            "recoverable faults reproduce the fault-free rows exactly, "
            "unrecoverable faults surface as structured DNFs or honest "
            "quarantines, and nothing ever escapes as a traceback. "
            "Exits 1 on any invariant violation."
        ),
    )
    parser.add_argument(
        "workload", choices=sorted(WORKLOADS), help="workload to torment"
    )
    parser.add_argument(
        "--seed", type=int, action="append", metavar="N",
        help="one chaos seed (repeatable); overrides --seeds",
    )
    parser.add_argument(
        "--seeds", default="7,11,13", metavar="LIST",
        help="comma-separated chaos seeds (default 7,11,13)",
    )
    parser.add_argument(
        "--strategies", default="chaos", metavar="SPEC",
        help="'chaos' (the degradation ladder's rungs), 'default', 'all', "
        "or a comma-separated list of strategy names",
    )
    parser.add_argument(
        "--policy", default="abort", choices=EXHAUSTION_POLICIES,
        help="on-exhaustion policy after bounded retries (default abort)",
    )
    parser.add_argument(
        "--retries", type=int, default=DEFAULT_RETRIES,
        help=f"bounded retries per failing evaluation "
        f"(default {DEFAULT_RETRIES})",
    )
    parser.add_argument(
        "--scale", type=int, default=5,
        help="database scale factor (default 5 — chaos runs many "
        "executions, so small is deliberate)",
    )
    parser.add_argument(
        "--db-seed", type=int, default=42, help="data generator seed"
    )
    parser.add_argument(
        "--profile", default="mixed", choices=sorted(PROFILES),
        help="fault-generation profile (default mixed)",
    )
    parser.add_argument(
        "--planner-fault-rate", type=float, default=0.25, metavar="FRAC",
        help="probability each non-floor ladder rung is made to crash "
        "(default 0.25)",
    )
    parser.add_argument(
        "--report", metavar="DIR",
        help="write the full report (fault plans, outcomes, quarantines) "
        "as CHAOS_<workload>.json into DIR",
    )
    parser.add_argument(
        "--executor",
        default="row",
        choices=EXECUTORS,
        help="execution path for the oracle and every strategy run "
        "(default row); the subset/superset audits must hold under "
        "either",
    )
    parser.add_argument(
        "--telemetry", action="store_true",
        help="attach a runtime monitor to every execution and audit the "
        "telemetry invariants too (aborts freeze progress with a "
        "structured reason; completions reach 100%%)",
    )
    parser.add_argument(
        "--flight-record", metavar="DIR",
        help="attach an execution flight recorder to every strategy run; "
        "each run that dies writes a "
        "FLIGHT_<workload>_seed<seed>_<strategy>.json crash dump into "
        "DIR for 'repro postmortem'",
    )
    parser.add_argument(
        "--adaptive", action="store_true",
        help="pair every (seed, strategy) run with an adaptive twin "
        "(mid-query re-optimization armed) and audit the equivalence "
        "invariant: when no error faults fired in either run, the "
        "twin's row multiset must equal the static run's exactly",
    )
    parser.add_argument(
        "--drift-threshold", type=float, default=None, metavar="Q",
        help="adaptive twin's re-plan trigger threshold "
        f"(default {DRIFT_QERROR_THRESHOLD:g}; requires --adaptive)",
    )
    parser.add_argument(
        "--max-replans", type=int, default=None, metavar="N",
        help="adaptive twin's re-plan budget (default 2; requires "
        "--adaptive)",
    )
    return parser


def build_bench_adapt_parser() -> argparse.ArgumentParser:
    from repro.adaptive.bench import DEFAULT_ADAPT_SCALE

    parser = argparse.ArgumentParser(
        prog="repro bench-adapt",
        description=(
            "The adaptive robustness bench: run every seeded "
            "misestimation scenario static and adaptive, write "
            "BENCH_adapt.json, and gate — adaptive must beat the static "
            "plan's charged cost (with >= 1 recorded re-plan) where the "
            "catalog lies past the drift threshold, must trigger zero "
            "re-plans where it is honest or tolerably wrong, and row "
            "multisets must match everywhere. Exits 1 on any gate "
            "violation."
        ),
    )
    parser.add_argument(
        "--scale", type=int, default=DEFAULT_ADAPT_SCALE,
        help=f"database scale factor (default {DEFAULT_ADAPT_SCALE}; "
        "the bench refuses scales too small to observe drift)",
    )
    parser.add_argument(
        "--seed", type=int, default=42, help="data generator seed"
    )
    parser.add_argument(
        "--strategy", default="migration", choices=sorted(STRATEGIES),
        help="placement strategy for the static plan (default migration)",
    )
    parser.add_argument(
        "--drift-threshold", type=float, default=None, metavar="Q",
        help="re-plan trigger threshold "
        f"(default {DRIFT_QERROR_THRESHOLD:g})",
    )
    parser.add_argument(
        "--max-replans", type=int, default=None, metavar="N",
        help="re-plan budget per query (default 2)",
    )
    parser.add_argument(
        "--out", metavar="PATH", default=None,
        help="write BENCH_adapt.json to PATH (a directory or explicit "
        ".json file)",
    )
    parser.add_argument(
        "--flight-record", metavar="DIR",
        help="write one FLIGHT_<scenario>_adaptive.json event-trail dump "
        "per adaptive run into DIR",
    )
    return parser


def bench_adapt(argv: list[str], out=None) -> int:
    """The ``bench-adapt`` subcommand body; returns the exit code."""
    from repro.adaptive.bench import (
        format_adapt_report,
        run_adapt_bench,
        write_adapt_artifact,
    )

    if out is None:
        out = sys.stdout
    args = build_bench_adapt_parser().parse_args(argv)
    try:
        document, violations = run_adapt_bench(
            scale=args.scale,
            seed=args.seed,
            strategy=args.strategy,
            drift_threshold=args.drift_threshold,
            max_replans=args.max_replans,
            flight_dir=args.flight_record,
        )
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(format_adapt_report(document), file=out)
    if args.out:
        target = write_adapt_artifact(args.out, document)
        print(f"-- adapt artifact: {target}", file=sys.stderr)
    return 1 if violations else 0


def chaos(argv: list[str], out=None) -> int:
    """The ``chaos`` subcommand body; returns the exit code."""
    import json
    import os

    from repro.faults.chaos import (
        DEFAULT_CHAOS_STRATEGIES,
        format_chaos_report,
        run_chaos,
    )

    if out is None:
        out = sys.stdout
    args = build_chaos_parser().parse_args(argv)
    try:
        if args.strategies == "chaos":
            strategies = DEFAULT_CHAOS_STRATEGIES
        else:
            strategies = resolve_strategies(args.strategies)
        if args.seed:
            seeds = tuple(args.seed)
        else:
            seeds = tuple(
                int(part)
                for part in args.seeds.split(",")
                if part.strip()
            )
        if not seeds:
            raise ReproError(f"no chaos seeds in {args.seeds!r}")
    except (ReproError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    try:
        report = run_chaos(
            args.workload,
            seeds=seeds,
            strategies=strategies,
            policy=args.policy,
            retries=args.retries,
            scale=args.scale,
            db_seed=args.db_seed,
            profile=args.profile,
            planner_fault_rate=args.planner_fault_rate,
            telemetry=args.telemetry,
            executor=args.executor,
            flight_dir=args.flight_record,
            adaptive=args.adaptive,
            drift_threshold=args.drift_threshold,
            max_replans=args.max_replans,
        )
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(format_chaos_report(report), file=out)
    if args.report:
        os.makedirs(args.report, exist_ok=True)
        target = os.path.join(
            args.report, f"CHAOS_{args.workload}.json"
        )
        with open(target, "w", encoding="utf-8") as handle:
            json.dump(report.as_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"-- chaos artifact: {target}", file=sys.stderr)
    return 0 if report.passed else 1


# -- top: the live query monitor ----------------------------------------------


def build_top_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro top",
        description=(
            "Execute one workload with live telemetry attached and show "
            "the monitor: per-operator progress (work units derived from "
            "the optimizer's cost estimates, refined online from observed "
            "selectivities), per-predicate observed selectivity and cost "
            "quantiles, and the resource roll-up. By default redraws "
            "while the query runs; --once prints a single deterministic "
            "final snapshot. Exits 1 when the query did not finish "
            "(budget DNF)."
        ),
    )
    parser.add_argument(
        "workload", choices=sorted(WORKLOADS), help="workload to watch"
    )
    parser.add_argument(
        "--strategy", default="migration", choices=sorted(STRATEGIES),
        help="placement strategy to execute (default migration)",
    )
    parser.add_argument(
        "--scale", type=int, default=100,
        help="database scale factor (default 100)",
    )
    parser.add_argument(
        "--seed", type=int, default=42, help="data generator seed"
    )
    parser.add_argument(
        "--caching", action="store_true", help="enable predicate caching"
    )
    parser.add_argument(
        "--executor",
        default="row",
        choices=EXECUTORS,
        help="execution path to watch (default row); vector runs report "
        "progress batch-at-a-time",
    )
    parser.add_argument(
        "--budget", type=float, default=None,
        help="charged-cost budget; the workload's own budget by default",
    )
    parser.add_argument(
        "--once", action="store_true",
        help="print one final snapshot instead of live refreshes — "
        "deterministic output (wall-clock latency columns excepted)",
    )
    parser.add_argument(
        "--refresh-every", type=int, default=None, metavar="N",
        help="redraw after every N operator events in live mode "
        "(default: scale-dependent)",
    )
    parser.add_argument(
        "--metrics-export", metavar="FILE",
        help="also write the final metrics snapshot to FILE (Prometheus "
        "text, or JSON when FILE ends in .json)",
    )
    return parser


def top(argv: list[str], out=None) -> int:
    """The ``top`` subcommand body; returns the exit code."""
    if out is None:
        out = sys.stdout
    args = build_top_parser().parse_args(argv)
    try:
        db = build_database(scale=args.scale, seed=args.seed)
        workload = build_workload(db, args.workload)
        budget = (
            args.budget if args.budget is not None else workload.budget
        )
        optimized = optimize(
            db, workload.query, strategy=args.strategy,
            caching=args.caching,
        )
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    title = f"{args.workload} / {args.strategy}"
    refresh = None
    if not args.once:
        def refresh(snapshot: RuntimeMonitor) -> None:
            print(format_top(snapshot, title=title), file=out)
            print("", file=out)

    refresh_every = args.refresh_every
    if refresh_every is None:
        # Roughly a handful of redraws per run at any scale.
        refresh_every = max(256, args.scale * 64)
    monitor = RuntimeMonitor(
        refresh_callback=refresh, refresh_every=refresh_every
    )
    try:
        executor = Executor(
            db, caching=args.caching, budget=budget, monitor=monitor,
            executor=args.executor,
        )
        result = executor.execute(
            optimized.plan, project=workload.query.select
        )
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    print(
        format_top(monitor, title=title, resources=result.resources),
        file=out,
    )
    if args.metrics_export:
        code = _write_metrics(
            args.metrics_export, build_export(monitors={"": monitor})
        )
        if code:
            return code
    return 0 if result.completed else 1


# -- bench-history: the cross-run trend table ---------------------------------


def build_bench_history_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro bench-history",
        description=(
            "Trend table over a sequence of recorded bench runs "
            "(BENCH_*.json files or directories, oldest first): charged "
            "cost and planning time per strategy per run, with '*' "
            "marking a plan-fingerprint change against the previous run. "
            "Informational only — it never gates; 'bench-diff' is the "
            "regression gate."
        ),
    )
    parser.add_argument(
        "dirs", nargs="+", metavar="DIR",
        help="artifact files or directories, oldest first",
    )
    parser.add_argument(
        "--workload", action="append", metavar="NAME",
        help="restrict the table to one workload (repeatable)",
    )
    return parser


def _history_cell(record: dict | None, changed: bool) -> str:
    if not isinstance(record, dict):
        return "—"
    mark = "*" if changed else ""
    ms = _artifact_number(record, "planning_seconds") * 1000
    ms_text = "—" if math.isnan(ms) else f"{ms:.1f}ms"
    if record.get("error"):
        return f"{mark}ERROR"
    charged = _artifact_number(record, "charged")
    if record.get("dnf") or math.isnan(charged):
        return f"{mark}DNF ({ms_text})"
    return f"{mark}{charged:,.0f} ({ms_text})"


def bench_history(argv: list[str], out=None) -> int:
    """The ``bench-history`` subcommand body; returns the exit code."""
    from repro.obs import auto_table

    if out is None:
        out = sys.stdout
    args = build_bench_history_parser().parse_args(argv)
    try:
        runs: list[tuple[str, dict]] = []
        for directory in args.dirs:
            found = collect_artifacts(directory)
            if not found:
                raise ArtifactError(
                    f"no BENCH_*.json artifacts found under {directory}"
                )
            runs.append((directory, found))
        workloads = sorted(set().union(*(set(f) for _, f in runs)))
        if args.workload:
            missing = sorted(set(args.workload) - set(workloads))
            if missing:
                raise ArtifactError(
                    f"workload(s) {missing} not recorded in any run; "
                    f"found {workloads}"
                )
            wanted = set(args.workload)
            workloads = [w for w in workloads if w in wanted]
        documents: dict[str, list[dict | None]] = {}
        for workload in workloads:
            documents[workload] = [
                load_run_artifact(found[workload])
                if workload in found
                else None
                for _, found in runs
            ]
    except ArtifactError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    any_changed = False
    for index, workload in enumerate(workloads):
        strategies: set[str] = set()
        per_run: list[dict] = []
        for document in documents[workload]:
            recorded = (
                document.get("strategies") if document else None
            )
            recorded = recorded if isinstance(recorded, dict) else {}
            per_run.append(recorded)
            strategies |= set(recorded)
        rows = []
        for strategy in sorted(strategies):
            cells = [strategy]
            previous_fp = None
            for recorded in per_run:
                record = recorded.get(strategy)
                fingerprint = (
                    record.get("fingerprint")
                    if isinstance(record, dict)
                    else None
                )
                changed = (
                    previous_fp is not None
                    and fingerprint is not None
                    and fingerprint != previous_fp
                )
                any_changed = any_changed or changed
                cells.append(_history_cell(record, changed))
                if fingerprint is not None:
                    previous_fp = fingerprint
            rows.append(cells)
        if index:
            print("", file=out)
        print(f"== {workload} ({len(runs)} runs)", file=out)
        headers = ["strategy"] + [label for label, _ in runs]
        aligns = ["left"] + ["right"] * len(runs)
        print(auto_table(headers, rows, aligns=aligns), file=out)
    if any_changed:
        print(
            "\n(* plan fingerprint changed vs the previous run)", file=out
        )
    return 0


# -- stats / drift: the observed-statistics feedback store --------------------


def build_stats_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro stats",
        description=(
            "Execute one workload with feedback collection enabled, append "
            "the harvested per-predicate observations (selectivity, "
            "per-call UDF cost, row counts) as a new epoch in "
            "STATS_<workload>.json, and print the observed-vs-declared "
            "table with q-errors and drift flags. Collection never "
            "changes plans; pass --apply-feedback to opt into re-deriving "
            "ranks from the observed statistics."
        ),
    )
    parser.add_argument(
        "workload", choices=sorted(WORKLOADS), help="workload to observe"
    )
    parser.add_argument(
        "--strategy",
        default="pushdown",
        choices=sorted(STRATEGIES),
        help="placement strategy to execute (default: pushdown)",
    )
    parser.add_argument(
        "--scale", type=int, default=100,
        help="database scale factor (default 100)",
    )
    parser.add_argument(
        "--seed", type=int, default=42, help="data generator seed"
    )
    parser.add_argument(
        "--caching", action="store_true", help="enable predicate caching"
    )
    parser.add_argument(
        "--dir", default="artifacts", metavar="DIR",
        help="directory holding STATS_<workload>.json (default: artifacts)",
    )
    parser.add_argument(
        "--epoch", type=int, default=None, metavar="N",
        help="display a previously recorded epoch instead of running "
        "anything",
    )
    parser.add_argument(
        "--threshold", type=float, default=DRIFT_QERROR_THRESHOLD,
        metavar="Q",
        help=f"q-error above which a statistic is flagged as drifted "
        f"(default {DRIFT_QERROR_THRESHOLD:g})",
    )
    parser.add_argument(
        "--apply-feedback",
        action="store_true",
        help="after recording, overwrite the catalog's declared UDF "
        "statistics with the observed ones and re-plan — the explicit "
        "opt-in injection path (plans never change without it)",
    )
    return parser


def stats(argv: list[str], out=None) -> int:
    """The ``stats`` subcommand body; returns the exit code."""
    from repro.obs.artifacts import plan_fingerprint
    from repro.obs.feedback import (
        FeedbackCollector,
        StatsFeedbackStore,
        format_stats_epoch,
        stats_path,
    )

    if out is None:
        out = sys.stdout
    args = build_stats_parser().parse_args(argv)
    target = stats_path(args.dir, args.workload)

    if args.epoch is not None:
        # Display-only: no database, no execution — just the store.
        try:
            store = StatsFeedbackStore.load(target)
            epoch = store.epoch(args.epoch)
        except ArtifactError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        print(
            format_stats_epoch(
                args.workload, epoch, threshold=args.threshold
            ),
            file=out,
        )
        return 0

    try:
        db = build_database(scale=args.scale, seed=args.seed)
        workload = build_workload(db, args.workload)
        optimized = optimize(
            db, workload.query, strategy=args.strategy,
            caching=args.caching,
        )
        collector = FeedbackCollector()
        executor = Executor(
            db, caching=args.caching, collector=collector
        )
        result = executor.execute(optimized.plan, instrument=True)
        observations = collector.observations()
        store = StatsFeedbackStore.load_or_create(target, args.workload)
        operators = (
            [entry.as_dict() for entry in result.node_stats.values()]
            if result.node_stats is not None
            else None
        )
        number = store.record_epoch(
            observations,
            strategy=args.strategy,
            scale=args.scale,
            seed=args.seed,
            caching=args.caching,
            operators=operators,
        )
        saved = store.save(target)
        # Render from the persisted file, not the in-memory store — the
        # table the user sees is provably what the artifact contains.
        reloaded = StatsFeedbackStore.load(saved)
        print(
            format_stats_epoch(
                args.workload,
                reloaded.epoch(number),
                threshold=args.threshold,
            ),
            file=out,
        )
        print(f"-- stats artifact: {saved}", file=sys.stderr)

        if args.apply_feedback:
            before = plan_fingerprint(optimized.plan)
            applied = db.catalog.apply_feedback(reloaded, number)
            # Predicate statistics are baked in at compile time, so the
            # workload must be rebuilt for ranks to re-derive from the
            # injected numbers.
            reworkload = build_workload(db, args.workload)
            reoptimized = optimize(
                db, reworkload.query, strategy=args.strategy,
                caching=args.caching,
            )
            after = plan_fingerprint(reoptimized.plan)
            print(
                f"-- feedback applied: {applied} statistic(s) updated, "
                f"plan fingerprint {before} -> {after}"
                + (" (unchanged)" if before == after else " (plan changed)"),
                file=out,
            )
            print(
                f"-- estimated cost {optimized.estimated_cost:,.1f} -> "
                f"{reoptimized.estimated_cost:,.1f}",
                file=out,
            )
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    return 0


def build_drift_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro drift",
        description=(
            "Compare observed predicate statistics between two recorded "
            "epochs of STATS_<workload>.json (epoch-over-epoch drift: "
            "'the data moved', vs `repro stats`, which reports "
            "observed-vs-declared: 'the catalog lies'). With no epochs "
            "given, compares the two most recent; with one, compares it "
            "against the latest."
        ),
    )
    parser.add_argument(
        "workload", choices=sorted(WORKLOADS), help="workload to compare"
    )
    parser.add_argument(
        "epochs", type=int, nargs="*", metavar="EPOCH",
        help="zero, one, or two epoch numbers",
    )
    parser.add_argument(
        "--dir", default="artifacts", metavar="DIR",
        help="directory holding STATS_<workload>.json (default: artifacts)",
    )
    parser.add_argument(
        "--threshold", type=float, default=DRIFT_QERROR_THRESHOLD,
        metavar="Q",
        help=f"q-error above which an observed statistic counts as "
        f"drifted (default {DRIFT_QERROR_THRESHOLD:g})",
    )
    return parser


def drift(argv: list[str], out=None) -> int:
    """The ``drift`` subcommand body; returns the exit code."""
    from repro.obs.feedback import (
        StatsFeedbackStore,
        format_drift_report,
        stats_path,
    )

    if out is None:
        out = sys.stdout
    args = build_drift_parser().parse_args(argv)
    if len(args.epochs) > 2:
        print(
            "error: at most two epoch numbers (got "
            f"{len(args.epochs)}): compare one pair at a time",
            file=sys.stderr,
        )
        return 2
    target = stats_path(args.dir, args.workload)
    try:
        store = StatsFeedbackStore.load(target)
    except ArtifactError as error:
        print(
            f"error: {error}\nrecord epochs first: "
            f"repro stats {args.workload} --dir {args.dir}",
            file=sys.stderr,
        )
        return 2
    numbers = store.epoch_numbers()
    try:
        if len(args.epochs) == 2:
            first, second = args.epochs
        elif len(args.epochs) == 1:
            first, second = args.epochs[0], numbers[-1] if numbers else 0
        else:
            if len(numbers) < 2:
                raise ArtifactError(
                    f"need two recorded epochs to compare, found "
                    f"{numbers or 'none'}; run `repro stats "
                    f"{args.workload} --dir {args.dir}` again"
                )
            first, second = numbers[-2], numbers[-1]
        epoch_a = store.epoch(first)
        epoch_b = store.epoch(second)
    except ArtifactError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(
        format_drift_report(
            args.workload, epoch_a, epoch_b, threshold=args.threshold
        ),
        file=out,
    )
    return 0


# -- postmortem: render an execution flight-recorder crash dump ---------------


def build_postmortem_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro postmortem",
        description=(
            "Render a FLIGHT_<workload>.json crash dump written by a "
            "--flight-record run (or 'repro chaos --flight-record'): a "
            "timeline of the last batches before the abort, the frozen "
            "progress state, quarantine and clamp context, and the "
            "placement provenance of the operator that died. Exits 2 on "
            "a missing or malformed dump."
        ),
    )
    parser.add_argument(
        "dump", help="path to a FLIGHT_*.json crash dump"
    )
    parser.add_argument(
        "--last", type=int, default=12, metavar="N",
        help="timeline length: the last N recorded events (default 12)",
    )
    return parser


def postmortem(argv: list[str], out=None) -> int:
    """The ``postmortem`` subcommand body; returns the exit code."""
    if out is None:
        out = sys.stdout
    args = build_postmortem_parser().parse_args(argv)
    try:
        document = load_flight_dump(args.dump)
    except ArtifactError as error:
        # A wrong path or a non-dump file is a usage error, same exit
        # code argparse itself uses for bad arguments.
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(format_postmortem(document, last=max(1, args.last)), file=out)
    return 0


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "postmortem":
        return postmortem(list(argv[1:]))
    if argv and argv[0] == "bench-diff":
        return bench_diff(list(argv[1:]))
    # Accept both `repro opt-speed …` and the two-word `repro bench
    # opt-speed …` spelling.
    if argv and argv[0] == "opt-speed":
        return opt_speed(list(argv[1:]))
    if argv[:2] == ["bench", "opt-speed"]:
        return opt_speed(list(argv[2:]))
    if argv and argv[0] == "vec-speed":
        return vec_speed(list(argv[1:]))
    if argv[:2] == ["bench", "vec-speed"]:
        return vec_speed(list(argv[2:]))
    if argv and argv[0] == "why":
        return why(list(argv[1:]))
    if argv and argv[0] == "plan-diff":
        return plan_diff(list(argv[1:]))
    if argv and argv[0] == "chaos":
        return chaos(list(argv[1:]))
    if argv and argv[0] == "bench-adapt":
        return bench_adapt(list(argv[1:]))
    if argv[:2] == ["bench", "adapt"]:
        return bench_adapt(list(argv[2:]))
    if argv and argv[0] == "top":
        return top(list(argv[1:]))
    if argv and argv[0] == "bench-history":
        return bench_history(list(argv[1:]))
    if argv and argv[0] == "stats":
        return stats(list(argv[1:]))
    if argv and argv[0] == "drift":
        return drift(list(argv[1:]))
    args = build_parser().parse_args(argv)
    tracer = Tracer() if args.trace or args.trace_export else NULL_TRACER
    profiler = PhaseProfiler() if args.trace_export else NULL_PROFILER
    flight = FlightRecorder() if args.flight_record else None
    try:
        code = _run(args, tracer, sys.stdout, profiler=profiler,
                    flight=flight)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        code = 1
    if args.trace:
        try:
            count = tracer.export_jsonl(args.trace)
        except OSError as error:
            print(
                f"error: cannot write trace file: {error}", file=sys.stderr
            )
            return 1
        print(f"-- trace: {count} spans -> {args.trace}", file=sys.stderr)
    if args.trace_export:
        try:
            count = export_chrome_trace(
                args.trace_export, tracer=tracer, profiler=profiler,
                flight=flight,
            )
        except OSError as error:
            print(
                f"error: cannot write trace-export file: {error}",
                file=sys.stderr,
            )
            return 1
        print(
            f"-- trace-export: {count} events -> {args.trace_export}",
            file=sys.stderr,
        )
    return code


if __name__ == "__main__":
    sys.exit(main())
