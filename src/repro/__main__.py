"""Command-line driver: optimize and run SQL against the synthetic database.

Examples::

    python -m repro --sql "SELECT * FROM t3, t10 \
        WHERE t3.a1 = t10.ua1 AND costly100(t10.u20)"
    python -m repro --sql "..." --strategy pushdown --explain-only
    python -m repro --sql "..." --compare --caching
    python -m repro --workload q4 --compare
"""

from __future__ import annotations

import argparse
import sys

from repro import Executor, build_database, compile_query, optimize, plan_tree
from repro.bench import format_outcomes, run_strategies
from repro.bench.harness import DEFAULT_STRATEGIES
from repro.bench.workloads import WORKLOADS, build_workload
from repro.cost.model import CostModel
from repro.errors import ReproError
from repro.obs import NULL_TRACER, MetricsRegistry, Tracer, record_run
from repro.optimizer import STRATEGIES
from repro.plan import explain_analyze


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Practical Predicate Placement' "
            "(Hellerstein, SIGMOD 1994): optimize and execute SQL with "
            "expensive predicates."
        ),
    )
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument("--sql", help="SQL text to plan and run")
    source.add_argument(
        "--workload",
        choices=sorted(WORKLOADS),
        help="one of the paper's benchmark queries",
    )
    parser.add_argument(
        "--strategy",
        default="migration",
        choices=sorted(STRATEGIES),
        help="placement algorithm (default: migration)",
    )
    parser.add_argument(
        "--compare",
        action="store_true",
        help="run every placement algorithm and print the comparison table",
    )
    parser.add_argument(
        "--scale",
        type=int,
        default=100,
        help="database scale: tN has N x scale tuples (default 100; "
        "the paper's scale is 10000)",
    )
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--caching", action="store_true", help="enable predicate caching"
    )
    parser.add_argument(
        "--bushy",
        action="store_true",
        help="enumerate bushy join trees (enumeration-based strategies)",
    )
    parser.add_argument(
        "--budget",
        type=float,
        default=None,
        help="charged-cost budget; plans exceeding it report DNF",
    )
    parser.add_argument(
        "--explain-only",
        action="store_true",
        help="print the plan without executing it",
    )
    parser.add_argument(
        "--explain-analyze",
        action="store_true",
        help="execute with per-operator instrumentation and print the plan "
        "annotated with estimated vs. actual rows/cost per node "
        "(single-strategy runs)",
    )
    parser.add_argument(
        "--trace",
        metavar="FILE",
        help="record optimizer and executor spans and write them to FILE "
        "as JSON lines",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print the plan./exec. metrics snapshot after the run "
        "(single-strategy runs)",
    )
    parser.add_argument(
        "--rows",
        type=int,
        default=0,
        metavar="N",
        help="print the first N result rows",
    )
    return parser


def _print_stats(registry: MetricsRegistry, out) -> None:
    print("-- stats", file=out)
    for name, value in sorted(registry.snapshot().items()):
        if isinstance(value, float):
            print(f"{name} = {value:.6g}", file=out)
        else:
            print(f"{name} = {value}", file=out)


def _run(args, tracer, out) -> int:
    db = build_database(scale=args.scale, seed=args.seed)
    registry = MetricsRegistry() if args.stats else None
    if args.workload:
        workload = build_workload(db, args.workload)
        query = workload.query
        budget = args.budget if args.budget is not None else workload.budget
        print(f"-- {workload.title} ({workload.figure})", file=out)
        print(workload.sql, file=out)
    else:
        from repro.bench.workloads import ensure_workload_functions

        ensure_workload_functions(db)
        query = compile_query(db, args.sql, name="cli")
        budget = args.budget

    if args.compare:
        outcomes = run_strategies(
            db,
            query,
            strategies=DEFAULT_STRATEGIES,
            caching=args.caching,
            budget=budget,
            execute=not args.explain_only,
            tracer=tracer,
            instrument=args.explain_analyze,
        )
        print(
            format_outcomes(
                f"{query.name or 'query'} under every algorithm", outcomes
            ),
            file=out,
        )
        return 0

    optimized = optimize(
        db,
        query,
        strategy=args.strategy,
        caching=args.caching,
        bushy=args.bushy,
        tracer=tracer,
    )
    print(
        f"-- strategy: {args.strategy}  "
        f"(planned in {optimized.planning_seconds * 1000:.1f} ms, "
        f"estimated cost {optimized.estimated_cost:,.1f})",
        file=out,
    )
    # --explain-analyze replaces the plain tree with the annotated one,
    # unless --explain-only skips execution (then the plain tree is all
    # there is to show).
    if args.explain_only or not args.explain_analyze:
        print(plan_tree(optimized.plan), file=out)
    if args.explain_only:
        if registry is not None:
            record_run(registry, optimized)
            _print_stats(registry, out)
        return 0

    executor = Executor(
        db, caching=args.caching, budget=budget, tracer=tracer
    )
    result = executor.execute(
        optimized.plan,
        project=query.select,
        instrument=args.explain_analyze,
    )
    if args.explain_analyze:
        model = CostModel(db.catalog, db.params, caching=args.caching)
        print(
            explain_analyze(optimized.plan, result.node_stats, model),
            file=out,
        )
    if registry is not None:
        record_run(registry, optimized, result)
        _print_stats(registry, out)
    if not result.completed:
        print(
            f"DNF: exceeded budget after charging "
            f"{result.charged:,.1f} units",
            file=out,
        )
        return 2
    print(
        f"{result.row_count} rows, charged {result.charged:,.1f} units "
        f"({result.metrics['function_calls']:.0f} UDF calls, "
        f"{result.metrics['random_ios']:.0f} random + "
        f"{result.metrics['seq_ios']:.0f} sequential I/Os)",
        file=out,
    )
    for row in result.rows[: args.rows]:
        print(row, file=out)
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    tracer = Tracer() if args.trace else NULL_TRACER
    try:
        code = _run(args, tracer, sys.stdout)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        code = 1
    if args.trace:
        try:
            count = tracer.export_jsonl(args.trace)
        except OSError as error:
            print(
                f"error: cannot write trace file: {error}", file=sys.stderr
            )
            return 1
        print(f"-- trace: {count} spans -> {args.trace}", file=sys.stderr)
    return code


if __name__ == "__main__":
    sys.exit(main())
