"""Physical operators: the executor half of each cost-model formula.

Each operator is an iterable over composite rows with a :class:`Scope`.
Charging rules mirror :mod:`repro.cost.model` exactly:

* sequential scans charge one sequential I/O per heap page (via the pool);
* index probes charge one random I/O per touched B-tree node and one per
  fetched heap tuple (via the pool, so hot pages may hit);
* nested loop materialises the (filtered) inner once, then charges the
  *base* relation's page count per outer-tuple rescan — the paper's
  "constant irrespective of expensive selections on the inner";
* sorts charge two sequential passes over the stream's pages;
* every expensive-predicate evaluation charges the predicate's per-call
  cost — unless the predicate cache already holds the binding's result.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterator

from repro.catalog.catalog import Catalog
from repro.cost.params import CostParams
from repro.errors import ExecutionError, PlanError, UdfError
from repro.exec.cache import PredicateCache
from repro.exec.containment import ContainmentState
from repro.expr.expressions import Scope
from repro.expr.predicates import BoolBranch, BoolLeaf, Predicate
from repro.plan.display import _node_label
from repro.plan.nodes import Join, JoinMethod, PlanNode, Scan
from repro.storage.meter import CostMeter, IOKind


@dataclass
class OperatorStats:
    """Actuals for one plan node, collected by EXPLAIN ANALYZE.

    All charge figures are *inclusive* of the node's subtree — the same
    convention the cost model uses for estimates, so the two compare
    directly. ``rows_out`` counts rows the node's output (after its own
    filters) produced.

    ``charged`` is derived from the component ledgers exactly the way
    :attr:`repro.storage.meter.CostMeter.charged` is (I/O + join CPU +
    function cost), never accumulated independently: a node's total is
    always self-consistent with its breakdown, and the row and vector
    engines — which bracket meter deltas at different granularities
    (per row vs per batch) — report bit-identical per-node actuals.
    """

    rows_out: int = 0
    io_charged: float = 0.0
    cpu_charged: float = 0.0
    function_charged: float = 0.0
    cache_hits: int = 0
    wall_seconds: float = 0.0

    @property
    def charged(self) -> float:
        """Total charged cost attributed to this node's subtree."""
        return self.io_charged + self.cpu_charged + self.function_charged

    def as_dict(self) -> dict[str, float]:
        return {
            "rows_out": self.rows_out,
            "charged": self.charged,
            "io_charged": self.io_charged,
            "function_charged": self.function_charged,
            "cache_hits": self.cache_hits,
            "wall_seconds": self.wall_seconds,
        }


@dataclass
class RuntimeContext:
    """Everything operators need at run time."""

    catalog: Catalog
    meter: CostMeter
    params: CostParams
    caching: bool = False
    cache: PredicateCache | None = None
    #: "predicate" caches the whole predicate result per input binding
    #: (Montage's choice); "function" caches each UDF's value per argument
    #: tuple (the [Jhi88]/[HS93a] alternative).
    cache_mode: str = "predicate"
    #: Predicates whose caching is bypassed because nearly every binding is
    #: distinct (the paper's Section 5.1 planned optimisation).
    bypass_ids: frozenset[int] = frozenset()
    #: When not ``None``, :func:`build_operator` wraps every plan node in an
    #: :class:`InstrumentedOperator` and records its actuals here, keyed by
    #: ``id(plan_node)`` (EXPLAIN ANALYZE mode).
    node_stats: dict[int, OperatorStats] | None = None
    #: When not ``None``, predicate evaluation runs under UDF failure
    #: containment: bounded retries with simulated-clock backoff, then the
    #: policy's on-exhaustion action, with quarantine bookkeeping.
    containment: ContainmentState | None = None
    #: When not ``None``, every predicate evaluation reports its verdict
    #: and the function cost it charged to this sink (duck-typed:
    #: ``observe(predicate, passed, charged)`` — normally a
    #: :class:`repro.obs.feedback.FeedbackCollector`). ``None`` keeps the
    #: hot path free of any feedback branch, like the other optional
    #: sinks above.
    collector: object | None = None
    #: When not ``None``, live telemetry: :func:`build_operator` wraps
    #: every node in a :class:`MonitoredOperator` reporting per-pull
    #: progress, and ``evaluate_predicate`` reports each verdict via
    #: ``monitor.observe_predicate`` (duck-typed: normally a
    #: :class:`repro.obs.runtime_telemetry.RuntimeMonitor`). Same
    #: zero-overhead-when-off contract as ``collector``.
    monitor: object | None = None
    #: When not ``None``, the vector executor additionally collects
    #: batch-granular actuals (batches, per-batch row histograms,
    #: selection-vector density per predicate, kernel self-time, cache
    #: hit rates) here, keyed by ``id(plan_node)`` — the batch-level
    #: companion of ``node_stats``. Values are
    #: :class:`repro.exec.vector.BatchNodeStats`. The row path ignores
    #: this field entirely; ``None`` keeps the batch hot loops free of
    #: any stats branch.
    batch_stats: dict[int, object] | None = None
    #: When not ``None``, an execution flight recorder (duck-typed:
    #: normally a :class:`repro.obs.flightrec.FlightRecorder`) receiving
    #: bounded batch/milestone events so a crash dump can show what the
    #: engine was doing in its final moments. Same
    #: zero-overhead-when-off contract as the other optional sinks.
    flight: object | None = None
    #: When not ``None``, the adaptive mid-query re-optimization feed
    #: (duck-typed: normally a
    #: :class:`repro.adaptive.controller.AdaptiveController`). The build
    #: wraps the spine leaf's raw source in a :class:`LeafFeedOperator`
    #: (``feed.on_leaf_row`` fires at the safe splice boundary, *before*
    #: the row enters any filter) and taps the nodes in ``feed.tap_ids``
    #: with row counters (``feed.on_node_row``). With a feed installed,
    #: scans and joins always get a :class:`FilterChain`, even when their
    #: filter list is currently empty — a re-plan may move predicates
    #: onto them mid-query, and the chain re-reads the live list per row.
    #: ``None`` (always, unless ``--adaptive``) keeps every hot path and
    #: the built operator shapes byte-identical to the baselines.
    feed: object | None = None

    def __post_init__(self) -> None:
        if self.cache_mode not in ("predicate", "function"):
            raise ExecutionError(
                f"unknown cache_mode: {self.cache_mode!r}"
            )
        if self.caching and self.cache is None:
            self.cache = PredicateCache()
        self._function_cache_registry = None

    def caching_functions(self):
        """A function registry whose UDF calls are memoised per argument
        tuple (function-level cache mode)."""
        if self._function_cache_registry is None:
            self._function_cache_registry = _CachingFunctions(self)
        return self._function_cache_registry


class _CachingFunctions:
    """FunctionRegistry adapter adding per-function memoisation."""

    def __init__(self, ctx: RuntimeContext) -> None:
        self._ctx = ctx
        self._wrappers: dict[str, object] = {}

    def get(self, name: str):
        wrapper = self._wrappers.get(name)
        if wrapper is None:
            ctx = self._ctx
            function = ctx.catalog.functions.get(name)
            cache = ctx.cache
            assert cache is not None

            def wrapped(*args: object) -> object:
                found, value = cache.lookup(name, args)
                if found:
                    return value
                value = function(*args)
                if function.cost_per_call > 0:
                    ctx.meter.charge_function(function.cost_per_call)
                cache.store(name, args, value)
                return value

            wrapper = wrapped
            self._wrappers[name] = wrapper
        return wrapper


def evaluate_predicate(
    predicate: Predicate, row: tuple, scope: Scope, ctx: RuntimeContext
) -> bool:
    """Evaluate one predicate on one row, with charging, caching, and —
    when the context carries a :class:`ContainmentState` — UDF failure
    containment (bounded retries, then the on-exhaustion policy).

    Returns ``False`` for SQL NULL results (a WHERE conjunct only passes
    rows for which it is true).
    """
    collector = ctx.collector
    monitor = ctx.monitor
    if collector is None and monitor is None:
        return _evaluate_contained(predicate, row, scope, ctx)
    # The meter delta brackets the whole contained evaluation, so the
    # observed per-call cost is what this row *actually* charged: zero on
    # cache hits and on quarantined rows, partial under function-level
    # caching. Both sinks share one bracket.
    before = ctx.meter.function_charged
    value = _evaluate_contained(predicate, row, scope, ctx)
    charged = ctx.meter.function_charged - before
    if collector is not None:
        collector.observe(predicate, value, charged)
    if monitor is not None:
        monitor.observe_predicate(predicate, value, charged)
    return value


def _evaluate_contained(
    predicate: Predicate, row: tuple, scope: Scope, ctx: RuntimeContext
) -> bool:
    """Evaluation under the containment retry loop (no feedback hook)."""
    containment = ctx.containment
    if containment is None:
        return _evaluate_once(predicate, row, scope, ctx)
    attempts = 0
    while True:
        try:
            value = _evaluate_once(predicate, row, scope, ctx)
        except UdfError as error:
            containment.note_failure()
            if attempts < containment.policy.retries:
                containment.wait_before_retry(attempts, error)
                attempts += 1
                continue
            # Exhausted: quarantine the tuple and apply the policy
            # (``abort`` re-raises; the executor turns it into a
            # structured DNF result).
            return containment.quarantine(
                predicate, row, error, attempts + 1
            )
        if attempts:
            containment.note_recovered()
        return value


def _evaluate_once(
    predicate: Predicate, row: tuple, scope: Scope, ctx: RuntimeContext
) -> bool:
    """One uncontained evaluation attempt (the pre-containment body)."""
    functions = ctx.catalog.functions
    caching = (
        ctx.caching
        and predicate.is_expensive
        and predicate.pred_id not in ctx.bypass_ids
    )
    compound = predicate.is_compound
    if caching and ctx.cache_mode == "function":
        registry = ctx.caching_functions()
        if compound:
            # Short-circuit walk; the memoising wrappers charge per
            # actual (uncached) UDF call, so no leaf-level charges here.
            return _evaluate_tree(predicate.tree, row, scope, registry, None)
        value = predicate.expr.evaluate(row, scope, registry)
        return value is True
    if caching:
        assert ctx.cache is not None
        key = tuple(
            row[scope.slot(table, attribute)]
            for table, attribute in predicate.input_columns()
        )
        found, value = ctx.cache.lookup(predicate.pred_id, key)
        if not found:
            if compound:
                value = _evaluate_tree(
                    predicate.tree, row, scope, functions, ctx.meter
                )
            else:
                value = predicate.expr.evaluate(row, scope, functions)
                ctx.meter.charge_function(predicate.cost_per_tuple)
            ctx.cache.store(predicate.pred_id, key, value)
        return value is True
    if compound:
        return _evaluate_tree(predicate.tree, row, scope, functions, ctx.meter)
    value = predicate.expr.evaluate(row, scope, functions)
    if predicate.is_expensive:
        ctx.meter.charge_function(predicate.cost_per_tuple)
    return value is True


def _evaluate_tree(
    tree: BoolBranch, row: tuple, scope: Scope, functions, meter
) -> bool:
    """Short-circuit a cost-ordered boolean tree on one row.

    Children run in the tree's (rank-ordered) sequence; AND stops at the
    first non-true child, OR at the first true one. Each expensive leaf
    that actually runs charges its own per-call cost — evaluate first,
    then charge, so a UDF failure leaves the leaf uncharged, exactly
    like the whole-predicate path. SQL NULL collapses to ``False``,
    which is sound for filtering (a WHERE conjunct only passes rows it
    is *true* for). When ``meter`` is ``None`` the caller's function
    registry does its own charging (function-level cache mode).
    """
    conjunctive = tree.op == "AND"
    for child in tree.children:
        if isinstance(child, BoolLeaf):
            value = child.expr.evaluate(row, scope, functions)
            if meter is not None and child.is_expensive:
                meter.charge_function(child.cost)
            passed = value is True
        else:
            passed = _evaluate_tree(child, row, scope, functions, meter)
        if passed is not conjunctive:
            return passed
    return conjunctive


class Operator:
    """Base class: an iterable of composite rows with a fixed scope."""

    scope: Scope

    def __iter__(self) -> Iterator[tuple]:
        raise NotImplementedError


class FilterChain(Operator):
    """Applies an ordered predicate list to a child's output."""

    def __init__(
        self, child: Operator, filters: list[Predicate], ctx: RuntimeContext
    ) -> None:
        self.child = child
        self.filters = filters
        self.ctx = ctx
        self.scope = child.scope

    def __iter__(self) -> Iterator[tuple]:
        for row in self.child:
            if all(
                evaluate_predicate(predicate, row, self.scope, self.ctx)
                for predicate in self.filters
            ):
                yield row


class SeqScanOp(Operator):
    def __init__(self, table: str, ctx: RuntimeContext) -> None:
        entry = ctx.catalog.table(table)
        if entry.heap is None:
            raise ExecutionError(f"relation {table!r} has no heap file")
        self.entry = entry
        self.ctx = ctx
        self.scope = Scope(
            [(table, name) for name in entry.schema.attribute_names]
        )

    def __iter__(self) -> Iterator[tuple]:
        yield from self.entry.heap.scan()


class IndexScanOp(Operator):
    """Range scan through a B-tree with random heap fetches (unclustered)."""

    def __init__(
        self,
        table: str,
        attribute: str,
        low: object,
        high: object,
        ctx: RuntimeContext,
    ) -> None:
        entry = ctx.catalog.table(table)
        if not entry.has_index(attribute):
            raise ExecutionError(f"no index on {table}.{attribute}")
        self.entry = entry
        self.index = entry.index(attribute)
        self.low = low
        self.high = high
        self.ctx = ctx
        self.scope = Scope(
            [(table, name) for name in entry.schema.attribute_names]
        )

    def __iter__(self) -> Iterator[tuple]:
        for rid in self.index.range_search(self.low, self.high):
            yield self.entry.heap.fetch_rid(rid)


class NestedLoopJoinOp(Operator):
    """Tuple-at-a-time nested loop; the only method that accepts an
    arbitrary (possibly expensive) primary join predicate."""

    def __init__(
        self, join: Join, outer: Operator, inner: Operator, ctx: RuntimeContext
    ) -> None:
        self.join = join
        self.outer = outer
        self.inner = inner
        self.ctx = ctx
        self.scope = outer.scope.concat(inner.scope)
        inner_node = join.inner
        # The paper's constant-|S| rescan volume: the base relation's page
        # count for a scan inner; for a bushy (joined) inner, the pages of
        # the materialised intermediate.
        if isinstance(inner_node, Scan):
            self.inner_base_pages: int | None = ctx.catalog.table(
                inner_node.table
            ).pages
        else:
            self.inner_base_pages = None  # computed after materialisation

    def __iter__(self) -> Iterator[tuple]:
        meter = self.ctx.meter
        cpu = self.ctx.params.cpu_per_tuple
        inner_rows = list(self.inner)  # filters evaluated once, here
        meter.charge_cpu(cpu * len(inner_rows))
        rescan_pages = self.inner_base_pages
        if rescan_pages is None:
            width = _scope_width(self.inner.scope, self.ctx.catalog)
            rescan_pages = int(
                self.ctx.params.pages_for(len(inner_rows), width)
            )
        for outer_row in self.outer:
            meter.charge_cpu(cpu)
            # The paper's constant-|S| term: every outer tuple rescans the
            # full inner's blocks.
            meter.charge_io(IOKind.SEQUENTIAL, rescan_pages)
            for inner_row in inner_rows:
                row = outer_row + inner_row
                if evaluate_predicate(
                    self.join.primary, row, self.scope, self.ctx
                ):
                    yield row


class IndexNestedLoopJoinOp(Operator):
    """Index nested loop: probe the inner index per outer tuple."""

    def __init__(self, join: Join, outer: Operator, ctx: RuntimeContext) -> None:
        inner_scan = join.inner
        if not isinstance(inner_scan, Scan):
            raise PlanError("left-deep plans require a scan inner input")
        columns = join.join_columns()
        if columns is None:
            raise PlanError("index nested loop requires an equijoin primary")
        outer_column, inner_column = columns
        entry = ctx.catalog.table(inner_scan.table)
        if not entry.has_index(inner_column.attribute):
            raise ExecutionError(
                f"no index on {inner_column.table}.{inner_column.attribute}"
            )
        self.join = join
        self.outer = outer
        self.ctx = ctx
        self.entry = entry
        self.index = entry.index(inner_column.attribute)
        self.inner_filters = inner_scan.filters
        self.inner_scope = Scope(
            [(inner_scan.table, name) for name in entry.schema.attribute_names]
        )
        self.outer_slot = outer.scope.slot(
            outer_column.table, outer_column.attribute
        )
        self.scope = outer.scope.concat(self.inner_scope)

    def __iter__(self) -> Iterator[tuple]:
        cpu = self.ctx.params.cpu_per_tuple
        for outer_row in self.outer:
            self.ctx.meter.charge_cpu(cpu)
            key = outer_row[self.outer_slot]
            for rid in self.index.search(key):
                inner_row = self.entry.heap.fetch_rid(rid)
                if all(
                    evaluate_predicate(
                        predicate, inner_row, self.inner_scope, self.ctx
                    )
                    for predicate in self.inner_filters
                ):
                    yield outer_row + inner_row


class MergeJoinOp(Operator):
    """Sort-merge join on an equijoin primary."""

    def __init__(
        self, join: Join, outer: Operator, inner: Operator, ctx: RuntimeContext
    ) -> None:
        columns = join.join_columns()
        if columns is None:
            raise PlanError("merge join requires an equijoin primary")
        outer_column, inner_column = columns
        self.join = join
        self.outer = outer
        self.inner = inner
        self.ctx = ctx
        self.scope = outer.scope.concat(inner.scope)
        self.outer_slot = outer.scope.slot(
            outer_column.table, outer_column.attribute
        )
        self.inner_slot = inner.scope.slot(
            inner_column.table, inner_column.attribute
        )

    def _sorted_rows(self, child: Operator, slot: int) -> list[tuple]:
        rows = list(child)
        rows.sort(key=lambda row: row[slot])
        width = _scope_width(child.scope, self.ctx.catalog)
        params = self.ctx.params
        pages = int(params.pages_for(len(rows), width))
        # External sort: two sequential I/Os per page per pass (write runs,
        # read back), with extra merge passes for inputs beyond workspace.
        self.ctx.meter.charge_io(
            IOKind.SEQUENTIAL, 2 * pages * params.sort_passes(pages)
        )
        self.ctx.meter.charge_cpu(params.cpu_per_tuple * len(rows))
        return rows

    def __iter__(self) -> Iterator[tuple]:
        outer_rows = self._sorted_rows(self.outer, self.outer_slot)
        inner_rows = self._sorted_rows(self.inner, self.inner_slot)
        inner_len = len(inner_rows)
        inner_pos = 0
        for outer_row in outer_rows:
            key = outer_row[self.outer_slot]
            while (
                inner_pos < inner_len
                and inner_rows[inner_pos][self.inner_slot] < key
            ):
                inner_pos += 1
            probe = inner_pos
            while (
                probe < inner_len
                and inner_rows[probe][self.inner_slot] == key
            ):
                yield outer_row + inner_rows[probe]
                probe += 1


class HashJoinOp(Operator):
    """In-memory (or Grace, by charging) hash join on an equijoin primary."""

    def __init__(
        self, join: Join, outer: Operator, inner: Operator, ctx: RuntimeContext
    ) -> None:
        columns = join.join_columns()
        if columns is None:
            raise PlanError("hash join requires an equijoin primary")
        outer_column, inner_column = columns
        self.join = join
        self.outer = outer
        self.inner = inner
        self.ctx = ctx
        self.scope = outer.scope.concat(inner.scope)
        self.outer_slot = outer.scope.slot(
            outer_column.table, outer_column.attribute
        )
        self.inner_slot = inner.scope.slot(
            inner_column.table, inner_column.attribute
        )
        #: Did the build side spill (Grace)? Decided per execution in
        #: ``__iter__``; a Grace run buffers its *outer* too, making this
        #: join a full pipeline breaker — the adaptive planner treats
        #: every spine hash join as one, conservatively, since this flag
        #: only settles at run time.
        self.grace = False

    def __iter__(self) -> Iterator[tuple]:
        meter = self.ctx.meter
        cpu = self.ctx.params.cpu_per_tuple
        table: dict[object, list[tuple]] = {}
        inner_count = 0
        for inner_row in self.inner:
            meter.charge_cpu(cpu)
            table.setdefault(inner_row[self.inner_slot], []).append(inner_row)
            inner_count += 1
        inner_width = _scope_width(self.inner.scope, self.ctx.catalog)
        inner_pages = self.ctx.params.pages_for(inner_count, inner_width)
        if inner_pages > self.ctx.params.hash_memory_pages:
            self.grace = True
            # Grace hash join: partition both sides to disk and back.
            outer_rows = list(self.outer)
            outer_width = _scope_width(self.outer.scope, self.ctx.catalog)
            outer_pages = self.ctx.params.pages_for(
                len(outer_rows), outer_width
            )
            self.ctx.meter.charge_io(
                IOKind.SEQUENTIAL, 2 * int(inner_pages + outer_pages)
            )
            outer_iter: Iterator[tuple] = iter(outer_rows)
        else:
            outer_iter = iter(self.outer)
        for outer_row in outer_iter:
            meter.charge_cpu(cpu)
            for inner_row in table.get(outer_row[self.outer_slot], ()):
                yield outer_row + inner_row


def _scope_width(scope: Scope, catalog: Catalog) -> int:
    tables = sorted({table for table, _ in scope.columns})
    return sum(catalog.table(name).schema.tuple_width for name in tables)


class InstrumentedOperator(Operator):
    """Transparent wrapper measuring one plan node's actuals.

    Every pull through the wrapped operator is bracketed with meter and
    cache snapshots, so the deltas attribute all charges incurred while
    this node's subtree ran (its own work plus its children's — inclusive,
    like the estimates). Only constructed in EXPLAIN ANALYZE mode; the
    default path never sees this class.
    """

    def __init__(
        self, node: PlanNode, child: Operator, ctx: RuntimeContext
    ) -> None:
        assert ctx.node_stats is not None
        self.child = child
        self.ctx = ctx
        self.scope = child.scope
        self.stats = OperatorStats()
        ctx.node_stats[id(node)] = self.stats

    def __iter__(self) -> Iterator[tuple]:
        meter = self.ctx.meter
        cache = self.ctx.cache
        stats = self.stats
        iterator = iter(self.child)
        while True:
            io_before = meter.io_charged
            cpu_before = meter.cpu_charged
            function_before = meter.function_charged
            hits_before = cache.stats.hits if cache is not None else 0
            started = time.perf_counter()
            try:
                row = next(iterator)
            except StopIteration:
                stats.wall_seconds += time.perf_counter() - started
                stats.io_charged += meter.io_charged - io_before
                stats.cpu_charged += meter.cpu_charged - cpu_before
                stats.function_charged += (
                    meter.function_charged - function_before
                )
                if cache is not None:
                    stats.cache_hits += cache.stats.hits - hits_before
                return
            stats.wall_seconds += time.perf_counter() - started
            stats.io_charged += meter.io_charged - io_before
            stats.cpu_charged += meter.cpu_charged - cpu_before
            stats.function_charged += meter.function_charged - function_before
            if cache is not None:
                stats.cache_hits += cache.stats.hits - hits_before
            stats.rows_out += 1
            yield row


class MonitoredOperator(Operator):
    """Transparent wrapper reporting one plan node's pulls to the live
    telemetry monitor.

    Construction marks the node *active* (a plan node with no operator —
    an index-nested-loop join's inner scan — never activates and is
    excluded from whole-plan progress). Each pull reports one row and
    its wall-clock latency; exhaustion reports completion. Only
    constructed when the context carries a ``monitor``; the default
    path never sees this class.
    """

    def __init__(
        self, node: PlanNode, child: Operator, ctx: RuntimeContext
    ) -> None:
        assert ctx.monitor is not None
        self.child = child
        self.monitor = ctx.monitor
        self.key = id(node)
        self.scope = child.scope
        self.monitor.activate(self.key)

    def __iter__(self) -> Iterator[tuple]:
        monitor = self.monitor
        key = self.key
        iterator = iter(self.child)
        while True:
            started = time.perf_counter()
            try:
                row = next(iterator)
            except StopIteration:
                monitor.on_done(key, time.perf_counter() - started)
                return
            monitor.on_row(key, time.perf_counter() - started)
            yield row


class FlightOperator(Operator):
    """Transparent wrapper feeding the execution flight recorder on the
    row path.

    Rows are too fine-grained to record individually, so events fire at
    power-of-two row counts — O(log n) events per node, each carrying
    the cumulative charge so a postmortem can see where the meter stood
    when the engine died. Monitor progress snapshots ride the same
    milestones. Only constructed when the context carries a ``flight``
    recorder; the default path never sees this class.
    """

    def __init__(
        self, node: PlanNode, child: Operator, ctx: RuntimeContext
    ) -> None:
        assert ctx.flight is not None
        self.child = child
        self.ctx = ctx
        self.flight = ctx.flight
        self.label = _node_label(node)
        self.scope = child.scope

    def __iter__(self) -> Iterator[tuple]:
        ctx = self.ctx
        flight = self.flight
        meter = ctx.meter
        monitor = ctx.monitor
        label = self.label
        rows = 0
        for row in self.child:
            rows += 1
            if (rows & (rows - 1)) == 0:
                flight.record(
                    "rows", op=label, rows=rows, charged=meter.charged
                )
                if monitor is not None:
                    flight.record(
                        "progress",
                        op=label,
                        rows=rows,
                        fraction=round(monitor.progress(), 6),
                    )
            yield row
        flight.record(
            "op.done", op=label, rows=rows, charged=meter.charged
        )


class LeafFeedOperator(Operator):
    """The adaptive safe boundary: wraps the spine leaf's *raw* source.

    ``feed.on_leaf_row()`` fires after the leaf produces a row but
    before that row enters any filter. The row pipeline is a synchronous
    pull chain, so zero rows are in flight above the leaf at that
    instant — the feed may splice a re-planned predicate placement into
    the live filter lists and every row (including this one) is still
    evaluated against each predicate exactly once. Only constructed when
    the context carries a ``feed``; the default path never sees this
    class.
    """

    def __init__(self, child: Operator, feed) -> None:
        self.child = child
        self.feed = feed
        self.scope = child.scope

    def __iter__(self) -> Iterator[tuple]:
        feed = self.feed
        for row in self.child:
            feed.on_leaf_row()
            yield row


class TapOperator(Operator):
    """Transparent row counter feeding the adaptive controller's join
    fan-out observations. Charges nothing, changes nothing; only
    constructed for nodes in ``feed.tap_ids``."""

    def __init__(self, node: PlanNode, child: Operator, feed) -> None:
        self.child = child
        self.feed = feed
        self.key = id(node)
        self.scope = child.scope

    def __iter__(self) -> Iterator[tuple]:
        feed = self.feed
        key = self.key
        for row in self.child:
            feed.on_node_row(key)
            yield row


def build_operator(node: PlanNode, ctx: RuntimeContext) -> Operator:
    """Compile a plan tree into an operator tree (instrumented when the
    context carries a ``node_stats`` sink, flight-recorded when it
    carries a ``flight`` recorder, monitored when it carries a
    ``monitor``)."""
    operator = _build_operator(node, ctx)
    feed = ctx.feed
    if feed is not None and id(node) in feed.tap_ids:
        operator = TapOperator(node, operator, feed)
    if ctx.node_stats is not None:
        operator = InstrumentedOperator(node, operator, ctx)
    if ctx.flight is not None:
        operator = FlightOperator(node, operator, ctx)
    if ctx.monitor is not None:
        operator = MonitoredOperator(node, operator, ctx)
    return operator


def _build_operator(node: PlanNode, ctx: RuntimeContext) -> Operator:
    if isinstance(node, Scan):
        if node.index_attr is not None:
            low, high = node.index_range  # type: ignore[misc]
            source: Operator = IndexScanOp(
                node.table, node.index_attr, low, high, ctx
            )
        else:
            source = SeqScanOp(node.table, ctx)
        feed = ctx.feed
        if feed is not None and id(node) == feed.leaf_id:
            source = LeafFeedOperator(source, feed)
        if node.filters or feed is not None:
            return FilterChain(source, node.filters, ctx)
        return source

    if isinstance(node, Join):
        outer = build_operator(node.outer, ctx)
        if node.method is JoinMethod.INDEX_NESTED_LOOP:
            joined: Operator = IndexNestedLoopJoinOp(node, outer, ctx)
        else:
            inner = build_operator(node.inner, ctx)
            if node.method is JoinMethod.NESTED_LOOP:
                joined = NestedLoopJoinOp(node, outer, inner, ctx)
            elif node.method is JoinMethod.MERGE:
                joined = MergeJoinOp(node, outer, inner, ctx)
            elif node.method is JoinMethod.HASH:
                joined = HashJoinOp(node, outer, inner, ctx)
            else:  # pragma: no cover - exhaustive over enum
                raise PlanError(f"unknown join method {node.method}")
        if node.filters or ctx.feed is not None:
            return FilterChain(joined, node.filters, ctx)
        return joined

    raise PlanError(f"cannot execute node type: {type(node).__name__}")
