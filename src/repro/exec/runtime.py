"""The executor facade: run a plan, return rows plus charged-cost metrics."""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.adaptive.controller import AdaptiveController, AdaptivePolicy
from repro.cost.model import CostModel
from repro.errors import BudgetExceededError, ExecutionError, UdfError
from repro.exec.cache import CacheStats, PredicateCache
from repro.exec.containment import (
    ContainmentState,
    FailurePolicy,
    QuarantineReport,
)
from repro.exec.operators import (
    OperatorStats,
    RuntimeContext,
    build_operator,
)
from repro.exec.vector import VectorPlanRunner
from repro.storage.columnar import DEFAULT_BATCH_ROWS
from repro.faults.clock import SimulatedClock
from repro.expr.expressions import QualifiedColumn, Scope
from repro.obs.profile import NULL_PROFILER
from repro.obs.provenance import NULL_LEDGER
from repro.obs.tracer import NULL_TRACER
from repro.plan.display import _node_label
from repro.plan.nodes import Plan, PlanNode

#: Execution engines the facade can dispatch to: the tuple-at-a-time
#: iterator tree, or the batch-at-a-time columnar tree (identical row
#: multisets and charge totals; the vector path is the fast one).
EXECUTORS = ("row", "vector")


@dataclass
class QueryResult:
    """Rows plus the charged-cost ledger of one execution.

    ``charged`` is the paper's "running time": random I/Os + weighted
    sequential I/Os + function invocations × per-call cost. ``completed``
    is ``False`` when the run was aborted by the cost budget — the
    reproduction's analogue of the paper's "never completed" plans.
    """

    rows: list[tuple]
    scope: Scope | None
    completed: bool
    charged: float
    metrics: dict[str, float] = field(default_factory=dict)
    cache_stats: CacheStats | None = None
    cache_entries: int = 0
    wall_seconds: float = 0.0
    #: Per-plan-node actuals keyed by ``id(plan_node)``; filled only when
    #: the execution was instrumented (EXPLAIN ANALYZE).
    node_stats: dict[int, OperatorStats] | None = None
    #: Batch-granular actuals keyed by ``id(plan_node)`` (values are
    #: :class:`~repro.exec.vector.BatchNodeStats`); filled only on
    #: instrumented ``executor="vector"`` runs. ``None`` on the row path
    #: — the row-path totals in ``node_stats`` are the parity-gated
    #: figures and never change shape.
    batch_stats: dict[int, object] | None = None
    #: Structured DNF reason when ``completed`` is ``False`` — e.g.
    #: ``"budget: charged 1234.0 > budget 1000.0"`` or
    #: ``"udf: UDF 'costly100' failed on call #5 (permanent): ..."``.
    error: str = ""
    #: Degraded-run ledger: tuples whose predicate verdicts came from the
    #: failure policy rather than evaluation. ``None`` unless the executor
    #: ran with a :class:`FailurePolicy`.
    quarantine: QuarantineReport | None = None
    #: Per-query resource roll-up
    #: (:class:`~repro.obs.runtime_telemetry.QueryResourceReport`).
    #: ``None`` unless the executor ran with a live telemetry monitor.
    resources: object | None = None
    #: What the mid-query re-optimization loop did
    #: (:class:`~repro.adaptive.controller.AdaptiveReport`). ``None``
    #: unless the executor ran with an :class:`AdaptivePolicy`.
    adaptive: object | None = None

    @property
    def degraded(self) -> bool:
        """Completed, but with policy-decided tuples in quarantine."""
        return (
            self.completed
            and self.quarantine is not None
            and self.quarantine.quarantined > 0
        )

    @property
    def row_count(self) -> int:
        return len(self.rows)

    def column(self, table: str, attribute: str) -> list[object]:
        """Extract one output column (for assertions in tests/examples)."""
        assert self.scope is not None
        slot = self.scope.slot(table, attribute)
        return [row[slot] for row in self.rows]


class Executor:
    """Runs plans against a :class:`~repro.database.Database`."""

    def __init__(
        self,
        db,
        caching: bool = False,
        budget: float | None = None,
        cache_limit: int | None = None,
        cache_mode: str = "predicate",
        cache_replacement: str = "fifo",
        cache_bypass: bool = False,
        cache_bypass_threshold: float = 0.95,
        tracer=None,
        profiler=None,
        failure_policy: FailurePolicy | None = None,
        clock: SimulatedClock | None = None,
        collector=None,
        monitor=None,
        executor: str = "row",
        batch_rows: int = DEFAULT_BATCH_ROWS,
        cache_capacity: int | None = None,
        flight=None,
        adaptive: AdaptivePolicy | None = None,
        ledger=None,
        adaptive_stats_store=None,
        adaptive_stats_meta: dict | None = None,
    ) -> None:
        """``cache_mode`` selects predicate-level (Montage) or
        function-level ([Jhi88]) memoisation; ``cache_bypass`` enables the
        paper's Section 5.1 heuristic of not caching predicates whose
        distinct-bindings-to-tuples ratio exceeds the threshold (caching
        such predicates costs memory and buys nothing). ``tracer`` records
        execute-phase spans (default: the zero-overhead null tracer);
        ``profiler`` accumulates build/run wall-clock plus, on
        instrumented runs, per-operator actuals (``exec.op.<label>``).
        ``failure_policy`` enables UDF failure containment (bounded
        retries with simulated-clock backoff, then the policy's
        on-exhaustion action); ``clock`` is the
        :class:`~repro.faults.clock.SimulatedClock` backoff and injected
        latency accrue on (a private one is created when omitted);
        ``collector`` receives per-predicate evaluation feedback
        (verdict plus charged function cost — normally a
        :class:`~repro.obs.feedback.FeedbackCollector`; the default
        ``None`` keeps predicate evaluation feedback-free); ``monitor``
        receives live telemetry — per-operator progress, predicate
        cost histograms, resource accounting (normally a
        :class:`~repro.obs.runtime_telemetry.RuntimeMonitor`; the
        default ``None`` keeps the hot path telemetry-free).
        ``executor`` selects the engine: ``"row"`` (tuple-at-a-time,
        the baseline whose charge stream all baselines are pinned to)
        or ``"vector"`` (batch-at-a-time columnar, same rows and charge
        totals, faster); ``batch_rows`` sizes the vector engine's
        column batches. ``cache_capacity`` bounds the predicate cache's
        *total* entry count across all predicates (global LRU/FIFO per
        ``cache_replacement``), composing with the per-predicate
        ``cache_limit``. ``flight`` attaches an execution flight
        recorder (normally a
        :class:`~repro.obs.flightrec.FlightRecorder`): operators emit
        bounded batch/milestone events into its ring buffer, and a
        budget- or UDF-aborted run marks the recorder tripped so the
        caller can serialize a crash dump; the default ``None`` keeps
        every hot path recorder-free. ``adaptive`` enables mid-query
        re-optimization under the given
        :class:`~repro.adaptive.controller.AdaptivePolicy`: the plan's
        predicate placement may be re-planned and spliced in place at
        safe leaf boundaries when observed selectivities drift from
        the declarations (adaptive runs always use the row engine —
        with ``executor="vector"`` the boundary cadence becomes every
        ``batch_rows`` leaf rows instead of power-of-two milestones);
        ``ledger`` (a :class:`~repro.obs.ProvenanceLedger`) receives
        the mandatory ``plan.replan``/``stats.drift`` events;
        ``adaptive_stats_store`` plus ``adaptive_stats_meta`` (a
        :class:`~repro.obs.feedback.StatsFeedbackStore` and
        ``strategy``/``scale``/``seed`` metadata) make each applied
        re-plan snapshot its observations as a mid-query stats
        epoch."""
        if executor not in EXECUTORS:
            raise ExecutionError(
                f"executor must be one of {EXECUTORS}, got {executor!r}"
            )
        self.db = db
        self.executor = executor
        self.batch_rows = batch_rows
        self.cache_capacity = cache_capacity
        self.caching = caching
        self.budget = budget
        self.cache_limit = cache_limit
        self.cache_mode = cache_mode
        self.cache_replacement = cache_replacement
        self.cache_bypass = cache_bypass
        self.cache_bypass_threshold = cache_bypass_threshold
        self.tracer = NULL_TRACER if tracer is None else tracer
        self.profiler = NULL_PROFILER if profiler is None else profiler
        self.failure_policy = failure_policy
        self.clock = clock
        self.collector = collector
        self.monitor = monitor
        self.flight = flight
        self.adaptive = adaptive
        self.ledger = ledger
        self.adaptive_stats_store = adaptive_stats_store
        self.adaptive_stats_meta = adaptive_stats_meta

    def _bypass_ids(self, node: PlanNode) -> frozenset[int]:
        """Predicates not worth caching: nearly every binding is distinct.

        The estimate follows the paper: compare the predicate's distinct
        input bindings against the tuples that will reach it — approximated
        here by its relation's cardinality, an upper bound on either.
        """
        if not self.cache_bypass:
            return frozenset()
        bypass: set[int] = set()
        catalog = self.db.catalog
        for predicate in node.all_predicates():
            if not predicate.is_expensive:
                continue
            distinct = 1.0
            for table, attribute in predicate.input_columns():
                distinct *= max(
                    1, catalog.table(table).stats.ndistinct(attribute)
                )
            tuples = max(
                catalog.table(table).stats.cardinality
                for table in predicate.tables
            ) if predicate.tables else 1
            if distinct >= self.cache_bypass_threshold * tuples:
                bypass.add(predicate.pred_id)
        return frozenset(bypass)

    def execute(
        self,
        plan: Plan | PlanNode,
        project: list[QualifiedColumn] | None = None,
        raise_on_budget: bool = False,
        instrument: bool = False,
    ) -> QueryResult:
        """Execute ``plan`` cold (fresh meter, empty buffer pool, reset
        function counters) and return rows plus metrics.

        When the cost budget is exceeded, returns a ``completed=False``
        result (or re-raises if ``raise_on_budget``). ``instrument=True``
        wraps every operator to collect per-node actuals (rows, charged
        cost, cache hits) in :attr:`QueryResult.node_stats` — the EXPLAIN
        ANALYZE data source.
        """
        node = plan.root if isinstance(plan, Plan) else plan
        db = self.db
        tracer = self.tracer
        profiler = self.profiler
        db.meter.reset()
        previous_budget = db.meter.budget
        db.meter.budget = self.budget
        db.pool.clear()
        db.pool.reset_stats()
        db.catalog.functions.reset_counters()

        cache = (
            PredicateCache(
                max_entries_per_predicate=self.cache_limit,
                replacement=self.cache_replacement,
                max_total_entries=self.cache_capacity,
            )
            if self.caching
            else None
        )
        node_stats: dict[int, OperatorStats] | None = (
            {} if instrument else None
        )
        batch_stats: dict[int, object] | None = (
            {} if instrument and self.executor == "vector" else None
        )
        containment = (
            ContainmentState(
                self.failure_policy,
                clock=self.clock,
                tracer=tracer,
                flight=self.flight,
            )
            if self.failure_policy is not None
            else None
        )
        monitor = self.monitor
        if monitor is not None:
            # Register every node's estimated work budget before any
            # operator is built (MonitoredOperator activates at
            # construction). The monitor's model mirrors this executor's
            # charging configuration.
            monitor.attach(
                node,
                CostModel(db.catalog, db.params, caching=self.caching),
            )
        controller: AdaptiveController | None = None
        if self.adaptive is not None:
            # Adaptive runs always drive the row pipeline — the vector
            # engine has no safe splice point — but honour a vector
            # request's batch granularity as the boundary cadence. The
            # controller doubles as the feedback collector (tee-ing to
            # any user-supplied one) so drift detection rides the
            # existing evaluate_predicate bracket.
            controller = AdaptiveController(
                node,
                catalog=db.catalog,
                params=db.params,
                meter=db.meter,
                caching=self.caching,
                policy=self.adaptive,
                collector=self.collector,
                ledger=self.ledger if self.ledger is not None else NULL_LEDGER,
                flight=self.flight,
                cadence=(
                    self.batch_rows if self.executor == "vector" else 0
                ),
                stats_store=self.adaptive_stats_store,
                stats_meta=self.adaptive_stats_meta,
            )
            controller.cache = cache
        feed_on = controller is not None and controller.active
        ctx = RuntimeContext(
            catalog=db.catalog,
            meter=db.meter,
            params=db.params,
            caching=self.caching,
            cache=cache,
            cache_mode=self.cache_mode,
            bypass_ids=self._bypass_ids(node),
            node_stats=node_stats,
            containment=containment,
            collector=controller if feed_on else self.collector,
            monitor=monitor,
            batch_stats=batch_stats,
            flight=self.flight,
            feed=controller if feed_on else None,
        )
        started = time.perf_counter()
        rows: list[tuple] = []
        completed = True
        error = ""
        scope: Scope | None = None
        with tracer.span(
            "execute", caching=self.caching, instrumented=instrument
        ) as span:
            try:
                vectorized = (
                    self.executor == "vector" and controller is None
                )
                with tracer.span("executor.build"), \
                        profiler.phase("exec.build"):
                    if vectorized:
                        runner = VectorPlanRunner(node, ctx, self.batch_rows)
                    else:
                        runner = build_operator(node, ctx)
                scope = runner.scope
                with tracer.span("executor.run"), \
                        profiler.phase("exec.run"):
                    if vectorized:
                        runner.run_into(rows)
                    else:
                        for row in runner:
                            rows.append(row)
            except BudgetExceededError as exc:
                error = (
                    f"budget: charged {exc.charged:.1f} > "
                    f"budget {exc.budget:.1f}"
                )
                if monitor is not None:
                    monitor.freeze(error)
                if self.flight is not None:
                    self.flight.note_abort(error)
                if raise_on_budget:
                    raise
                completed = False
            except UdfError as exc:
                # Only the ``abort`` exhaustion policy lets a UdfError
                # escape the operators; surface it as a structured DNF
                # rather than a traceback.
                completed = False
                error = f"udf: {exc}"
                if monitor is not None:
                    monitor.freeze(error)
                if self.flight is not None:
                    self.flight.note_abort(error)
            finally:
                # Restore whatever budget the shared Database carried
                # before this execution, not unconditionally None.
                db.meter.budget = previous_budget
            span.set(
                rows=len(rows),
                completed=completed,
                charged=db.meter.charged,
                error=error,
            )
        elapsed = time.perf_counter() - started

        if profiler.enabled and node_stats is not None:
            # Fold the instrumented per-node actuals into the profiler so
            # operator hotspots rank alongside the optimizer's phases.
            # wall_seconds is inclusive of each node's subtree, so only
            # record()-style totals (no self-time split) make sense here.
            for plan_node in node.walk():
                stats = node_stats.get(id(plan_node))
                if stats is not None:
                    profiler.record(
                        f"exec.op.{_node_label(plan_node)}",
                        stats.wall_seconds,
                    )

        if profiler.enabled and batch_stats is not None:
            # Per-kernel self time: each predicate's evaluate_batch wall
            # clock, measured exclusively (masking included, children
            # excluded), so kernels rank against operators and optimizer
            # phases in the hotspot report.
            for plan_node in node.walk():
                stats = batch_stats.get(id(plan_node))
                if stats is None:
                    continue
                for pred_stats in stats.predicates:
                    profiler.record(
                        f"exec.kernel.{pred_stats.predicate}",
                        pred_stats.kernel_seconds,
                    )

        if project is not None and scope is not None and completed:
            slots = [scope.slot(table, attribute) for table, attribute in project]
            rows = [tuple(row[slot] for slot in slots) for row in rows]
            scope = Scope(list(project))

        metrics = db.meter.snapshot()
        if containment is not None:
            metrics.update(containment.metrics())

        result = QueryResult(
            rows=rows,
            scope=scope,
            completed=completed,
            charged=db.meter.charged,
            metrics=metrics,
            cache_stats=cache.stats if cache is not None else None,
            cache_entries=cache.total_entries() if cache is not None else 0,
            wall_seconds=elapsed,
            node_stats=node_stats,
            batch_stats=batch_stats,
            error=error,
            quarantine=(
                containment.report if containment is not None else None
            ),
            adaptive=(
                controller.report if controller is not None else None
            ),
        )
        if monitor is not None:
            if completed:
                monitor.complete()
            clock = self.clock
            if clock is None and containment is not None:
                clock = containment.clock
            result.resources = monitor.resource_report(result, clock=clock)
        return result
