"""Predicate caching (Section 5.1 of the paper).

Montage associates with each expensive predicate a main-memory dynamic hash
table storing the *predicate's* boolean result for each binding of its input
variables — not the result of the functions inside it. We reproduce that:
one table per predicate, keyed on the tuple of distinct input-column values,
holding ``True`` / ``False`` / ``None`` (the paper's NULL for "beardless
people").

Extensions beyond the paper's default, all mentioned in Section 5.1 as
alternatives:

* *function-level* caching ([Jhi88], [HS93a]) — the executor can cache each
  UDF's return value per argument tuple instead (``cache_mode="function"``);
  the cache keys are then function names rather than predicate ids;
* bounded tables with FIFO or LRU replacement ("caches can be limited in
  size, using any of a variety of replacement schemes");
* the cache-bypass heuristic the paper describes as "planned for Montage,
  but not implemented yet" lives in :mod:`repro.exec.runtime`.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Hashable

from repro.errors import ExecutionError

#: Supported replacement policies for bounded caches.
REPLACEMENT_POLICIES = ("fifo", "lru")


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


@dataclass
class PredicateCache:
    """Caches results for every predicate (or function) of one execution.

    Tables are keyed by an arbitrary hashable owner — a predicate id in
    predicate mode, a function name in function mode.
    """

    max_entries_per_predicate: int | None = None
    replacement: str = "fifo"
    stats: CacheStats = field(default_factory=CacheStats)
    _tables: dict[Hashable, OrderedDict[tuple, object]] = field(
        default_factory=dict
    )

    def __post_init__(self) -> None:
        if self.replacement not in REPLACEMENT_POLICIES:
            raise ExecutionError(
                f"replacement must be one of {REPLACEMENT_POLICIES}, "
                f"got {self.replacement!r}"
            )

    def lookup(self, owner: Hashable, key: tuple) -> tuple[bool, object]:
        """Return ``(found, value)`` for a binding of one owner."""
        table = self._tables.get(owner)
        if table is not None and key in table:
            self.stats.hits += 1
            if self.replacement == "lru":
                table.move_to_end(key)
            return (True, table[key])
        self.stats.misses += 1
        return (False, None)

    def store(self, owner: Hashable, key: tuple, value: object) -> None:
        table = self._tables.setdefault(owner, OrderedDict())
        table[key] = value
        limit = self.max_entries_per_predicate
        if limit is not None and len(table) > limit:
            table.popitem(last=False)
            self.stats.evictions += 1

    def entries(self, owner: Hashable) -> int:
        return len(self._tables.get(owner, ()))

    def total_entries(self) -> int:
        return sum(len(table) for table in self._tables.values())
