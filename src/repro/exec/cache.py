"""Predicate caching (Section 5.1 of the paper).

Montage associates with each expensive predicate a main-memory dynamic hash
table storing the *predicate's* boolean result for each binding of its input
variables — not the result of the functions inside it. We reproduce that:
one table per predicate, keyed on the tuple of distinct input-column values,
holding ``True`` / ``False`` / ``None`` (the paper's NULL for "beardless
people").

Extensions beyond the paper's default, all mentioned in Section 5.1 as
alternatives:

* *function-level* caching ([Jhi88], [HS93a]) — the executor can cache each
  UDF's return value per argument tuple instead (``cache_mode="function"``);
  the cache keys are then function names rather than predicate ids;
* bounded tables with FIFO or LRU replacement ("caches can be limited in
  size, using any of a variety of replacement schemes");
* the cache-bypass heuristic the paper describes as "planned for Montage,
  but not implemented yet" lives in :mod:`repro.exec.runtime`.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Hashable

from repro.errors import ExecutionError

#: Supported replacement policies for bounded caches.
REPLACEMENT_POLICIES = ("fifo", "lru")


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


@dataclass
class PredicateCache:
    """Caches results for every predicate (or function) of one execution.

    Tables are keyed by an arbitrary hashable owner — a predicate id in
    predicate mode, a function name in function mode.
    """

    max_entries_per_predicate: int | None = None
    replacement: str = "fifo"
    #: Global capacity across *all* owners ("caches can be limited in
    #: size"): when set, the least-recently-used binding anywhere in the
    #: cache is evicted once the total entry count would exceed it.
    #: Composes with the per-owner bound; under ``replacement="fifo"``
    #: the global order is insertion order (hits do not refresh).
    max_total_entries: int | None = None
    stats: CacheStats = field(default_factory=CacheStats)
    _tables: dict[Hashable, OrderedDict[tuple, object]] = field(
        default_factory=dict
    )
    #: Global recency order over ``(owner, key)`` pairs; maintained only
    #: when ``max_total_entries`` is set (unbounded caches pay nothing).
    _order: OrderedDict[tuple, None] = field(default_factory=OrderedDict)

    def __post_init__(self) -> None:
        if self.replacement not in REPLACEMENT_POLICIES:
            raise ExecutionError(
                f"replacement must be one of {REPLACEMENT_POLICIES}, "
                f"got {self.replacement!r}"
            )
        if self.max_total_entries is not None and self.max_total_entries < 1:
            raise ExecutionError(
                "max_total_entries must be positive, "
                f"got {self.max_total_entries}"
            )

    def lookup(self, owner: Hashable, key: tuple) -> tuple[bool, object]:
        """Return ``(found, value)`` for a binding of one owner."""
        table = self._tables.get(owner)
        if table is not None and key in table:
            self.stats.hits += 1
            if self.replacement == "lru":
                table.move_to_end(key)
                if self.max_total_entries is not None:
                    self._order.move_to_end((owner, key))
            return (True, table[key])
        self.stats.misses += 1
        return (False, None)

    def store(self, owner: Hashable, key: tuple, value: object) -> None:
        table = self._tables.setdefault(owner, OrderedDict())
        bounded = self.max_total_entries is not None
        if bounded:
            if key in table:
                self._order.move_to_end((owner, key))
            else:
                self._order[(owner, key)] = None
        table[key] = value
        limit = self.max_entries_per_predicate
        if limit is not None and len(table) > limit:
            evicted_key, _ = table.popitem(last=False)
            if bounded:
                del self._order[(owner, evicted_key)]
            self.stats.evictions += 1
        if bounded and len(self._order) > self.max_total_entries:
            (evict_owner, evict_key), _ = self._order.popitem(last=False)
            del self._tables[evict_owner][evict_key]
            self.stats.evictions += 1

    def entries(self, owner: Hashable) -> int:
        return len(self._tables.get(owner, ()))

    def total_entries(self) -> int:
        return sum(len(table) for table in self._tables.values())
