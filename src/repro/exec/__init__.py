"""Plan executors (row-at-a-time and batch-at-a-time) with charged-cost
accounting.

Execution follows the paper's measurement methodology exactly: expensive
functions do no real work, but every invocation is counted and charged at
the function's declared cost in random-I/O units; page accesses are charged
through the buffer pool; and the total "running time" of a query is the sum
of charged units. An optional budget aborts runaway plans (the paper's
Query 5 PullUp plan "never completed") via
:class:`~repro.errors.BudgetExceededError`.
"""

from repro.exec.cache import CacheStats, PredicateCache
from repro.exec.containment import (
    EXHAUSTION_POLICIES,
    FailurePolicy,
    QuarantineEntry,
    QuarantineReport,
)
from repro.exec.operators import OperatorStats
from repro.exec.runtime import EXECUTORS, Executor, QueryResult
from repro.exec.vector import VectorPlanRunner

__all__ = [
    "CacheStats",
    "EXECUTORS",
    "EXHAUSTION_POLICIES",
    "Executor",
    "FailurePolicy",
    "OperatorStats",
    "PredicateCache",
    "QuarantineEntry",
    "QuarantineReport",
    "QueryResult",
    "VectorPlanRunner",
]
