"""Per-predicate UDF failure containment for the executor.

A :class:`FailurePolicy` says what to do when a user-defined predicate
raises :class:`~repro.errors.UdfError`: retry up to ``retries`` times
with exponential backoff on a simulated clock, then apply the
on-exhaustion policy —

``abort``
    re-raise; the executor converts it into a structured DNF result
    (``completed=False`` with a populated ``error`` field), never a
    traceback;
``skip-row`` / ``assume-fail``
    treat the predicate as false: the row is dropped and quarantined
    (both names exist because "drop this row" and "the predicate said
    no" are different operator intents with identical conjunct
    semantics);
``assume-pass``
    treat the predicate as true: the row flows on and is quarantined as
    potentially spurious.

Every exhaustion lands in the :class:`QuarantineReport` threaded into
:class:`~repro.exec.runtime.QueryResult`, so a degraded run says exactly
which tuples were decided by policy rather than by evaluation.

The containment layer deliberately ignores the fault's ``transient``
flag when deciding to retry: real systems cannot see fault metadata, so
permanent faults burn the full retry budget before the policy applies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ExecutionError, UdfError
from repro.faults.clock import SimulatedClock
from repro.obs.tracer import NULL_TRACER

#: Valid ``on_exhausted`` policies.
EXHAUSTION_POLICIES = ("abort", "skip-row", "assume-pass", "assume-fail")

#: Default bounded-retry budget.
DEFAULT_RETRIES = 2


@dataclass(frozen=True)
class FailurePolicy:
    """How the executor responds to UDF failures."""

    retries: int = DEFAULT_RETRIES
    on_exhausted: str = "abort"
    backoff_base: float = 1.0
    backoff_multiplier: float = 2.0

    def __post_init__(self) -> None:
        if self.on_exhausted not in EXHAUSTION_POLICIES:
            raise ExecutionError(
                f"unknown on-exhaustion policy {self.on_exhausted!r}; "
                f"choose one of {EXHAUSTION_POLICIES}"
            )
        if self.retries < 0:
            raise ExecutionError(
                f"retries must be non-negative, got {self.retries}"
            )

    def backoff_units(self, attempt: int) -> float:
        """Virtual wait before retry number ``attempt`` (0-based)."""
        return self.backoff_base * self.backoff_multiplier**attempt


@dataclass(frozen=True)
class QuarantineEntry:
    """One tuple whose predicate verdict came from policy, not evaluation."""

    predicate: str
    function: str
    action: str
    attempts: int
    call_index: int
    row_preview: str

    def as_dict(self) -> dict:
        return {
            "predicate": self.predicate,
            "function": self.function,
            "action": self.action,
            "attempts": self.attempts,
            "call_index": self.call_index,
            "row_preview": self.row_preview,
        }


@dataclass
class QuarantineReport:
    """The degraded-run ledger: counts plus the affected tuples."""

    entries: list[QuarantineEntry] = field(default_factory=list)
    #: Individual retry attempts (each backoff wait is one retry).
    retries: int = 0
    #: Evaluations that succeeded only after at least one retry.
    recovered: int = 0
    #: UdfErrors observed (including ones later masked by retry).
    failures: int = 0
    backoff_units: float = 0.0

    @property
    def quarantined(self) -> int:
        return len(self.entries)

    def as_dict(self) -> dict:
        return {
            "quarantined": self.quarantined,
            "retries": self.retries,
            "recovered": self.recovered,
            "failures": self.failures,
            "backoff_units": self.backoff_units,
            "entries": [entry.as_dict() for entry in self.entries],
        }


#: Cap on quarantine entries kept verbatim; counts keep accumulating
#: beyond it so reports stay bounded even when every row fails.
MAX_QUARANTINE_ENTRIES = 1000


class ContainmentState:
    """Mutable per-execution containment bookkeeping."""

    def __init__(
        self,
        policy: FailurePolicy,
        clock: SimulatedClock | None = None,
        tracer=None,
        flight=None,
    ) -> None:
        self.policy = policy
        self.clock = clock if clock is not None else SimulatedClock()
        self.tracer = NULL_TRACER if tracer is None else tracer
        #: Optional execution flight recorder: retry and quarantine
        #: events land in its ring buffer so a crash dump shows the
        #: containment activity leading up to the abort. ``None`` (the
        #: default) keeps the failure path recorder-free.
        self.flight = flight
        self.report = QuarantineReport()
        self._overflow = 0

    def note_failure(self) -> None:
        self.report.failures += 1

    def note_recovered(self) -> None:
        self.report.recovered += 1

    def wait_before_retry(self, attempt: int, error: UdfError) -> None:
        """Charge one backoff wait to the simulated clock."""
        units = self.policy.backoff_units(attempt)
        self.report.retries += 1
        self.report.backoff_units += units
        self.clock.charge_backoff(units)
        if self.tracer.enabled:
            self.tracer.event(
                "udf.retry",
                function=error.function,
                attempt=attempt + 1,
                backoff_units=units,
            )
        if self.flight is not None:
            self.flight.record(
                "udf.retry",
                function=error.function,
                attempt=attempt + 1,
                backoff_units=units,
            )

    def quarantine(
        self, predicate, row: tuple, error: UdfError, attempts: int
    ) -> bool:
        """Record an exhausted evaluation; returns the assumed verdict.

        ``abort`` re-raises instead of returning.
        """
        action = self.policy.on_exhausted
        if len(self.report.entries) < MAX_QUARANTINE_ENTRIES:
            self.report.entries.append(
                QuarantineEntry(
                    predicate=str(predicate),
                    function=error.function,
                    action=action,
                    attempts=attempts,
                    call_index=error.call_index,
                    row_preview=repr(row)[:120],
                )
            )
        else:
            self._overflow += 1
        if self.tracer.enabled:
            self.tracer.event(
                "udf.quarantine",
                function=error.function,
                action=action,
                attempts=attempts,
            )
        if self.flight is not None:
            self.flight.record(
                "udf.quarantine",
                function=error.function,
                predicate=str(predicate),
                action=action,
                attempts=attempts,
            )
        if action == "abort":
            raise error
        return action == "assume-pass"

    def metrics(self) -> dict[str, float]:
        """The ``udf.*`` counters merged into ``QueryResult.metrics``."""
        report = self.report
        return {
            "udf.retries": float(report.retries),
            "udf.recovered": float(report.recovered),
            "udf.failures": float(report.failures),
            "udf.quarantined": float(report.quarantined + self._overflow),
            "udf.backoff_units": report.backoff_units,
            "udf.latency_units": self.clock.latency_units,
        }
