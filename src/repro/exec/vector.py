"""Batch-at-a-time (vectorized) execution: the row executor's fast twin.

Operators here consume and produce :class:`~repro.storage.columnar.
ColumnBatch` objects instead of single rows, with three speed levers:

* **compiled kernels** — each predicate's expression tree is compiled
  once into nested closures over binding-slot indices, replacing the
  per-row recursive AST walk (and its per-column ``scope.slot`` dict
  lookups) with direct indexing;
* **selection vectors** — filters fill a byte mask and gather survivors
  column-at-a-time, so each expensive-UDF call is made (and charged)
  only for selection-vector survivors;
* **bulk metering** — per-tuple CPU and rescan-I/O charges accrue once
  per batch (``cost × n``) instead of once per row, and equijoin
  nested-loop primaries are matched by hash partitioning instead of
  evaluating the equality on every pair.

Charging parity is the contract: a completed vector run charges exactly
what the row executor charges (same ``charged``, ``io_charged``,
``function_charged``, ``function_calls``, and — with unbounded caches —
the same hit/miss counts), and produces the identical row multiset. Runs
that exceed the cost budget DNF in both executors (charges accrue
monotonically to the same total), though the partial ``charged`` at
abort time may differ because batches charge in groups.

Failure containment (`ctx.containment`) switches predicate evaluation to
the row path's per-tuple contained loop, so retry/quarantine semantics —
and the chaos suite's subset/superset audits — are preserved under
batching. FeedbackCollector / RuntimeMonitor sinks are observed
per batch via their ``observe_batch`` / ``observe_predicate_batch`` /
``on_rows`` bulk hooks (with per-call fallbacks), and cost nothing when
detached.
"""

from __future__ import annotations

import time
from itertools import compress
from typing import Callable, Iterator

from repro.errors import ExecutionError, PlanError
from repro.exec.operators import (
    OperatorStats,
    RuntimeContext,
    _scope_width,
    evaluate_predicate,
)
from repro.expr.expressions import (
    _ARITHMETIC,
    _COMPARATORS,
    BinaryOp,
    Column,
    Comparison,
    Const,
    Expr,
    FuncCall,
    Logical,
    Not,
    Scope,
)
from repro.expr.predicates import BoolBranch, BoolLeaf, Predicate
from repro.obs.histograms import StreamingHistogram
from repro.obs.quality import fmt_stat
from repro.plan.display import _node_label
from repro.plan.nodes import Join, JoinMethod, PlanNode, Scan
from repro.storage.columnar import (
    DEFAULT_BATCH_ROWS,
    ColumnBatch,
    batches_from_heap,
    batches_from_rows,
)
from repro.storage.meter import IOKind


# -- kernel compilation ------------------------------------------------------


def compile_kernel(
    expr: Expr, scope: Scope, functions
) -> Callable[[tuple], object]:
    """Compile an expression into a closure over binding tuples.

    Semantics mirror ``Expr.evaluate`` exactly (including three-valued
    NULL propagation); the only difference is that column slots and
    function objects are resolved once, at compile time.
    """
    if isinstance(expr, Const):
        value = expr.value
        return lambda binding: value
    if isinstance(expr, Column):
        slot = scope.slot(expr.table, expr.attribute)
        return lambda binding: binding[slot]
    if isinstance(expr, FuncCall):
        fn = functions.get(expr.name)
        kernels = tuple(
            compile_kernel(arg, scope, functions) for arg in expr.args
        )
        if len(kernels) == 1:
            arg0 = kernels[0]
            return lambda binding: fn(arg0(binding))
        if len(kernels) == 2:
            arg0, arg1 = kernels
            return lambda binding: fn(arg0(binding), arg1(binding))
        return lambda binding: fn(*(k(binding) for k in kernels))
    if isinstance(expr, (Comparison, BinaryOp)):
        table = _COMPARATORS if isinstance(expr, Comparison) else _ARITHMETIC
        op = table[expr.op]
        left = compile_kernel(expr.left, scope, functions)
        right = compile_kernel(expr.right, scope, functions)

        def binary(binding):
            a = left(binding)
            b = right(binding)
            if a is None or b is None:
                return None
            return op(a, b)

        return binary
    if isinstance(expr, Logical):
        kernels = tuple(
            compile_kernel(operand, scope, functions)
            for operand in expr.operands
        )
        conjunctive = expr.op == "AND"

        def logical(binding):
            # All operands evaluate (three-valued), like Logical.evaluate.
            values = [k(binding) for k in kernels]
            if conjunctive:
                if any(value is False for value in values):
                    return False
                if any(value is None for value in values):
                    return None
                return True
            if any(value is True for value in values):
                return True
            if any(value is None for value in values):
                return None
            return False

        return logical
    if isinstance(expr, Not):
        inner = compile_kernel(expr.operand, scope, functions)

        def negate(binding):
            value = inner(binding)
            if value is None:
                return None
            return not value

        return negate
    raise ExecutionError(
        f"cannot compile expression type: {type(expr).__name__}"
    )


def _compile_tree_walk(
    tree: BoolBranch, scope: Scope, functions, meter
) -> Callable[[tuple], bool]:
    """Compile a cost-ordered boolean tree into a short-circuit closure.

    Each expensive leaf charges its per-call cost right after it
    evaluates (evaluate-then-charge, like the row path's
    ``_evaluate_tree``); pass ``meter=None`` under function-level
    caching, where the memoising wrappers do their own charging.
    """

    def build(node) -> Callable[[tuple], bool]:
        if isinstance(node, BoolLeaf):
            kernel = compile_kernel(node.expr, scope, functions)
            if meter is not None and node.is_expensive:
                cost = node.cost

                def leaf(binding):
                    value = kernel(binding)
                    meter.charge_function(cost)
                    return value is True

                return leaf
            return lambda binding: kernel(binding) is True
        children = tuple(build(child) for child in node.children)
        conjunctive = node.op == "AND"

        def branch(binding):
            for child in children:
                passed = child(binding)
                if passed is not conjunctive:
                    return passed
            return conjunctive

        return branch

    return build(tree)


# -- batch-granular actuals (EXPLAIN ANALYZE companion data) -----------------


class BatchPredicateStats:
    """Batch-granular actuals for one predicate in a filter chain.

    ``rows_in`` counts rows that reached this predicate (survivors of the
    predicates before it in the chain), ``rows_out`` the rows its
    selection mask kept — so ``rows_in / chain_rows`` is the selection-
    vector density *before* the predicate and ``rows_out / chain_rows``
    the density after it. ``kernel_seconds`` is the wall-clock spent
    inside ``evaluate_batch`` (the compiled kernel plus masking), and the
    cache deltas give this predicate's hit rate under caching runs.
    """

    __slots__ = (
        "predicate",
        "batches",
        "rows_in",
        "rows_out",
        "kernel_seconds",
        "cache_hits",
        "cache_misses",
    )

    def __init__(self, predicate: Predicate) -> None:
        self.predicate = str(predicate)
        self.batches = 0
        self.rows_in = 0
        self.rows_out = 0
        self.kernel_seconds = 0.0
        self.cache_hits = 0
        self.cache_misses = 0

    @property
    def selectivity(self) -> float:
        if self.rows_in <= 0:
            return float("nan")
        return self.rows_out / self.rows_in

    @property
    def cache_hit_rate(self) -> float:
        lookups = self.cache_hits + self.cache_misses
        if lookups <= 0:
            return float("nan")
        return self.cache_hits / lookups

    def as_dict(self) -> dict:
        return {
            "predicate": self.predicate,
            "batches": self.batches,
            "rows_in": self.rows_in,
            "rows_out": self.rows_out,
            "selectivity": fmt_stat(self.selectivity),
            "kernel_seconds": self.kernel_seconds,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
        }


class BatchNodeStats:
    """Batch-granular actuals for one plan node under the vector engine.

    The batch-level companion of
    :class:`~repro.exec.operators.OperatorStats` — it never replaces the
    row-path totals (those stay byte-identical to the row engine); it
    *adds* what only exists under batching: how many batches flowed,
    their size distribution, and how the selection vector decayed
    through the node's filter chain.
    """

    __slots__ = ("batches", "rows_in", "rows_out", "predicates")

    def __init__(self) -> None:
        #: Batches the node emitted (empty post-filter batches are
        #: dropped, so this can be lower than the input batch count,
        #: which is ``rows_in.count``).
        self.batches = 0
        #: Per-batch rows entering the node's filter chain.
        self.rows_in = StreamingHistogram()
        #: Per-batch rows the node emitted.
        self.rows_out = StreamingHistogram()
        #: Chain-ordered per-predicate stats (empty for filterless nodes).
        self.predicates: list[BatchPredicateStats] = []

    @property
    def chain_rows(self) -> int:
        """Total rows that entered the filter chain."""
        return int(self.rows_in.finite_sum)

    def as_dict(self) -> dict:
        return {
            "batches": self.batches,
            "rows_in": self.rows_in.as_dict(),
            "rows_out": self.rows_out.as_dict(),
            "predicates": [p.as_dict() for p in self.predicates],
        }


def _batch_node_stats(ctx: RuntimeContext, node: PlanNode) -> BatchNodeStats:
    """Get-or-create the batch stats slot for ``node`` (the filter chain
    and the instrumented wrapper both write into the same slot)."""
    stats = ctx.batch_stats.get(id(node))
    if stats is None:
        stats = ctx.batch_stats[id(node)] = BatchNodeStats()
    return stats


# -- batch predicate evaluation ----------------------------------------------


class PredicateRunner:
    """Evaluates one predicate over binding batches with charging,
    caching, and observation totals identical to the row path's
    ``_evaluate_once``.

    Bindings are tuples of the predicate's ``input_columns()`` values in
    declaration order — exactly the row path's cache key — so predicate-
    cache contents and hit/miss totals match the row executor whenever
    the cache is unbounded (bounded caches are order-sensitive).

    Function costs charge in bulk per batch (``cost × evaluations``,
    via ``charge_function(cost, calls=n)``): total charge, call count,
    and the completed/DNF verdict all match the row executor; only the
    intermediate meter reading inside a batch differs. With feedback or
    telemetry sinks attached, evaluation drops to a per-binding bracket
    so observations carry exact per-call costs.
    """

    def __init__(self, predicate: Predicate, ctx: RuntimeContext) -> None:
        self.predicate = predicate
        self.ctx = ctx
        self.scope = Scope(list(predicate.input_columns()))
        self.caching = (
            ctx.caching
            and predicate.is_expensive
            and predicate.pred_id not in ctx.bypass_ids
        )
        self.function_mode = self.caching and ctx.cache_mode == "function"
        functions = (
            ctx.caching_functions()
            if self.function_mode
            else ctx.catalog.functions
        )
        tree = predicate.tree
        self.compound = isinstance(tree, BoolBranch)
        if self.compound:
            meter = None if self.function_mode else ctx.meter
            self._walk = _compile_tree_walk(tree, self.scope, functions, meter)
            self._kernel = None
        else:
            self._walk = None
            self._kernel = compile_kernel(predicate.expr, self.scope, functions)
        # Batchable-UDF shape: a lone function call whose arguments are
        # exactly the binding columns, in order — then bindings *are*
        # the call's argument tuples and the registry's vectorized
        # entry point applies. Gated on the implementation actually
        # carrying a ``batch`` form (bool-per-binding contract); a
        # fault-injector wrapper strips it, restoring per-call
        # dispatch. (Not under function-level caching, where the
        # memoising wrappers must see each call.)
        expr = predicate.expr
        self._direct_function = None
        if (
            not self.compound
            and not self.function_mode
            and isinstance(expr, FuncCall)
            and all(isinstance(arg, Column) for arg in expr.args)
            and [(arg.table, arg.attribute) for arg in expr.args]
            == list(predicate.input_columns())
        ):
            function = ctx.catalog.functions.get(expr.name)
            if getattr(function.fn, "batch", None) is not None:
                self._direct_function = function
        # Free column-vs-constant comparisons (`t10.a20 < 5`) evaluate
        # column-at-a-time: one packed-column scan into the mask, no
        # binding tuples, no charges (the predicate is free).
        self._column_compare = None
        if (
            not self.compound
            and not predicate.is_expensive
            and isinstance(expr, Comparison)
        ):
            left, right = expr.left, expr.right
            op = _COMPARATORS[expr.op]
            if isinstance(left, Column) and isinstance(right, Const):
                self._column_compare = (op, right.value, False)
            elif isinstance(left, Const) and isinstance(right, Column):
                self._column_compare = (op, left.value, True)

    # One binding, mirroring `_evaluate_once`'s three paths. Used by the
    # observed (per-binding bracketed) regime only.
    def _evaluate_one(self, binding: tuple) -> bool:
        if self.function_mode:
            if self.compound:
                return self._walk(binding)
            return self._kernel(binding) is True
        if self.caching:
            cache = self.ctx.cache
            found, value = cache.lookup(self.predicate.pred_id, binding)
            if not found:
                if self.compound:
                    value = self._walk(binding)
                else:
                    value = self._kernel(binding)
                    self.ctx.meter.charge_function(
                        self.predicate.cost_per_tuple
                    )
                cache.store(self.predicate.pred_id, binding, value)
            return value is True
        if self.compound:
            return self._walk(binding)
        value = self._kernel(binding)
        if self.predicate.is_expensive:
            self.ctx.meter.charge_function(self.predicate.cost_per_tuple)
        return value is True

    def evaluate_batch(self, batch: ColumnBatch, slots: list[int]) -> bytearray:
        """Fill a selection mask over a whole batch, reading columns
        directly when the predicate shape allows it."""
        ctx = self.ctx
        if self._column_compare is not None and ctx.collector is None:
            # A monitor alone does not force the per-binding bracketed
            # regime: the predicate is free (every charge is zero), so
            # the observation can be reported in bulk from the mask —
            # same density information, none of the per-row overhead.
            op, const, reversed_ = self._column_compare
            if const is None:  # comparisons against NULL never pass
                mask = bytearray(batch.length)
            else:
                column = batch.column(slots[0])
                if reversed_:
                    mask = bytearray(
                        (v is not None and op(const, v)) is True
                        for v in column
                    )
                else:
                    mask = bytearray(
                        (v is not None and op(v, const)) is True
                        for v in column
                    )
            monitor = ctx.monitor
            if monitor is not None and batch.length:
                bulk = getattr(monitor, "observe_predicate_batch", None)
                if bulk is not None:
                    bulk(self.predicate, batch.length, sum(mask), ())
            return mask
        return self.evaluate_bindings(_bindings_from_batch(batch, slots))

    def evaluate_bindings(self, bindings: list[tuple]) -> bytearray:
        """Fill a selection mask over one batch of bindings."""
        ctx = self.ctx
        if ctx.collector is not None or ctx.monitor is not None:
            return self._evaluate_observed(bindings)
        n = len(bindings)
        mask = bytearray(n)
        if not n:
            return mask
        predicate = self.predicate
        if self.caching and not self.function_mode:
            # Predicate-level cache: per-binding lookups (hit/miss
            # parity with the row path), misses charged in bulk.
            cache = ctx.cache
            lookup = cache.lookup
            store = cache.store
            pred_id = predicate.pred_id
            walk = self._walk
            kernel = self._kernel
            misses = 0
            for i, binding in enumerate(bindings):
                found, value = lookup(pred_id, binding)
                if not found:
                    if walk is not None:
                        value = walk(binding)  # charges its own leaves
                    else:
                        value = kernel(binding)
                        misses += 1
                    store(pred_id, binding, value)
                if value is True:
                    mask[i] = 1
            if misses:
                ctx.meter.charge_function(predicate.cost_per_tuple, misses)
            return mask
        if self._direct_function is not None:
            verdicts = self._direct_function.call_batch(bindings)
            if predicate.is_expensive:
                ctx.meter.charge_function(predicate.cost_per_tuple, n)
            # batch-form verdicts are bools, which pack straight into
            # the selection mask at C speed.
            return bytearray(verdicts)
        evaluate = self._walk if self._walk is not None else self._kernel
        for i, binding in enumerate(bindings):
            if evaluate(binding) is True:
                mask[i] = 1
        if (
            self._walk is None
            and not self.function_mode
            and predicate.is_expensive
        ):
            ctx.meter.charge_function(predicate.cost_per_tuple, n)
        return mask

    def _evaluate_observed(self, bindings: list[tuple]) -> bytearray:
        """Attached regime: bracket each evaluation with the meter's
        function-charge delta so batch observations carry the exact
        per-call costs the row path would have reported."""
        mask = bytearray(len(bindings))
        if not bindings:
            return mask
        meter = self.ctx.meter
        evaluate_one = self._evaluate_one
        passed_count = 0
        charges: list[float] = []
        for i, binding in enumerate(bindings):
            before = meter.function_charged
            if evaluate_one(binding):
                mask[i] = 1
                passed_count += 1
            charges.append(meter.function_charged - before)
        observe_predicate_batch(
            self.ctx.collector,
            self.ctx.monitor,
            self.predicate,
            mask,
            passed_count,
            charges,
        )
        return mask


def observe_predicate_batch(
    collector,
    monitor,
    predicate: Predicate,
    mask: bytearray,
    passed_count: int,
    charges: list[float],
) -> None:
    """Report one batch of predicate verdicts to the attached sinks,
    preferring their bulk hooks and falling back to per-call observes
    for duck-typed sinks that lack them."""
    evaluated = len(charges)
    if collector is not None:
        bulk = getattr(collector, "observe_batch", None)
        if bulk is not None:
            charged_calls = 0
            charged_cost = 0.0
            for charge in charges:
                if charge > 0:
                    charged_calls += 1
                    charged_cost += charge
            bulk(
                predicate, evaluated, passed_count, charged_calls, charged_cost
            )
        else:
            for i in range(evaluated):
                collector.observe(predicate, mask[i] == 1, charges[i])
    if monitor is not None:
        bulk = getattr(monitor, "observe_predicate_batch", None)
        if bulk is not None:
            bulk(predicate, evaluated, passed_count, charges)
        else:
            for i in range(evaluated):
                monitor.observe_predicate(predicate, mask[i] == 1, charges[i])


def _bindings_from_batch(
    batch: ColumnBatch, slots: list[int]
) -> list[tuple]:
    if not slots:
        return [()] * batch.length
    return list(zip(*(batch.column(slot) for slot in slots)))


def _input_slots(predicate: Predicate, scope: Scope) -> list[int]:
    return [
        scope.slot(table, attribute)
        for table, attribute in predicate.input_columns()
    ]


# -- batch operators ---------------------------------------------------------


class BatchOperator:
    """Base: an iterable of :class:`ColumnBatch` with a fixed scope."""

    scope: Scope

    def batches(self) -> Iterator[ColumnBatch]:
        raise NotImplementedError


class BatchSeqScan(BatchOperator):
    def __init__(
        self, table: str, ctx: RuntimeContext, batch_rows: int
    ) -> None:
        entry = ctx.catalog.table(table)
        if entry.heap is None:
            raise ExecutionError(f"relation {table!r} has no heap file")
        self.entry = entry
        self.batch_rows = batch_rows
        self.scope = Scope(
            [(table, name) for name in entry.schema.attribute_names]
        )

    def batches(self) -> Iterator[ColumnBatch]:
        return batches_from_heap(self.entry.heap, self.scope, self.batch_rows)


class BatchIndexScan(BatchOperator):
    def __init__(
        self,
        table: str,
        attribute: str,
        low: object,
        high: object,
        ctx: RuntimeContext,
        batch_rows: int,
    ) -> None:
        entry = ctx.catalog.table(table)
        if not entry.has_index(attribute):
            raise ExecutionError(f"no index on {table}.{attribute}")
        self.entry = entry
        self.index = entry.index(attribute)
        self.low = low
        self.high = high
        self.batch_rows = batch_rows
        self.scope = Scope(
            [(table, name) for name in entry.schema.attribute_names]
        )

    def batches(self) -> Iterator[ColumnBatch]:
        heap = self.entry.heap

        def rows() -> Iterator[tuple]:
            for rid in self.index.range_search(self.low, self.high):
                yield heap.fetch_rid(rid)

        return batches_from_rows(self.scope, rows(), self.batch_rows)


class BatchFilter(BatchOperator):
    """Applies an ordered predicate list batch-at-a-time.

    Each predicate fills a selection mask over the current survivors and
    the batch is compacted before the next predicate runs — so, exactly
    like the row path's short-circuiting ``all()``, predicate *k* only
    ever evaluates (and charges for) rows that passed predicates
    ``< k``.
    """

    def __init__(
        self,
        child: BatchOperator,
        filters: list[Predicate],
        ctx: RuntimeContext,
        node: PlanNode | None = None,
    ) -> None:
        self.child = child
        self.filters = filters
        self.ctx = ctx
        self.scope = child.scope
        self.node_key = id(node) if node is not None else 0
        #: Product of the chain's declared selectivities — what the
        #: optimizer expected the chain to keep (for the monitor's
        #: density-based refinement).
        self.declared_selectivity = 1.0
        for predicate in filters:
            self.declared_selectivity *= float(predicate.selectivity)
        self._stats: BatchNodeStats | None = None
        self._pred_stats: list[BatchPredicateStats] = []
        if ctx.batch_stats is not None and node is not None:
            self._stats = _batch_node_stats(ctx, node)
            self._pred_stats = [BatchPredicateStats(p) for p in filters]
            self._stats.predicates.extend(self._pred_stats)
        if ctx.containment is None:
            self._runners = [
                (PredicateRunner(p, ctx), _input_slots(p, self.scope))
                for p in filters
            ]

    def _density_hook(self):
        """The monitor's per-batch density callback, or ``None``."""
        monitor = self.ctx.monitor
        if monitor is None or not self.node_key:
            return None
        return getattr(monitor, "on_filter_batch", None)

    def batches(self) -> Iterator[ColumnBatch]:
        ctx = self.ctx
        if ctx.containment is not None:
            # Containment slow path: per-tuple contained evaluation keeps
            # retry, backoff, and quarantine semantics row-identical.
            scope = self.scope
            filters = self.filters
            stats = self._stats
            on_filter_batch = self._density_hook()
            for batch in self.child.batches():
                rows_in = batch.length
                mask = bytearray(rows_in)
                for i, row in enumerate(batch.iter_rows()):
                    if all(
                        evaluate_predicate(predicate, row, scope, ctx)
                        for predicate in filters
                    ):
                        mask[i] = 1
                batch = batch.take(mask)
                if stats is not None:
                    stats.rows_in.observe(float(rows_in))
                if on_filter_batch is not None:
                    on_filter_batch(
                        self.node_key,
                        rows_in,
                        batch.length,
                        self.declared_selectivity,
                    )
                if batch.length:
                    yield batch
            return
        runners = self._runners
        stats = self._stats
        on_filter_batch = self._density_hook()
        if stats is None and on_filter_batch is None:
            # Detached fast path: no stats branch anywhere in the loop.
            for batch in self.child.batches():
                for runner, slots in runners:
                    if batch.length == 0:
                        break
                    mask = runner.evaluate_batch(batch, slots)
                    batch = batch.take(mask)
                if batch.length:
                    yield batch
            return
        pred_stats = self._pred_stats or [None] * len(runners)
        cache = ctx.cache
        for batch in self.child.batches():
            rows_in = batch.length
            if stats is not None:
                stats.rows_in.observe(float(rows_in))
            for (runner, slots), pstats in zip(runners, pred_stats):
                if batch.length == 0:
                    break
                if pstats is None:
                    mask = runner.evaluate_batch(batch, slots)
                    batch = batch.take(mask)
                    continue
                hits_before = cache.stats.hits if cache is not None else 0
                misses_before = (
                    cache.stats.misses if cache is not None else 0
                )
                started = time.perf_counter()
                mask = runner.evaluate_batch(batch, slots)
                pstats.kernel_seconds += time.perf_counter() - started
                pstats.batches += 1
                pstats.rows_in += batch.length
                batch = batch.take(mask)
                pstats.rows_out += batch.length
                if cache is not None:
                    pstats.cache_hits += cache.stats.hits - hits_before
                    pstats.cache_misses += (
                        cache.stats.misses - misses_before
                    )
            if on_filter_batch is not None:
                on_filter_batch(
                    self.node_key,
                    rows_in,
                    batch.length,
                    self.declared_selectivity,
                )
            if batch.length:
                yield batch


class _BatchBuilder:
    """Accumulates joined rows and flushes fixed-size column batches."""

    def __init__(self, scope: Scope, batch_rows: int) -> None:
        self.scope = scope
        self.batch_rows = batch_rows
        self.rows: list[tuple] = []

    def drain(self) -> Iterator[ColumnBatch]:
        # Mutate in place: callers hold aliases to ``self.rows``.
        while len(self.rows) >= self.batch_rows:
            chunk = self.rows[: self.batch_rows]
            del self.rows[: self.batch_rows]
            yield ColumnBatch.from_rows(self.scope, chunk)

    def flush(self) -> Iterator[ColumnBatch]:
        if self.rows:
            # Copy before clearing: batches no longer copy on
            # construction, and callers alias ``self.rows``.
            rows = list(self.rows)
            self.rows.clear()
            yield ColumnBatch.from_rows(self.scope, rows)


class BatchNestedLoopJoin(BatchOperator):
    """Nested loop over batches.

    Equijoin primaries with free equality predicates are matched by hash
    partitioning on the join key (None keys never match, like SQL ``=``)
    — an O(|R|+|S|) evaluation of the same pair set the row executor
    walks in O(|R|·|S|). Expensive, compound, or non-equality primaries
    evaluate per pair through a compiled :class:`PredicateRunner`. All
    metering (inner materialisation CPU, per-outer-tuple CPU and rescan
    I/O, primary-predicate function charges) totals exactly what the row
    operator charges.
    """

    def __init__(
        self,
        join: Join,
        outer: BatchOperator,
        inner: BatchOperator,
        ctx: RuntimeContext,
        batch_rows: int,
    ) -> None:
        self.join = join
        self.outer = outer
        self.inner = inner
        self.ctx = ctx
        self.batch_rows = batch_rows
        self.scope = outer.scope.concat(inner.scope)
        inner_node = join.inner
        if isinstance(inner_node, Scan):
            self.inner_base_pages: int | None = ctx.catalog.table(
                inner_node.table
            ).pages
        else:
            self.inner_base_pages = None
        primary = join.primary
        self._hash_eligible = (
            ctx.containment is None
            and primary.equijoin is not None
            and not primary.is_expensive
        )
        if self._hash_eligible:
            left, right = primary.equijoin
            if (left.table, left.attribute) in outer.scope:
                outer_col, inner_col = left, right
            else:
                outer_col, inner_col = right, left
            self.outer_slot = outer.scope.slot(
                outer_col.table, outer_col.attribute
            )
            self.inner_slot = inner.scope.slot(
                inner_col.table, inner_col.attribute
            )
        elif ctx.containment is None:
            self._runner = PredicateRunner(primary, ctx)
            outer_scope, inner_scope = outer.scope, inner.scope
            self._getters = [
                (True, outer_scope.slot(table, attribute))
                if (table, attribute) in outer_scope
                else (False, inner_scope.slot(table, attribute))
                for table, attribute in primary.input_columns()
            ]

    def _rescan_pages(self, inner_rows: list[tuple]) -> int:
        if self.inner_base_pages is not None:
            return self.inner_base_pages
        width = _scope_width(self.inner.scope, self.ctx.catalog)
        return int(self.ctx.params.pages_for(len(inner_rows), width))

    def batches(self) -> Iterator[ColumnBatch]:
        ctx = self.ctx
        meter = ctx.meter
        cpu = ctx.params.cpu_per_tuple
        inner_rows: list[tuple] = []
        for batch in self.inner.batches():  # filters evaluated once, here
            inner_rows.extend(batch.iter_rows())
        meter.charge_cpu(cpu * len(inner_rows))
        rescan_pages = self._rescan_pages(inner_rows)
        out = _BatchBuilder(self.scope, self.batch_rows)
        if self._hash_eligible:
            yield from self._hash_matched(inner_rows, rescan_pages, out)
        else:
            yield from self._pairwise(inner_rows, rescan_pages, out)
        yield from out.flush()

    def _hash_matched(
        self,
        inner_rows: list[tuple],
        rescan_pages: int,
        out: _BatchBuilder,
    ) -> Iterator[ColumnBatch]:
        ctx = self.ctx
        meter = ctx.meter
        cpu = ctx.params.cpu_per_tuple
        inner_slot = self.inner_slot
        buckets: dict[object, list[tuple]] = {}
        for inner_row in inner_rows:
            key = inner_row[inner_slot]
            if key is not None:  # `=` on NULL is never true
                buckets.setdefault(key, []).append(inner_row)
        attached = ctx.collector is not None or ctx.monitor is not None
        pairs = 0
        matches = 0
        pending = out.rows
        for obatch in self.outer.batches():
            n = obatch.length
            meter.charge_cpu(cpu * n)
            meter.charge_io(IOKind.SEQUENTIAL, rescan_pages * n)
            if attached:
                pairs += n * len(inner_rows)
            outer_slot = self.outer_slot
            for outer_row in obatch.rows:
                matched = buckets.get(outer_row[outer_slot])
                if matched:
                    for inner_row in matched:
                        pending.append(outer_row + inner_row)
                    if attached:
                        matches += len(matched)
            yield from out.drain()
        if attached and pairs:
            # The row path observes the (free) equality once per pair;
            # report the same verdict totals with zero charged cost.
            self._observe_pairs(pairs, matches)

    def _observe_pairs(self, pairs: int, matches: int) -> None:
        ctx = self.ctx
        predicate = self.join.primary
        collector = ctx.collector
        if collector is not None:
            bulk = getattr(collector, "observe_batch", None)
            if bulk is not None:
                bulk(predicate, pairs, matches, 0, 0.0)
        monitor = ctx.monitor
        if monitor is not None:
            bulk = getattr(monitor, "observe_predicate_batch", None)
            if bulk is not None:
                bulk(predicate, pairs, matches, ())

    def _pairwise(
        self,
        inner_rows: list[tuple],
        rescan_pages: int,
        out: _BatchBuilder,
    ) -> Iterator[ColumnBatch]:
        ctx = self.ctx
        meter = ctx.meter
        cpu = ctx.params.cpu_per_tuple
        primary = self.join.primary
        contained = ctx.containment is not None
        pending = out.rows
        scope = self.scope
        if contained:
            for obatch in self.outer.batches():
                n = obatch.length
                meter.charge_cpu(cpu * n)
                meter.charge_io(IOKind.SEQUENTIAL, rescan_pages * n)
                for outer_row in obatch.rows:
                    for inner_row in inner_rows:
                        row = outer_row + inner_row
                        if evaluate_predicate(primary, row, scope, ctx):
                            pending.append(row)
                yield from out.drain()
            return
        runner = self._runner
        getters = self._getters
        # Two-column one-per-side primaries (the common UDF join shape,
        # e.g. ``expjoin10(t7.a, t3.a)``) get a specialised binding
        # build: the inner side's values materialise once, and each
        # outer row pairs its single value against them in one listcomp.
        two_col = (
            len(getters) == 2 and getters[0][0] is not getters[1][0]
        )
        if two_col and inner_rows:
            outer_first = getters[0][0]
            outer_slot = (getters[0] if outer_first else getters[1])[1]
            inner_slot = (getters[1] if outer_first else getters[0])[1]
            inner_vals = [row[inner_slot] for row in inner_rows]
            for obatch in self.outer.batches():
                n = obatch.length
                meter.charge_cpu(cpu * n)
                meter.charge_io(IOKind.SEQUENTIAL, rescan_pages * n)
                for outer_row in obatch.rows:
                    ov = outer_row[outer_slot]
                    if outer_first:
                        bindings = [(ov, iv) for iv in inner_vals]
                    else:
                        bindings = [(iv, ov) for iv in inner_vals]
                    mask = runner.evaluate_bindings(bindings)
                    for inner_row in compress(inner_rows, mask):
                        pending.append(outer_row + inner_row)
                yield from out.drain()
            return
        for obatch in self.outer.batches():
            n = obatch.length
            meter.charge_cpu(cpu * n)
            meter.charge_io(IOKind.SEQUENTIAL, rescan_pages * n)
            if inner_rows:
                for outer_row in obatch.rows:
                    bindings = [
                        tuple(
                            (outer_row if from_outer else inner_row)[slot]
                            for from_outer, slot in getters
                        )
                        for inner_row in inner_rows
                    ]
                    mask = runner.evaluate_bindings(bindings)
                    for inner_row in compress(inner_rows, mask):
                        pending.append(outer_row + inner_row)
            yield from out.drain()


class BatchIndexNestedLoopJoin(BatchOperator):
    """Index nested loop: probes stay in row order so buffer-pool hits
    (and therefore random-I/O charges) match the row executor's."""

    def __init__(
        self,
        join: Join,
        outer: BatchOperator,
        ctx: RuntimeContext,
        batch_rows: int,
    ) -> None:
        inner_scan = join.inner
        if not isinstance(inner_scan, Scan):
            raise PlanError("left-deep plans require a scan inner input")
        columns = join.join_columns()
        if columns is None:
            raise PlanError("index nested loop requires an equijoin primary")
        outer_column, inner_column = columns
        entry = ctx.catalog.table(inner_scan.table)
        if not entry.has_index(inner_column.attribute):
            raise ExecutionError(
                f"no index on {inner_column.table}.{inner_column.attribute}"
            )
        self.join = join
        self.outer = outer
        self.ctx = ctx
        self.batch_rows = batch_rows
        self.entry = entry
        self.index = entry.index(inner_column.attribute)
        self.inner_filters = inner_scan.filters
        self.inner_scope = Scope(
            [(inner_scan.table, name) for name in entry.schema.attribute_names]
        )
        self.outer_slot = outer.scope.slot(
            outer_column.table, outer_column.attribute
        )
        self.scope = outer.scope.concat(self.inner_scope)
        if ctx.containment is None:
            self._runners = [
                (PredicateRunner(p, ctx), _input_slots(p, self.inner_scope))
                for p in self.inner_filters
            ]

    def batches(self) -> Iterator[ColumnBatch]:
        ctx = self.ctx
        meter = ctx.meter
        cpu = ctx.params.cpu_per_tuple
        heap = self.entry.heap
        index = self.index
        contained = ctx.containment is not None
        out = _BatchBuilder(self.scope, self.batch_rows)
        pending = out.rows
        for obatch in self.outer.batches():
            meter.charge_cpu(cpu * obatch.length)
            outer_slot = self.outer_slot
            outer_rows = obatch.rows
            # Probe in row order; collect fetched pairs for batch filtering.
            pairs: list[tuple[int, tuple]] = []
            for i, outer_row in enumerate(outer_rows):
                for rid in index.search(outer_row[outer_slot]):
                    pairs.append((i, heap.fetch_rid(rid)))
            if contained:
                inner_scope = self.inner_scope
                for i, inner_row in pairs:
                    if all(
                        evaluate_predicate(
                            predicate, inner_row, inner_scope, ctx
                        )
                        for predicate in self.inner_filters
                    ):
                        pending.append(outer_rows[i] + inner_row)
            else:
                for runner, slots in self._runners:
                    if not pairs:
                        break
                    bindings = [
                        tuple(inner_row[slot] for slot in slots)
                        for _, inner_row in pairs
                    ]
                    mask = runner.evaluate_bindings(bindings)
                    pairs = list(compress(pairs, mask))
                for i, inner_row in pairs:
                    pending.append(outer_rows[i] + inner_row)
            yield from out.drain()
        yield from out.flush()


class BatchMergeJoin(BatchOperator):
    """Sort-merge join; sort and CPU charges mirror the row operator."""

    def __init__(
        self,
        join: Join,
        outer: BatchOperator,
        inner: BatchOperator,
        ctx: RuntimeContext,
        batch_rows: int,
    ) -> None:
        columns = join.join_columns()
        if columns is None:
            raise PlanError("merge join requires an equijoin primary")
        outer_column, inner_column = columns
        self.join = join
        self.outer = outer
        self.inner = inner
        self.ctx = ctx
        self.batch_rows = batch_rows
        self.scope = outer.scope.concat(inner.scope)
        self.outer_slot = outer.scope.slot(
            outer_column.table, outer_column.attribute
        )
        self.inner_slot = inner.scope.slot(
            inner_column.table, inner_column.attribute
        )

    def _sorted_rows(self, child: BatchOperator, slot: int) -> list[tuple]:
        rows: list[tuple] = []
        for batch in child.batches():
            rows.extend(batch.iter_rows())
        rows.sort(key=lambda row: row[slot])
        width = _scope_width(child.scope, self.ctx.catalog)
        params = self.ctx.params
        pages = int(params.pages_for(len(rows), width))
        self.ctx.meter.charge_io(
            IOKind.SEQUENTIAL, 2 * pages * params.sort_passes(pages)
        )
        self.ctx.meter.charge_cpu(params.cpu_per_tuple * len(rows))
        return rows

    def batches(self) -> Iterator[ColumnBatch]:
        outer_rows = self._sorted_rows(self.outer, self.outer_slot)
        inner_rows = self._sorted_rows(self.inner, self.inner_slot)
        inner_slot = self.inner_slot
        inner_len = len(inner_rows)
        inner_pos = 0
        out = _BatchBuilder(self.scope, self.batch_rows)
        pending = out.rows
        for outer_row in outer_rows:
            key = outer_row[self.outer_slot]
            while (
                inner_pos < inner_len
                and inner_rows[inner_pos][inner_slot] < key
            ):
                inner_pos += 1
            probe = inner_pos
            while (
                probe < inner_len and inner_rows[probe][inner_slot] == key
            ):
                pending.append(outer_row + inner_rows[probe])
                probe += 1
            yield from out.drain()
        yield from out.flush()


class BatchHashJoin(BatchOperator):
    """Hash join; build/probe CPU and Grace-spill charges mirror the row
    operator (bulk-charged per batch)."""

    def __init__(
        self,
        join: Join,
        outer: BatchOperator,
        inner: BatchOperator,
        ctx: RuntimeContext,
        batch_rows: int,
    ) -> None:
        columns = join.join_columns()
        if columns is None:
            raise PlanError("hash join requires an equijoin primary")
        outer_column, inner_column = columns
        self.join = join
        self.outer = outer
        self.inner = inner
        self.ctx = ctx
        self.batch_rows = batch_rows
        self.scope = outer.scope.concat(inner.scope)
        self.outer_slot = outer.scope.slot(
            outer_column.table, outer_column.attribute
        )
        self.inner_slot = inner.scope.slot(
            inner_column.table, inner_column.attribute
        )

    def batches(self) -> Iterator[ColumnBatch]:
        ctx = self.ctx
        meter = ctx.meter
        cpu = ctx.params.cpu_per_tuple
        inner_slot = self.inner_slot
        table: dict[object, list[tuple]] = {}
        inner_count = 0
        for batch in self.inner.batches():
            meter.charge_cpu(cpu * batch.length)
            inner_count += batch.length
            for inner_row in batch.iter_rows():
                table.setdefault(inner_row[inner_slot], []).append(inner_row)
        inner_width = _scope_width(self.inner.scope, ctx.catalog)
        inner_pages = ctx.params.pages_for(inner_count, inner_width)
        out = _BatchBuilder(self.scope, self.batch_rows)
        pending = out.rows
        outer_slot = self.outer_slot
        if inner_pages > ctx.params.hash_memory_pages:
            # Grace hash join: partition both sides to disk and back.
            outer_batches = list(self.outer.batches())
            outer_count = sum(batch.length for batch in outer_batches)
            outer_width = _scope_width(self.outer.scope, ctx.catalog)
            outer_pages = ctx.params.pages_for(outer_count, outer_width)
            meter.charge_io(
                IOKind.SEQUENTIAL, 2 * int(inner_pages + outer_pages)
            )
        else:
            outer_batches = self.outer.batches()
        for obatch in outer_batches:
            meter.charge_cpu(cpu * obatch.length)
            for outer_row in obatch.rows:
                matched = table.get(outer_row[outer_slot])
                if matched:
                    for inner_row in matched:
                        pending.append(outer_row + inner_row)
            yield from out.drain()
        yield from out.flush()


# -- instrumentation / telemetry wrappers ------------------------------------


class InstrumentedBatchOperator(BatchOperator):
    """Batch analogue of ``InstrumentedOperator``: meter/cache deltas are
    bracketed around each batch pull, inclusive of the node's subtree."""

    def __init__(
        self, node: PlanNode, child: BatchOperator, ctx: RuntimeContext
    ) -> None:
        assert ctx.node_stats is not None
        self.child = child
        self.ctx = ctx
        self.scope = child.scope
        self.stats = OperatorStats()
        ctx.node_stats[id(node)] = self.stats
        self.batch_stats: BatchNodeStats | None = (
            _batch_node_stats(ctx, node)
            if ctx.batch_stats is not None
            else None
        )

    def batches(self) -> Iterator[ColumnBatch]:
        meter = self.ctx.meter
        cache = self.ctx.cache
        stats = self.stats
        batch_stats = self.batch_stats
        iterator = self.child.batches()
        while True:
            io_before = meter.io_charged
            cpu_before = meter.cpu_charged
            function_before = meter.function_charged
            hits_before = cache.stats.hits if cache is not None else 0
            started = time.perf_counter()
            try:
                batch = next(iterator)
            except StopIteration:
                stats.wall_seconds += time.perf_counter() - started
                stats.io_charged += meter.io_charged - io_before
                stats.cpu_charged += meter.cpu_charged - cpu_before
                stats.function_charged += (
                    meter.function_charged - function_before
                )
                if cache is not None:
                    stats.cache_hits += cache.stats.hits - hits_before
                return
            stats.wall_seconds += time.perf_counter() - started
            stats.io_charged += meter.io_charged - io_before
            stats.cpu_charged += meter.cpu_charged - cpu_before
            stats.function_charged += meter.function_charged - function_before
            if cache is not None:
                stats.cache_hits += cache.stats.hits - hits_before
            stats.rows_out += batch.length
            if batch_stats is not None:
                batch_stats.batches += 1
                batch_stats.rows_out.observe(float(batch.length))
            yield batch


class MonitoredBatchOperator(BatchOperator):
    """Batch analogue of ``MonitoredOperator``: activation at
    construction, one bulk row report per batch, completion on
    exhaustion. Uses the monitor's ``on_rows`` bulk hook when present."""

    def __init__(
        self, node: PlanNode, child: BatchOperator, ctx: RuntimeContext
    ) -> None:
        assert ctx.monitor is not None
        self.child = child
        self.monitor = ctx.monitor
        self.key = id(node)
        self.scope = child.scope
        self.monitor.activate(self.key)

    def batches(self) -> Iterator[ColumnBatch]:
        monitor = self.monitor
        key = self.key
        on_rows = getattr(monitor, "on_rows", None)
        iterator = self.child.batches()
        while True:
            started = time.perf_counter()
            try:
                batch = next(iterator)
            except StopIteration:
                monitor.on_done(key, time.perf_counter() - started)
                return
            elapsed = time.perf_counter() - started
            if on_rows is not None:
                on_rows(key, batch.length, elapsed)
            else:
                per_row = elapsed / batch.length if batch.length else 0.0
                for _ in range(batch.length):
                    monitor.on_row(key, per_row)
            yield batch


class FlightBatchOperator(BatchOperator):
    """Transparent wrapper feeding the execution flight recorder.

    One bounded event per emitted batch (the ring buffer caps total
    retention), plus monitor progress snapshots at power-of-two batch
    counts so a postmortem can show how far along the plan believed it
    was. Only constructed when the context carries a ``flight``
    recorder; the default path never sees this class.
    """

    def __init__(
        self, node: PlanNode, child: BatchOperator, ctx: RuntimeContext
    ) -> None:
        assert ctx.flight is not None
        self.child = child
        self.ctx = ctx
        self.flight = ctx.flight
        self.label = _node_label(node)
        self.scope = child.scope

    def batches(self) -> Iterator[ColumnBatch]:
        ctx = self.ctx
        flight = self.flight
        meter = ctx.meter
        monitor = ctx.monitor
        label = self.label
        count = 0
        for batch in self.child.batches():
            count += 1
            flight.record(
                "batch",
                op=label,
                batch=count,
                rows=batch.length,
                charged=meter.charged,
            )
            if monitor is not None and (count & (count - 1)) == 0:
                flight.record(
                    "progress",
                    op=label,
                    batch=count,
                    fraction=round(monitor.progress(), 6),
                )
            yield batch
        flight.record(
            "op.done", op=label, batches=count, charged=meter.charged
        )


# -- plan compilation --------------------------------------------------------


def build_batch_operator(
    node: PlanNode,
    ctx: RuntimeContext,
    batch_rows: int = DEFAULT_BATCH_ROWS,
) -> BatchOperator:
    """Compile a plan tree into a batch-operator tree (instrumented /
    monitored exactly like :func:`repro.exec.operators.build_operator`,
    flight-recorded when the context carries a recorder)."""
    operator = _build_batch_operator(node, ctx, batch_rows)
    if ctx.node_stats is not None:
        operator = InstrumentedBatchOperator(node, operator, ctx)
    if ctx.flight is not None:
        operator = FlightBatchOperator(node, operator, ctx)
    if ctx.monitor is not None:
        operator = MonitoredBatchOperator(node, operator, ctx)
    return operator


def _build_batch_operator(
    node: PlanNode, ctx: RuntimeContext, batch_rows: int
) -> BatchOperator:
    if isinstance(node, Scan):
        if node.index_attr is not None:
            low, high = node.index_range  # type: ignore[misc]
            source: BatchOperator = BatchIndexScan(
                node.table, node.index_attr, low, high, ctx, batch_rows
            )
        else:
            source = BatchSeqScan(node.table, ctx, batch_rows)
        if node.filters:
            return BatchFilter(source, node.filters, ctx, node)
        return source

    if isinstance(node, Join):
        outer = build_batch_operator(node.outer, ctx, batch_rows)
        if node.method is JoinMethod.INDEX_NESTED_LOOP:
            joined: BatchOperator = BatchIndexNestedLoopJoin(
                node, outer, ctx, batch_rows
            )
        else:
            inner = build_batch_operator(node.inner, ctx, batch_rows)
            if node.method is JoinMethod.NESTED_LOOP:
                joined = BatchNestedLoopJoin(
                    node, outer, inner, ctx, batch_rows
                )
            elif node.method is JoinMethod.MERGE:
                joined = BatchMergeJoin(node, outer, inner, ctx, batch_rows)
            elif node.method is JoinMethod.HASH:
                joined = BatchHashJoin(node, outer, inner, ctx, batch_rows)
            else:  # pragma: no cover - exhaustive over enum
                raise PlanError(f"unknown join method {node.method}")
        if node.filters:
            return BatchFilter(joined, node.filters, ctx, node)
        return joined

    raise PlanError(f"cannot execute node type: {type(node).__name__}")


class VectorPlanRunner:
    """Row-iterable adapter over a batch-operator tree — what the
    executor facade runs when ``executor="vector"``."""

    def __init__(
        self,
        node: PlanNode,
        ctx: RuntimeContext,
        batch_rows: int = DEFAULT_BATCH_ROWS,
    ) -> None:
        if ctx.feed is not None:
            # Defensive: batch operators snapshot compiled predicate
            # runners at build time and park remainder rows between
            # operators, so a mid-query re-plan has no safe splice
            # point here. The executor facade routes adaptive runs to
            # the row engine (batch-rows cadence); reaching this branch
            # means a caller wired a feed straight into the vector
            # path.
            raise ExecutionError(
                "adaptive re-optimization requires the row engine; "
                "the vector path cannot splice a re-planned suffix"
            )
        self.operator = build_batch_operator(node, ctx, batch_rows)
        self.scope = self.operator.scope

    def __iter__(self) -> Iterator[tuple]:
        for batch in self.operator.batches():
            yield from batch.iter_rows()

    def run_into(self, rows: list[tuple]) -> None:
        """Collect all output rows with batch-level extends."""
        for batch in self.operator.batches():
            rows.extend(batch.iter_rows())
