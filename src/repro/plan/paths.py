"""Root-to-leaf paths through arbitrary (bushy) plan trees.

The full Predicate Migration algorithm "repeatedly applies the
Series-Parallel Algorithm ... to each root-to-leaf path in the plan tree
until no progress is made". For left-deep trees the outer spine
(:mod:`repro.plan.streams`) is the only path that matters; for bushy trees
every leaf induces a path, and a predicate can migrate along any path that
passes through its current node. This module enumerates those paths and
exposes the same slot abstraction the spine uses:

* slot ``0`` — below every join of the path (realised on the predicate's
  own relation's scan);
* slot ``i + 1`` — on the path's ``i``-th join (bottom-up).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PlanError
from repro.expr.predicates import Predicate
from repro.plan.nodes import Join, PlanNode, Scan


@dataclass
class PathStep:
    """One join on a root-to-leaf path.

    ``from_outer`` says which child the path ascends from — the side whose
    stream quantities govern migration along this path.
    """

    join: Join
    from_outer: bool
    position: int

    @property
    def slot(self) -> int:
        return self.position + 1


@dataclass
class RootPath:
    """One root-to-leaf path: a leaf scan plus the joins above it."""

    leaf: Scan
    steps: list[PathStep]

    @property
    def slots(self) -> int:
        return len(self.steps) + 1

    def nodes(self) -> list[PlanNode]:
        return [self.leaf] + [step.join for step in self.steps]

    def tables_at_slot(self, slot: int) -> frozenset[str]:
        if slot == 0:
            return self.leaf.tables()
        return self.steps[slot - 1].join.tables()

    def entry_slot(self, predicate: Predicate) -> int:
        """Lowest legal slot on this path.

        Selections may always sink to their own relation's scan, encoded as
        the slot below the first join whose scope covers them; join
        predicates must stay at or above the join that unites their tables.
        """
        if predicate.is_selection:
            if predicate.tables <= self.leaf.tables():
                return 0
            for step in self.steps:
                if predicate.tables <= step.join.tables():
                    return step.position
            raise PlanError(f"{predicate} is not in scope on this path")
        for step in self.steps:
            if predicate.tables <= step.join.tables():
                return step.slot
        raise PlanError(f"{predicate} is not in scope on this path")

    def node_at_slot(self, root: PlanNode, predicate: Predicate, slot: int):
        """Realise a slot: the predicate's scan at its entry (selections),
        otherwise the path join at ``slot - 1``."""
        entry = self.entry_slot(predicate)
        if slot < entry:
            raise PlanError(f"slot {slot} below entry {entry} for {predicate}")
        if slot == entry and predicate.is_selection:
            return scan_of(root, predicate)
        return self.steps[slot - 1].join


def scan_of(root: PlanNode, predicate: Predicate) -> Scan:
    """The base scan of a single-table predicate's relation, tree-wide."""
    for node in root.walk():
        if isinstance(node, Scan) and predicate.tables <= node.tables():
            return node
    raise PlanError(f"no scan for {predicate} in this plan")


def root_paths(root: PlanNode) -> list[RootPath]:
    """All root-to-leaf paths of a plan tree (one per base scan)."""
    paths: list[RootPath] = []

    def descend(node: PlanNode, above: list[PathStep]) -> None:
        if isinstance(node, Scan):
            # ``above`` is accumulated by prepending on the way down, so it
            # is already bottom-up (leaf-adjacent join first).
            steps = [
                PathStep(step.join, step.from_outer, position)
                for position, step in enumerate(above)
            ]
            paths.append(RootPath(leaf=node, steps=steps))
            return
        assert isinstance(node, Join)
        descend(
            node.outer, [PathStep(node, True, -1)] + above
        )
        descend(
            node.inner, [PathStep(node, False, -1)] + above
        )

    descend(root, [])
    return paths


def current_slot_on_path(
    path: RootPath, root: PlanNode, predicate: Predicate
) -> int | None:
    """The slot a predicate currently occupies on ``path``, or ``None`` if
    its owning node is not on the path (scans of selections count as their
    path entry)."""
    owner = None
    for node in root.walk():
        if predicate in node.filters:
            owner = node
            break
    if owner is None:
        return None
    if isinstance(owner, Scan) and predicate.is_selection:
        try:
            return path.entry_slot(predicate)
        except PlanError:
            return None
    for step in path.steps:
        if owner is step.join:
            return step.slot
    return None
