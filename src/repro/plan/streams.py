"""Spine extraction: the outer root-to-leaf path of a left-deep plan.

Predicate Migration reasons about "streams" — root-to-leaf paths through the
plan tree. In a left-deep tree, the outer spine (leftmost leaf up to the
root) contains every join, and every legal predicate position is either a
slot on the spine's leaf scan, on an inner scan, or on one of the spine's
join nodes. :class:`Spine` exposes that slot structure:

* slot ``0`` — below every join (on the owning table's scan);
* slot ``i + 1`` — on join ``i``'s output (``i`` counted bottom-up).

A predicate's *entry slot* is the lowest slot where all its tables are in
scope. Placement algorithms compute a target slot per predicate and
:meth:`Spine.apply_placement` rewrites the plan's filter lists accordingly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PlanError
from repro.expr.predicates import Predicate
from repro.plan.nodes import Join, PlanNode, Scan


@dataclass
class SpineJoin:
    """One join on the spine, bottom-up position ``position`` (0-based)."""

    join: Join
    position: int

    @property
    def slot(self) -> int:
        """The placement slot directly above this join."""
        return self.position + 1


@dataclass
class Spine:
    """The outer spine of a left-deep plan."""

    leaf: Scan
    joins: list[SpineJoin]

    @property
    def top(self) -> PlanNode:
        return self.joins[-1].join if self.joins else self.leaf

    @property
    def slots(self) -> int:
        """Number of placement slots (leaf slot plus one per join)."""
        return len(self.joins) + 1

    def tables_at_slot(self, slot: int) -> frozenset[str]:
        """Tables in scope at a slot."""
        if slot == 0:
            return self.leaf.tables()
        return self.joins[slot - 1].join.tables()

    def scan_of(self, predicate: Predicate) -> Scan:
        """The base scan of a single-table predicate's relation."""
        if predicate.tables <= self.leaf.tables():
            return self.leaf
        for spine_join in self.joins:
            inner = spine_join.join.inner
            if isinstance(inner, Scan) and predicate.tables <= inner.tables():
                return inner
        raise PlanError(
            f"predicate {predicate} references tables outside this plan"
        )

    def entry_slot(self, predicate: Predicate) -> int:
        """Lowest legal slot for ``predicate``.

        A *selection*'s entry slot is its relation's scan: slot 0 for the
        spine leaf, slot ``k`` (realised on the inner scan, physically below
        join ``k``) for the inner table of join ``k``. A *join predicate*'s
        entry slot is just above the join that brings its tables together
        (slot ``k + 1``) — it can never sink below its primary.
        """
        if predicate.is_selection:
            if predicate.tables <= self.leaf.tables():
                return 0
            for spine_join in self.joins:
                inner = spine_join.join.inner
                if (
                    isinstance(inner, Scan)
                    and predicate.tables <= inner.tables()
                ):
                    return spine_join.position
            raise PlanError(
                f"predicate {predicate} references tables outside this plan"
            )
        for spine_join in self.joins:
            if predicate.tables <= spine_join.join.tables():
                return spine_join.slot
        raise PlanError(
            f"predicate {predicate} references tables outside this plan"
        )

    def node_at_slot(self, predicate: Predicate, slot: int) -> PlanNode:
        """The plan node whose filter list realises placement at ``slot``.

        At its entry slot a selection sits on its relation's scan (below
        its entry join); any higher slot ``s`` means join ``s - 1``'s
        filter list.
        """
        entry = self.entry_slot(predicate)
        if slot < entry:
            raise PlanError(
                f"slot {slot} below entry slot {entry} for {predicate}"
            )
        if slot == entry and predicate.is_selection:
            return self.scan_of(predicate)
        return self.joins[slot - 1].join

    def apply_placement(
        self, placements: dict[Predicate, int], order_key=None
    ) -> list[PlanNode]:
        """Rewrite filter lists so each predicate sits at its target slot.

        Predicates sharing a node are ordered by ``order_key`` (default:
        ascending rank — optimal for selections, per Section 4.1). Each
        affected node's final filter list is the predicates it keeps (in
        their current order) followed by its share of ``placements`` in
        the global ``order_key`` order — exactly the remove-then-append
        result, computed without rewriting untouched nodes.

        Returns the nodes whose filter lists actually changed, so callers
        (the migration worklist, cost-memo invalidation) can confine
        re-work to dirty streams. An empty list means the placement was
        already realised bit-for-bit.
        """
        if order_key is None:
            order_key = lambda predicate: predicate.rank  # noqa: E731
        placed_ids = {id(predicate) for predicate in placements}
        owners: dict[int, PlanNode] = {}
        for node in self.top.walk():
            for predicate in node.filters:
                if id(predicate) in placed_ids:
                    owners.setdefault(id(predicate), node)
        for predicate in placements:
            if id(predicate) not in owners:
                raise PlanError(f"predicate {predicate} not in plan")
        affected: dict[int, PlanNode] = {
            id(node): node for node in owners.values()
        }
        arrivals: dict[int, list[Predicate]] = {}
        for predicate, slot in sorted(
            placements.items(), key=lambda item: order_key(item[0])
        ):
            node = self.node_at_slot(predicate, slot)
            affected.setdefault(id(node), node)
            arrivals.setdefault(id(node), []).append(predicate)
        touched: list[PlanNode] = []
        for node_id, node in affected.items():
            final = [
                predicate
                for predicate in node.filters
                if id(predicate) not in placed_ids
            ]
            final.extend(arrivals.get(node_id, ()))
            if len(final) != len(node.filters) or any(
                new is not old for new, old in zip(final, node.filters)
            ):
                node.filters = final
                touched.append(node)
        return touched


def spine_of(root: PlanNode) -> Spine:
    """Extract the spine of a left-deep plan (inner inputs must be scans)."""
    joins: list[Join] = []
    node = root
    while isinstance(node, Join):
        if not isinstance(node.inner, Scan):
            raise PlanError("plan is not left-deep: inner input is a join")
        joins.append(node)
        node = node.outer
    if not isinstance(node, Scan):
        raise PlanError(f"unexpected leaf node: {node}")
    joins.reverse()
    return Spine(
        leaf=node,
        joins=[SpineJoin(join, position) for position, join in enumerate(joins)],
    )


def movable_predicates(spine: Spine) -> list[Predicate]:
    """Every predicate a placement algorithm may move on this spine:
    all filters everywhere in the tree (join primaries stay put)."""
    movable: list[Predicate] = []
    for node in spine.top.walk():
        movable.extend(node.filters)
    return movable
