"""Plan tree node types.

A plan is a binary tree of :class:`Scan` and :class:`Join` nodes. Trees are
left-deep — the inner (right) input of every join is a base-relation scan —
matching Montage and the System R enumerator. Each node owns an ordered
``filters`` list: the predicates applied to that node's output, in execution
order. Placement algorithms mutate these lists (on clones; enumerated
subplans are shared).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator

from repro.catalog.catalog import Catalog
from repro.errors import PlanError
from repro.expr.expressions import Scope
from repro.expr.predicates import Predicate


class JoinMethod(enum.Enum):
    """Physical join methods, with the paper's linear cost shapes."""

    NESTED_LOOP = "nested-loop"
    INDEX_NESTED_LOOP = "index-nested-loop"
    MERGE = "merge"
    HASH = "hash"


@dataclass
class PlanNode:
    """Base class. ``filters`` apply to this node's output, in order."""

    filters: list[Predicate]

    def tables(self) -> frozenset[str]:
        raise NotImplementedError

    def children(self) -> list["PlanNode"]:
        raise NotImplementedError

    def scope(self, catalog: Catalog) -> Scope:
        raise NotImplementedError

    def clone(self) -> "PlanNode":
        """Deep-copy the tree structure; predicates are shared."""
        raise NotImplementedError

    def shallow_copy(self) -> "PlanNode":
        """Copy this node with a fresh top-level filter list but *shared*
        child subtrees. Safe to hand to code that only mutates the copy's
        own filters (placement policies); anything that rewrites deeper
        structure must :meth:`clone` instead."""
        raise NotImplementedError

    # -- traversal helpers -------------------------------------------------

    def walk(self) -> Iterator["PlanNode"]:
        """Pre-order traversal."""
        yield self
        for child in self.children():
            yield from child.walk()

    def all_predicates(self) -> list[Predicate]:
        """Every placed predicate in the tree (filters plus join primaries)."""
        placed: list[Predicate] = []
        for node in self.walk():
            if isinstance(node, Join):
                placed.append(node.primary)
            placed.extend(node.filters)
        return placed

    def find_filter(self, predicate: Predicate) -> "PlanNode | None":
        """The node whose filter list currently holds ``predicate``."""
        for node in self.walk():
            if predicate in node.filters:
                return node
        return None

    def remove_filter(self, predicate: Predicate) -> None:
        node = self.find_filter(predicate)
        if node is None:
            raise PlanError(f"predicate not placed in this plan: {predicate}")
        node.filters.remove(predicate)

    def base_scans(self) -> list["Scan"]:
        return [node for node in self.walk() if isinstance(node, Scan)]


@dataclass
class Scan(PlanNode):
    """Sequential (or index) scan of a base relation plus its filters.

    ``index_attr`` selects an index-scan access path for a leading zero-cost
    range/equality filter; ``None`` means a full sequential scan.
    """

    table: str = ""
    index_attr: str | None = None
    index_range: tuple[object, object] | None = None

    def __post_init__(self) -> None:
        if not self.table:
            raise PlanError("Scan requires a table name")
        if (self.index_attr is None) != (self.index_range is None):
            raise PlanError("index_attr and index_range must be set together")

    def tables(self) -> frozenset[str]:
        return frozenset({self.table})

    def children(self) -> list[PlanNode]:
        return []

    def scope(self, catalog: Catalog) -> Scope:
        schema = catalog.table(self.table).schema
        return Scope([(self.table, name) for name in schema.attribute_names])

    def clone(self) -> "Scan":
        return Scan(
            filters=list(self.filters),
            table=self.table,
            index_attr=self.index_attr,
            index_range=self.index_range,
        )

    def shallow_copy(self) -> "Scan":
        return self.clone()  # a scan has no subtree to share

    def __str__(self) -> str:
        access = (
            f"IndexScan({self.table}.{self.index_attr})"
            if self.index_attr
            else f"SeqScan({self.table})"
        )
        return access


@dataclass
class Join(PlanNode):
    """A join node: outer (left) input, inner (right) input, method.

    ``primary`` is the primary join predicate — intrinsic to the join method
    (the index/sort/hash match, or the chosen predicate for a plain nested
    loop). ``filters`` hold everything applied to the join's output:
    pulled-up selections and secondary join predicates, in execution order.
    """

    outer: PlanNode = None  # type: ignore[assignment]
    inner: PlanNode = None  # type: ignore[assignment]
    method: JoinMethod = JoinMethod.NESTED_LOOP
    primary: Predicate = None  # type: ignore[assignment]
    _tables: frozenset[str] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.outer is None or self.inner is None:
            raise PlanError("Join requires outer and inner inputs")
        if self.primary is None:
            raise PlanError("Join requires a primary join predicate")
        self._tables = self.outer.tables() | self.inner.tables()
        if self.method is not JoinMethod.NESTED_LOOP:
            if not self.primary.is_equijoin:
                raise PlanError(
                    f"{self.method.value} join requires an equijoin primary "
                    f"predicate, got {self.primary}"
                )

    def tables(self) -> frozenset[str]:
        return self._tables

    def children(self) -> list[PlanNode]:
        return [self.outer, self.inner]

    def scope(self, catalog: Catalog) -> Scope:
        return self.outer.scope(catalog).concat(self.inner.scope(catalog))

    def clone(self) -> "Join":
        return Join(
            filters=list(self.filters),
            outer=self.outer.clone(),
            inner=self.inner.clone(),
            method=self.method,
            primary=self.primary,
        )

    def shallow_copy(self) -> "Join":
        return Join(
            filters=list(self.filters),
            outer=self.outer,
            inner=self.inner,
            method=self.method,
            primary=self.primary,
        )

    def join_columns(self) -> tuple[object, object] | None:
        """(outer column, inner column) of an equijoin primary, oriented."""
        if self.primary.equijoin is None:
            return None
        left, right = self.primary.equijoin
        if left.table in self.outer.tables():
            return (left, right)
        return (right, left)

    def __str__(self) -> str:
        return f"{self.method.value}-join[{self.primary}]"


@dataclass
class Plan:
    """A complete plan: the root node plus optimizer annotations."""

    root: PlanNode
    estimated_cost: float | None = None
    estimated_rows: float | None = None

    def clone(self) -> "Plan":
        return Plan(
            root=self.root.clone(),
            estimated_cost=self.estimated_cost,
            estimated_rows=self.estimated_rows,
        )

    def tables(self) -> frozenset[str]:
        return self.root.tables()


def validate_placement(plan: PlanNode, catalog: Catalog) -> None:
    """Check that every placed predicate only references in-scope tables.

    Raises :class:`PlanError` on a violation. Used by tests and by the
    optimizer's debug mode to catch placement bugs — the paper stresses how
    subtle those are.
    """
    for node in plan.walk():
        in_scope = node.tables()
        placed = list(node.filters)
        if isinstance(node, Join):
            placed.append(node.primary)
        for predicate in placed:
            if not predicate.tables <= in_scope:
                raise PlanError(
                    f"predicate {predicate} references tables "
                    f"{set(predicate.tables) - set(in_scope)} that are not "
                    f"in scope at node {node}"
                )
        if isinstance(node, Join):
            # Secondary join predicates must sit at-or-above their primary:
            # a join-predicate filter here must span both inputs or be a
            # selection pulled up from below.
            for predicate in node.filters:
                if predicate.is_join and not (
                    predicate.tables & node.outer.tables()
                    and predicate.tables & node.inner.tables()
                    or predicate.tables <= node.outer.tables()
                    or predicate.tables <= node.inner.tables()
                ):
                    raise PlanError(
                        f"join predicate {predicate} placed below its "
                        f"primary join"
                    )
