"""Plan pretty-printing: ASCII trees like the paper's Figures 1, 2, 6, 7."""

from __future__ import annotations

import math

from repro.plan.nodes import Join, Plan, PlanNode, Scan


def _node_label(node: PlanNode) -> str:
    if isinstance(node, Join):
        return f"{node.method.value}-join  [{node.primary}]"
    assert isinstance(node, Scan)
    return str(node)


def _render(node: PlanNode, prefix: str, is_last: bool, lines: list[str]) -> None:
    connector = "└─ " if is_last else "├─ "
    child_prefix = prefix + ("   " if is_last else "│  ")
    label = _node_label(node)
    lines.append(prefix + connector + label)
    for predicate in reversed(node.filters):
        lines.append(child_prefix + f"· filter: {predicate}")
    children = node.children()
    for position, child in enumerate(children):
        _render(child, child_prefix, position == len(children) - 1, lines)


def plan_tree(plan: Plan | PlanNode) -> str:
    """Render a plan as an ASCII tree, filters listed top-down per node."""
    root = plan.root if isinstance(plan, Plan) else plan
    lines: list[str] = [_node_label(root)]
    for predicate in reversed(root.filters):
        lines.append(f"· filter: {predicate}")
    children = root.children()
    for position, child in enumerate(children):
        _render(child, "", position == len(children) - 1, lines)
    return "\n".join(lines)


def _annotated_label(node: PlanNode, cost_model) -> str:
    estimate = cost_model.estimate_plan(node)
    return (
        _node_label(node)
        + f"  (est rows={estimate.rows:.0f} cost={estimate.cost:.1f})"
    )


def _render_annotated(
    node: PlanNode,
    prefix: str,
    is_last: bool,
    lines: list[str],
    cost_model,
) -> None:
    connector = "└─ " if is_last else "├─ "
    child_prefix = prefix + ("   " if is_last else "│  ")
    lines.append(prefix + connector + _annotated_label(node, cost_model))
    for predicate in reversed(node.filters):
        lines.append(child_prefix + f"· filter: {predicate}")
    children = node.children()
    for position, child in enumerate(children):
        _render_annotated(
            child, child_prefix, position == len(children) - 1, lines,
            cost_model,
        )


def plan_tree_annotated(plan: Plan | PlanNode, cost_model) -> str:
    """The plan tree with per-node estimated rows and cost — the static
    (un-executed) sibling of :func:`explain_analyze`, used by the
    ``plan-diff`` view."""
    root = plan.root if isinstance(plan, Plan) else plan
    lines: list[str] = [_annotated_label(root, cost_model)]
    for predicate in reversed(root.filters):
        lines.append(f"· filter: {predicate}")
    children = root.children()
    for position, child in enumerate(children):
        _render_annotated(
            child, "", position == len(children) - 1, lines, cost_model
        )
    return "\n".join(lines)


def side_by_side(
    left: str,
    right: str,
    left_title: str = "",
    right_title: str = "",
    gutter: str = "   ",
) -> str:
    """Two text blocks as aligned columns, ``≠`` marking differing lines.

    Alignment is positional (line i next to line i), which reads well for
    plan trees that share a join order and stays honest — no fuzzy
    matching — when they do not.
    """
    left_lines = left.splitlines()
    right_lines = right.splitlines()
    width = max(
        [len(line) for line in left_lines + [left_title]] or [0]
    )
    lines: list[str] = []
    if left_title or right_title:
        lines.append(f"{left_title:<{width}}{gutter} {right_title}")
        lines.append(f"{'-' * width}{gutter} {'-' * max(len(right_title), 1)}")
    for position in range(max(len(left_lines), len(right_lines))):
        lhs = left_lines[position] if position < len(left_lines) else ""
        rhs = right_lines[position] if position < len(right_lines) else ""
        marker = "≠" if lhs != rhs else " "
        lines.append(f"{lhs:<{width}}{gutter}{marker}{rhs}")
    return "\n".join(lines)


def _relative_error(estimated: float, actual: float) -> str:
    """Signed relative error of an estimate vs. its actual, as a percent.

    An actual of zero (e.g. a run aborted by the cost budget before the
    node produced anything) makes relative error meaningless — report
    ``n/a`` instead of a division-by-epsilon blowup.
    """
    if actual == 0:
        return "+0.0%" if estimated == 0 else "n/a"
    return f"{(estimated - actual) / abs(actual) * 100.0:+.1f}%"


def _analyze_annotation(node: PlanNode, node_stats: dict, cost_model) -> str:
    """The per-node ``(est … | act … | err …)`` suffix."""
    parts: list[str] = []
    estimate = None
    if cost_model is not None:
        estimate = cost_model.estimate_plan(node)
        parts.append(
            f"est rows={estimate.rows:.0f} cost={estimate.cost:.1f}"
        )
    stats = node_stats.get(id(node))
    if stats is None:
        # e.g. the scan inside an index nested loop is probed, never
        # materialised as its own operator.
        parts.append("act (not separately executed)")
    else:
        act = f"act rows={stats.rows_out} charged={stats.charged:.1f}"
        if stats.cache_hits:
            act += f" cache_hits={stats.cache_hits}"
        parts.append(act)
        if estimate is not None:
            parts.append(
                f"err rows {_relative_error(estimate.rows, stats.rows_out)}"
                f" cost {_relative_error(estimate.cost, stats.charged)}"
            )
    return "  (" + " | ".join(parts) + ")"


def _hist_span(hist) -> str:
    """``min/median/max`` of a per-batch histogram, as whole rows."""
    if hist.count <= 0:
        return "n/a"
    return (
        f"{hist.minimum:.0f}/{hist.quantile(0.5):.0f}/{hist.maximum:.0f}"
    )


def _batch_line(stats) -> str:
    """The per-node ``· batches=…`` line from vector batch actuals."""
    parts = [f"batches={stats.batches}"]
    if stats.rows_in.count > 0:
        parts.append(f"rows/batch in={_hist_span(stats.rows_in)}")
    if stats.rows_out.count > 0:
        parts.append(f"rows/batch out={_hist_span(stats.rows_out)}")
    return "· " + "  ".join(parts)


def _predicate_batch_suffix(pstats, chain_rows: int) -> str:
    """Per-predicate vector annotations: selection-vector density before
    and after the kernel (fractions of the rows that entered the filter
    chain), observed selectivity, kernel self time, cache hit rate."""
    if pstats.rows_in <= 0 and pstats.batches <= 0:
        return ""
    parts: list[str] = []
    if chain_rows > 0:
        before = pstats.rows_in / chain_rows
        after = pstats.rows_out / chain_rows
        parts.append(f"density {before:.3f}→{after:.3f}")
    selectivity = pstats.selectivity
    if not math.isnan(selectivity):
        parts.append(f"sel={selectivity:.3f}")
    parts.append(f"kernel={pstats.kernel_seconds * 1000.0:.2f}ms")
    if pstats.cache_hits or pstats.cache_misses:
        parts.append(f"cache_hit={pstats.cache_hit_rate * 100.0:.1f}%")
    return "  [" + " | ".join(parts) + "]"


def _analyze_detail_lines(
    node: PlanNode, child_prefix: str, lines: list[str], batch_map: dict
) -> None:
    """The ``·`` lines under one node: batch actuals, then filters
    (display order is reversed chain order; the stats list is chain
    order, so entry ``i`` from the end annotates rendered filter ``i``).
    """
    batch = batch_map.get(id(node))
    if batch is not None:
        lines.append(child_prefix + _batch_line(batch))
    pred_count = len(node.filters)
    for offset, predicate in enumerate(reversed(node.filters)):
        line = child_prefix + f"· filter: {predicate}"
        if batch is not None:
            chain_index = pred_count - 1 - offset
            if chain_index < len(batch.predicates):
                line += _predicate_batch_suffix(
                    batch.predicates[chain_index], batch.chain_rows
                )
        lines.append(line)


def _render_analyze(
    node: PlanNode,
    prefix: str,
    is_last: bool,
    lines: list[str],
    node_stats: dict,
    cost_model,
    batch_map: dict,
) -> None:
    connector = "└─ " if is_last else "├─ "
    child_prefix = prefix + ("   " if is_last else "│  ")
    lines.append(
        prefix
        + connector
        + _node_label(node)
        + _analyze_annotation(node, node_stats, cost_model)
    )
    _analyze_detail_lines(node, child_prefix, lines, batch_map)
    children = node.children()
    for position, child in enumerate(children):
        _render_analyze(
            child,
            child_prefix,
            position == len(children) - 1,
            lines,
            node_stats,
            cost_model,
            batch_map,
        )


def explain_analyze(
    plan: Plan | PlanNode,
    node_stats: dict | None,
    cost_model=None,
    batch_stats: dict | None = None,
) -> str:
    """EXPLAIN ANALYZE: the plan tree annotated per node with estimated
    vs. actual rows and cost, plus the estimate's relative error.

    ``node_stats`` is :attr:`QueryResult.node_stats` from an instrumented
    execution (``Executor.execute(..., instrument=True)``); ``cost_model``
    supplies the per-node estimates. Charged figures are inclusive of each
    node's subtree, matching the cost model's convention.

    ``batch_stats`` is :attr:`QueryResult.batch_stats` from an
    instrumented *vector* execution: when present, each node gains a
    ``· batches=…`` line (batch count, per-batch row min/median/max in
    and out) and each filter gains selection-vector density before/after
    the kernel, observed selectivity, kernel self time, and predicate
    cache hit rate. The row-path ``act`` figures are untouched — they
    stay byte-identical with the row engine's.
    """
    root = plan.root if isinstance(plan, Plan) else plan
    stats_map = node_stats or {}
    batch_map = batch_stats or {}
    lines = [_node_label(root) + _analyze_annotation(root, stats_map, cost_model)]
    _analyze_detail_lines(root, "", lines, batch_map)
    children = root.children()
    for position, child in enumerate(children):
        _render_analyze(
            child,
            "",
            position == len(children) - 1,
            lines,
            stats_map,
            cost_model,
            batch_map,
        )
    return "\n".join(lines)


def explain(plan: Plan, cost_model=None) -> str:
    """Plan tree plus estimated totals (and per-node detail if a cost model
    is supplied)."""
    lines = [plan_tree(plan)]
    if cost_model is not None:
        estimate = cost_model.estimate_plan(plan.root)
        lines.append(
            f"estimated rows={estimate.rows:.0f} "
            f"cost={estimate.cost:.1f} units"
        )
    elif plan.estimated_cost is not None:
        lines.append(
            f"estimated rows={plan.estimated_rows:.0f} "
            f"cost={plan.estimated_cost:.1f} units"
        )
    return "\n".join(lines)
