"""Plan pretty-printing: ASCII trees like the paper's Figures 1, 2, 6, 7."""

from __future__ import annotations

from repro.plan.nodes import Join, Plan, PlanNode, Scan


def _node_label(node: PlanNode) -> str:
    if isinstance(node, Join):
        return f"{node.method.value}-join  [{node.primary}]"
    assert isinstance(node, Scan)
    return str(node)


def _render(node: PlanNode, prefix: str, is_last: bool, lines: list[str]) -> None:
    connector = "└─ " if is_last else "├─ "
    child_prefix = prefix + ("   " if is_last else "│  ")
    label = _node_label(node)
    lines.append(prefix + connector + label)
    for predicate in reversed(node.filters):
        lines.append(child_prefix + f"· filter: {predicate}")
    children = node.children()
    for position, child in enumerate(children):
        _render(child, child_prefix, position == len(children) - 1, lines)


def plan_tree(plan: Plan | PlanNode) -> str:
    """Render a plan as an ASCII tree, filters listed top-down per node."""
    root = plan.root if isinstance(plan, Plan) else plan
    lines: list[str] = [_node_label(root)]
    for predicate in reversed(root.filters):
        lines.append(f"· filter: {predicate}")
    children = root.children()
    for position, child in enumerate(children):
        _render(child, "", position == len(children) - 1, lines)
    return "\n".join(lines)


def explain(plan: Plan, cost_model=None) -> str:
    """Plan tree plus estimated totals (and per-node detail if a cost model
    is supplied)."""
    lines = [plan_tree(plan)]
    if cost_model is not None:
        estimate = cost_model.estimate_plan(plan.root)
        lines.append(
            f"estimated rows={estimate.rows:.0f} "
            f"cost={estimate.cost:.1f} units"
        )
    elif plan.estimated_cost is not None:
        lines.append(
            f"estimated rows={plan.estimated_rows:.0f} "
            f"cost={plan.estimated_cost:.1f} units"
        )
    return "\n".join(lines)
