"""Physical plan trees.

Plans are left-deep join trees (as in Montage) whose nodes carry ordered
lists of *placed* predicates: a :class:`~repro.plan.nodes.Scan`'s filters run
right after the scan, a :class:`~repro.plan.nodes.Join`'s filters run on the
join's output. Predicate placement algorithms work by moving
:class:`~repro.expr.predicates.Predicate` objects between these lists.
"""

from repro.plan.nodes import Join, JoinMethod, Plan, PlanNode, Scan
from repro.plan.display import explain, explain_analyze, plan_tree
from repro.plan.streams import Spine, SpineJoin, spine_of

__all__ = [
    "Join",
    "JoinMethod",
    "Plan",
    "PlanNode",
    "Scan",
    "Spine",
    "SpineJoin",
    "explain",
    "explain_analyze",
    "plan_tree",
    "spine_of",
]
