"""repro — a reproduction of *Practical Predicate Placement*
(Joseph M. Hellerstein, SIGMOD 1994).

The library re-creates the paper's entire experimental stack in Python: a
page-based storage engine with charged-I/O accounting, the Hong–Stonebraker
synthetic database, a System R-style optimizer hosting the paper's family
of expensive-predicate placement algorithms (PushDown+, PullUp, PullRank,
Predicate Migration, LDL, Exhaustive), predicate caching, a small SQL
front-end, and the benchmark harness that regenerates every table and
figure of the paper's evaluation.

Quickstart::

    from repro import build_database, compile_query, optimize, Executor

    db = build_database(scale=100)
    query = compile_query(
        db,
        "SELECT * FROM t3, t10 WHERE t3.a1 = t10.ua1 AND costly100(t10.u20)",
    )
    plan = optimize(db, query, strategy="migration").plan
    result = Executor(db).execute(plan)
    print(result.row_count, result.charged)
"""

from repro.catalog.datagen import (
    build_database,
    paper_scale_database,
    register_standard_functions,
)
from repro.database import Database
from repro.exec import EXECUTORS, Executor, FailurePolicy, QueryResult
from repro.faults import FaultInjector, FaultPlan, FaultSpec
from repro.obs import MetricsRegistry, Tracer, record_run
from repro.optimizer import (
    STRATEGIES,
    OptimizedPlan,
    Query,
    optimize,
    optimize_degraded,
)
from repro.plan import explain, explain_analyze, plan_tree
from repro.sql import compile_query

__version__ = "1.0.0"

__all__ = [
    "Database",
    "EXECUTORS",
    "Executor",
    "FailurePolicy",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "MetricsRegistry",
    "OptimizedPlan",
    "Query",
    "QueryResult",
    "STRATEGIES",
    "Tracer",
    "__version__",
    "build_database",
    "compile_query",
    "explain",
    "explain_analyze",
    "optimize",
    "optimize_degraded",
    "paper_scale_database",
    "plan_tree",
    "record_run",
    "register_standard_functions",
]
