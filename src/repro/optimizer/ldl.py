"""The LDL algorithm (Section 3.1): expensive predicates as virtual joins.

LDL [CGK89] rewrites each expensive predicate into a join with a virtual
relation of infinite cardinality whose per-tuple join cost is the function's
cost, then runs an ordinary join-ordering optimizer. Because System R-style
optimizers explore only *left-deep* trees, a virtual predicate-join can
never sit directly above an inner relation's scan — the optimal bushy plan
of the paper's Figure 1 is unreachable, and LDL is structurally forced into
over-eager pullup from inner inputs.

We implement the rewrite directly as a dynamic program over states
``(tables joined, expensive predicates applied)``: applying an expensive
predicate is a step in the left-deep sequence, exactly like joining its
virtual relation. This also exhibits the paper's complexity complaint —
the DP is exponential in tables *plus* expensive predicates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.catalog.catalog import Catalog
from repro.cost.model import CostModel
from repro.errors import OptimizerError
from repro.expr.predicates import Predicate
from repro.obs.profile import NULL_PROFILER
from repro.obs.provenance import NULL_LEDGER, skeleton_signature
from repro.obs.tracer import NULL_TRACER
from repro.optimizer.joinutil import choose_primary, eligible_methods
from repro.optimizer.policies import rank_sorted
from repro.optimizer.query import Query
from repro.plan.nodes import Join, Plan, PlanNode, Scan

State = tuple[frozenset[str], frozenset[int]]


@dataclass
class _LDLCandidate:
    node: PlanNode
    cost: float
    rows: float
    order: object


def ldl_plan(
    query: Query,
    catalog: Catalog,
    model: CostModel,
    bushy: bool = False,
    tracer=NULL_TRACER,
    notes: dict | None = None,
    profiler=NULL_PROFILER,
    ledger=NULL_LEDGER,
) -> Plan:
    """Best plan with expensive predicates as virtual join steps.

    ``bushy=True`` additionally pairs arbitrary disjoint sub-states — the
    bushy System R modification the paper names as the escape from LDL's
    forced inner pullup (at yet more enumeration cost). With it, the
    Figure 1 optimal plan becomes reachable: a virtual predicate join can
    sit directly above the inner relation's scan.
    """
    tables = sorted(query.tables)
    join_predicates = query.join_predicates()
    # The virtual relations: expensive selections and expensive secondary
    # join predicates. (An expensive predicate may still end up as a plain
    # nested-loop *primary* when it is the only connector.)
    virtual = {
        p.pred_id: p
        for p in query.predicates
        if p.is_expensive
    }

    def candidate_of(node: PlanNode) -> _LDLCandidate:
        estimate = model.estimate_plan(node)
        return _LDLCandidate(node, estimate.cost, estimate.rows, estimate.order)

    dp: dict[State, list[_LDLCandidate]] = {}
    for table in tables:
        scan = _cheap_scan(query, table)
        dp[(frozenset({table}), frozenset())] = [candidate_of(scan)]

    enumerated = len(tables)
    pruned = 0
    states_expanded = 0
    total_steps = len(tables) + len(virtual)
    dp_span = tracer.span(
        "enumerate", policy="ldl", virtual_predicates=len(virtual)
    )
    dp_span.__enter__()
    for step in range(1, total_steps):
        with profiler.phase(f"ldl.step_{step}"):
            current_states = [
                state
                for state in dp
                if len(state[0]) + len(state[1]) == step
            ]
            successors: dict[State, list[_LDLCandidate]] = {}
            for state in current_states:
                joined, applied = state
                states_expanded += 1
                for candidate in dp[state]:
                    _apply_transitions(
                        query,
                        catalog,
                        model,
                        candidate,
                        joined,
                        applied,
                        virtual,
                        join_predicates,
                        successors,
                        candidate_of,
                        ledger,
                    )
                    if bushy:
                        _apply_bushy_pairings(
                            catalog,
                            model,
                            dp,
                            state,
                            candidate,
                            join_predicates,
                            successors,
                            candidate_of,
                        )
            for state, candidates in successors.items():
                existing = dp.get(state, [])
                kept = _prune(existing + candidates)
                enumerated += len(candidates)
                pruned += len(existing) + len(candidates) - len(kept)
                dp[state] = kept
            if tracer.enabled:
                tracer.event(
                    "ldl.step",
                    step=step,
                    states_at_step=len(current_states),
                    successors=len(successors),
                )

    dp_span.set(states=len(dp), enumerated=enumerated)
    dp_span.__exit__(None, None, None)

    if notes is not None:
        notes.update(
            subplans_enumerated=enumerated,
            subplans_pruned=pruned,
            dp_states=len(dp),
            states_expanded=states_expanded,
            virtual_predicates=len(virtual),
        )

    final_state = (frozenset(tables), frozenset(virtual))
    final = dp.get(final_state)
    if not final:
        raise OptimizerError("LDL could not build a complete plan")
    best = min(final, key=lambda candidate: candidate.cost)
    return Plan(best.node, best.cost, best.rows)


def _cheap_scan(query: Query, table: str) -> Scan:
    cheap = [p for p in query.selections_on(table) if not p.is_expensive]
    return Scan(filters=rank_sorted(cheap), table=table)


def _apply_transitions(
    query,
    catalog,
    model,
    candidate,
    joined,
    applied,
    virtual,
    join_predicates,
    successors,
    candidate_of,
    ledger=NULL_LEDGER,
) -> None:
    # (a) Apply one pending expensive predicate on top of the current plan —
    # the virtual-relation join step.
    for pred_id, predicate in virtual.items():
        if pred_id in applied or not predicate.tables <= joined:
            continue
        node = candidate.node.clone()
        node.filters = rank_sorted(node.filters + [predicate])
        if ledger.enabled:
            ledger.record(
                "ldl.virtual_join",
                predicate=str(predicate),
                tables=sorted(joined),
                applied=len(applied) + 1,
                signature=skeleton_signature(node),
            )
        state = (joined, applied | {pred_id})
        successors.setdefault(state, []).append(candidate_of(node))

    # (b) Join one more base table.
    remaining = [t for t in query.tables if t not in joined]
    connectable = []
    for table in remaining:
        connecting = [
            p
            for p in join_predicates
            if table in p.tables
            and p.tables <= joined | {table}
            and p.pred_id not in applied
        ]
        if connecting:
            connectable.append((table, connecting))
    if not connectable and remaining:
        # Cross products only when the graph is disconnected.
        connectable = [(table, []) for table in remaining]
    for table, connecting in connectable:
        primary, secondaries, cheap = choose_primary(connecting)
        cheap_secondaries = [p for p in secondaries if not p.is_expensive]
        new_applied = set(applied)
        if primary.is_expensive:
            new_applied.add(primary.pred_id)
        for method in eligible_methods(catalog, primary, cheap, table):
            join = Join(
                filters=rank_sorted(cheap_secondaries),
                outer=candidate.node.clone(),
                inner=_cheap_scan(query, table),
                method=method,
                primary=primary,
            )
            state = (joined | {table}, frozenset(new_applied))
            successors.setdefault(state, []).append(candidate_of(join))


def _state_key(state: State) -> tuple:
    return (sorted(state[0]), sorted(state[1]))


def _apply_bushy_pairings(
    catalog,
    model,
    dp,
    state,
    candidate,
    join_predicates,
    successors,
    candidate_of,
) -> None:
    """Pair this state with every finalized disjoint state (bushy join)."""
    from repro.plan.nodes import JoinMethod

    joined, applied = state
    my_size = len(joined) + len(applied)
    for other_state, other_candidates in list(dp.items()):
        other_joined, other_applied = other_state
        other_size = len(other_joined) + len(other_applied)
        if other_size > my_size:
            continue
        if other_size == my_size and _state_key(other_state) >= _state_key(
            state
        ):
            continue  # the symmetric iteration handles it
        if joined & other_joined or applied & other_applied:
            continue
        combined_tables = joined | other_joined
        connecting = [
            p
            for p in join_predicates
            if p.tables <= combined_tables
            and p.tables & joined
            and p.tables & other_joined
            and p.pred_id not in applied | other_applied
        ]
        if not connecting:
            continue
        primary, secondaries, cheap = choose_primary(connecting)
        cheap_secondaries = [p for p in secondaries if not p.is_expensive]
        new_applied = set(applied | other_applied)
        if primary.is_expensive:
            new_applied.add(primary.pred_id)
        methods = (
            [JoinMethod.HASH, JoinMethod.MERGE]
            if cheap
            else [JoinMethod.NESTED_LOOP]
        )
        for other in other_candidates:
            for method in methods:
                for outer_node, inner_node in (
                    (candidate.node, other.node),
                    (other.node, candidate.node),
                ):
                    join = Join(
                        filters=rank_sorted(list(cheap_secondaries)),
                        outer=outer_node.clone(),
                        inner=inner_node.clone(),
                        method=method,
                        primary=primary,
                    )
                    new_state = (combined_tables, frozenset(new_applied))
                    successors.setdefault(new_state, []).append(
                        candidate_of(join)
                    )


def _prune(candidates: list[_LDLCandidate]) -> list[_LDLCandidate]:
    best = min(candidates, key=lambda candidate: candidate.cost)
    kept = [best]
    by_order: dict[object, _LDLCandidate] = {}
    for candidate in candidates:
        if candidate.order is None:
            continue
        current = by_order.get(candidate.order)
        if current is None or candidate.cost < current.cost:
            by_order[candidate.order] = candidate
    kept.extend(c for c in by_order.values() if c is not best)
    return kept


def inner_pullup_violations(root: PlanNode) -> list[Predicate]:
    """Expensive predicates sitting on a join's *inner* scan — structurally
    impossible for LDL; exposed so tests can assert the over-eagerness."""
    violations: list[Predicate] = []
    for node in root.walk():
        if isinstance(node, Join) and isinstance(node.inner, Scan):
            violations.extend(
                p for p in node.inner.filters if p.is_expensive
            )
    return violations
