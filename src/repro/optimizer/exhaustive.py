"""Exhaustive predicate placement (Table 1's last row).

Enumerates every left-deep join order, every legal slot assignment for every
expensive movable predicate, and the join method of every join. It is the
only algorithm here that is optimal even for *expensive primary join
predicates* — and its complexity is prohibitive, which is the paper's point:
the reproduction uses it as ground truth for small queries.

Method choice defaults to a bottom-up greedy pass per (order, placement)
combination, which is exact except for sort-order interactions between
adjacent merge joins; ``method_choice="enumerate"`` removes even that
approximation at additional (multiplicative) cost.
"""

from __future__ import annotations

import itertools

from repro.catalog.catalog import Catalog
from repro.cost.model import CostModel
from repro.errors import OptimizerError
from repro.expr.predicates import Predicate
from repro.obs.profile import NULL_PROFILER
from repro.obs.tracer import NULL_TRACER
from repro.optimizer.joinutil import choose_primary, eligible_methods
from repro.optimizer.policies import rank_sorted
from repro.optimizer.query import Query
from repro.plan.nodes import Join, JoinMethod, Plan, Scan
from repro.plan.streams import spine_of

#: Refuse to enumerate beyond this many (order × placement) combinations.
DEFAULT_COMBO_LIMIT = 2_000_000


def exhaustive_plan(
    query: Query,
    catalog: Catalog,
    model: CostModel,
    method_choice: str = "greedy",
    combo_limit: int = DEFAULT_COMBO_LIMIT,
    tracer=NULL_TRACER,
    notes: dict | None = None,
    profiler=NULL_PROFILER,
) -> Plan:
    """The minimum-estimated-cost plan over the full placement space."""
    if method_choice not in ("greedy", "enumerate"):
        raise OptimizerError(f"unknown method_choice: {method_choice!r}")
    tables = sorted(query.tables)
    join_predicates = query.join_predicates()

    best_root = None
    best_cost = float("inf")
    combos_seen = 0
    orders_tried = 0
    plans_costed = 0
    for order in itertools.permutations(tables):
        with profiler.phase("exhaustive.order"):
            root, movable = _skeleton(query, order, join_predicates)
            if root is None:
                continue
            orders_tried += 1
            if isinstance(root, Scan):
                # Single-table query: rank order is optimal, nothing to
                # place.
                estimate = model.estimate_plan(root)
                if notes is not None:
                    notes.update(
                        subplans_enumerated=1,
                        subplans_pruned=0,
                        orders_enumerated=1,
                        interleavings_counted=0,
                    )
                return Plan(root, estimate.cost, estimate.rows)
            spine = spine_of(root)
            slot_ranges = [
                range(spine.entry_slot(predicate), spine.slots)
                for predicate in movable
            ]
            for slots in itertools.product(*slot_ranges):
                combos_seen += 1
                if combos_seen > combo_limit:
                    raise OptimizerError(
                        f"exhaustive placement exceeded {combo_limit} "
                        "combinations; use a heuristic strategy"
                    )
                spine.apply_placement(dict(zip(movable, slots)))
                for cost in _method_costs(
                    spine, catalog, model, method_choice
                ):
                    plans_costed += 1
                    if cost < best_cost:
                        best_cost = cost
                        best_root = root.clone()
                        if tracer.enabled:
                            tracer.event(
                                "exhaustive.new_best",
                                cost=cost,
                                order=list(order),
                                interleaving=combos_seen,
                            )
    if notes is not None:
        # Every costed (order, interleaving, method) plan but the winner
        # was discarded by direct cost comparison.
        notes.update(
            subplans_enumerated=plans_costed,
            subplans_pruned=max(0, plans_costed - 1),
            orders_enumerated=orders_tried,
            interleavings_counted=combos_seen,
        )
    if best_root is None:
        raise OptimizerError("no plan found (disconnected query graph?)")
    estimate = model.estimate_plan(best_root)
    return Plan(best_root, estimate.cost, estimate.rows)


def _skeleton(query, order, join_predicates):
    """Left-deep skeleton for one table order; returns (root, movable).

    Cheap selections are pinned to their scans in rank order; expensive
    selections and expensive secondary join predicates start at their entry
    slot and are the movable units.
    """
    movable: list[Predicate] = []

    def make_scan(table: str) -> Scan:
        cheap = [
            p for p in query.selections_on(table) if not p.is_expensive
        ]
        expensive = [
            p for p in query.selections_on(table) if p.is_expensive
        ]
        movable.extend(expensive)
        return Scan(filters=rank_sorted(cheap) + expensive, table=table)

    root = make_scan(order[0])
    seen = {order[0]}
    used: set[int] = set()
    for table in order[1:]:
        seen.add(table)
        connecting = [
            p
            for p in join_predicates
            if table in p.tables
            and p.tables <= seen
            and p.pred_id not in used
        ]
        primary, secondaries, cheap = choose_primary(connecting)
        used.add(primary.pred_id)
        used.update(p.pred_id for p in secondaries)
        cheap_secondaries = [p for p in secondaries if not p.is_expensive]
        expensive_secondaries = [p for p in secondaries if p.is_expensive]
        movable.extend(expensive_secondaries)
        method = JoinMethod.HASH if cheap else JoinMethod.NESTED_LOOP
        root = Join(
            filters=rank_sorted(cheap_secondaries) + expensive_secondaries,
            outer=root,
            inner=make_scan(table),
            method=method,
            primary=primary,
        )
    return root, movable


def _method_costs(spine, catalog: Catalog, model: CostModel, method_choice):
    """Yield total plan cost(s) after method selection.

    Greedy: choose each join's method bottom-up by subtree cost (one yield).
    Enumerate: yield the cost of every method combination.
    """
    choices = []
    for spine_join in spine.joins:
        join = spine_join.join
        assert isinstance(join.inner, Scan)
        primary = join.primary
        cheap = primary.is_equijoin and not primary.is_expensive
        choices.append(
            eligible_methods(catalog, primary, cheap, join.inner.table)
        )

    if method_choice == "greedy":
        for spine_join, methods in zip(spine.joins, choices):
            join = spine_join.join
            best_method = min(
                methods,
                key=lambda method: _with_method(join, method, model),
            )
            join.method = best_method
        yield model.estimate_plan(spine.top).cost
        return

    for combo in itertools.product(*choices):
        for spine_join, method in zip(spine.joins, combo):
            spine_join.join.method = method
        yield model.estimate_plan(spine.top).cost


def _with_method(join: Join, method: JoinMethod, model: CostModel) -> float:
    previous = join.method
    join.method = method
    try:
        return model.estimate_plan(join).cost
    finally:
        join.method = previous
