"""Exhaustive predicate placement (Table 1's last row).

Enumerates every left-deep join order, every legal slot assignment for every
expensive movable predicate, and the join method of every join. It is the
only algorithm here that is optimal even for *expensive primary join
predicates* — and its complexity is prohibitive, which is the paper's point:
the reproduction uses it as ground truth for small queries.

Method choice defaults to a bottom-up greedy pass per (order, placement)
combination, which is exact except for sort-order interactions between
adjacent merge joins; ``method_choice="enumerate"`` removes even that
approximation at additional (multiplicative) cost.

The search is branch-and-bound, with the hard contract that the chosen
plan is identical to the naive full enumeration (fingerprints gate this
in CI and in ``test_planner_equivalence.py``):

* **Order prefixes** carry a sound cost lower bound (every selectivity
  ≤ 1 applied as early as possible, each join charged its cheapest
  eligible method's mandatory terms). A prefix whose bound already
  exceeds the incumbent — scaled by a safety factor against float
  rounding — is cut with all its completions; in particular, once any
  connected order sets an incumbent, permutations sharing a rejected
  disconnected (cross-product) prefix die on their nested-loop rescan
  floor.
* **Placement combinations** are costed incrementally slot-by-slot up
  the spine, reusing memoised estimates for the unchanged prefix of the
  previous combination, and abandoned as soon as the accumulated spine
  cost reaches the incumbent (exact: every total is the prefix cost
  plus non-negative terms, and the incumbent only ever improves on
  strictly smaller cost).

Both cut kinds are reported in notes (``orders_pruned`` /
``combos_pruned``); pruned placement combinations still count against
``combo_limit``.
"""

from __future__ import annotations

import itertools
import math

from repro.catalog.catalog import Catalog
from repro.cost.model import CostModel
from repro.errors import OptimizerError
from repro.expr.predicates import Predicate
from repro.obs.profile import NULL_PROFILER
from repro.obs.provenance import NULL_LEDGER
from repro.obs.tracer import NULL_TRACER
from repro.optimizer.joinutil import choose_primary, eligible_methods
from repro.optimizer.policies import rank_sorted
from repro.optimizer.query import Query
from repro.plan.nodes import Join, JoinMethod, Plan, Scan
#: Refuse to enumerate beyond this many (order × placement) combinations.
DEFAULT_COMBO_LIMIT = 2_000_000

#: Order-prefix bounds are computed with the same float formulas as real
#: estimates but summed in a different order, so they may exceed a true
#: completion cost by rounding noise; only prune when the bound beats the
#: incumbent by a margin far above ulp scale.
FLOOR_SAFETY = 0.999


def exhaustive_plan(
    query: Query,
    catalog: Catalog,
    model: CostModel,
    method_choice: str = "greedy",
    combo_limit: int = DEFAULT_COMBO_LIMIT,
    tracer=NULL_TRACER,
    notes: dict | None = None,
    profiler=NULL_PROFILER,
    ledger=NULL_LEDGER,
) -> Plan:
    """The minimum-estimated-cost plan over the full placement space."""
    if method_choice not in ("greedy", "enumerate"):
        raise OptimizerError(f"unknown method_choice: {method_choice!r}")
    search = _Search(
        query, catalog, model, method_choice, combo_limit, tracer, profiler,
        ledger,
    )
    return search.run(notes)


class _Search:
    """One exhaustive-search invocation's state."""

    def __init__(
        self, query, catalog, model, method_choice, combo_limit, tracer,
        profiler, ledger=NULL_LEDGER,
    ):
        self.query = query
        self.catalog = catalog
        self.model = model
        self.method_choice = method_choice
        self.combo_limit = combo_limit
        self.tracer = tracer
        self.profiler = profiler
        self.ledger = ledger
        # The placement the combo loop is currently costing, stashed so
        # ``_offer`` can ledger the incumbent's slot assignment.
        self._current_movable = []
        self._current_slots = ()
        self.tables = sorted(query.tables)
        self.join_predicates = query.join_predicates()
        self.best_root = None
        self.best_cost = float("inf")
        self.combos_seen = 0
        self.combos_pruned = 0
        self.orders_tried = 0
        self.orders_pruned = 0
        self.plans_costed = 0
        # Per-table floor ingredients for order-prefix lower bounds.
        params = model.params
        self._cpu = params.cpu_per_tuple
        self._seq = params.seq_weight
        self._scan_rows_floor: dict[str, float] = {}
        self._pages: dict[str, float] = {}
        self._height: dict[str, float] = {}
        # Per-table selection split, shared by every order's skeleton.
        self._cheap_sel: dict[str, list[Predicate]] = {}
        self._exp_sel: dict[str, list[Predicate]] = {}
        for table in self.tables:
            entry = catalog.table(table)
            rows = float(entry.stats.cardinality)
            selections = query.selections_on(table)
            for predicate in selections:
                if predicate.selectivity <= 1.0:
                    rows *= predicate.selectivity
            self._scan_rows_floor[table] = rows
            self._pages[table] = float(entry.pages)
            self._height[table] = params.index_height(entry.cardinality)
            self._cheap_sel[table] = rank_sorted(
                [p for p in selections if not p.is_expensive]
            )
            self._exp_sel[table] = [p for p in selections if p.is_expensive]
        self._eff_sel = {
            id(predicate): model.join_selectivity(predicate)
            for predicate in self.join_predicates
        }
        # Scan estimates keyed by (table, filter identities): skeleton
        # scans recur across orders and placement combos with the same
        # predicate objects in the same order, so their estimates are
        # search-wide invariants. Eligible-method lists likewise, per
        # (primary, inner table); values keep the primary alive so a
        # cached id() can never be recycled.
        self._scan_estimates: dict[tuple, object] = {}
        self._methods_cache: dict[tuple, tuple[Predicate, list]] = {}

    def _scan_estimate(self, scan):
        """Memoised estimate of a skeleton scan (no index access paths)."""
        key = (scan.table, tuple(id(f) for f in scan.filters))
        estimate = self._scan_estimates.get(key)
        if estimate is None:
            estimate = self.model.estimate_scan(scan)
            self._scan_estimates[key] = estimate
        return estimate

    def _methods_for(self, primary, cheap, table):
        key = (id(primary), table)
        cached = self._methods_cache.get(key)
        if cached is not None and cached[0] is primary:
            return cached[1]
        methods = eligible_methods(self.catalog, primary, cheap, table)
        self._methods_cache[key] = (primary, methods)
        return methods

    # -- driver ------------------------------------------------------------

    def run(self, notes: dict | None) -> Plan:
        model = self.model
        model.memo_enable()
        hits_before = model.memo_hits
        misses_before = model.memo_misses

        if len(self.tables) == 1:
            # Single-table query: rank order is optimal, nothing to place.
            root, _ = _skeleton(
                self.query, tuple(self.tables), self.join_predicates
            )
            estimate = model.estimate_plan(root)
            self.orders_tried = 1
            self.plans_costed = 1
            self._write_notes(notes, hits_before, misses_before)
            return Plan(root, estimate.cost, estimate.rows)

        for first in self.tables:
            self._extend_order(
                [first], {first},
                self._scan_rows_floor[first], 0.0, [],
            )
        self._write_notes(notes, hits_before, misses_before)
        if self.best_root is None:
            raise OptimizerError("no plan found (disconnected query graph?)")
        estimate = model.estimate_plan(self.best_root)
        return Plan(self.best_root, estimate.cost, estimate.rows)

    def _write_notes(self, notes, hits_before, misses_before):
        """Every exit — single-table, pruned, or full — reports the same
        note keys, so downstream consumers never see partial accounting."""
        if notes is None:
            return
        # Every costed (order, interleaving, method) plan but the winner
        # was discarded by direct cost comparison; branch-and-bound cuts
        # are reported separately.
        notes.update(
            subplans_enumerated=self.plans_costed,
            subplans_pruned=max(0, self.plans_costed - 1),
            orders_enumerated=self.orders_tried,
            interleavings_counted=self.combos_seen,
            combos_pruned=self.combos_pruned,
            orders_pruned=self.orders_pruned,
            cost_memo_hits=self.model.memo_hits - hits_before,
            cost_memo_misses=self.model.memo_misses - misses_before,
        )

    # -- order enumeration with prefix lower bounds ------------------------

    def _extend_order(self, prefix, seen, rows_floor, cost_floor, steps):
        """Depth-first extension of one table-order prefix, visiting
        complete orders in the same lexicographic sequence as
        ``itertools.permutations(sorted(tables))``. ``steps`` accumulates
        each extension's ``(table, primary, secondaries, cheap)`` so the
        skeleton builder need not recompute connecting sets."""
        count = len(self.tables)
        if len(prefix) == count:
            self.orders_tried += 1
            combos_before = self.combos_seen
            pruned_before = self.combos_pruned
            with self.profiler.phase("exhaustive.order"):
                self._evaluate_order(tuple(prefix), steps)
            if self.ledger.enabled:
                self.ledger.record(
                    "exhaustive.combos",
                    order=list(prefix),
                    interleavings=self.combos_seen - combos_before,
                    pruned=self.combos_pruned - pruned_before,
                )
            return
        for table in self.tables:
            if table in seen:
                continue
            seen_new = seen | {table}
            # A join predicate connects here exactly when this table is
            # its last to arrive, so no used-set bookkeeping is needed:
            # each predicate is consumed at its unique containment step.
            connecting = [
                p
                for p in self.join_predicates
                if table in p.tables and p.tables <= seen_new
            ]
            primary, secondaries, cheap = choose_primary(connecting)
            floor = cost_floor + self._join_floor(
                primary, cheap, table, rows_floor
            )
            if (
                self.best_root is not None
                and floor * FLOOR_SAFETY >= self.best_cost
            ):
                completions = math.factorial(count - len(prefix) - 1)
                self.orders_pruned += completions
                if self.ledger.enabled:
                    self.ledger.record(
                        "exhaustive.order_pruned",
                        prefix=prefix + [table],
                        completions_pruned=completions,
                        floor=floor,
                        incumbent=self.best_cost,
                    )
                continue
            rows_new = rows_floor * self._scan_rows_floor[table]
            for p in connecting:
                sel = self._eff_sel[id(p)]
                if sel <= 1.0:
                    rows_new *= sel
            prefix.append(table)
            steps.append((table, primary, secondaries, cheap))
            self._extend_order(prefix, seen_new, rows_new, floor, steps)
            steps.pop()
            prefix.pop()

    def _join_floor(self, primary, cheap, table, outer_rows):
        """A sound lower bound on joining ``table`` onto a stream of at
        least ``outer_rows`` tuples: the cheapest eligible method's
        mandatory cost terms, everything optional dropped."""
        cpu = self._cpu
        inner_rows = self._scan_rows_floor[table]
        both = cpu * (outer_rows + inner_rows)
        floor = float("inf")
        for method in self._methods_for(primary, cheap, table):
            if method is JoinMethod.NESTED_LOOP:
                candidate = (
                    outer_rows * self._pages[table] * self._seq + both
                )
            elif method is JoinMethod.INDEX_NESTED_LOOP:
                candidate = outer_rows * (self._height[table] + cpu)
            else:  # merge / hash: sort and spill terms are optional
                candidate = both
            if candidate < floor:
                floor = candidate
        return floor

    # -- per-order placement search ----------------------------------------

    def _build_skeleton(self, order, steps):
        """Left-deep skeleton from the DFS's per-step primary choices.

        Mirrors module-level :func:`_skeleton` — identical filter lists
        and identical movable ordering (step secondaries before the
        step's inner-table selections) — without recomputing connecting
        sets or re-splitting selections per order. Because the tree is
        assembled here, every structural fact the placement loop needs
        falls out for free: each movable's entry slot (0 for leaf
        selections, the join position for inner-table selections, the
        slot above the connecting join for join predicates), the scan
        realising a selection's entry slot, the flat node list, and the
        lowest spine position whose estimate each node feeds.
        """
        first = order[0]
        leaf = Scan(
            filters=self._cheap_sel[first] + self._exp_sel[first],
            table=first,
        )
        movable = list(self._exp_sel[first])
        entries = [0] * len(movable)
        entry_scans: list[Scan | None] = [leaf] * len(movable)
        nodes: list = [leaf]
        pos_of = {id(leaf): 0}
        joins: list[Join] = []
        root = leaf
        for position, (table, primary, secondaries, cheap) in enumerate(
            steps
        ):
            cheap_secondaries = [
                p for p in secondaries if not p.is_expensive
            ]
            expensive_secondaries = [p for p in secondaries if p.is_expensive]
            movable.extend(expensive_secondaries)
            entries.extend([position + 1] * len(expensive_secondaries))
            entry_scans.extend([None] * len(expensive_secondaries))
            expensive = self._exp_sel[table]
            inner = Scan(
                filters=self._cheap_sel[table] + expensive, table=table
            )
            movable.extend(expensive)
            entries.extend([position] * len(expensive))
            entry_scans.extend([inner] * len(expensive))
            root = Join(
                filters=rank_sorted(cheap_secondaries)
                + expensive_secondaries,
                outer=root,
                inner=inner,
                method=JoinMethod.HASH if cheap else JoinMethod.NESTED_LOOP,
                primary=primary,
            )
            joins.append(root)
            pos_of[id(inner)] = position
            pos_of[id(root)] = position
            nodes.append(inner)
            nodes.append(root)
        return root, joins, movable, entries, entry_scans, nodes, pos_of

    def _evaluate_order(self, order, steps):
        model = self.model
        (
            root, joins, movable, entries, entry_scans, nodes, pos_of,
        ) = self._build_skeleton(order, steps)
        top = len(joins)
        slots_total = top + 1
        slot_ranges = [
            range(entry, slots_total) for entry in entries
        ]
        # Target node per (movable index, slot): the relation's scan at a
        # selection's entry slot, join ``slot - 1`` above that.
        targets: list[dict[int, object]] = []
        for index in range(len(movable)):
            scan = entry_scans[index]
            per_slot: dict[int, object] = {}
            for slot in slot_ranges[index]:
                if slot == entries[index] and scan is not None:
                    per_slot[slot] = scan
                else:
                    per_slot[slot] = joins[slot - 1]
            targets.append(per_slot)
        # Arrival order on a shared node: global rank sort, stable in
        # movable order — identical to Spine.apply_placement's global
        # remove-then-append in rank order.
        arrival_order = sorted(
            range(len(movable)), key=lambda index: movable[index].rank
        )
        movable_ids = {id(p) for p in movable}
        base_filters = {
            id(node): [f for f in node.filters if id(f) not in movable_ids]
            for node in nodes
        }
        order_methods = [
            self._methods_for(primary, cheap, table)
            for table, primary, _, cheap in steps
        ]

        current = None
        cost_at = [0.0] * top
        ledger_on = self.ledger.enabled
        if ledger_on:
            self._current_movable = movable
        stale_from = 0  # first spine position not matching current filters
        method_state = _MethodState() if self.method_choice == "enumerate" \
            else None
        for slots in itertools.product(*slot_ranges):
            self.combos_seen += 1
            if self.combos_seen > self.combo_limit:
                raise OptimizerError(
                    f"exhaustive placement exceeded {self.combo_limit} "
                    "combinations; use a heuristic strategy"
                )
            # Rebuild only the nodes whose arrival set changed.
            dirty: dict[int, object] = {}
            if current is None:
                for node in nodes:
                    dirty[id(node)] = node
            else:
                for index, slot in enumerate(slots):
                    if slot == current[index]:
                        continue
                    old_node = targets[index][current[index]]
                    new_node = targets[index][slot]
                    dirty[id(old_node)] = old_node
                    dirty[id(new_node)] = new_node
            current = slots
            min_pos = top
            for node_id, node in dirty.items():
                arrivals = [
                    movable[index]
                    for index in arrival_order
                    if targets[index][slots[index]] is node
                ]
                node.filters = base_filters[node_id] + arrivals
                if isinstance(node, Scan):
                    model.seed(node, self._scan_estimate(node))
                else:
                    model.forget(node)
                position = pos_of[node_id]
                if position < min_pos:
                    min_pos = position
            start = min(min_pos, stale_from)
            if ledger_on:
                self._current_slots = slots
            if self.method_choice == "greedy":
                stale_from = self._greedy_combo(
                    order, root, joins, order_methods, cost_at, start, top
                )
            else:
                stale_from = self._enumerate_combo(
                    order, root, joins, order_methods, cost_at, start, top,
                    method_state,
                )

    def _greedy_combo(
        self, order, root, joins, order_methods, cost_at, start, top
    ):
        """Greedy bottom-up method choice for the current placement,
        recomputed from spine position ``start``; returns the first
        position left stale (== ``top`` when fully evaluated)."""
        model = self.model
        if start > 0 and cost_at[start - 1] >= self.best_cost:
            # The unchanged spine prefix already costs at least the
            # incumbent; no completion can strictly beat it.
            self.combos_pruned += 1
            return start
        for position in range(start, top):
            join = joins[position]
            methods = order_methods[position]
            best_cost = None
            best_method = None
            best_estimate = None
            # Batched trial costing shares the method-independent work;
            # the join node itself is never consulted in the memo, so
            # trials need no forget/re-memo churn — only the winning
            # estimate is seeded.
            for method, estimate in zip(
                methods, model.estimate_join_methods(join, methods)
            ):
                if best_cost is None or estimate.cost < best_cost:
                    best_cost = estimate.cost
                    best_method = method
                    best_estimate = estimate
            if join.method is not best_method:
                join.method = best_method
            model.seed(join, best_estimate)
            cost_at[position] = best_cost
            if best_cost >= self.best_cost:
                self.combos_pruned += 1
                return position + 1
        self._offer(cost_at[top - 1], root, order)
        return top

    def _enumerate_combo(
        self, order, root, joins, order_methods, cost_at, start, top, state
    ):
        """Enumerate every method combination for the current placement,
        recomputing each combination's changed suffix only."""
        model = self.model
        stale = start
        first = True
        for combo in itertools.product(*order_methods):
            if state.previous is None:
                from_position = start
            else:
                for position in range(top):
                    if state.previous[position] is not combo[position]:
                        break
                else:
                    position = top
                from_position = min(position, state.stale)
                if first:
                    # The placement just changed filters from ``start``
                    # up; every later combo's dirtiness is subsumed by
                    # ``state.stale``.
                    from_position = min(from_position, start)
            first = False
            state.previous = combo
            if from_position > 0 and cost_at[from_position - 1] >= \
                    self.best_cost:
                self.combos_pruned += 1
                state.stale = from_position
                stale = min(stale, from_position)
                continue
            abandoned = False
            for position in range(from_position, top):
                join = joins[position]
                join.method = combo[position]
                estimate = model.estimate_join(join)
                model.seed(join, estimate)
                cost_at[position] = estimate.cost
                if cost_at[position] >= self.best_cost:
                    self.combos_pruned += 1
                    state.stale = position + 1
                    stale = min(stale, position + 1)
                    abandoned = True
                    break
            if abandoned:
                continue
            state.stale = top
            stale = top
            self._offer(cost_at[top - 1], root, order)
        return stale

    def _offer(self, cost, root, order):
        self.plans_costed += 1
        if cost < self.best_cost:
            self.best_cost = cost
            self.best_root = root.clone()
            if self.tracer.enabled:
                self.tracer.event(
                    "exhaustive.new_best",
                    cost=cost,
                    order=list(order),
                    interleaving=self.combos_seen,
                )
            if self.ledger.enabled:
                self.ledger.record(
                    "exhaustive.new_best",
                    cost=cost,
                    order=list(order),
                    interleaving=self.combos_seen,
                    placements={
                        str(predicate): slot
                        for predicate, slot in zip(
                            self._current_movable, self._current_slots
                        )
                    },
                )


class _MethodState:
    """Carries the enumerate-mode method combination across placements."""

    def __init__(self):
        self.previous = None
        self.stale = 0


def _method_costs(spine, catalog: Catalog, model: CostModel, method_choice):
    """Yield total plan cost(s) after method selection on one spine.

    Greedy: choose each join's method bottom-up by subtree cost (one yield).
    Enumerate: yield the cost of every method combination. The in-search
    placement loop uses the incremental variant above; this standalone form
    serves fixed-order analyses (:mod:`repro.bench.fixed_order`) and LDL's
    final method pass.
    """
    choices = []
    for spine_join in spine.joins:
        join = spine_join.join
        assert isinstance(join.inner, Scan)
        primary = join.primary
        cheap = primary.is_equijoin and not primary.is_expensive
        choices.append(
            eligible_methods(catalog, primary, cheap, join.inner.table)
        )

    if method_choice == "greedy":
        for spine_join, methods in zip(spine.joins, choices):
            join = spine_join.join
            best_method = min(
                methods,
                key=lambda method: _with_method(join, method, model),
            )
            join.method = best_method
            model.forget(join)
        yield model.estimate_plan(spine.top).cost
        return

    for combo in itertools.product(*choices):
        for spine_join, method in zip(spine.joins, combo):
            spine_join.join.method = method
            model.forget(spine_join.join)
        yield model.estimate_plan(spine.top).cost


def _with_method(join: Join, method: JoinMethod, model: CostModel) -> float:
    previous = join.method
    join.method = method
    model.forget(join)
    try:
        return model.estimate_plan(join).cost
    finally:
        join.method = previous
        model.forget(join)


def _skeleton(query, order, join_predicates):
    """Left-deep skeleton for one table order; returns (root, movable).

    Cheap selections are pinned to their scans in rank order; expensive
    selections and expensive secondary join predicates start at their entry
    slot and are the movable units.
    """
    movable: list[Predicate] = []

    def make_scan(table: str) -> Scan:
        cheap = [
            p for p in query.selections_on(table) if not p.is_expensive
        ]
        expensive = [
            p for p in query.selections_on(table) if p.is_expensive
        ]
        movable.extend(expensive)
        return Scan(filters=rank_sorted(cheap) + expensive, table=table)

    root = make_scan(order[0])
    seen = {order[0]}
    used: set[int] = set()
    for table in order[1:]:
        seen.add(table)
        connecting = [
            p
            for p in join_predicates
            if table in p.tables
            and p.tables <= seen
            and p.pred_id not in used
        ]
        primary, secondaries, cheap = choose_primary(connecting)
        used.add(primary.pred_id)
        used.update(p.pred_id for p in secondaries)
        cheap_secondaries = [p for p in secondaries if not p.is_expensive]
        expensive_secondaries = [p for p in secondaries if p.is_expensive]
        movable.extend(expensive_secondaries)
        method = JoinMethod.HASH if cheap else JoinMethod.NESTED_LOOP
        root = Join(
            filters=rank_sorted(cheap_secondaries) + expensive_secondaries,
            outer=root,
            inner=make_scan(table),
            method=method,
            primary=primary,
        )
    return root, movable
